"""Replication bench: read scale-out and WAL-tailing lag under churn.

Two measurements around the replication tier:

* **read throughput** — a fixed batch of SSSP queries (distinct
  sources) served by the primary alone vs the same batch spread across
  the primary plus two WAL-tailing replicas on the same store.  Answers
  are spot-asserted identical across nodes.  All "nodes" share this
  process, so on a single-core box the scale-out ratio is a floor —
  what the tier buys is isolation (reads keep flowing while the
  primary churns) and, on real hardware, added CPUs (see
  ``--backend process``).
* **replication lag under churn** — the primary applies mixed
  insert/delete/reweight batches at full speed; a replica syncs after
  each batch (steady state: per-batch observable lag in bytes) and then
  once from a cold backlog (catch-up: batches/s through the follower +
  apply path).

The machine-readable result lands in
``benchmarks/results/BENCH_replication.json``; ``--quick`` shrinks the
graph and counts to a CI wiring check.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import statistics
import tempfile
import threading
import time
from pathlib import Path

from _common import RESULTS_DIR
from repro.graph.delta import GraphDelta
from repro.graph.generators import uniform_random_graph
from repro.replication import ReplicaService
from repro.service import GrapeService

FULL_SHAPE = (4000, 14000)    # nodes, edges
QUICK_SHAPE = (800, 2500)
FULL_QUERIES = 96
QUICK_QUERIES = 16
FULL_BATCHES = 60
QUICK_BATCHES = 10
BATCH = 8
THREADS_PER_NODE = 4


def make_delta(rng, g, round_no):
    edges = list(g.edges())
    nodes = list(g.nodes())
    delta = GraphDelta()
    for k in range(BATCH):
        kind = rng.random()
        if kind < 0.45:
            u, v = rng.sample(nodes, 2)
            delta.insert(u, v, rng.uniform(0.1, 1.0))
        elif kind < 0.6:
            delta.insert(10_000_000 + round_no * BATCH + k,
                         rng.choice(nodes), rng.uniform(0.1, 1.0))
        elif kind < 0.8:
            u, v, _w = edges[rng.randrange(len(edges))]
            delta.delete(u, v)
        else:
            u, v, w = edges[rng.randrange(len(edges))]
            delta.set_weight(u, v, w * rng.uniform(0.5, 3.0))
    return delta


def read_throughput(services, sources):
    """Serve ``sources`` (round-robined across ``services``, each node
    hammered by THREADS_PER_NODE threads) and return queries/second."""
    work = [(services[i % len(services)], src)
            for i, src in enumerate(sources)]
    cursor = iter(work)
    lock = threading.Lock()

    def pump():
        while True:
            with lock:
                item = next(cursor, None)
            if item is None:
                return
            service, src = item
            service.play("sssp", src, graph="soc")

    threads = [threading.Thread(target=pump)
               for _ in range(THREADS_PER_NODE * len(services))]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    return len(sources) / elapsed, elapsed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small graph, few queries (CI wiring check)")
    parser.add_argument("--backend", default="thread",
                        choices=["serial", "thread", "process"],
                        help="engine executor per node; on a multi-core "
                             "host pick 'process' so each node gets its "
                             "own worker pool and the scale-out number "
                             "reflects added CPUs rather than "
                             "GIL-shared threads")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    n, m = QUICK_SHAPE if args.quick else FULL_SHAPE
    num_queries = QUICK_QUERIES if args.quick else FULL_QUERIES
    batches = QUICK_BATCHES if args.quick else FULL_BATCHES
    rng = random.Random(args.seed)
    g = uniform_random_graph(n, m, directed=False, seed=args.seed)
    sources = [rng.randrange(n) for _ in range(num_queries)]

    with tempfile.TemporaryDirectory(prefix="bench-repl-") as tmp:
        store = Path(tmp) / "store"
        primary = GrapeService(store_dir=store, node_id="primary",
                               backend=args.backend,
                               concurrency=THREADS_PER_NODE)
        primary.load_graph("soc", g)
        primary.play("sssp", sources[0], graph="soc")  # build partition

        # --- read scale-out -------------------------------------------
        solo_qps, solo_s = read_throughput([primary], sources)
        replicas = [ReplicaService(store, replica_id=f"r{i}",
                                   backend=args.backend,
                                   concurrency=THREADS_PER_NODE)
                    for i in (1, 2)]
        spot = primary.play("sssp", sources[0], graph="soc").answer
        for replica in replicas:
            assert (replica.play("sssp", sources[0], graph="soc").answer
                    == spot), "replica diverged from primary"
        tier_qps, tier_s = read_throughput([primary, *replicas], sources)

        # --- lag under churn ------------------------------------------
        tail = replicas[0]
        lags = []
        t0 = time.perf_counter()
        for round_no in range(batches):
            primary.update("soc", make_delta(rng, g, round_no))
            lags.append(tail.lag_bytes("soc"))
            tail.sync("soc")
        churn_s = time.perf_counter() - t0
        assert tail.applied_seq("soc") == batches

        # Catch-up: the second replica never synced during the churn.
        cold = replicas[1]
        backlog_bytes = cold.lag_bytes("soc")
        t0 = time.perf_counter()
        applied = cold.sync("soc")
        catchup_s = time.perf_counter() - t0
        assert (cold.play("sssp", sources[0], graph="soc").answer
                == primary.play("sssp", sources[0], graph="soc").answer)

        for replica in replicas:
            replica.close()
        primary.close()

    result = {
        "bench": "replication",
        "quick": args.quick,
        "python": platform.python_version(),
        "graph": {"nodes": n, "edges": m, "directed": False},
        "backend": args.backend,
        "read_throughput": {
            "queries": num_queries,
            "threads_per_node": THREADS_PER_NODE,
            "primary_only_qps": round(solo_qps, 1),
            "primary_plus_2_replicas_qps": round(tier_qps, 1),
            "scaleout": round(tier_qps / solo_qps, 2),
        },
        "lag_under_churn": {
            "batches": batches,
            "batch_size": BATCH,
            "churn_s": round(churn_s, 3),
            "per_batch_lag_bytes_max": max(lags),
            "per_batch_lag_bytes_mean": round(statistics.mean(lags), 1),
            "catchup_backlog_bytes": backlog_bytes,
            "catchup_batches": applied,
            "catchup_s": round(catchup_s, 4),
            "catchup_batches_per_s": round(applied / catchup_s, 1),
        },
    }
    text = json.dumps(result, indent=2)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_replication.json").write_text(text + "\n",
                                                       encoding="utf-8")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
