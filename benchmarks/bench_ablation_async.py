"""Ablation: synchronous (BSP) vs. asynchronous GRAPE.

The paper announces an asynchronous GRAPE as future work (Section 8); we
built it (repro.core.async_engine).  This bench compares the two modes on
a skewed workload — one oversized fragment — where asynchrony should
help: under BSP every superstep waits for the straggler, while the async
scheduler lets small fragments proceed.
"""

import pytest

from _common import record
from repro.core.async_engine import AsyncGrapeEngine
from repro.core.engine import GrapeEngine
from repro.partition.base import build_edge_cut_fragments
from repro.pie_programs import SSSPProgram
from repro.workloads import traffic_like


def skewed_fragmentation(graph, num_fragments):
    """Deliberately unbalanced: fragment 0 owns half the graph."""
    nodes = sorted(graph.nodes())
    half = len(nodes) // 2
    assignment = {}
    for i, v in enumerate(nodes):
        if i < half:
            assignment[v] = 0
        else:
            assignment[v] = 1 + (i - half) % (num_fragments - 1)
    return build_edge_cut_fragments(graph, assignment, num_fragments,
                                    strategy_name="skewed")


def run_comparison():
    graph = traffic_like(scale=0.3)
    fragmentation = skewed_fragmentation(graph, 8)
    source = 0

    sync = GrapeEngine(8).run(SSSPProgram(), source,
                              fragmentation=fragmentation)
    async_run = AsyncGrapeEngine(8).run(SSSPProgram(), source,
                                        fragmentation=fragmentation)
    assert sync.answer == pytest.approx(async_run.answer)
    return graph, sync, async_run


def test_ablation_async_vs_sync(benchmark):
    graph, sync, async_run = benchmark.pedantic(run_comparison, rounds=1,
                                                iterations=1)
    # Same answers; async does no more total compute than sync re-runs.
    assert async_run.metrics.total_compute_s <= \
        sync.metrics.total_compute_s * 2.0

    text = "\n".join([
        f"Async vs sync GRAPE, SSSP on skewed partition "
        f"({graph.num_nodes} nodes, fragment 0 owns half)",
        f"sync:  {sync.supersteps} supersteps, "
        f"time={sync.metrics.parallel_time_s:.4f}s, "
        f"compute={sync.metrics.total_compute_s:.4f}s",
        f"async: {async_run.activations} activations, "
        f"time={async_run.metrics.parallel_time_s:.4f}s, "
        f"compute={async_run.metrics.total_compute_s:.4f}s",
    ])
    record("ablation_async", text)


if __name__ == "__main__":
    _g, sync, async_run = run_comparison()
    print("sync:", sync.metrics)
    print("async:", async_run.metrics)
