"""Fig. 7(b): sequential optimizations survive GRAPE parallelization.

Paper Exp-3: an index-optimized sequential Sim algorithm ([19], here the
neighborhood-index candidate filter) is ~2.7x faster sequentially; the
same optimization plugged into GRAPE should preserve a similar speedup —
the parallelization does not "dampen out" sequential optimizations.

We report the sequential speedup and the GRAPE speedup per worker count;
the assertion is that the GRAPE speedup stays within a factor of the
sequential one (shape: the two curves in Fig. 7(b) track each other).
"""

import time

import pytest

from _common import (NUM_PATTERN_QUERIES, SIM_PATTERN, SOCIAL_SCALE,
                     WORKER_SWEEP, record)
from repro.bench import run_queries
from repro.optim.indexing import IndexedSimCandidates, NeighborhoodIndex
from repro.sequential.simulation import maximum_simulation
from repro.workloads import generate_patterns, social_like


def sequential_speedup(graph, patterns):
    """T(plain) / T(indexed) for the sequential algorithm."""
    start = time.perf_counter()
    for pattern in patterns:
        maximum_simulation(pattern, graph)
    plain = time.perf_counter() - start

    index = NeighborhoodIndex(graph)  # built offline
    start = time.perf_counter()
    for pattern in patterns:
        maximum_simulation(pattern, graph,
                           candidates=index.candidates(pattern))
    indexed = time.perf_counter() - start
    return plain / indexed if indexed > 0 else 1.0


def grape_speedups(graph, patterns, worker_counts):
    from repro.core.engine import GrapeEngine
    from repro.partition.strategies import MetisLikePartition
    from repro.pie_programs import SimProgram

    from repro.runtime.metrics import CostModel

    out = {}
    for n in worker_counts:
        # Zero latency/bandwidth cost: on the paper's full-size graphs
        # compute dominates; at laptop scale fixed sync latency would
        # drown the algorithmic effect Fig. 7(b) measures.
        engine = GrapeEngine(n, partition=MetisLikePartition(),
                             cost_model=CostModel(sync_latency_s=0.0,
                                                  seconds_per_byte=0.0))
        fragmentation = engine.make_fragmentation(graph)

        # Indexes are built offline, once per fragment (the paper's
        # "computed offline and directly used").
        index = IndexedSimCandidates()
        for frag in fragmentation:
            index(patterns[0], frag.graph)

        # Min-of-3 repetitions: sub-millisecond timings are noisy.
        plain_t = float("inf")
        indexed_t = float("inf")
        for _repeat in range(3):
            plain_total = 0.0
            indexed_total = 0.0
            for pattern in patterns:
                plain = engine.run(SimProgram(), pattern,
                                   fragmentation=fragmentation)
                indexed = engine.run(SimProgram(candidate_index=index),
                                     pattern,
                                     fragmentation=fragmentation)
                assert plain.answer == indexed.answer, \
                    "index changed answer"
                plain_total += plain.metrics.parallel_time_s
                indexed_total += indexed.metrics.parallel_time_s
            plain_t = min(plain_t, plain_total)
            indexed_t = min(indexed_t, indexed_total)
        out[n] = plain_t / max(indexed_t, 1e-12)
    return out


# Larger graph than the other benches: the optimization acts on per-
# fragment refinement cost, so fragments must stay non-trivial.
FIG7B_SCALE = 0.5
FIG7B_WORKERS = [4, 8]


def run_fig7b():
    graph = social_like(scale=FIG7B_SCALE)
    patterns = generate_patterns(graph, NUM_PATTERN_QUERIES,
                                 SIM_PATTERN[0], SIM_PATTERN[1], seed=9)
    return sequential_speedup(graph, patterns), \
        grape_speedups(graph, patterns, FIG7B_WORKERS)


def test_fig7b_optimization_preserved(benchmark):
    seq, par = benchmark.pedantic(run_fig7b, rounds=1, iterations=1)
    assert seq > 1.0, "index should speed up the sequential algorithm"
    # The parallelized speedup is preserved: on average it stays a real
    # speedup (engine overhead on laptop-scale fragments plus timing
    # noise accounts for the per-n slack).
    assert sum(par.values()) / len(par) > 1.0
    assert all(speedup > 0.85 for speedup in par.values())

    lines = [f"Fig 7(b) optimization speedup (Sim, neighborhood index)",
             f"sequential speedup: {seq:.2f}x"]
    for n, speedup in sorted(par.items()):
        lines.append(f"GRAPE speedup at n={n}: {speedup:.2f}x")
    record("fig7b_optimization", "\n".join(lines))


if __name__ == "__main__":
    seq, par = run_fig7b()
    print(f"sequential: {seq:.2f}x, parallel: {par}")
