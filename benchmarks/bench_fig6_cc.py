"""Fig. 6(d-f): connected components time vs. workers.

Paper shape: GRAPE and Blogel far ahead of Giraph/GraphLab; Blogel is even
faster than GRAPE because its partitioner precomputed components at load
time (excluded from query cost, as in the paper).
"""

import pytest

from _common import (KNOWLEDGE_SCALE, SOCIAL_SCALE, TRAFFIC_SCALE,
                     WORKER_SWEEP, record)
from repro.bench import format_series, speedup_summary, sweep_workers
from repro.workloads import knowledge_like, social_like, traffic_like

SYSTEMS = ["grape", "giraph", "graphlab", "blogel"]


def run_dataset(graph):
    return sweep_workers(SYSTEMS, "cc", graph, [None], WORKER_SWEEP)


@pytest.mark.parametrize("name,factory,scale", [
    ("traffic", traffic_like, TRAFFIC_SCALE),
    ("livejournal", social_like, SOCIAL_SCALE),
    ("dbpedia", knowledge_like, KNOWLEDGE_SCALE),
])
def test_fig6_cc(benchmark, name, factory, scale):
    graph = factory(scale=scale)
    rows = benchmark.pedantic(run_dataset, args=(graph,),
                              rounds=1, iterations=1)
    by_key = {(r.system, r.num_workers): r for r in rows}
    for n in WORKER_SWEEP:
        # GRAPE beats the vertex-centric systems...
        assert by_key[("grape", n)].avg_time_s <= \
            by_key[("giraph", n)].avg_time_s
        # ...and Blogel's precomputed partition makes it at least
        # competitive with GRAPE (the paper's "near-optimal" case).
        assert by_key[("blogel", n)].avg_supersteps <= \
            by_key[("grape", n)].avg_supersteps

    text = "\n".join([
        f"Fig 6 CC on {name} ({graph.num_nodes} nodes, "
        f"{graph.num_edges} edges)",
        format_series(rows, "time"),
        "",
        speedup_summary(rows),
    ])
    record(f"fig6_cc_{name}", text)


if __name__ == "__main__":
    graph = social_like(scale=SOCIAL_SCALE)
    print(format_series(run_dataset(graph), "time", "Fig 6 CC livejournal"))
