"""Ablation: dynamic message grouping (paper Section 6).

GRAPE batches all border-node updates to one destination behind a single
"dummy node" envelope.  This bench replays the messages of a GRAPE SSSP
run and compares batched vs. per-update wire size — the savings the paper
attributes to dynamic grouping.
"""

import pytest

from _common import TRAFFIC_SCALE, record
from repro.core.engine import GrapeEngine
from repro.optim.grouping import grouping_savings
from repro.pie_programs import SSSPProgram
from repro.workloads import sample_sources, traffic_like


def run_ablation():
    graph = traffic_like(scale=TRAFFIC_SCALE)
    source = sample_sources(graph, 1, seed=5)[0]
    engine = GrapeEngine(8)

    captured = []
    original = GrapeEngine._compose_messages

    def capture(program, fragmentation, reported, dirty, global_table):
        messages = original(program, fragmentation, reported, dirty,
                            global_table)
        captured.extend(messages.values())
        return messages

    GrapeEngine._compose_messages = staticmethod(capture)
    try:
        engine.run(SSSPProgram(), query=source, graph=graph)
    finally:
        # Re-wrap: assigning the bare function would turn the class
        # attribute back into an instance method.
        GrapeEngine._compose_messages = staticmethod(original)
    return grouping_savings(captured), len(captured)


def test_ablation_message_grouping(benchmark):
    summary, num_messages = benchmark.pedantic(run_ablation, rounds=1,
                                               iterations=1)
    assert num_messages > 0
    assert summary["grouped_bytes"] <= summary["ungrouped_bytes"]
    assert summary["savings_fraction"] >= 0.0

    text = "\n".join([
        "Dynamic grouping ablation (GRAPE SSSP messages)",
        f"messages captured:  {num_messages}",
        f"grouped bytes:      {summary['grouped_bytes']:.0f}",
        f"ungrouped bytes:    {summary['ungrouped_bytes']:.0f}",
        f"savings:            {100 * summary['savings_fraction']:.1f}%",
    ])
    record("ablation_grouping", text)


if __name__ == "__main__":
    print(run_ablation())
