"""Durability bench: cold rebuild vs warm-start from snapshot + WAL.

Measures the amortization the store buys at restart time.  Both paths
bring a :class:`~repro.service.GrapeService` from nothing to "serving
correct answers" for a graph that has absorbed a stream of update
batches:

* **cold rebuild** — parse the edge-list file, re-apply every update
  batch, run a CC query (which triggers partitioning);
* **warm start** — construct ``GrapeService(store_dir=...)`` over a
  store previously populated with the same graph + batches (snapshot +
  delta WAL), run the same query.

Answers are asserted identical between the two services, warm start is
asserted to parse zero edge lists, and the machine-readable result lands
in ``benchmarks/results/BENCH_store.json``.  ``--quick`` shrinks the
graph to a CI wiring check; ``--assert-speedup`` additionally fails the
run unless warm start beats cold rebuild.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import tempfile
import time
from pathlib import Path

from _common import RESULTS_DIR
from repro.graph.delta import GraphDelta
from repro.graph.generators import uniform_random_graph
from repro.graph.io import write_edge_list
from repro.service import GrapeService

FULL_SHAPE = (20000, 60000)   # nodes, edges
QUICK_SHAPE = (1500, 4500)
FULL_BATCHES = 40
QUICK_BATCHES = 6
BATCH = 16


def make_delta(rng, g, round_no):
    """A mixed batch: insertions (some attaching new nodes), deletions
    and reweights against live edges."""
    edges = list(g.edges())
    nodes = list(g.nodes())
    delta = GraphDelta()
    for k in range(BATCH):
        kind = rng.random()
        if kind < 0.4:
            u, v = rng.sample(nodes, 2)
            delta.insert(u, v, rng.uniform(0.1, 1.0))
        elif kind < 0.55:
            delta.insert(10_000_000 + round_no * BATCH + k,
                         rng.choice(nodes), rng.uniform(0.1, 1.0))
        elif kind < 0.8:
            u, v, _w = edges[rng.randrange(len(edges))]
            delta.delete(u, v)
        else:
            u, v, w = edges[rng.randrange(len(edges))]
            delta.set_weight(u, v, w * rng.uniform(0.5, 3.0))
    return delta


def populate_store(store_dir, edge_file, batches, seed):
    """The 'previous lifetime', ending in a crash: a first service
    loads the graph, applies most batches and shuts down gracefully
    (close-time checkpoint folds WAL + canonical fragmentation into the
    snapshot); a second service applies the remaining batches and dies
    without flushing.  The store is left with a fragmentation-bearing
    snapshot plus a WAL tail — warm start must use every recovery
    mechanism at once.  Returns the batches (for the cold path)."""
    rng = random.Random(seed)
    tail = max(1, batches // 4)
    deltas = []
    service = GrapeService(store_dir=store_dir)
    service.load_graph_file("social", edge_file)
    for round_no in range(batches - tail):
        delta = make_delta(rng, service.graph("social"), round_no)
        deltas.append(delta)
        service.update("social", delta)
    service.play("cc", graph="social")  # builds the canonical partition
    service.close()  # graceful: checkpoint incl. fragmentation
    first = service.stats

    service = GrapeService(store_dir=store_dir)
    for round_no in range(batches - tail, batches):
        delta = make_delta(rng, service.graph("social"), round_no)
        deltas.append(delta)
        service.update("social", delta)
    stats = service.stats
    populate = {"wal_appends": first.wal_appends + stats.wal_appends,
                "snapshots_written": (first.snapshots_written
                                      + stats.snapshots_written),
                "wal_tail_batches": tail}
    service.close(flush=False)  # crash
    return deltas, populate


def cold_rebuild(edge_file, deltas):
    """Parse + re-apply + first query: the no-store restart."""
    t0 = time.perf_counter()
    service = GrapeService()
    service.load_graph_file("social", edge_file)
    for delta in deltas:
        service.update("social", delta)
    answer = service.play("cc", graph="social").answer
    elapsed = time.perf_counter() - t0
    ready_stats = service.stats
    service.close()
    return elapsed, answer, ready_stats


def warm_start(store_dir):
    """Construct over the store + first query: the durable restart."""
    t0 = time.perf_counter()
    service = GrapeService(store_dir=store_dir)
    answer = service.play("cc", graph="social").answer
    elapsed = time.perf_counter() - t0
    stats = service.stats
    service.close()
    return elapsed, answer, stats


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small graph, few batches (CI wiring check)")
    parser.add_argument("--assert-speedup", action="store_true",
                        help="fail unless warm start beats cold rebuild")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    n, m = QUICK_SHAPE if args.quick else FULL_SHAPE
    batches = QUICK_BATCHES if args.quick else FULL_BATCHES
    g = uniform_random_graph(n, m, directed=False, seed=args.seed)

    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        tmp = Path(tmp)
        edge_file = tmp / "social.edges"
        write_edge_list(g, edge_file)
        store_dir = tmp / "store"

        deltas, populate = populate_store(store_dir, edge_file, batches,
                                          args.seed)
        cold_s, cold_answer, _ = cold_rebuild(edge_file, deltas)
        warm_s, warm_answer, warm_stats = warm_start(store_dir)
        store_bytes = sum(p.stat().st_size
                          for p in store_dir.rglob("*") if p.is_file())

    assert warm_answer == cold_answer, \
        "warm-start answers diverged from cold rebuild"
    assert warm_stats.edge_lists_parsed == 0, \
        "warm start re-parsed an edge list"
    assert warm_stats.warm_starts == 1

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    result = {
        "bench": "store-warm-start",
        "quick": args.quick,
        "python": platform.python_version(),
        "graph": {"nodes": n, "edges": m, "directed": False},
        "update_batches": batches,
        "batch_size": BATCH,
        "populate": populate,
        "cold_rebuild_s": round(cold_s, 4),
        "warm_start_s": round(warm_s, 4),
        "speedup": round(speedup, 2),
        "store_bytes": store_bytes,
        "warm": {
            "edge_lists_parsed": warm_stats.edge_lists_parsed,
            "warm_starts": warm_stats.warm_starts,
            "wal_replayed": warm_stats.wal_replayed,
        },
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    name = "BENCH_store_quick.json" if args.quick else "BENCH_store.json"
    out = RESULTS_DIR / name
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")

    print(f"store warm-start ({n} nodes / {m} edges, "
          f"{batches} update batches)")
    print(f"  cold rebuild (parse + re-apply + query): {cold_s:8.3f} s")
    print(f"  warm start   (snapshot + WAL + query):   {warm_s:8.3f} s")
    print(f"  speedup: {speedup:.2f}x   store size: {store_bytes} bytes   "
          f"wal replayed: {warm_stats.wal_replayed}")
    print(f"  answers identical, zero edge lists parsed on warm start")
    print(f"  wrote {out}")
    if args.assert_speedup and speedup < 1.0:
        print("FAIL: warm start slower than cold rebuild")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
