"""Telemetry bench: overhead of the observability plane when armed.

A fixed batch of SSSP queries served by a plain service vs the same
service with the full telemetry plane on (per-query trace spans, the
slow-query log threshold, and the structured event stream that the
spans and lifecycle hooks feed).  Tracing is opt-in and the engine
guards every touch with ``if trace is not None``, so the difference is
the real cost: span allocation, the extra span-id string per shipped
step command, and the ``(name, duration, tags)`` tuples workers return.

The acceptance target is **< 5%** overhead (asserted with
``--assert-overhead``; timing noise makes an unconditional CI assert
flaky).  The machine-readable result lands in
``benchmarks/results/BENCH_obs.json``; ``--quick`` shrinks the graph
and counts to a CI wiring check.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time

from _common import RESULTS_DIR
from repro.graph.generators import uniform_random_graph
from repro.obs import events
from repro.service import GrapeService

FULL_SHAPE = (3000, 10_000)   # nodes, edges
QUICK_SHAPE = (600, 2000)
FULL_QUERIES = 12
QUICK_QUERIES = 4
# ABBA measurement cycles (plain, traced, traced, plain); the median of
# per-cycle ratios cancels linear drift and resists contention spikes.
CYCLES = 4


def batch_seconds(service, sources):
    t0 = time.perf_counter()
    for src in sources:
        service.play("sssp", src, graph="soc")
    return time.perf_counter() - t0


def serve_overhead(g, sources, backend, cycles):
    """Overhead of the armed telemetry plane, plain vs instrumented.

    One service, one worker pool: tracing is toggled per batch, so
    pool identity, CPU placement and page-cache warmth are held
    constant and the only difference between the two series is the
    telemetry plane itself.  Batches run in ABBA cycles
    (plain, traced, traced, plain) and the reported overhead is the
    **median of per-cycle ratios** — linear drift cancels within a
    cycle, and a contention spike can corrupt at most one cycle.
    """
    svc = GrapeService(backend=backend, grouping=False,
                       tracing=True, slow_query_s=0.0)
    svc.load_graph("soc", g)
    slow_log = svc.slow_queries

    def arm(traced):
        svc.tracing = traced
        svc.slow_queries = slow_log if traced else None

    arm(False)
    svc.play("sssp", sources[0], graph="soc")  # partition + pool warm
    ratios = []
    plain_s = traced_s = 0.0
    for _ in range(cycles):
        arm(False)
        p1 = batch_seconds(svc, sources)
        arm(True)
        t1 = batch_seconds(svc, sources)
        t2 = batch_seconds(svc, sources)
        arm(False)
        p2 = batch_seconds(svc, sources)
        plain_s += p1 + p2
        traced_s += t1 + t2
        ratios.append((t1 + t2) / (p1 + p2))
    svc.close()
    ratios.sort()
    mid = len(ratios) // 2
    median = (ratios[mid] if len(ratios) % 2
              else (ratios[mid - 1] + ratios[mid]) / 2.0)
    return {"plain": plain_s / (2 * cycles),
            "traced": traced_s / (2 * cycles),
            "cycle_ratios": [round(r, 4) for r in ratios],
            "median_ratio": median}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small graph, few queries (CI wiring check)")
    parser.add_argument("--backend", default="process",
                        choices=["serial", "thread", "process"])
    parser.add_argument("--assert-overhead", action="store_true",
                        help="fail unless traced overhead < 5%%")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    n, m = QUICK_SHAPE if args.quick else FULL_SHAPE
    num_queries = QUICK_QUERIES if args.quick else FULL_QUERIES
    rng = random.Random(args.seed)
    g = uniform_random_graph(n, m, directed=False, seed=args.seed)
    sources = [rng.randrange(n) for _ in range(num_queries)]

    cycles = 2 if args.quick else CYCLES
    # Measure with a private event log so batch runs don't rotate the
    # process-wide ring while other benches read it.
    with events.use(events.EventLog()) as log:
        timings = serve_overhead(g, sources, args.backend, cycles)
        events_emitted = log.total
    overhead_pct = 100.0 * (timings["median_ratio"] - 1.0)

    result = {
        "bench": "obs",
        "quick": args.quick,
        "python": platform.python_version(),
        "graph": {"nodes": n, "edges": m, "directed": False},
        "backend": args.backend,
        "tracing_overhead": {
            "queries": num_queries,
            "cycles": cycles,
            "plain_batch_s": round(timings["plain"], 4),
            "traced_batch_s": round(timings["traced"], 4),
            "cycle_ratios": timings["cycle_ratios"],
            "overhead_pct": round(overhead_pct, 2),
            "target_pct": 5.0,
            "events_emitted": events_emitted,
        },
    }
    text = json.dumps(result, indent=2)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_obs.json").write_text(text + "\n",
                                                encoding="utf-8")
    if args.assert_overhead and overhead_pct >= 5.0:
        raise SystemExit(
            f"tracing overhead {overhead_pct:.2f}% >= 5% target")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
