"""Fig. 6(i-j): subgraph isomorphism time vs. workers.

Paper: patterns |Q| = (6, 10); GRAPE ~1.5-2x faster than all baselines,
finishing in 2 supersteps while the others flood partial-match messages.
"""

import pytest

from _common import (KNOWLEDGE_SCALE, NUM_PATTERN_QUERIES, SOCIAL_SCALE,
                     SUBISO_PATTERN, WORKER_SWEEP, record)
from repro.bench import format_series, speedup_summary, sweep_workers
from repro.workloads import generate_patterns, knowledge_like, social_like

SYSTEMS = ["grape", "giraph", "graphlab", "blogel"]


def run_dataset(graph):
    patterns = generate_patterns(graph, NUM_PATTERN_QUERIES,
                                 SUBISO_PATTERN[0], SUBISO_PATTERN[1],
                                 seed=5)
    return sweep_workers(SYSTEMS, "subiso", graph, patterns, WORKER_SWEEP)


@pytest.mark.parametrize("name,factory,scale", [
    ("livejournal", social_like, SOCIAL_SCALE),
    ("dbpedia", knowledge_like, KNOWLEDGE_SCALE),
])
def test_fig6_subiso(benchmark, name, factory, scale):
    graph = factory(scale=scale)
    rows = benchmark.pedantic(run_dataset, args=(graph,),
                              rounds=1, iterations=1)
    by_key = {(r.system, r.num_workers): r for r in rows}
    for n in WORKER_SWEEP:
        # GRAPE needs far fewer supersteps (paper: 2 vs 4-6).
        assert by_key[("grape", n)].avg_supersteps < \
            by_key[("giraph", n)].avg_supersteps

    text = "\n".join([
        f"Fig 6 SubIso on {name} ({graph.num_nodes} nodes, "
        f"{graph.num_edges} edges), pattern |Q|={SUBISO_PATTERN}",
        format_series(rows, "time"),
        "",
        speedup_summary(rows),
    ])
    record(f"fig6_subiso_{name}", text)


if __name__ == "__main__":
    graph = knowledge_like(scale=KNOWLEDGE_SCALE)
    print(format_series(run_dataset(graph), "time", "Fig 6 SubIso"))
