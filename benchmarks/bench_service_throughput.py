"""Serving throughput: the facade's partition-once amortization.

Not a paper figure — this measures the ROADMAP's serving scenario: many
users posing mixed query classes against one resident graph.  The
``GrapeService`` partitions the graph once and serves every query from
the cached fragmentation; the per-call baseline re-partitions for each
query, which is what a naive "engine per request" deployment would do.
Paper §3.1: "G is partitioned once for all queries Q posed on G".
"""

import time

import pytest

from _common import TRAFFIC_SCALE, record
from repro import EngineConfig, GrapeEngine, GrapeService
from repro.pie_programs import BFSProgram, CCProgram, SSSPProgram
from repro.workloads import traffic_like

NUM_USERS = 12  # interleaved sssp/bfs/cc requests


def mixed_requests(num_users):
    classes = [("sssp", lambda i: i), ("bfs", lambda i: 3 * i),
               ("cc", lambda i: None)]
    return [(classes[i % 3][0], classes[i % 3][1](i), "city")
            for i in range(num_users)]


def run_service(graph, requests):
    service = GrapeService(engine=EngineConfig(num_workers=4),
                           concurrency=4)
    service.load_graph("city", graph)
    start = time.perf_counter()
    tickets = service.submit_many(requests)
    for ticket in tickets:
        ticket.result(timeout=600)
    elapsed = time.perf_counter() - start
    stats = service.stats
    service.close()
    return elapsed, stats, [t.answer for t in tickets]


def run_per_call_engines(graph, requests):
    programs = {"sssp": SSSPProgram, "bfs": BFSProgram, "cc": CCProgram}
    start = time.perf_counter()
    answers = []
    for name, query, _g in requests:
        engine = GrapeEngine(4)  # fresh engine, fresh partition per call
        answers.append(engine.run(programs[name](), query,
                                  graph=graph).answer)
    return time.perf_counter() - start, answers


def test_service_amortizes_partitioning(benchmark):
    graph = traffic_like(scale=TRAFFIC_SCALE)
    requests = mixed_requests(NUM_USERS)

    def both():
        return run_service(graph, requests), \
            run_per_call_engines(graph, requests)

    (svc_t, stats, svc_answers), (raw_t, raw_answers) = benchmark.pedantic(
        both, rounds=1, iterations=1)

    assert svc_answers == raw_answers  # the facade changes cost, not Q(G)
    assert stats.cache_misses == 1
    assert stats.cache_hits == NUM_USERS - 1
    assert stats.queries_served == NUM_USERS

    lines = [f"Service throughput, {NUM_USERS} mixed queries on traffic "
             f"graph ({graph.num_nodes} nodes)",
             f"{'path':>16} {'wall(ms)':>10} {'partitions':>11}",
             f"{'service':>16} {1000 * svc_t:>10.1f} "
             f"{stats.cache_misses:>11}",
             f"{'engine-per-call':>16} {1000 * raw_t:>10.1f} "
             f"{NUM_USERS:>11}"]
    record("service_throughput", "\n".join(lines))


if __name__ == "__main__":
    graph = traffic_like(scale=TRAFFIC_SCALE)
    requests = mixed_requests(NUM_USERS)
    svc_t, stats, _ = run_service(graph, requests)
    raw_t, _ = run_per_call_engines(graph, requests)
    print(f"service:         {1000 * svc_t:8.1f} ms   ({stats})")
    print(f"engine-per-call: {1000 * raw_t:8.1f} ms   "
          f"({NUM_USERS} partitions)")
