"""Fig. 7(a): the impact of IncEval — GRAPE vs. GRAPE-NI for Sim.

GRAPE-NI replaces incremental evaluation with re-running PEval from
scratch each round (paper Exp-2).  Paper shape: GRAPE 2.1-3.4x faster,
with a larger gap at fewer workers (bigger fragments => costlier
recomputation).
"""

import pytest

from _common import NUM_PATTERN_QUERIES, SIM_PATTERN, WORKER_SWEEP, record
from repro.core.engine import GrapeEngine
from repro.partition.strategies import MetisLikePartition
from repro.pie_programs import SimProgram
from repro.runtime.metrics import CostModel
from repro.workloads import generate_patterns, social_like

# Bigger graph than the Fig 6 benches and zero sync latency: the quantity
# Fig 7(a) measures is the recomputation *work* IncEval avoids, which a
# fixed per-superstep latency would drown at laptop scale.
FIG7A_SCALE = 0.5


def run_comparison(graph, patterns):
    cost_model = CostModel(sync_latency_s=0.0, seconds_per_byte=0.0)
    rows = []
    for n in WORKER_SWEEP:
        for incremental in (True, False):
            engine = GrapeEngine(n, partition=MetisLikePartition(),
                                 cost_model=cost_model,
                                 incremental=incremental)
            fragmentation = engine.make_fragmentation(graph)
            name = "grape" if incremental else "grape-ni"
            # Min-of-3 repetitions: sub-millisecond measurements are noisy
            # under load, and the minimum is the robust estimator.
            best_total = float("inf")
            answers = []
            for repeat in range(3):
                total = 0.0
                answers = []
                for pattern in patterns:
                    run = engine.run(SimProgram(), pattern,
                                     fragmentation=fragmentation)
                    total += run.metrics.parallel_time_s
                    answers.append(run.answer)
                best_total = min(best_total, total)
            rows.append((name, n, best_total / len(patterns), answers))
    return rows


def test_fig7a_inceval_impact(benchmark):
    graph = social_like(scale=FIG7A_SCALE)
    patterns = generate_patterns(graph, NUM_PATTERN_QUERIES,
                                 SIM_PATTERN[0], SIM_PATTERN[1], seed=7)
    rows = benchmark.pedantic(run_comparison, args=(graph, patterns),
                              rounds=1, iterations=1)
    by_key = {(name, n): (t, answers) for name, n, t, answers in rows}
    ratios = {}
    for n in WORKER_SWEEP:
        grape_t, grape_answers = by_key[("grape", n)]
        ni_t, ni_answers = by_key[("grape-ni", n)]
        assert grape_answers == ni_answers  # ablation changes cost only
        ratios[n] = ni_t / max(grape_t, 1e-12)
    # The paper's effect: IncEval avoids redundant recomputation.  The
    # mean carries the claim; individual n's keep generous noise slack.
    assert sum(ratios.values()) / len(ratios) > 1.25
    assert all(r > 0.8 for r in ratios.values())

    lines = [f"Fig 7(a) GRAPE vs GRAPE-NI, Sim on social graph "
             f"({graph.num_nodes} nodes), compute-only cost model",
             f"{'n':>4} {'grape(ms)':>12} {'grape-ni(ms)':>13} "
             f"{'NI/grape':>9}"]
    for n in WORKER_SWEEP:
        lines.append(f"{n:>4} {1000 * by_key[('grape', n)][0]:>12.3f} "
                     f"{1000 * by_key[('grape-ni', n)][0]:>13.3f} "
                     f"{ratios[n]:>9.2f}")
    record("fig7a_incremental", "\n".join(lines))


if __name__ == "__main__":
    graph = social_like(scale=FIG7A_SCALE)
    patterns = generate_patterns(graph, NUM_PATTERN_QUERIES,
                                 SIM_PATTERN[0], SIM_PATTERN[1], seed=7)
    for row in run_comparison(graph, patterns):
        print(row[:3])
