"""Ablation: partition strategy quality vs. GRAPE query cost.

DESIGN.md calls out the partition menu (paper Section 6).  This bench
measures edge-cut quality per strategy and its downstream effect on GRAPE
SSSP communication — the better the cut, the fewer border updates cross
fragments.
"""

import pytest

from _common import TRAFFIC_SCALE, record
from repro.core.engine import GrapeEngine
from repro.partition.base import cut_edges
from repro.partition.strategies import (GridPartition, HashPartition,
                                        MetisLikePartition, RangePartition,
                                        StreamingPartition)
from repro.pie_programs import SSSPProgram
from repro.workloads import sample_sources, traffic_like

STRATEGIES = [HashPartition(), RangePartition(), GridPartition(),
              StreamingPartition(), MetisLikePartition()]
N_WORKERS = 8


def run_ablation():
    graph = traffic_like(scale=TRAFFIC_SCALE)
    sources = sample_sources(graph, 2, seed=3)
    results = []
    for strategy in STRATEGIES:
        engine = GrapeEngine(N_WORKERS, partition=strategy)
        fragmentation = engine.make_fragmentation(graph)
        cut = cut_edges(graph, {v: fragmentation.gp.owner(v)
                                for v in graph.nodes()})
        comm = 0.0
        time_s = 0.0
        for source in sources:
            run = engine.run(SSSPProgram(), query=source,
                             fragmentation=fragmentation)
            comm += run.metrics.comm_megabytes
            time_s += run.metrics.parallel_time_s
        results.append((strategy.name, cut, comm / len(sources),
                        time_s / len(sources)))
    return graph, results


def test_ablation_partition_strategies(benchmark):
    graph, results = benchmark.pedantic(run_ablation, rounds=1,
                                        iterations=1)
    by_name = {name: (cut, comm, t) for name, cut, comm, t in results}
    # The locality-aware strategies must cut fewer edges than hash...
    assert by_name["metis"][0] < by_name["hash"][0]
    assert by_name["streaming"][0] < by_name["hash"][0]
    # ...and fewer cut edges means less shipped data.
    assert by_name["metis"][1] < by_name["hash"][1]

    lines = [f"Partition ablation: GRAPE SSSP on traffic "
             f"({graph.num_nodes} nodes), n={N_WORKERS}",
             f"{'strategy':<12} {'cut edges':>10} {'comm(MB)':>10} "
             f"{'time(s)':>10}"]
    for name, cut, comm, t in results:
        lines.append(f"{name:<12} {cut:>10} {comm:>10.4f} {t:>10.4f}")
    record("ablation_partition", "\n".join(lines))


if __name__ == "__main__":
    _graph, results = run_ablation()
    for row in results:
        print(row)
