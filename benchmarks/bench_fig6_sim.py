"""Fig. 6(g-h): graph simulation time vs. workers on labeled graphs.

Paper: patterns |Q| = (8, 15) over liveJournal and DBpedia; GRAPE 2.5-3.2x
faster than Giraph/GraphLab and 1.3-1.7x faster than Blogel.
"""

import pytest

from _common import (KNOWLEDGE_SCALE, NUM_PATTERN_QUERIES, SIM_PATTERN,
                     SOCIAL_SCALE, WORKER_SWEEP, record)
from repro.bench import format_series, speedup_summary, sweep_workers
from repro.workloads import generate_patterns, knowledge_like, social_like

SYSTEMS = ["grape", "giraph", "graphlab", "blogel"]


def run_dataset(graph):
    patterns = generate_patterns(graph, NUM_PATTERN_QUERIES,
                                 SIM_PATTERN[0], SIM_PATTERN[1], seed=3)
    return sweep_workers(SYSTEMS, "sim", graph, patterns, WORKER_SWEEP)


@pytest.mark.parametrize("name,factory,scale", [
    ("livejournal", social_like, SOCIAL_SCALE),
    ("dbpedia", knowledge_like, KNOWLEDGE_SCALE),
])
def test_fig6_sim(benchmark, name, factory, scale):
    graph = factory(scale=scale)
    rows = benchmark.pedantic(run_dataset, args=(graph,),
                              rounds=1, iterations=1)
    by_key = {(r.system, r.num_workers): r for r in rows}
    for n in WORKER_SWEEP:
        assert by_key[("grape", n)].avg_time_s <= \
            by_key[("giraph", n)].avg_time_s

    text = "\n".join([
        f"Fig 6 Sim on {name} ({graph.num_nodes} nodes, "
        f"{graph.num_edges} edges), pattern |Q|={SIM_PATTERN}",
        format_series(rows, "time"),
        "",
        speedup_summary(rows),
    ])
    record(f"fig6_sim_{name}", text)


if __name__ == "__main__":
    graph = social_like(scale=SOCIAL_SCALE)
    print(format_series(run_dataset(graph), "time", "Fig 6 Sim"))
