"""Fig. 8(a-l): communication volume for every Fig. 6 setting.

The paper's headline: GRAPE ships a few percent of the data shipped by
Giraph/GraphLab across all query classes, because it only exchanges
changed update-parameter values for border nodes, grouped per fragment.
"""

import pytest

from _common import (KNOWLEDGE_SCALE, NUM_PATTERN_QUERIES,
                     NUM_SSSP_QUERIES, RATINGS_SCALE, SIM_PATTERN,
                     SOCIAL_SCALE, TRAFFIC_SCALE, WORKER_SWEEP, record)
from repro.bench import format_series, sweep_workers
from repro.pie_programs import CFQuery
from repro.workloads import (generate_patterns, knowledge_like,
                             ratings_like, sample_sources, social_like,
                             traffic_like)

SYSTEMS = ["grape", "giraph", "graphlab", "blogel"]
# n kept at the paper's lower range: at n=24 our laptop-scale graphs leave
# ~20-node fragments, the degenerate regime where GRAPE collapses into
# vertex-centric behaviour (the paper's "Pregel is a special case of GRAPE
# when each fragment is a single vertex").  EXPERIMENTS.md discusses this.
NS = [4, 8]


def cases():
    traffic = traffic_like(scale=TRAFFIC_SCALE)
    social = social_like(scale=SOCIAL_SCALE)
    knowledge = knowledge_like(scale=KNOWLEDGE_SCALE)
    ratings, _uf, _itf = ratings_like(scale=RATINGS_SCALE)
    cf_query = CFQuery(num_factors=6, max_epochs=4, learning_rate=0.05,
                       seed=1)
    return [
        ("sssp_traffic", "sssp", traffic,
         sample_sources(traffic, NUM_SSSP_QUERIES, seed=1)),
        ("sssp_livejournal", "sssp", social,
         sample_sources(social, NUM_SSSP_QUERIES, seed=1)),
        ("cc_livejournal", "cc", social, [None]),
        ("sim_livejournal", "sim", social,
         generate_patterns(social, NUM_PATTERN_QUERIES, SIM_PATTERN[0],
                           SIM_PATTERN[1], seed=3)),
        ("sim_dbpedia", "sim", knowledge,
         generate_patterns(knowledge, NUM_PATTERN_QUERIES, SIM_PATTERN[0],
                           SIM_PATTERN[1], seed=3)),
        ("cf_movielens", "cf", ratings, [cf_query]),
    ]


@pytest.mark.parametrize("case_index", range(6))
def test_fig8_communication(benchmark, case_index):
    name, qclass, graph, queries = cases()[case_index]
    rows = benchmark.pedantic(
        lambda: sweep_workers(SYSTEMS, qclass, graph, queries, NS),
        rounds=1, iterations=1)
    by_key = {(r.system, r.num_workers): r for r in rows}
    for n in NS:
        grape = by_key[("grape", n)].avg_comm_mb
        giraph = by_key[("giraph", n)].avg_comm_mb
        if giraph > 0:
            assert grape < giraph, \
                f"{name}: GRAPE should ship less than Giraph at n={n}"

    text = "\n".join([
        f"Fig 8 communication, {name}",
        format_series(rows, "comm"),
    ])
    record(f"fig8_{name}", text)


if __name__ == "__main__":
    for name, qclass, graph, queries in cases():
        rows = sweep_workers(SYSTEMS, qclass, graph, queries, NS)
        print(format_series(rows, "comm", f"Fig 8 {name}"))
