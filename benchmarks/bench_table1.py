"""Table 1: SSSP on the road network, 24 processors, four systems.

Paper's Table 1 reports (time, communication) for Giraph, GraphLab, Blogel
and GRAPE on the US road network with 24 processors; GRAPE wins both by
orders of magnitude over the vertex-centric systems.  The shape to
reproduce: giraph ≈ graphlab >> blogel > grape in time, and GRAPE ships a
tiny fraction of everyone's bytes.
"""

import pytest

from _common import NUM_SSSP_QUERIES, TRAFFIC_SCALE, record
from repro.bench import (format_results_table, run_queries,
                         speedup_summary)
from repro.workloads import sample_sources, traffic_like


def run_table1():
    graph = traffic_like(scale=TRAFFIC_SCALE)
    sources = sample_sources(graph, NUM_SSSP_QUERIES, seed=1)
    rows = [run_queries(system, "sssp", graph, sources, 24)
            for system in ("giraph", "graphlab", "blogel", "grape")]
    return graph, rows


def test_table1_sssp_24_workers(benchmark):
    graph, rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    by_system = {r.system: r for r in rows}

    # Paper shape: GRAPE beats the vertex-centric systems by a large
    # factor on a high-diameter graph, and by a modest one over Blogel.
    assert by_system["grape"].avg_time_s < by_system["giraph"].avg_time_s
    assert by_system["grape"].avg_time_s < by_system["graphlab"].avg_time_s
    assert by_system["grape"].avg_time_s <= by_system["blogel"].avg_time_s \
        * 1.5
    # Communication: GRAPE ships a small fraction of the vertex systems'.
    assert by_system["grape"].avg_comm_mb < \
        0.5 * by_system["giraph"].avg_comm_mb

    text = "\n".join([
        f"Table 1: SSSP on traffic-like road network "
        f"({graph.num_nodes} nodes, {graph.num_edges} edges), n=24",
        format_results_table(rows),
        "",
        speedup_summary(rows),
    ])
    record("table1", text)


if __name__ == "__main__":
    _graph, rows = run_table1()
    print(format_results_table(rows, title="Table 1"))
    print(speedup_summary(rows))
