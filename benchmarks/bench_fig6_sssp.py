"""Fig. 6(a-c): SSSP response time vs. number of workers.

Three datasets (traffic / liveJournal / DBpedia stand-ins), four systems,
n swept over the worker counts.  Paper shape: GRAPE fastest everywhere;
the gap over vertex-centric systems is largest on the high-diameter
traffic graph (Fig. 6(a)) and modest on small-diameter social graphs.
"""

import pytest

from _common import (NUM_SSSP_QUERIES, SOCIAL_SCALE, TRAFFIC_SCALE,
                     KNOWLEDGE_SCALE, WORKER_SWEEP, record)
from repro.bench import format_series, speedup_summary, sweep_workers
from repro.workloads import (knowledge_like, sample_sources, social_like,
                             traffic_like)

SYSTEMS = ["grape", "giraph", "graphlab", "blogel"]


def run_dataset(graph, seed):
    sources = sample_sources(graph, NUM_SSSP_QUERIES, seed=seed)
    return sweep_workers(SYSTEMS, "sssp", graph, sources, WORKER_SWEEP)


@pytest.mark.parametrize("name,factory,scale", [
    ("traffic", traffic_like, TRAFFIC_SCALE),
    ("livejournal", social_like, SOCIAL_SCALE),
    ("dbpedia", knowledge_like, KNOWLEDGE_SCALE),
])
def test_fig6_sssp(benchmark, name, factory, scale):
    graph = factory(scale=scale)
    rows = benchmark.pedantic(run_dataset, args=(graph, 1),
                              rounds=1, iterations=1)
    by_key = {(r.system, r.num_workers): r for r in rows}
    for n in WORKER_SWEEP:
        assert by_key[("grape", n)].avg_time_s <= \
            by_key[("giraph", n)].avg_time_s

    text = "\n".join([
        f"Fig 6 SSSP on {name} ({graph.num_nodes} nodes, "
        f"{graph.num_edges} edges)",
        format_series(rows, "time"),
        "",
        speedup_summary(rows),
    ])
    record(f"fig6_sssp_{name}", text)


if __name__ == "__main__":
    for name, factory, scale in [("traffic", traffic_like, TRAFFIC_SCALE)]:
        graph = factory(scale=scale)
        rows = run_dataset(graph, 1)
        print(format_series(rows, "time", f"Fig 6 SSSP {name}"))
