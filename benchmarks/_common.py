"""Shared configuration and result recording for the benchmark suite.

Every ``bench_*.py`` regenerates one of the paper's tables or figures at
laptop scale: same systems, same query classes, same sweeps — smaller
graphs (the ``SCALE`` constants; raise them for higher fidelity).  Each
bench prints the paper-style series and appends it to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote the numbers.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Worker sweep: the paper uses 4..24 in steps of 4; we keep the endpoints
# and midpoint to bound runtime.
WORKER_SWEEP = [4, 8, 16, 24]

# Dataset scales (fraction of the default stand-in size).
TRAFFIC_SCALE = 0.30     # ~1.1k nodes, large diameter
SOCIAL_SCALE = 0.12      # ~500 nodes, power-law
KNOWLEDGE_SCALE = 0.15   # ~450 nodes, label-rich
RATINGS_SCALE = 0.25     # ~100 users x 30 items

# Query batch sizes (paper: 10 SSSP sources, 20 patterns).
NUM_SSSP_QUERIES = 3
NUM_PATTERN_QUERIES = 3

# Pattern sizes: the paper's |Q| = (8, 15) for Sim and (6, 10) for SubIso,
# scaled to the smaller stand-in graphs.
SIM_PATTERN = (4, 6)
SUBISO_PATTERN = (4, 5)


def record(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
