"""Execution backends head-to-head: serial vs thread vs process.

Runs the GIL-bound dict-graph engine paths on the 50k-node/200k-edge
road-style bench graph (the regime where only real process parallelism
can help) across worker counts m ∈ {1, 2, 4, 8}, verifies every backend
produces identical answers, and emits a machine-readable
``benchmarks/results/BENCH_backends.json``.

Two workloads:

* ``pagerank-dict`` — 30 power iterations, pure-Python inner loop: the
  compute-bound serving shape where the process backend's parallelism
  shows (supersteps amortize the one-time fragment shipping);
* ``sssp-dict`` — one Dijkstra sweep plus a short fixpoint: latency-bound,
  where pipe overhead is visible (reported, not asserted on).

Each (backend, m) cell is measured on a *warm* pool: the first run ships
fragments to the workers (shipping happens once per fragmentation — the
serving steady state), the best of the next ``--repeat`` runs is
reported.  Pass ``--assert-speedup`` (the CI perf-smoke leg) to require
the process backend to beat serial by ≥ 2x at m=4 on pagerank-dict; the
assertion is skipped (exit 0, with a notice) on machines with fewer than
4 usable cores, where the premise is physically impossible.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from _common import RESULTS_DIR
from repro.core.engine import GrapeEngine
from repro.graph.generators import grid_road_graph
from repro.partition.base import PartitionStrategy
from repro.pie_programs import PageRankProgram, PageRankQuery, SSSPProgram
from repro.runtime import shm
from repro.runtime.executors import resolve_backend

BACKENDS = ("serial", "thread", "process")
WORKER_SWEEP = (1, 2, 4, 8)
FULL_SHAPE = (200, 250)    # 50k nodes, ~204k directed edges
QUICK_SHAPE = (40, 50)     # 2k nodes: CI wiring check, no perf claims
PAGERANK_ITERATIONS = 30


class BlockPartition(PartitionStrategy):
    """Contiguous numeric-id ranges: row blocks on the grid graph, so
    borders are one grid row per boundary (the low-cut regime where the
    BSP cost model says parallelism should pay)."""

    name = "block"

    def assign(self, graph, num_fragments):
        nodes = sorted(graph.nodes())
        per = max(1, -(-len(nodes) // num_fragments))
        return {v: min(i // per, num_fragments - 1)
                for i, v in enumerate(nodes)}


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def physical_cores() -> int:
    """Distinct physical cores behind the usable logical CPUs.

    SMT siblings share execution units, so '4 logical CPUs' on a
    2-core/4-thread host cannot deliver 4-worker scaling — the perf
    assertion's premise is *physical* workers.  Falls back to the
    logical count where the sysfs topology is unavailable.
    """
    try:
        cpus = os.sched_getaffinity(0)
    except AttributeError:  # pragma: no cover - non-Linux
        return usable_cores()
    seen = set()
    for cpu in cpus:
        base = f"/sys/devices/system/cpu/cpu{cpu}/topology"
        try:
            with open(f"{base}/physical_package_id") as fh:
                package = fh.read().strip()
            with open(f"{base}/core_id") as fh:
                core = fh.read().strip()
        except OSError:  # pragma: no cover - topology not exposed
            return usable_cores()
        seen.add((package, core))
    return len(seen) or 1


def workloads():
    return {
        "pagerank-dict": (
            lambda: PageRankProgram(use_csr=False),
            PageRankQuery(max_iterations=PAGERANK_ITERATIONS)),
        "sssp-dict": (lambda: SSSPProgram(use_csr=False), 0),
    }


def measure(backend_name, make_program, query, fragmentation, m, repeat):
    """Best-of-``repeat`` wall-clock on a warm pool; answers returned
    for cross-backend verification.  The warm-up run is the *cold
    lease* — the one that transfers fragments — so its shipping figures
    (``fragment_bytes_cold``/``shm_fallbacks_cold``) are what the
    ``--assert-zero-ship`` gate checks."""
    engine = GrapeEngine(m, partition=BlockPartition(),
                         backend=backend_name)
    cold = engine.run(make_program(), query,
                      fragmentation=fragmentation)  # warm the pool
    best = None
    answer = None
    pipe = 0
    frag_bytes_warm = 0
    for _ in range(repeat):
        start = time.perf_counter()
        result = engine.run(make_program(), query,
                            fragmentation=fragmentation)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            pipe = result.metrics.pipe_bytes
        frag_bytes_warm = max(frag_bytes_warm,
                              result.metrics.fragment_bytes_shipped)
        answer = result.answer
    shipping = {
        "fragment_bytes_cold": cold.metrics.fragment_bytes_shipped,
        "shm_fallbacks_cold": cold.metrics.shm_fallbacks,
        "fragment_bytes_warm": frag_bytes_warm,
    }
    return best, pipe, answer, shipping


def approx_equal(a, b, tol=1e-9):
    if set(a) != set(b):
        return False
    return all(abs(a[k] - b[k]) <= tol * max(1.0, abs(a[k])) for k in a)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small graph, m in {1,2}: CI wiring check")
    parser.add_argument("--repeat", type=int, default=2)
    parser.add_argument("--assert-speedup", action="store_true",
                        help="require process >= 2x serial at m=4 on "
                             "pagerank-dict (needs >= 4 cores)")
    parser.add_argument("--assert-zero-ship", action="store_true",
                        help="require the process backend to ship zero "
                             "fragment pickle bytes (shared-memory "
                             "descriptor path) with zero fallbacks")
    args = parser.parse_args(argv)

    rows, cols = QUICK_SHAPE if args.quick else FULL_SHAPE
    sweep = (1, 2) if args.quick else WORKER_SWEEP
    cores = usable_cores()
    physical = physical_cores()

    graph = grid_road_graph(rows, cols, seed=7)
    print(f"bench graph: {graph.num_nodes} nodes, {graph.num_edges} "
          f"directed edges; {cores} logical / {physical} physical cores")

    results = {
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges,
                  "generator": f"grid_road_graph({rows}, {cols}, seed=7)"},
        "cores": cores,
        "physical_cores": physical,
        "python": platform.python_version(),
        "pagerank_iterations": PAGERANK_ITERATIONS,
        "quick": args.quick,
        "shm": {"available": shm.shm_available(),
                "provider": getattr(shm.provider(), "kind", None)},
        "workloads": {},
    }

    failures = []
    for name, (make_program, query) in workloads().items():
        table = {}
        for m in sweep:
            frag = GrapeEngine(
                m, partition=BlockPartition()).make_fragmentation(graph)
            reference = None
            for backend in BACKENDS:
                wall, pipe, answer, shipping = measure(
                    backend, make_program, query, frag, m, args.repeat)
                table.setdefault(backend, {})[m] = {
                    "wall_s": round(wall, 4),
                    "pipe_bytes": pipe,
                    **shipping,
                }
                if reference is None:
                    reference = answer
                elif not approx_equal(reference, answer):
                    failures.append(f"{name} m={m}: {backend} answer "
                                    "diverged from serial")
                serial = table["serial"][m]["wall_s"]
                speedup = serial / wall if wall else float("inf")
                table[backend][m]["speedup_vs_serial"] = round(speedup, 3)
                print(f"  {name:14s} m={m} {backend:8s} "
                      f"{wall:8.3f}s  x{speedup:5.2f}  "
                      f"pipe={pipe / 1e6:8.2f}MB")
        results["workloads"][name] = table

    # tear the shared pool down so repeated bench invocations are cold
    resolve_backend("process").close()

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_backends.json"
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    print(f"wrote {out}")

    if failures:
        print("ANSWER MISMATCHES:", *failures, sep="\n  ")
        return 1

    if args.assert_zero_ship:
        # The zero-copy plane's acceptance bar: on a platform with
        # shared memory, the process backend's cold lease publishes
        # segments and ships descriptors — zero fragment pickle bytes,
        # zero fallbacks — and warm leases ship nothing at all.
        if not shm.shm_available():
            print("--assert-zero-ship skipped: no shared-memory "
                  "provider on this platform")
        else:
            bad = []
            for name, table in results["workloads"].items():
                for m, cell in table["process"].items():
                    if (cell["fragment_bytes_cold"] != 0
                            or cell["shm_fallbacks_cold"] != 0
                            or cell["fragment_bytes_warm"] != 0):
                        bad.append(
                            f"{name} m={m}: cold "
                            f"{cell['fragment_bytes_cold']}B/"
                            f"{cell['shm_fallbacks_cold']} fallbacks, "
                            f"warm {cell['fragment_bytes_warm']}B")
            if bad:
                print("ZERO-SHIP REGRESSION:", *bad, sep="\n  ")
                return 1
            print("zero-ship OK: process backend shipped 0 fragment "
                  "bytes with 0 fallbacks across the sweep")

    if args.assert_speedup:
        # The full x2.0 bar assumes 4 *physical* workers; SMT hosts with
        # 4 logical but fewer physical cores get a softer bar that still
        # proves real beyond-the-GIL parallelism.
        if args.quick:
            print("--assert-speedup ignored with --quick (graph too "
                  "small for perf claims)")
        elif cores < 4:
            print(f"--assert-speedup skipped: {cores} usable cores < 4 "
                  "(process parallelism physically unavailable)")
        else:
            required = 2.0 if physical >= 4 else 1.3
            cell = results["workloads"]["pagerank-dict"]["process"][4]
            speedup = cell["speedup_vs_serial"]
            if speedup < required:
                print(f"PERF REGRESSION: process backend speedup "
                      f"x{speedup:.2f} < x{required:.1f} at m=4 on "
                      f"pagerank-dict ({physical} physical cores)")
                return 1
            print(f"perf-smoke OK: process x{speedup:.2f} serial at m=4 "
                  f"(bar x{required:.1f}, {physical} physical cores)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
