"""Dict-graph sequential algorithms vs vectorized CSR kernels.

For each synthetic graph size, times the four fragment-local hot paths —
SSSP, BFS levels, connected components and one PageRank push sweep — on
the dict :class:`~repro.graph.graph.Graph` and on the CSR kernels of
:mod:`repro.kernels`, verifies the two paths agree exactly, and emits a
machine-readable ``benchmarks/results/BENCH_kernels.json``.

Any kernel/oracle mismatch exits non-zero, which is what the CI
perf-smoke job (``--quick``) asserts; the committed JSON comes from a
full run (``python benchmarks/bench_kernels.py``).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from collections import deque

import numpy as np

from _common import RESULTS_DIR
from repro.graph.csr import CSRGraph
from repro.graph.generators import uniform_random_graph
from repro.kernels import UNREACHED_HOPS, csr_bfs, csr_components, \
    csr_pagerank_push, csr_sssp
from repro.sequential.sssp import dijkstra
from repro.sequential.wcc import LocalComponents

FULL_SIZES = [(5_000, 20_000), (20_000, 80_000), (50_000, 200_000)]
QUICK_SIZES = [(2_000, 8_000)]
PAGERANK_ITERATIONS = 5
DAMPING = 0.85


def timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


# ---------------------------------------------------------------- SSSP
def bench_sssp(g, csr):
    truth, dict_s = timed(lambda: dijkstra(g, 0))
    (dist, _chg), csr_s = timed(
        lambda: csr_sssp(csr, {csr.id_of[0]: 0.0}))
    got = dict(zip(csr.node_of, dist.tolist()))
    return dict_s, csr_s, got == truth


# ----------------------------------------------------------------- BFS
def bench_bfs(g, csr):
    def dict_bfs():
        hops = {0: 0}
        dq = deque([(0, 0)])
        while dq:
            v, d = dq.popleft()
            for w in g.successors(v):
                if d + 1 < hops.get(w, UNREACHED_HOPS):
                    hops[w] = d + 1
                    dq.append((w, d + 1))
        return hops

    truth, dict_s = timed(dict_bfs)
    (hops, _chg), csr_s = timed(lambda: csr_bfs(csr, {csr.id_of[0]: 0}))
    got = {v: h for v, h in zip(csr.node_of, hops.tolist())
           if h < UNREACHED_HOPS}
    return dict_s, csr_s, got == truth


# ------------------------------------------------------------------ CC
def bench_cc(g, csr):
    comps, dict_s = timed(lambda: LocalComponents(g))

    def kernel_cc():
        comp = csr_components(csr)
        return {v: csr.node_of[r]
                for v, r in zip(csr.node_of, comp.tolist())}

    got, csr_s = timed(kernel_cc)
    # Representatives are the min *dense id*; both labelings must induce
    # the same partition, and LocalComponents' cid (min node) must name
    # the same groups since node ids here coincide with insertion order.
    return dict_s, csr_s, got == comps.cid


# ------------------------------------------------------------ PageRank
def bench_pagerank(g, csr):
    nodes = list(g.nodes())
    n = len(nodes)
    teleport = (1.0 - DAMPING) / n

    def dict_pr():
        rank = {v: 1.0 / n for v in nodes}
        for _ in range(PAGERANK_ITERATIONS):
            incoming = {v: 0.0 for v in nodes}
            for v in nodes:
                out_deg = g.out_degree(v)
                if out_deg == 0:
                    continue
                share = rank[v] / out_deg
                for w in g.successors(v):
                    incoming[w] = incoming.get(w, 0.0) + share
            rank = {v: teleport + DAMPING * incoming[v] for v in nodes}
        return rank

    def csr_pr():
        ids = np.arange(csr.n, dtype=np.int64)
        rank = np.full(csr.n, 1.0 / n)
        for _ in range(PAGERANK_ITERATIONS):
            rank = teleport + DAMPING * csr_pagerank_push(csr, rank, ids)
        return dict(zip(csr.node_of, rank.tolist()))

    truth, dict_s = timed(dict_pr)
    got, csr_s = timed(csr_pr)
    return dict_s, csr_s, got == truth


BENCHES = [("sssp", bench_sssp), ("bfs", bench_bfs), ("cc", bench_cc),
           ("pagerank", bench_pagerank)]


def main(argv) -> int:
    quick = "--quick" in argv
    sizes = QUICK_SIZES if quick else FULL_SIZES
    records = []
    ok = True
    for num_nodes, num_edges in sizes:
        directed = uniform_random_graph(num_nodes, num_edges, seed=42)
        undirected = uniform_random_graph(num_nodes, num_edges,
                                          directed=False, seed=42)
        for name, bench in BENCHES:
            g = undirected if name == "cc" else directed
            csr, build_s = timed(lambda: CSRGraph.from_graph(g))
            dict_s, csr_s, match = bench(g, csr)
            ok &= match
            records.append({
                "kernel": name,
                "nodes": num_nodes,
                "edges": num_edges,
                "dict_s": round(dict_s, 6),
                "csr_s": round(csr_s, 6),
                "speedup": round(dict_s / csr_s, 2) if csr_s else None,
                "csr_build_s": round(build_s, 6),
                "match": match,
            })
            print(f"{name:9s} n={num_nodes:>6} m={num_edges:>7} "
                  f"dict={dict_s:8.4f}s csr={csr_s:8.4f}s "
                  f"speedup={dict_s / csr_s:7.1f}x "
                  f"{'ok' if match else 'MISMATCH'}")
    payload = {
        "benchmark": "kernels",
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "pagerank_iterations": PAGERANK_ITERATIONS,
        "all_match": ok,
        "results": records,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    # Quick (CI smoke) runs must not clobber the committed full-run
    # figures the README quotes.
    name = "BENCH_kernels_quick.json" if quick else "BENCH_kernels.json"
    out = RESULTS_DIR / name
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {out}")
    if not ok:
        print("kernel/oracle MISMATCH", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
