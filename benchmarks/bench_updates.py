"""Churn workload: the update pipeline under interleaved play/update.

Drives a :class:`~repro.service.GrapeService` holding one graph with two
standing queries (SSSP + CC) through rounds of

    play("sssp")  ->  insert-only batch  ->  mixed batch

where insert-only batches ride the incremental fast path and mixed
batches (deletions + weight increases) exercise the delete-aware
bounded path (partial reset of the affected region; the recompute
fallback is reserved for hook-less programs).  Reports per-batch
latencies, the incremental/bounded/recompute split and the measured
affected-region sizes, runs a deletion sweep targeting ~1%/5%/20% of
``|G|``, and emits machine-readable
``benchmarks/results/BENCH_updates.json``.

Run with ``--backend process`` to also measure worker-side delta replay
(``delta_bytes_shipped`` vs full fragment re-ships); the default serial
backend keeps CI runs deterministic and fast.  ``--quick`` shrinks the
graph and round count to a wiring check.  ``--assert-cliff [RATIO]``
turns the run into a perf-smoke gate: mixed batches must stay within
``RATIO``x of insert-only (default 2.5 — the recompute cliff this
bench once measured was 6.6x) with at most 2 recompute fallbacks.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time

from _common import RESULTS_DIR
from repro.graph.delta import GraphDelta
from repro.graph.generators import uniform_random_graph
from repro.sequential import connected_components, sssp_distances
from repro.service import GrapeService

FULL_SHAPE = (4000, 12000)   # nodes, edges
QUICK_SHAPE = (400, 1200)
FULL_ROUNDS = 12
QUICK_ROUNDS = 3
BATCH = 8


def insert_only_delta(rng, g, fresh):
    delta = GraphDelta()
    nodes = list(g.nodes())
    for _ in range(BATCH):
        if rng.random() < 0.25:
            fresh[0] += 1
            delta.insert(len(nodes) + 10_000 + fresh[0],
                         rng.choice(nodes), rng.uniform(0.1, 1.0))
        else:
            u, v = rng.sample(nodes, 2)
            if g.has_edge(u, v):
                # keep the batch monotone: re-inserting an existing edge
                # is only maintainable as a weight *decrease*
                delta.insert(u, v, g.edge_weight(u, v) * 0.9)
            else:
                delta.insert(u, v, rng.uniform(0.1, 1.0))
    return delta


def mixed_delta(rng, g):
    delta = GraphDelta()
    edges = list(g.edges())
    for _ in range(BATCH):
        kind = rng.random()
        u, v, w = rng.choice(edges)
        if kind < 0.45:
            delta.delete(u, v)
        elif kind < 0.75:
            delta.set_weight(u, v, w * rng.uniform(1.5, 4.0))
        else:
            nodes = list(g.nodes())
            delta.insert(rng.choice(nodes), rng.choice(nodes),
                         rng.uniform(0.1, 1.0))
    return delta


def run_phase(service, g, rng, rounds, make_delta, fresh):
    latencies = []
    stats = service.stats
    base = (stats.incremental_maintained, stats.fallback_reruns,
            stats.delta_bytes_shipped, stats.partial_resets,
            stats.affected_vertices)
    for _ in range(rounds):
        service.play("sssp", 0, graph="churn")
        delta = make_delta(rng, g) if fresh is None \
            else make_delta(rng, g, fresh)
        t0 = time.perf_counter()
        service.update("churn", delta)
        latencies.append(time.perf_counter() - t0)
    return {
        "rounds": rounds,
        "batch_size": BATCH,
        "total_s": round(sum(latencies), 4),
        "mean_update_ms": round(1e3 * sum(latencies) / len(latencies), 3),
        "max_update_ms": round(1e3 * max(latencies), 3),
        "incremental_maintained": stats.incremental_maintained - base[0],
        "fallback_reruns": stats.fallback_reruns - base[1],
        "delta_bytes_shipped": stats.delta_bytes_shipped - base[2],
        "partial_resets": stats.partial_resets - base[3],
        "affected_vertices": stats.affected_vertices - base[4],
    }


def region_sweep(service, g, rng, pcts, repeats=3):
    """Latency as a function of affected-region size.

    For each target percentage, delete ``pct * |G|`` random live edges
    in one batch (the region the bounded path must reset grows with the
    number of severed support edges), measure the update, then undo it
    with the inverse insertion batch (monotone, excluded from timing)
    so every sweep point starts from the same graph.  The *measured*
    region is reported from the ``affected_vertices`` counter — the
    nominal percentage only steers batch size.
    """
    stats = service.stats
    points = []
    for pct in pcts:
        k = max(1, int(pct * g.num_nodes))
        lat = []
        base = (stats.partial_resets, stats.affected_vertices,
                stats.fallback_reruns)
        for _ in range(repeats):
            picked = rng.sample(sorted(g.edges()), k)
            delta = GraphDelta()
            for u, v, _w in picked:
                delta.delete(u, v)
            t0 = time.perf_counter()
            service.update("churn", delta)
            lat.append(time.perf_counter() - t0)
            undo = GraphDelta()
            for u, v, w in picked:
                undo.insert(u, v, w)
            service.update("churn", undo)
        resets = stats.partial_resets - base[0]
        affected = stats.affected_vertices - base[1]
        points.append({
            "target_pct": pct,
            "deleted_edges": k,
            "repeats": repeats,
            "mean_update_ms": round(1e3 * sum(lat) / len(lat), 3),
            "partial_resets": resets,
            "fallback_reruns": stats.fallback_reruns - base[2],
            "affected_vertices": affected,
            "mean_affected_per_reset": round(affected / resets, 1)
            if resets else 0.0,
        })
    return points


def verify(service, g):
    sssp_watch, cc_watch = service.watches("churn")
    oracle = sssp_distances(g, 0)
    assert all(abs(sssp_watch.answer[v] - d) < 1e-9
               for v, d in oracle.items()
               if d != float("inf")), "SSSP watch diverged from oracle"
    cids = connected_components(g)
    buckets = {}
    for v, c in cids.items():
        buckets.setdefault(c, set()).add(v)
    expected = {c: frozenset(members) for c, members in buckets.items()}
    got = {c: frozenset(members) for c, members in cc_watch.answer.items()}
    assert got == expected, "CC watch diverged from oracle"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small graph, few rounds (CI wiring check)")
    parser.add_argument("--backend", default="serial",
                        help="execution backend (serial/thread/process)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--assert-cliff", nargs="?", type=float,
                        const=2.5, default=None, metavar="RATIO",
                        help="fail unless mixed batches stay within "
                             "RATIO x insert-only (default 2.5) with "
                             "at most 2 recompute fallbacks")
    args = parser.parse_args()

    n, m = QUICK_SHAPE if args.quick else FULL_SHAPE
    rounds = QUICK_ROUNDS if args.quick else FULL_ROUNDS
    rng = random.Random(args.seed)
    g = uniform_random_graph(n, m, directed=False, seed=args.seed)

    with GrapeService(backend=args.backend) as service:
        service.load_graph("churn", g)
        t0 = time.perf_counter()
        service.watch("sssp", 0, graph="churn")
        service.watch("cc", graph="churn")
        watch_setup_s = time.perf_counter() - t0

        fresh = [0]
        insert_only = run_phase(service, g, rng, rounds,
                                insert_only_delta, fresh)
        mixed = run_phase(service, g, rng, rounds, mixed_delta, None)
        sweep = region_sweep(service, g, rng, (0.01, 0.05, 0.20),
                             repeats=1 if args.quick else 3)
        verify(service, g)
        stats = service.stats

        result = {
            "bench": "updates-churn",
            "backend": args.backend,
            "quick": args.quick,
            "python": platform.python_version(),
            "graph": {"nodes": n, "edges": m, "directed": False},
            "watch_setup_s": round(watch_setup_s, 4),
            "insert_only": insert_only,
            "mixed": mixed,
            "mixed_over_insert_only": round(
                mixed["mean_update_ms"]
                / max(insert_only["mean_update_ms"], 1e-9), 2),
            "region_sweep": sweep,
            "service": {
                "updates_applied": stats.updates_applied,
                "watch_refreshes": stats.watch_refreshes,
                "incremental_maintained": stats.incremental_maintained,
                "fallback_reruns": stats.fallback_reruns,
                "maintained_ratio": round(stats.maintained_ratio, 4),
                "partial_resets": stats.partial_resets,
                "affected_vertices": stats.affected_vertices,
                "delta_bytes_shipped": stats.delta_bytes_shipped,
                "supersteps_total": stats.supersteps_total,
            },
        }

    RESULTS_DIR.mkdir(exist_ok=True)
    name = "BENCH_updates_quick.json" if args.quick else "BENCH_updates.json"
    out = RESULTS_DIR / name
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")

    print(f"updates-churn ({n} nodes / {m} edges, backend={args.backend})")
    print(f"  insert-only: {insert_only['mean_update_ms']:8.2f} ms/batch  "
          f"(maintained {insert_only['incremental_maintained']}, "
          f"fallbacks {insert_only['fallback_reruns']})")
    print(f"  mixed:       {mixed['mean_update_ms']:8.2f} ms/batch  "
          f"(maintained {mixed['incremental_maintained']}, "
          f"fallbacks {mixed['fallback_reruns']}, "
          f"resets {mixed['partial_resets']}, "
          f"|AFF| {mixed['affected_vertices']})")
    print(f"  mixed / insert-only: {result['mixed_over_insert_only']:.2f}x")
    for p in sweep:
        print(f"  sweep {100 * p['target_pct']:4.0f}%: "
              f"{p['mean_update_ms']:8.2f} ms/batch  "
              f"({p['deleted_edges']} deletions, mean |AFF|/reset "
              f"{p['mean_affected_per_reset']})")
    print(f"  watch answers verified against sequential oracles")
    print(f"  wrote {out}")

    if args.assert_cliff is not None:
        ratio = result["mixed_over_insert_only"]
        if ratio > args.assert_cliff:
            print(f"  FAIL: mixed/insert-only {ratio:.2f}x exceeds "
                  f"{args.assert_cliff:.2f}x")
            return 1
        if mixed["fallback_reruns"] > 2:
            print(f"  FAIL: {mixed['fallback_reruns']} recompute "
                  f"fallbacks in the mixed phase (allowed: 2)")
            return 1
        print(f"  cliff gate passed: {ratio:.2f}x <= "
              f"{args.assert_cliff:.2f}x, "
              f"{mixed['fallback_reruns']} fallbacks")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
