"""Churn workload: the update pipeline under interleaved play/update.

Drives a :class:`~repro.service.GrapeService` holding one graph with two
standing queries (SSSP + CC) through rounds of

    play("sssp")  ->  insert-only batch  ->  mixed batch

where insert-only batches ride the incremental fast path and mixed
batches (deletions + weight increases) exercise the recompute fallback.
Reports per-batch latencies and the incremental-vs-recompute split, and
emits machine-readable ``benchmarks/results/BENCH_updates.json``.

Run with ``--backend process`` to also measure worker-side delta replay
(``delta_bytes_shipped`` vs full fragment re-ships); the default serial
backend keeps CI runs deterministic and fast.  ``--quick`` shrinks the
graph and round count to a wiring check.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time

from _common import RESULTS_DIR
from repro.graph.delta import GraphDelta
from repro.graph.generators import uniform_random_graph
from repro.sequential import connected_components, sssp_distances
from repro.service import GrapeService

FULL_SHAPE = (4000, 12000)   # nodes, edges
QUICK_SHAPE = (400, 1200)
FULL_ROUNDS = 12
QUICK_ROUNDS = 3
BATCH = 8


def insert_only_delta(rng, g, fresh):
    delta = GraphDelta()
    nodes = list(g.nodes())
    for _ in range(BATCH):
        if rng.random() < 0.25:
            fresh[0] += 1
            delta.insert(len(nodes) + 10_000 + fresh[0],
                         rng.choice(nodes), rng.uniform(0.1, 1.0))
        else:
            u, v = rng.sample(nodes, 2)
            if g.has_edge(u, v):
                # keep the batch monotone: re-inserting an existing edge
                # is only maintainable as a weight *decrease*
                delta.insert(u, v, g.edge_weight(u, v) * 0.9)
            else:
                delta.insert(u, v, rng.uniform(0.1, 1.0))
    return delta


def mixed_delta(rng, g):
    delta = GraphDelta()
    edges = list(g.edges())
    for _ in range(BATCH):
        kind = rng.random()
        u, v, w = rng.choice(edges)
        if kind < 0.45:
            delta.delete(u, v)
        elif kind < 0.75:
            delta.set_weight(u, v, w * rng.uniform(1.5, 4.0))
        else:
            nodes = list(g.nodes())
            delta.insert(rng.choice(nodes), rng.choice(nodes),
                         rng.uniform(0.1, 1.0))
    return delta


def run_phase(service, g, rng, rounds, make_delta, fresh):
    latencies = []
    stats = service.stats
    base = (stats.incremental_maintained, stats.fallback_reruns,
            stats.delta_bytes_shipped)
    for _ in range(rounds):
        service.play("sssp", 0, graph="churn")
        delta = make_delta(rng, g) if fresh is None \
            else make_delta(rng, g, fresh)
        t0 = time.perf_counter()
        service.update("churn", delta)
        latencies.append(time.perf_counter() - t0)
    return {
        "rounds": rounds,
        "batch_size": BATCH,
        "total_s": round(sum(latencies), 4),
        "mean_update_ms": round(1e3 * sum(latencies) / len(latencies), 3),
        "max_update_ms": round(1e3 * max(latencies), 3),
        "incremental_maintained": stats.incremental_maintained - base[0],
        "fallback_reruns": stats.fallback_reruns - base[1],
        "delta_bytes_shipped": stats.delta_bytes_shipped - base[2],
    }


def verify(service, g):
    sssp_watch, cc_watch = service.watches("churn")
    oracle = sssp_distances(g, 0)
    assert all(abs(sssp_watch.answer[v] - d) < 1e-9
               for v, d in oracle.items()
               if d != float("inf")), "SSSP watch diverged from oracle"
    cids = connected_components(g)
    buckets = {}
    for v, c in cids.items():
        buckets.setdefault(c, set()).add(v)
    expected = {c: frozenset(members) for c, members in buckets.items()}
    got = {c: frozenset(members) for c, members in cc_watch.answer.items()}
    assert got == expected, "CC watch diverged from oracle"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small graph, few rounds (CI wiring check)")
    parser.add_argument("--backend", default="serial",
                        help="execution backend (serial/thread/process)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    n, m = QUICK_SHAPE if args.quick else FULL_SHAPE
    rounds = QUICK_ROUNDS if args.quick else FULL_ROUNDS
    rng = random.Random(args.seed)
    g = uniform_random_graph(n, m, directed=False, seed=args.seed)

    with GrapeService(backend=args.backend) as service:
        service.load_graph("churn", g)
        t0 = time.perf_counter()
        service.watch("sssp", 0, graph="churn")
        service.watch("cc", graph="churn")
        watch_setup_s = time.perf_counter() - t0

        fresh = [0]
        insert_only = run_phase(service, g, rng, rounds,
                                insert_only_delta, fresh)
        mixed = run_phase(service, g, rng, rounds, mixed_delta, None)
        verify(service, g)
        stats = service.stats

        result = {
            "bench": "updates-churn",
            "backend": args.backend,
            "quick": args.quick,
            "python": platform.python_version(),
            "graph": {"nodes": n, "edges": m, "directed": False},
            "watch_setup_s": round(watch_setup_s, 4),
            "insert_only": insert_only,
            "mixed": mixed,
            "service": {
                "updates_applied": stats.updates_applied,
                "watch_refreshes": stats.watch_refreshes,
                "incremental_maintained": stats.incremental_maintained,
                "fallback_reruns": stats.fallback_reruns,
                "maintained_ratio": round(stats.maintained_ratio, 4),
                "delta_bytes_shipped": stats.delta_bytes_shipped,
                "supersteps_total": stats.supersteps_total,
            },
        }

    RESULTS_DIR.mkdir(exist_ok=True)
    name = "BENCH_updates_quick.json" if args.quick else "BENCH_updates.json"
    out = RESULTS_DIR / name
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")

    print(f"updates-churn ({n} nodes / {m} edges, backend={args.backend})")
    print(f"  insert-only: {insert_only['mean_update_ms']:8.2f} ms/batch  "
          f"(maintained {insert_only['incremental_maintained']}, "
          f"fallbacks {insert_only['fallback_reruns']})")
    print(f"  mixed:       {mixed['mean_update_ms']:8.2f} ms/batch  "
          f"(maintained {mixed['incremental_maintained']}, "
          f"fallbacks {mixed['fallback_reruns']})")
    print(f"  watch answers verified against sequential oracles")
    print(f"  wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
