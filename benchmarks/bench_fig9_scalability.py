"""Fig. 9(a-d): scalability on synthetic graphs of growing size.

The paper grows |G| from (10M, 40M) to (50M, 200M) with n = 24 fixed and
a 50-label alphabet.  We run the same five sizes scaled down by 2000x —
(5k, 20k) to (25k, 100k) — for SSSP and CC on all four systems, and the
two smallest sizes for Sim/SubIso (whose vertex-centric baselines are
polynomially slower).  n is kept at 8 so fragment sizes stay proportional
to the paper's setting.

Shape: every system grows with |G|, and GRAPE keeps its structural
advantage — fewer supersteps than the vertex-centric systems at every
size.  (At 2000x smaller graphs the *wall-time* gap narrows to parity on
uniform-random inputs, where every node is a border node; EXPERIMENTS.md
quantifies this.)
"""

import pytest

from _common import record
from repro.bench import BenchResult, format_results_table, run_queries
from repro.graph.generators import labeled_graph
from repro.workloads import generate_pattern

SIZE_FACTOR = 2000
SIZES = [(10_000_000 // SIZE_FACTOR, 40_000_000 // SIZE_FACTOR),
         (20_000_000 // SIZE_FACTOR, 80_000_000 // SIZE_FACTOR),
         (30_000_000 // SIZE_FACTOR, 120_000_000 // SIZE_FACTOR),
         (40_000_000 // SIZE_FACTOR, 160_000_000 // SIZE_FACTOR),
         (50_000_000 // SIZE_FACTOR, 200_000_000 // SIZE_FACTOR)]
N_WORKERS = 8


def run_sweep(qclass, sizes, systems):
    rows = []
    for i, (nodes, edges) in enumerate(sizes):
        graph = labeled_graph(nodes, edges, num_labels=50, seed=40 + i)
        if qclass == "sssp":
            queries = [0]
        elif qclass == "cc":
            queries = [None]
        else:
            queries = [generate_pattern(graph, 3, 3, seed=41 + i)]
        for system in systems:
            row = run_queries(system, qclass, graph, queries, N_WORKERS)
            row.query_class = f"{qclass}|{nodes}"
            rows.append(row)
    return rows


CASES = [
    ("sssp", SIZES, ["grape", "giraph", "graphlab", "blogel"]),
    ("cc", SIZES, ["grape", "giraph", "graphlab", "blogel"]),
    ("sim", SIZES[:2], ["grape", "giraph", "graphlab", "blogel"]),
    ("subiso", SIZES[:2], ["grape", "giraph", "graphlab", "blogel"]),
]


@pytest.mark.parametrize("case_index", range(len(CASES)))
def test_fig9_scalability(benchmark, case_index):
    qclass, sizes, systems = CASES[case_index]
    rows = benchmark.pedantic(run_sweep, args=(qclass, sizes, systems),
                              rounds=1, iterations=1)
    # GRAPE keeps its structural advantage (supersteps) at every size,
    # and stays within a small constant of the fastest system in time.
    by_key = {(r.system, r.query_class): r for r in rows}
    for (system, tag), row in by_key.items():
        if system == "grape":
            giraph = by_key[("giraph", tag)]
            assert row.avg_supersteps <= giraph.avg_supersteps
            assert row.avg_time_s <= giraph.avg_time_s * 4.0

    # Monotone growth: GRAPE's largest size costs more than its smallest.
    grape_rows = [r for r in rows if r.system == "grape"]
    assert grape_rows[-1].avg_time_s >= grape_rows[0].avg_time_s * 0.8

    text = format_results_table(
        rows, title=f"Fig 9 scalability ({qclass}), |G| scaled down "
                    f"{SIZE_FACTOR}x, n={N_WORKERS}")
    record(f"fig9_{qclass}", text)


if __name__ == "__main__":
    for qclass, sizes, systems in CASES[:1]:
        print(format_results_table(run_sweep(qclass, sizes, systems)))
