"""Resilience bench: fault-free overhead of the guardrails + recovery
latency under injected worker crashes and hangs.

Two measurements around the resilience plane:

* **fault-free overhead** — a fixed batch of SSSP queries served by a
  plain process-backend service vs the same service with every
  guardrail armed (query deadline, heartbeat-based hung-worker
  detection, retry policy, degradation breaker).  No fault fires, so
  the difference is pure bookkeeping: the polling pipe waits, the
  breaker lookup, the per-superstep deadline checks.  The acceptance
  target is **< 5%** (asserted with ``--assert-overhead``; timing noise
  makes an unconditional CI assert flaky).
* **recovery latency** — one engine run whose worker crashes
  (``exec.step`` crash fault) and one whose worker hangs (heartbeat
  detection at 0.3s), each compared against the same engine fault-free.
  Reported as added seconds: checkpoint + kill/detect + respawn +
  replay.

The machine-readable result lands in
``benchmarks/results/BENCH_resilience.json``; ``--quick`` shrinks the
graph and counts to a CI wiring check.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time

from _common import RESULTS_DIR
from repro.core.engine import GrapeEngine
from repro.graph.generators import uniform_random_graph
from repro.pie_programs import SSSPProgram
from repro.resilience import FaultPlane, RetryPolicy
from repro.service import GrapeService

FULL_SHAPE = (3000, 10_000)   # nodes, edges
QUICK_SHAPE = (600, 2000)
FULL_QUERIES = 12
QUICK_QUERIES = 4
REPEATS = 3


def batch_seconds(service, sources):
    t0 = time.perf_counter()
    for src in sources:
        service.play("sssp", src, graph="soc")
    return time.perf_counter() - t0


def serve_overhead(g, sources, backend):
    """Best-of-REPEATS batch time, plain vs fully guarded."""
    timings = {}
    for label, kwargs in (
            ("plain", {}),
            ("guarded", {"deadline_s": 300.0,
                         "heartbeat_timeout_s": 5.0,
                         "retry": RetryPolicy(),
                         "degradation": True})):
        svc = GrapeService(backend=backend, grouping=False, **kwargs)
        svc.load_graph("soc", g)
        svc.play("sssp", sources[0], graph="soc")  # partition + pool warm
        timings[label] = min(batch_seconds(svc, sources)
                             for _ in range(REPEATS))
        svc.close()
    return timings


def recovery_latency(g, backend):
    """Added seconds when a worker crashes / hangs mid-run."""
    def one_run(**kwargs):
        engine = GrapeEngine(4, backend=backend, **kwargs)
        t0 = time.perf_counter()
        result = engine.run(SSSPProgram(), query=0, graph=g)
        return time.perf_counter() - t0, result

    one_run()  # warm the pool + partition cost out of the comparison
    base_s = min(one_run()[0] for _ in range(REPEATS))

    crash_s, crashed = one_run(
        fault_plane=FaultPlane().plan("exec.step", "crash", key=0, at=2))
    assert crashed.recoveries >= 1

    hang_s, hung = one_run(
        heartbeat_timeout_s=0.3,
        fault_plane=FaultPlane().plan("exec.step", "hang", key=0, at=2,
                                      hang_s=30.0))
    assert hung.recoveries >= 1
    return {
        "fault_free_s": round(base_s, 4),
        "crash_recovery_added_s": round(max(0.0, crash_s - base_s), 4),
        "hang_detect_recovery_added_s": round(max(0.0, hang_s - base_s),
                                              4),
        "heartbeat_timeout_s": 0.3,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small graph, few queries (CI wiring check)")
    parser.add_argument("--backend", default="process",
                        choices=["serial", "thread", "process"])
    parser.add_argument("--assert-overhead", action="store_true",
                        help="fail unless guarded overhead < 5%%")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    n, m = QUICK_SHAPE if args.quick else FULL_SHAPE
    num_queries = QUICK_QUERIES if args.quick else FULL_QUERIES
    rng = random.Random(args.seed)
    g = uniform_random_graph(n, m, directed=False, seed=args.seed)
    sources = [rng.randrange(n) for _ in range(num_queries)]

    timings = serve_overhead(g, sources, args.backend)
    overhead_pct = 100.0 * (timings["guarded"] - timings["plain"]) \
        / timings["plain"]
    recovery = recovery_latency(g, args.backend)

    result = {
        "bench": "resilience",
        "quick": args.quick,
        "python": platform.python_version(),
        "graph": {"nodes": n, "edges": m, "directed": False},
        "backend": args.backend,
        "fault_free_overhead": {
            "queries": num_queries,
            "repeats": REPEATS,
            "plain_batch_s": round(timings["plain"], 4),
            "guarded_batch_s": round(timings["guarded"], 4),
            "overhead_pct": round(overhead_pct, 2),
            "target_pct": 5.0,
        },
        "recovery_latency": recovery,
    }
    text = json.dumps(result, indent=2)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_resilience.json").write_text(text + "\n",
                                                       encoding="utf-8")
    if args.assert_overhead and overhead_pct >= 5.0:
        raise SystemExit(
            f"guarded overhead {overhead_pct:.2f}% >= 5% target")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
