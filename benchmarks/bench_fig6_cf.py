"""Fig. 6(k-l): collaborative filtering time vs. workers.

Paper: movieLens with training sets |E_T| = 90% and 50% of |E|; all
systems calibrated to the same termination condition.  We calibrate to a
fixed epoch budget (the paper's GraphLab-style alternative); the paper
shape — GRAPE ahead of Giraph and Blogel, close to GraphLab — follows
from CF's vertex-friendly access pattern.
"""

import pytest

from _common import RATINGS_SCALE, WORKER_SWEEP, record
from repro.bench import format_series, speedup_summary, sweep_workers
from repro.pie_programs import CFQuery
from repro.sequential.cf import extract_ratings, split_train_test
from repro.graph.graph import Graph
from repro.workloads import ratings_like

SYSTEMS = ["grape", "giraph", "graphlab", "blogel"]
EPOCHS = 6


def build_training_graph(train_fraction):
    full, _uf, _itf = ratings_like(scale=RATINGS_SCALE)
    train, _test = split_train_test(extract_ratings(full), train_fraction,
                                    seed=2)
    g = Graph(directed=True)
    for u, p, r in train:
        g.add_node(u, "user")
        g.add_node(p, "item")
        g.add_edge(u, p, weight=r)
    return g


def run_training(graph):
    query = CFQuery(num_factors=6, max_epochs=EPOCHS, learning_rate=0.05,
                    seed=1)
    return sweep_workers(SYSTEMS, "cf", graph, [query], WORKER_SWEEP)


@pytest.mark.parametrize("fraction,tag", [(0.9, "90"), (0.5, "50")])
def test_fig6_cf(benchmark, fraction, tag):
    graph = build_training_graph(fraction)
    rows = benchmark.pedantic(run_training, args=(graph,),
                              rounds=1, iterations=1)
    by_key = {(r.system, r.num_workers): r for r in rows}
    for n in WORKER_SWEEP:
        # GRAPE ships a fraction of the per-edge factor traffic.
        assert by_key[("grape", n)].avg_comm_mb < \
            by_key[("giraph", n)].avg_comm_mb

    text = "\n".join([
        f"Fig 6 CF, training set = {tag}% of ratings "
        f"({graph.num_edges} training edges), {EPOCHS} epochs",
        format_series(rows, "time"),
        "",
        speedup_summary(rows),
    ])
    record(f"fig6_cf_{tag}", text)


if __name__ == "__main__":
    graph = build_training_graph(0.9)
    print(format_series(run_training(graph), "time", "Fig 6 CF 90%"))
