"""Graph simulation tests (HHK refinement, maximum relation semantics)."""

import pytest

from repro.graph.generators import labeled_graph
from repro.graph.graph import Graph
from repro.sequential.simulation import (maximum_simulation,
                                         simulation_refinement)


def make_pattern(nodes, edges):
    p = Graph(directed=True)
    for name, label in nodes:
        p.add_node(name, label)
    for u, v in edges:
        p.add_edge(u, v)
    return p


def brute_force_simulation(pattern, graph):
    """Reference implementation: refine full candidate sets to fixpoint."""
    sim = {u: {v for v in graph.nodes()
               if graph.node_label(v) == pattern.node_label(u)}
           for u in pattern.nodes()}
    changed = True
    while changed:
        changed = False
        for u in pattern.nodes():
            for v in list(sim[u]):
                for u2 in pattern.successors(u):
                    if not any(v2 in sim[u2]
                               for v2 in graph.successors(v)):
                        sim[u].discard(v)
                        changed = True
                        break
    if any(not s for s in sim.values()):
        return {u: set() for u in pattern.nodes()}
    return sim


class TestSimulationBasics:
    def test_single_node_pattern(self):
        g = Graph()
        g.add_node(1, "a")
        g.add_node(2, "b")
        p = make_pattern([("u", "a")], [])
        assert maximum_simulation(p, g) == {"u": {1}}

    def test_edge_condition(self):
        g = Graph()
        g.add_node(1, "a")
        g.add_node(2, "b")
        g.add_node(3, "a")  # a-node with no b-successor
        g.add_edge(1, 2)
        p = make_pattern([("u", "a"), ("w", "b")], [("u", "w")])
        sim = maximum_simulation(p, g)
        assert sim["u"] == {1}
        assert sim["w"] == {2}

    def test_no_match_returns_empty(self):
        g = Graph()
        g.add_node(1, "a")
        p = make_pattern([("u", "z")], [])
        sim = maximum_simulation(p, g)
        assert sim == {"u": set()}

    def test_cycle_pattern_on_cycle(self):
        g = Graph()
        g.add_node(1, "a")
        g.add_node(2, "a")
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        p = make_pattern([("u", "a"), ("w", "a")], [("u", "w"), ("w", "u")])
        sim = maximum_simulation(p, g)
        assert sim["u"] == {1, 2}

    def test_simulation_bigger_than_isomorphism(self):
        """A tree pattern simulates into a single data path (the classic
        sim vs. subiso difference)."""
        g = Graph()
        g.add_node(1, "a")
        g.add_node(2, "b")
        g.add_edge(1, 2)
        p = make_pattern([("u", "a"), ("w1", "b"), ("w2", "b")],
                         [("u", "w1"), ("u", "w2")])
        sim = maximum_simulation(p, g)
        assert sim["u"] == {1}
        assert sim["w1"] == sim["w2"] == {2}


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_graphs(self, seed):
        g = labeled_graph(60, 200, num_labels=3, seed=seed)
        p = make_pattern([("u", "l0"), ("w", "l1"), ("x", "l2")],
                         [("u", "w"), ("w", "x"), ("u", "x")])
        assert maximum_simulation(p, g) == brute_force_simulation(p, g)

    def test_pattern_with_cycle(self):
        g = labeled_graph(50, 220, num_labels=2, seed=9)
        p = make_pattern([("u", "l0"), ("w", "l1")],
                         [("u", "w"), ("w", "u")])
        assert maximum_simulation(p, g) == brute_force_simulation(p, g)


class TestFrozenAndCandidates:
    def test_frozen_nodes_not_removed(self):
        g = Graph()
        g.add_node(1, "a")
        g.add_node(2, "b")  # no successors; would fail the edge check
        g.add_edge(1, 2)
        p = make_pattern([("u", "a"), ("w", "b"), ("x", "c")],
                         [("u", "w"), ("w", "x")])
        # Unfrozen: 2 has no c-successor, so w loses 2, then u loses 1.
        open_sim = simulation_refinement(p, g)
        assert open_sim["w"] == set()
        # Frozen: 2's membership is owned elsewhere and must survive.
        frozen_sim = simulation_refinement(p, g, frozen={2})
        assert frozen_sim["w"] == {2}
        assert frozen_sim["u"] == {1}

    def test_candidates_restrict_search(self):
        g = Graph()
        g.add_node(1, "a")
        g.add_node(2, "a")
        p = make_pattern([("u", "a")], [])
        sim = simulation_refinement(p, g, candidates={"u": [1]})
        assert sim["u"] == {1}

    def test_candidates_missing_key_means_empty(self):
        g = Graph()
        g.add_node(1, "a")
        p = make_pattern([("u", "a"), ("w", "a")], [])
        sim = simulation_refinement(p, g, candidates={"u": [1]})
        assert sim["w"] == set()
