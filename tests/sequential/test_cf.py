"""Collaborative filtering: SGD convergence and ISGD locality."""

import numpy as np
import pytest

from repro.graph.generators import bipartite_ratings_graph
from repro.sequential.cf import (FactorModel, extract_ratings, rmse,
                                 sgd_epoch, split_train_test)
from repro.sequential.inc_cf import isgd_update


@pytest.fixture(scope="module")
def ratings():
    g, _uf, _itf = bipartite_ratings_graph(40, 20, 400, noise=0.05, seed=3)
    return extract_ratings(g)


class TestFactorModel:
    def test_lazy_init_deterministic(self):
        a = FactorModel(4, seed=1)
        b = FactorModel(4, seed=1)
        assert np.allclose(a.get("x"), b.get("x"))

    def test_set_records_timestamp(self):
        m = FactorModel(4)
        m.set("v", np.zeros(4), timestamp=7)
        assert m.timestamps["v"] == 7

    def test_predict_dot_product(self):
        m = FactorModel(2)
        m.set("u", np.array([1.0, 2.0]), 0)
        m.set("p", np.array([3.0, 4.0]), 0)
        assert m.predict("u", "p") == pytest.approx(11.0)

    def test_copy_independent(self):
        m = FactorModel(2)
        m.set("u", np.array([1.0, 1.0]), 0)
        dup = m.copy()
        dup.factors["u"][0] = 99.0
        assert m.factors["u"][0] == 1.0


class TestSGD:
    def test_epochs_reduce_rmse(self, ratings):
        model = FactorModel(8, seed=5)
        before = rmse(ratings, model)
        for epoch in range(10):
            sgd_epoch(ratings, model, timestamp=epoch + 1,
                      shuffle_seed=epoch)
        after = rmse(ratings, model)
        assert after < before * 0.7

    def test_epoch_returns_mse(self, ratings):
        model = FactorModel(8, seed=5)
        mse = sgd_epoch(ratings, model)
        assert mse > 0

    def test_empty_ratings(self):
        assert sgd_epoch([], FactorModel(4)) == 0.0
        assert rmse([], FactorModel(4)) == 0.0

    def test_timestamp_recorded(self, ratings):
        model = FactorModel(4, seed=2)
        sgd_epoch(ratings, model, timestamp=3)
        u, p, _r = ratings[0]
        assert model.timestamps[u] == 3


class TestSplit:
    def test_fractions(self, ratings):
        train, test = split_train_test(ratings, 0.8, seed=1)
        assert len(train) == int(len(ratings) * 0.8)
        assert len(train) + len(test) == len(ratings)

    def test_deterministic(self, ratings):
        a_train, _ = split_train_test(ratings, 0.5, seed=9)
        b_train, _ = split_train_test(ratings, 0.5, seed=9)
        assert a_train == b_train

    def test_invalid_fraction(self, ratings):
        with pytest.raises(ValueError):
            split_train_test(ratings, 0.0)
        with pytest.raises(ValueError):
            split_train_test(ratings, 1.5)


class TestISGD:
    def test_touches_only_affected(self, ratings):
        model = FactorModel(8, seed=7)
        sgd_epoch(ratings, model, timestamp=1)
        affected = {ratings[0][0]}  # one user
        untouched_user = ratings[-1][0]
        if untouched_user in affected:
            pytest.skip("sampled same user")
        # Items rated by the untouched user but not by the affected user
        # keep their exact vectors.
        before = {v: f.copy() for v, f in model.factors.items()}
        processed = isgd_update(ratings, model, affected, timestamp=2)
        affected_ratings = [r for r in ratings if r[0] in affected
                            or r[1] in affected]
        assert processed == len(affected_ratings)
        touched_nodes = set()
        for u, p, _r in affected_ratings:
            touched_nodes.update((u, p))
        for v, vec in model.factors.items():
            if v not in touched_nodes:
                assert np.array_equal(vec, before[v])

    def test_empty_affected_is_noop(self, ratings):
        model = FactorModel(4, seed=1)
        sgd_epoch(ratings, model)
        before = {v: f.copy() for v, f in model.factors.items()}
        assert isgd_update(ratings, model, set()) == 0
        for v, vec in model.factors.items():
            assert np.array_equal(vec, before[v])

    def test_passes_multiply_cost(self, ratings):
        model = FactorModel(4, seed=1)
        affected = {ratings[0][0]}
        one = isgd_update(ratings, model, affected, passes=1)
        two = isgd_update(ratings, model, affected, passes=2)
        assert two == 2 * one
