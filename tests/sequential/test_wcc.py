"""Connected components: union-find, batch labeling, bounded lowering."""

import networkx as nx
import pytest

from repro.graph.builders import path_graph
from repro.graph.generators import uniform_random_graph
from repro.graph.graph import Graph
from repro.sequential.wcc import (DisjointSets, LocalComponents,
                                  connected_components)


class TestDisjointSets:
    def test_initially_separate(self):
        ds = DisjointSets([1, 2, 3])
        assert not ds.same(1, 2)

    def test_union_merges(self):
        ds = DisjointSets([1, 2, 3])
        assert ds.union(1, 2)
        assert ds.same(1, 2)
        assert not ds.same(1, 3)

    def test_union_idempotent(self):
        ds = DisjointSets([1, 2])
        ds.union(1, 2)
        assert not ds.union(1, 2)

    def test_transitive(self):
        ds = DisjointSets(range(5))
        ds.union(0, 1)
        ds.union(1, 2)
        ds.union(3, 4)
        assert ds.same(0, 2)
        assert not ds.same(2, 3)

    def test_groups(self):
        ds = DisjointSets(range(4))
        ds.union(0, 1)
        groups = ds.groups()
        assert {frozenset(s) for s in groups.values()} == {
            frozenset({0, 1}), frozenset({2}), frozenset({3})}

    def test_contains_len(self):
        ds = DisjointSets([1])
        assert 1 in ds and 2 not in ds
        assert len(ds) == 1

    def test_add_idempotent(self):
        ds = DisjointSets()
        ds.add(1)
        ds.union(1, 1)
        ds.add(1)
        assert len(ds) == 1


class TestConnectedComponents:
    def test_path_is_one_component(self):
        g = path_graph(5)
        cids = connected_components(g)
        assert set(cids.values()) == {0}

    def test_direction_ignored(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(3, 2)  # only reachable ignoring direction
        cids = connected_components(g)
        assert cids[1] == cids[2] == cids[3] == 1

    def test_min_id_convention(self):
        g = Graph(directed=False)
        g.add_edge(5, 9)
        g.add_node(2)
        cids = connected_components(g)
        assert cids[5] == cids[9] == 5
        assert cids[2] == 2

    def test_vs_networkx(self):
        g = uniform_random_graph(100, 110, directed=False, seed=31)
        nxg = nx.Graph()
        nxg.add_nodes_from(g.nodes())
        nxg.add_edges_from((u, v) for u, v, _w in g.edges())
        expected = {frozenset(c) for c in nx.connected_components(nxg)}
        mine = {}
        for v, c in connected_components(g).items():
            mine.setdefault(c, set()).add(v)
        assert {frozenset(s) for s in mine.values()} == expected


class TestLocalComponents:
    def test_initial_cids(self):
        g = path_graph(4)
        lc = LocalComponents(g)
        assert all(lc.cid[v] == 0 for v in g.nodes())

    def test_lower_cid_relabels_component(self):
        g = Graph(directed=False)
        g.add_edge(10, 11)
        g.add_edge(20, 21)
        lc = LocalComponents(g)
        changed = lc.lower_cid(11, 3)
        assert set(changed) == {10, 11}
        assert lc.cid[10] == lc.cid[11] == 3
        assert lc.cid[20] == 20  # other component untouched

    def test_lower_cid_rejects_non_improving(self):
        g = path_graph(3)
        lc = LocalComponents(g)
        assert lc.lower_cid(1, 5) == []
        assert lc.cid[1] == 0

    def test_lower_cid_partial_improvement(self):
        g = Graph(directed=False)
        g.add_edge(4, 5)
        lc = LocalComponents(g)
        lc.lower_cid(4, 2)
        changed = lc.lower_cid(5, 1)
        assert set(changed) == {4, 5}
        assert lc.cid[4] == 1

    def test_component_members(self):
        g = path_graph(3)
        lc = LocalComponents(g)
        assert set(lc.component_members(2)) == {0, 1, 2}
