"""Dijkstra tests against the networkx oracle."""

from math import inf

import networkx as nx
import pytest

from repro.graph.generators import grid_road_graph, uniform_random_graph
from repro.sequential.sssp import dijkstra


def to_nx(g):
    nxg = nx.DiGraph()
    nxg.add_nodes_from(g.nodes())
    for u, v, w in g.edges():
        nxg.add_edge(u, v, weight=w)
        if not g.directed:
            nxg.add_edge(v, u, weight=w)
    return nxg


class TestDijkstra:
    def test_diamond(self, diamond):
        dist = dijkstra(diamond, 0)
        assert dist == {0: 0.0, 1: 1.0, 2: 4.0, 3: 3.0}

    def test_unreachable_is_inf(self):
        from repro.graph.graph import Graph
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(3)
        dist = dijkstra(g, 1)
        assert dist[3] == inf

    def test_source_not_in_graph(self, diamond):
        dist = dijkstra(diamond, "ghost")
        assert all(d == inf for d in dist.values())

    def test_vs_networkx_random(self):
        g = uniform_random_graph(80, 300, seed=13, max_weight=5.0)
        truth = nx.single_source_dijkstra_path_length(to_nx(g), 0)
        mine = dijkstra(g, 0)
        for v in g.nodes():
            assert mine[v] == pytest.approx(truth.get(v, inf))

    def test_vs_networkx_road(self):
        g = grid_road_graph(7, 7, seed=3)
        truth = nx.single_source_dijkstra_path_length(to_nx(g), 0)
        mine = dijkstra(g, 0)
        for v in g.nodes():
            assert mine[v] == pytest.approx(truth.get(v, inf))

    def test_initial_estimates_respected(self, diamond):
        # Pretend node 2 is already known at distance 0.5 (a border value).
        dist = dijkstra(diamond, "external", initial={2: 0.5})
        assert dist[2] == 0.5
        assert dist[3] == pytest.approx(1.5)  # via 2

    def test_initial_only_improves(self, diamond):
        dist = dijkstra(diamond, 0, initial={1: 100.0})
        assert dist[1] == 1.0

    def test_negative_weight_rejected(self):
        from repro.graph.graph import Graph
        g = Graph()
        g.add_edge(1, 2, weight=-1.0)
        with pytest.raises(ValueError):
            dijkstra(g, 1)

    def test_unorderable_node_ids(self):
        """Heap tie-breaking must not compare node objects."""
        from repro.graph.graph import Graph
        g = Graph()
        g.add_edge((1, "a"), "x", weight=1.0)
        g.add_edge((1, "a"), frozenset([2]), weight=1.0)
        dist = dijkstra(g, (1, "a"))
        assert dist["x"] == 1.0
