"""VF2 subgraph isomorphism tests against the networkx oracle."""

import networkx as nx
import pytest

from repro.graph.generators import labeled_graph
from repro.graph.graph import Graph
from repro.sequential.subiso import (canonical_match, pattern_diameter,
                                     vf2_all_matches)


def make_pattern(nodes, edges):
    p = Graph(directed=True)
    for name, label in nodes:
        p.add_node(name, label)
    for u, v in edges:
        p.add_edge(u, v)
    return p


def nx_monomorphisms(pattern, graph):
    """networkx oracle: label-preserving subgraph monomorphisms."""
    nxg = nx.DiGraph()
    for v in graph.nodes():
        nxg.add_node(v, label=graph.node_label(v))
    for u, v, _w in graph.edges():
        nxg.add_edge(u, v)
    nxp = nx.DiGraph()
    for u in pattern.nodes():
        nxp.add_node(u, label=pattern.node_label(u))
    for u, v, _w in pattern.edges():
        nxp.add_edge(u, v)
    matcher = nx.algorithms.isomorphism.DiGraphMatcher(
        nxg, nxp, node_match=lambda a, b: a["label"] == b["label"])
    out = set()
    for mapping in matcher.subgraph_monomorphisms_iter():
        out.add(frozenset((u, v) for v, u in mapping.items()))
    return out


class TestPatternDiameter:
    def test_single_node(self):
        p = make_pattern([("u", "a")], [])
        assert pattern_diameter(p) == 0

    def test_path(self):
        p = make_pattern([("a", "x"), ("b", "x"), ("c", "x")],
                         [("a", "b"), ("b", "c")])
        assert pattern_diameter(p) == 2

    def test_direction_ignored(self):
        p = make_pattern([("a", "x"), ("b", "x")], [("a", "b")])
        assert pattern_diameter(p) == 1

    def test_triangle(self):
        p = make_pattern([("a", "x"), ("b", "x"), ("c", "x")],
                         [("a", "b"), ("b", "c"), ("c", "a")])
        assert pattern_diameter(p) == 1


class TestVF2:
    def test_empty_pattern(self):
        g = Graph()
        g.add_node(1, "a")
        assert vf2_all_matches(Graph(), g) == [{}]

    def test_single_edge(self):
        g = Graph()
        g.add_node(1, "a")
        g.add_node(2, "b")
        g.add_edge(1, 2)
        p = make_pattern([("u", "a"), ("w", "b")], [("u", "w")])
        assert vf2_all_matches(p, g) == [{"u": 1, "w": 2}]

    def test_injectivity(self):
        g = Graph()
        g.add_node(1, "a")
        g.add_edge(1, 1)
        p = make_pattern([("u", "a"), ("w", "a")], [("u", "w")])
        # u and w may not both map to node 1.
        assert vf2_all_matches(p, g) == []

    def test_direction_respected(self):
        g = Graph()
        g.add_node(1, "a")
        g.add_node(2, "b")
        g.add_edge(2, 1)  # wrong direction
        p = make_pattern([("u", "a"), ("w", "b")], [("u", "w")])
        assert vf2_all_matches(p, g) == []

    def test_limit(self):
        g = Graph()
        for i in range(6):
            g.add_node(i, "a")
        p = make_pattern([("u", "a")], [])
        assert len(vf2_all_matches(p, g, limit=3)) == 3

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_vs_networkx(self, seed):
        g = labeled_graph(40, 140, num_labels=3, seed=seed)
        p = make_pattern([("u", "l0"), ("w", "l1"), ("x", "l2")],
                         [("u", "w"), ("w", "x")])
        mine = {canonical_match(m) for m in vf2_all_matches(p, g)}
        assert mine == nx_monomorphisms(p, g)

    def test_vs_networkx_with_cycle_pattern(self):
        g = labeled_graph(35, 160, num_labels=2, seed=8)
        p = make_pattern([("u", "l0"), ("w", "l1")],
                         [("u", "w"), ("w", "u")])
        mine = {canonical_match(m) for m in vf2_all_matches(p, g)}
        assert mine == nx_monomorphisms(p, g)

    def test_canonical_match_hashable_and_stable(self):
        a = canonical_match({"u": 1, "w": 2})
        b = canonical_match({"w": 2, "u": 1})
        assert a == b
        assert hash(a) == hash(b)
