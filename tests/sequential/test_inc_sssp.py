"""Incremental SSSP: equivalence with recomputation and boundedness."""

from math import inf

import pytest

from repro.graph.generators import uniform_random_graph
from repro.sequential.inc_sssp import incremental_sssp_decrease
from repro.sequential.sssp import dijkstra


class TestIncrementalSSSP:
    def test_matches_recompute(self):
        g = uniform_random_graph(60, 200, seed=21, max_weight=4.0)
        dist = dijkstra(g, 0)
        # A border update: node 7 got a shortcut of length 0.1.
        updates = {7: 0.1}
        incremental_sssp_decrease(g, dist, updates)
        expected = dijkstra(g, "none", initial={0: 0.0, 7: 0.1})
        for v in g.nodes():
            assert dist[v] == pytest.approx(expected[v])

    def test_non_improving_update_ignored(self, diamond):
        dist = dijkstra(diamond, 0)
        before = dict(dist)
        changed = incremental_sssp_decrease(diamond, dist, {3: 100.0})
        assert changed == set()
        assert dist == before

    def test_returns_affected_area(self, diamond):
        dist = dijkstra(diamond, 0)
        changed = incremental_sssp_decrease(diamond, dist, {2: 0.0})
        assert changed == {2, 3}  # 2 improves, 3 improves through it

    def test_affected_area_local(self):
        """Boundedness: an update in one corner must not touch distances
        outside its affected region."""
        from repro.graph.generators import grid_road_graph
        g = grid_road_graph(8, 8, shortcut_prob=0.0, seed=2)
        dist = dijkstra(g, 0)
        untouched = dict(dist)
        changed = incremental_sssp_decrease(g, dist, {63: dist[63]})
        assert changed == set()  # same value: nothing should move
        assert dist == untouched

    def test_update_node_missing_from_graph(self, diamond):
        dist = dijkstra(diamond, 0)
        changed = incremental_sssp_decrease(diamond, dist, {"ghost": 0.5})
        assert "ghost" in changed  # recorded as changed in dist map
        assert dist["ghost"] == 0.5

    def test_multiple_updates_batched(self, diamond):
        dist = {v: inf for v in diamond.nodes()}
        incremental_sssp_decrease(diamond, dist, {0: 0.0})
        assert dist == dijkstra(diamond, 0)
