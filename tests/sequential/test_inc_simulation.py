"""Incremental simulation maintenance == batch recomputation."""

import pytest

from repro.graph.generators import labeled_graph
from repro.graph.graph import Graph
from repro.sequential.inc_simulation import incremental_simulation_remove
from repro.sequential.simulation import simulation_refinement


def make_pattern(nodes, edges):
    p = Graph(directed=True)
    for name, label in nodes:
        p.add_node(name, label)
    for u, v in edges:
        p.add_edge(u, v)
    return p


class TestIncrementalSimulation:
    def test_seed_removal_applied(self):
        g = Graph()
        g.add_node(1, "a")
        g.add_node(2, "b")
        g.add_edge(1, 2)
        p = make_pattern([("u", "a"), ("w", "b")], [("u", "w")])
        sim = simulation_refinement(p, g)
        removed = incremental_simulation_remove(p, g, sim, [("w", 2)])
        assert ("w", 2) in removed
        assert 2 not in sim["w"]

    def test_propagates_to_predecessors(self):
        g = Graph()
        g.add_node(1, "a")
        g.add_node(2, "b")
        g.add_edge(1, 2)
        p = make_pattern([("u", "a"), ("w", "b")], [("u", "w")])
        sim = simulation_refinement(p, g)
        removed = incremental_simulation_remove(p, g, sim, [("w", 2)])
        # 1 matched u only via successor 2 matching w.
        assert ("u", 1) in removed
        assert sim["u"] == set()

    def test_no_propagation_with_alternative(self):
        g = Graph()
        g.add_node(1, "a")
        g.add_node(2, "b")
        g.add_node(3, "b")
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        p = make_pattern([("u", "a"), ("w", "b")], [("u", "w")])
        sim = simulation_refinement(p, g)
        incremental_simulation_remove(p, g, sim, [("w", 2)])
        assert 1 in sim["u"]  # 3 still matches w

    def test_absent_seed_is_noop(self):
        g = Graph()
        g.add_node(1, "a")
        p = make_pattern([("u", "a")], [])
        sim = simulation_refinement(p, g)
        removed = incremental_simulation_remove(p, g, sim, [("u", 99)])
        assert removed == []

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_equivalent_to_batch(self, seed):
        """Invalidate some pairs; incremental result == recomputation with
        those pairs excluded from the candidates."""
        g = labeled_graph(50, 180, num_labels=3, seed=seed)
        p = make_pattern([("u", "l0"), ("w", "l1"), ("x", "l2")],
                         [("u", "w"), ("w", "x")])
        sim = simulation_refinement(p, g)
        victims = []
        for u in ("w", "x"):
            for v in sorted(sim[u], key=repr)[:2]:
                victims.append((u, v))
        incremental_simulation_remove(p, g, sim, victims)

        candidates = {
            u: {v for v in g.nodes()
                if g.node_label(v) == p.node_label(u)
                and (u, v) not in victims}
            for u in p.nodes()
        }
        batch = simulation_refinement(p, g, candidates=candidates)
        assert sim == batch

    def test_frozen_not_removed_by_propagation(self):
        g = Graph()
        g.add_node(1, "a")
        g.add_node(2, "b")
        g.add_node(3, "c")
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        p = make_pattern([("u", "a"), ("w", "b"), ("x", "c")],
                         [("u", "w"), ("w", "x")])
        sim = simulation_refinement(p, g)
        # Invalidate (x, 3); propagation would kill (w, 2) then (u, 1),
        # but 2 is frozen (a border copy owned elsewhere).
        incremental_simulation_remove(p, g, sim, [("x", 3)], frozen={2})
        assert 2 in sim["w"]
        assert 1 in sim["u"]

    def test_frozen_removed_when_explicitly_invalidated(self):
        g = Graph()
        g.add_node(1, "a")
        p = make_pattern([("u", "a")], [])
        sim = simulation_refinement(p, g)
        incremental_simulation_remove(p, g, sim, [("u", 1)], frozen={1})
        assert sim["u"] == set()
