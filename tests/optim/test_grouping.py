"""Dynamic message grouping savings."""

from repro.optim.grouping import (grouped_bytes, grouping_savings,
                                  ungrouped_bytes)


class TestGrouping:
    def test_grouped_smaller_for_batches(self):
        message = {(v, "dist"): float(v) for v in range(50)}
        assert grouped_bytes(message) < ungrouped_bytes(message)

    def test_single_entry_no_benefit(self):
        message = {(1, "dist"): 2.0}
        assert grouped_bytes(message) == ungrouped_bytes(message)

    def test_savings_summary(self):
        messages = [{(v, "dist"): float(v) for v in range(20)}
                    for _ in range(5)]
        summary = grouping_savings(messages)
        assert summary["grouped_bytes"] < summary["ungrouped_bytes"]
        assert 0.0 < summary["savings_fraction"] < 1.0

    def test_empty_stream(self):
        summary = grouping_savings([])
        assert summary["savings_fraction"] == 0.0

    def test_empty_messages_skipped(self):
        summary = grouping_savings([{}, {}])
        assert summary["grouped_bytes"] == 0.0
