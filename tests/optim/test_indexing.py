"""Indexing optimizations: neighborhood candidate filter, 2-hop labels."""

import networkx as nx
import pytest

from repro.graph.generators import labeled_graph, random_dag, \
    uniform_random_graph
from repro.graph.graph import Graph
from repro.optim.indexing import (IndexedSimCandidates, NeighborhoodIndex,
                                  TwoHopIndex)
from repro.sequential.simulation import maximum_simulation


def make_pattern(nodes, edges):
    p = Graph(directed=True)
    for name, label in nodes:
        p.add_node(name, label)
    for u, v in edges:
        p.add_edge(u, v)
    return p


class TestNeighborhoodIndex:
    def test_filters_by_label(self, small_labeled):
        idx = NeighborhoodIndex(small_labeled)
        p = make_pattern([("u", "l0")], [])
        for v in idx.candidates(p)["u"]:
            assert small_labeled.node_label(v) == "l0"

    def test_filters_by_successor_labels(self):
        g = Graph()
        g.add_node(1, "a")
        g.add_node(2, "a")
        g.add_node(3, "b")
        g.add_edge(1, 3)  # only node 1 has a b-successor
        idx = NeighborhoodIndex(g)
        p = make_pattern([("u", "a"), ("w", "b")], [("u", "w")])
        assert idx.candidates(p)["u"] == {1}

    def test_never_removes_true_matches(self, small_labeled, path_pattern):
        """The filter is sound: final sim result uses only candidates."""
        idx = NeighborhoodIndex(small_labeled)
        cands = idx.candidates(path_pattern)
        truth = maximum_simulation(path_pattern, small_labeled)
        for u in path_pattern.nodes():
            assert truth[u] <= cands[u]

    def test_sim_with_index_same_answer(self, small_labeled, path_pattern):
        truth = maximum_simulation(path_pattern, small_labeled)
        indexed = maximum_simulation(
            path_pattern, small_labeled,
            candidates=NeighborhoodIndex(small_labeled).candidates(
                path_pattern))
        assert indexed == truth


class TestIndexedSimCandidates:
    def test_caches_per_graph(self, small_labeled, tiny_pattern):
        adapter = IndexedSimCandidates()
        adapter(tiny_pattern, small_labeled)
        assert id(small_labeled) in adapter._cache
        first = adapter._cache[id(small_labeled)]
        adapter(tiny_pattern, small_labeled)
        assert adapter._cache[id(small_labeled)] is first

    def test_grape_sim_with_index(self, small_labeled, path_pattern):
        from repro.core.engine import GrapeEngine
        from repro.pie_programs import SimProgram
        truth = maximum_simulation(path_pattern, small_labeled)
        program = SimProgram(candidate_index=IndexedSimCandidates())
        result = GrapeEngine(3).run(program, query=path_pattern,
                                    graph=small_labeled)
        assert result.answer == truth


class TestTwoHopIndex:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_matches_networkx_reachability(self, seed):
        g = uniform_random_graph(30, 70, seed=seed)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(g.nodes())
        nxg.add_edges_from((u, v) for u, v, _w in g.edges())
        idx = TwoHopIndex(g)
        closure = {v: nx.descendants(nxg, v) | {v} for v in g.nodes()}
        for u in g.nodes():
            for v in g.nodes():
                assert idx.reaches(u, v) == (v in closure[u])

    def test_dag_reachability(self):
        g = random_dag(25, 60, seed=3)
        idx = TwoHopIndex(g)
        # Edges are reachable by construction; a DAG never goes backwards.
        for u, v, _w in g.edges():
            assert idx.reaches(u, v)
            assert not idx.reaches(v, u)

    def test_self_reachability(self):
        g = Graph()
        g.add_node(1)
        assert TwoHopIndex(g).reaches(1, 1)

    def test_label_size_reported(self):
        g = uniform_random_graph(20, 40, seed=5)
        assert TwoHopIndex(g).label_size() > 0
