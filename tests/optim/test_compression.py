"""Query-preserving compression tests."""

import pytest

from repro.graph.builders import path_graph
from repro.graph.generators import labeled_graph
from repro.graph.graph import Graph
from repro.optim.compression import (bisimulation_compress, chain_compress,
                                     decompress_sim)
from repro.sequential.simulation import maximum_simulation
from repro.sequential.sssp import dijkstra


def make_pattern(nodes, edges):
    p = Graph(directed=True)
    for name, label in nodes:
        p.add_node(name, label)
    for u, v in edges:
        p.add_edge(u, v)
    return p


class TestBisimulationCompress:
    def test_merges_equivalent_leaves(self):
        g = Graph()
        g.add_node(0, "root")
        for i in (1, 2, 3):
            g.add_node(i, "leaf")
            g.add_edge(0, i)
        compressed, rep = bisimulation_compress(g)
        assert compressed.num_nodes == 2  # root + one leaf class
        assert len({rep[1], rep[2], rep[3]}) == 1

    def test_distinguishes_different_futures(self):
        g = Graph()
        g.add_node(1, "a")
        g.add_node(2, "a")
        g.add_node(3, "b")
        g.add_edge(1, 3)  # 1 has a b-successor, 2 does not
        compressed, rep = bisimulation_compress(g)
        assert rep[1] != rep[2]

    def test_never_larger(self, small_labeled):
        compressed, _rep = bisimulation_compress(small_labeled)
        assert compressed.num_nodes <= small_labeled.num_nodes

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sim_preserved(self, seed):
        """Q(G) is computable from the compressed graph without
        decompression (paper [20])."""
        g = labeled_graph(60, 150, num_labels=3, seed=seed)
        pattern = make_pattern([("u", "l0"), ("w", "l1")], [("u", "w")])
        compressed, rep = bisimulation_compress(g)
        direct = maximum_simulation(pattern, g)
        lifted = decompress_sim(maximum_simulation(pattern, compressed),
                                rep)
        assert lifted == direct


class TestChainCompress:
    def test_contracts_interior(self):
        g = Graph(directed=True)
        g.add_edge(0, 1, weight=1.0)
        g.add_edge(1, 2, weight=2.0)
        g.add_edge(2, 3, weight=3.0)
        g.add_edge(3, 4, weight=1.0)
        g.add_edge(0, 4, weight=100.0)  # keeps 0 and 4 as junctions
        compressed, offsets = chain_compress(g)
        assert not compressed.has_node(1)
        assert not compressed.has_node(2)
        assert compressed.has_edge(0, 4)

    def test_junction_distances_preserved(self):
        g = Graph(directed=True)
        g.add_edge(0, 1, weight=1.0)
        g.add_edge(1, 2, weight=2.0)
        g.add_edge(2, 3, weight=3.0)
        g.add_edge(0, 3, weight=100.0)
        compressed, _offsets = chain_compress(g)
        original = dijkstra(g, 0)
        reduced = dijkstra(compressed, 0)
        assert reduced[3] == pytest.approx(original[3])

    def test_offsets_reconstruct_interior(self):
        g = Graph(directed=True)
        g.add_edge(0, 1, weight=1.5)
        g.add_edge(1, 2, weight=2.5)
        g.add_edge(2, 3, weight=3.5)
        g.add_edge(0, 3, weight=50.0)
        _compressed, offsets = chain_compress(g)
        head, off = offsets[2]
        assert head == 0
        assert off == pytest.approx(4.0)  # 1.5 + 2.5

    def test_no_chains_is_identity_shape(self):
        # A directed triangle has no degree-(1,1) interior... each node has
        # in=1 and out=1, so use a star with branching instead.
        g = Graph(directed=True)
        g.add_edge(0, 1, weight=1.0)
        g.add_edge(0, 2, weight=1.0)
        g.add_edge(1, 3, weight=1.0)
        g.add_edge(1, 4, weight=1.0)  # node 1 has out-degree 2: no chain
        compressed, offsets = chain_compress(g)
        assert offsets == {}
        assert set(compressed.nodes()) == set(g.nodes())

    def test_diamond_parallel_chains_contract(self, diamond):
        # Diamond interior nodes 1 and 2 are (1,1)-degree: both contract,
        # and the cheapest parallel chain wins.
        compressed, offsets = chain_compress(diamond)
        assert set(offsets) == {1, 2}
        assert compressed.has_edge(0, 3)
        assert compressed.edge_weight(0, 3) == pytest.approx(3.0)
        reduced = dijkstra(compressed, 0)
        assert reduced[3] == pytest.approx(dijkstra(diamond, 0)[3])
