"""Property-based tests on the optimization layer."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graph.graph import Graph
from repro.optim.compression import bisimulation_compress, decompress_sim
from repro.optim.grouping import grouped_bytes, ungrouped_bytes
from repro.optim.indexing import NeighborhoodIndex
from repro.sequential.simulation import maximum_simulation


@st.composite
def labeled_digraphs(draw, max_nodes=12):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    g = Graph(directed=True)
    for v in range(n):
        g.add_node(v, draw(st.sampled_from(["a", "b", "c"])))
    for _ in range(draw(st.integers(min_value=0, max_value=3 * n))):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            g.add_edge(u, v)
    return g


@st.composite
def small_patterns(draw):
    p = Graph(directed=True)
    p.add_node("u", draw(st.sampled_from(["a", "b", "c"])))
    p.add_node("w", draw(st.sampled_from(["a", "b", "c"])))
    p.add_edge("u", "w")
    return p


@given(labeled_digraphs(), small_patterns())
@settings(max_examples=60, deadline=None)
def test_neighborhood_index_is_sound(g, pattern):
    """The candidate filter never removes a true match."""
    truth = maximum_simulation(pattern, g)
    candidates = NeighborhoodIndex(g).candidates(pattern)
    for u in pattern.nodes():
        assert truth[u] <= candidates[u]


@given(labeled_digraphs(), small_patterns())
@settings(max_examples=60, deadline=None)
def test_bisimulation_compression_preserves_sim(g, pattern):
    """Q(G) computed on the quotient and lifted equals the direct answer
    — the query-preserving property."""
    compressed, rep = bisimulation_compress(g)
    assert compressed.num_nodes <= g.num_nodes
    direct = maximum_simulation(pattern, g)
    lifted = decompress_sim(maximum_simulation(pattern, compressed), rep)
    assert lifted == direct


@given(st.dictionaries(
    keys=st.tuples(st.integers(0, 1000), st.just("dist")),
    values=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_grouping_never_costs_more(message):
    assert grouped_bytes(message) <= ungrouped_bytes(message)
