"""Tests for the CSR snapshot."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import uniform_random_graph
from repro.graph.graph import Graph


class TestCSRBasics:
    def test_from_empty_graph(self):
        csr = CSRGraph.from_graph(Graph())
        assert csr.n == 0
        assert csr.num_directed_edges == 0

    def test_counts(self, diamond):
        csr = diamond.to_csr()
        assert csr.n == 4
        assert csr.num_directed_edges == 5

    def test_out_neighbors_match(self, diamond):
        csr = diamond.to_csr()
        vid = csr.id_of[0]
        nbrs = {csr.node_of[int(i)] for i in csr.out_neighbors(vid)}
        assert nbrs == set(diamond.successors(0))

    def test_in_neighbors_match(self, diamond):
        csr = diamond.to_csr()
        vid = csr.id_of[3]
        nbrs = {csr.node_of[int(i)] for i in csr.in_neighbors(vid)}
        assert nbrs == set(diamond.predecessors(3))

    def test_degrees(self, diamond):
        csr = diamond.to_csr()
        for v in diamond.nodes():
            vid = csr.id_of[v]
            assert csr.out_degree(vid) == diamond.out_degree(v)
            assert csr.in_degree(vid) == diamond.in_degree(v)

    def test_weights_preserved(self, diamond):
        csr = diamond.to_csr()
        vid = csr.id_of[0]
        pairs = {csr.node_of[int(i)]: w
                 for i, w in zip(csr.out_neighbors(vid),
                                 csr.out_weights(vid))}
        assert pairs == dict(diamond.successors_with_weights(0))

    def test_in_weights_match_out_weights(self, diamond):
        csr = diamond.to_csr()
        vid = csr.id_of[3]
        pairs = {csr.node_of[int(i)]: w
                 for i, w in zip(csr.in_neighbors(vid), csr.in_weights(vid))}
        assert pairs == dict(diamond.predecessors_with_weights(3))

    def test_labels_carried(self):
        g = Graph()
        g.add_node("a", label="L")
        csr = g.to_csr()
        assert csr.labels[csr.id_of["a"]] == "L"

    def test_repr(self, diamond):
        assert "CSRGraph" in repr(diamond.to_csr())


class TestFromEdges:
    def test_directed_matches_graph_replay(self):
        edges = list(uniform_random_graph(50, 180, seed=8).edges())
        g = Graph(directed=True)
        for u, v, w in edges:
            g.add_edge(u, v, weight=w)
        a = CSRGraph.from_graph(g)
        b = CSRGraph.from_edges(edges, directed=True)
        assert a.node_of == b.node_of
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.weights, b.weights)
        assert np.array_equal(a.rev_indptr, b.rev_indptr)
        assert np.array_equal(a.rev_indices, b.rev_indices)

    def test_undirected_with_self_loop(self):
        edges = [(0, 1, 1.0), (1, 2, 2.0), (2, 2, 3.0)]
        g = Graph(directed=False)
        for u, v, w in edges:
            g.add_edge(u, v, weight=w)
        a = CSRGraph.from_graph(g)
        b = CSRGraph.from_edges(edges, directed=False)
        assert a.node_of == b.node_of
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.weights, b.weights)

    def test_explicit_nodes_and_labels(self):
        csr = CSRGraph.from_edges([("b", "a", 1.0)],
                                  nodes=["a", "b", "isolated"],
                                  labels={"a": "L", "isolated": "I"})
        assert csr.node_of == ["a", "b", "isolated"]
        assert csr.out_degree(csr.id_of["isolated"]) == 0
        assert csr.labels[csr.id_of["a"]] == "L"
        assert csr.labels[csr.id_of["b"]] is None

    def test_first_seen_id_order(self):
        csr = CSRGraph.from_edges([(7, 3, 1.0), (3, 9, 1.0)])
        assert csr.node_of == [7, 3, 9]


class TestRoundTrip:
    def test_directed_round_trip(self):
        g = uniform_random_graph(40, 120, seed=2)
        back = g.to_csr().to_graph()
        assert set(back.nodes()) == set(g.nodes())
        for u, v, w in g.edges():
            assert back.has_edge(u, v)
            assert back.edge_weight(u, v) == pytest.approx(w)

    def test_undirected_round_trip_edges(self):
        g = uniform_random_graph(30, 50, directed=False, seed=4)
        back = g.to_csr().to_graph()
        assert back.num_edges == g.num_edges
        for u, v, _w in g.edges():
            assert back.has_edge(u, v) and back.has_edge(v, u)

    def test_csr_arrays_consistent(self):
        g = uniform_random_graph(25, 60, seed=6)
        csr = g.to_csr()
        assert csr.indptr[-1] == csr.num_directed_edges
        assert csr.rev_indptr[-1] == csr.num_directed_edges
        # Every edge appears exactly once in forward and reverse arrays.
        fwd = sorted((int(csr.indptr[v]), int(i))
                     for v in range(csr.n)
                     for i in csr.out_neighbors(v))
        assert len(fwd) == csr.num_directed_edges


class TestArraySerialization:
    """to_arrays/from_arrays: the durable store's snapshot payload."""

    def test_round_trip(self):
        from repro.graph.generators import uniform_random_graph
        g = uniform_random_graph(40, 120, seed=6)
        csr = CSRGraph.from_graph(g)
        arrays = csr.to_arrays()
        assert set(arrays) == {"indptr", "indices", "weights"}
        back = CSRGraph.from_arrays(directed=csr.directed,
                                    node_of=csr.node_of,
                                    labels=csr.labels, **arrays)
        assert back.n == csr.n
        assert (back.indptr == csr.indptr).all()
        assert (back.indices == csr.indices).all()
        assert (back.weights == csr.weights).all()
        # the reverse structure is re-derived, not stored
        assert (back.rev_indptr == csr.rev_indptr).all()
        assert (back.rev_indices == csr.rev_indices).all()
        assert (back.rev_weights == csr.rev_weights).all()
        assert back.id_of == csr.id_of
        assert back.to_graph() == csr.to_graph()

    def test_undirected_round_trip(self):
        from repro.graph.generators import uniform_random_graph
        g = uniform_random_graph(30, 50, directed=False, seed=2)
        csr = CSRGraph.from_graph(g)
        back = CSRGraph.from_arrays(directed=False, node_of=csr.node_of,
                                    labels=csr.labels, **csr.to_arrays())
        assert back.to_graph() == g

    def test_indptr_length_validated(self):
        import numpy as np
        with pytest.raises(ValueError, match="indptr"):
            CSRGraph.from_arrays(directed=True,
                                 indptr=np.array([0, 1]),
                                 indices=np.array([0]),
                                 weights=np.array([1.0]),
                                 node_of=[1, 2, 3])
