"""Tests for graph builders."""

import pytest

from repro.graph import builders


class TestFromEdges:
    def test_basic(self):
        g = builders.from_edges([(1, 2), (2, 3)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_with_node_labels(self):
        g = builders.from_edges([(1, 2)], node_labels={1: "a", 3: "c"})
        assert g.node_label(1) == "a"
        assert g.has_node(3)  # label-only node gets created

    def test_undirected(self):
        g = builders.from_edges([(1, 2)], directed=False)
        assert g.has_edge(2, 1)


class TestFromWeightedEdges:
    def test_weights(self):
        g = builders.from_weighted_edges([(1, 2, 3.5)])
        assert g.edge_weight(1, 2) == 3.5


class TestFromAdjacency:
    def test_basic(self):
        g = builders.from_adjacency({1: [2, 3], 2: [3], 4: []})
        assert g.num_edges == 3
        assert g.has_node(4)
        assert g.out_degree(4) == 0


class TestShapes:
    def test_path(self):
        g = builders.path_graph(5)
        assert g.num_nodes == 5
        assert g.num_edges == 4
        assert g.has_edge(0, 1) and g.has_edge(1, 0)  # undirected default

    def test_path_directed(self):
        g = builders.path_graph(4, directed=True)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_cycle(self):
        g = builders.cycle_graph(4)
        assert g.num_edges == 4
        assert g.has_edge(3, 0)

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            builders.cycle_graph(2)

    def test_complete_undirected(self):
        g = builders.complete_graph(4)
        assert g.num_edges == 6

    def test_complete_directed(self):
        g = builders.complete_graph(4, directed=True)
        assert g.num_edges == 12

    def test_star(self):
        g = builders.star_graph(5)
        assert g.num_nodes == 6
        assert g.degree(0) == 5
