"""GraphDelta: dedup, classification, invertibility, replay."""

import pytest

from repro.core.engine import GrapeEngine
from repro.core.updates import apply_delta
from repro.graph.delta import FragmentDelta, GraphDelta
from repro.graph.generators import uniform_random_graph
from repro.graph.graph import Graph


def line_graph(directed=True):
    g = Graph(directed=directed)
    g.add_edge("a", "b", weight=1.0)
    g.add_edge("b", "c", weight=2.0)
    g.add_edge("c", "d", weight=3.0)
    return g


class TestNormalization:
    def test_classification(self):
        g = line_graph()
        norm = (GraphDelta()
                .insert("a", "c", 5.0)        # brand-new
                .insert("a", "b", 0.5)        # decrease (1.0 -> 0.5)
                .set_weight("b", "c", 9.0)    # increase (2.0 -> 9.0)
                .delete("c", "d")             # deletion
                .normalize(g))
        assert norm.insertions == {("a", "c"): 5.0}
        assert norm.decreases == {("a", "b"): (1.0, 0.5)}
        assert norm.increases == {("b", "c"): (2.0, 9.0)}
        assert norm.deletions == {("c", "d"): 3.0}
        assert not norm.monotone

    def test_last_write_wins(self):
        g = line_graph()
        norm = (GraphDelta()
                .delete("a", "b")
                .insert("a", "b", 0.25)       # overrides the delete
                .insert("x", "y", 1.0)
                .delete("x", "y")             # net no-op on absent edge
                .normalize(g))
        assert norm.decreases == {("a", "b"): (1.0, 0.25)}
        assert not norm.deletions and not norm.insertions

    def test_noops_dropped(self):
        g = line_graph()
        norm = (GraphDelta()
                .insert("a", "b", 1.0)        # exact duplicate
                .set_weight("b", "c", 2.0)    # same weight
                .delete("no", "edge")         # absent
                .normalize(g))
        assert not norm
        assert norm.monotone  # vacuously

    def test_undirected_orientations_unify(self):
        g = Graph(directed=False)
        g.add_edge(1, 2, weight=4.0)
        norm = (GraphDelta()
                .set_weight(2, 1, 3.0)
                .set_weight(1, 2, 2.0)        # same edge, later wins
                .normalize(g))
        assert len(norm.decreases) == 1
        ((_edge, (old, new)),) = norm.decreases.items()
        assert (old, new) == (4.0, 2.0)

    def test_set_weight_on_missing_edge_is_insertion(self):
        norm = GraphDelta().set_weight("a", "z", 7.0).normalize(line_graph())
        assert norm.insertions == {("a", "z"): 7.0}

    def test_monotone_predicate(self):
        g = line_graph()
        assert GraphDelta().insert("a", "z", 1.0).normalize(g).monotone
        assert GraphDelta().insert("a", "b", 0.1).normalize(g).monotone
        assert not GraphDelta().delete("a", "b").normalize(g).monotone
        assert not GraphDelta().set_weight("a", "b", 9.0) \
            .normalize(g).monotone


class TestInvertibility:
    @pytest.mark.parametrize("directed", [True, False])
    def test_apply_then_invert_restores_edges(self, directed):
        g = uniform_random_graph(30, 80, directed=directed, seed=2)
        before = g.copy()
        edges = list(g.edges())
        delta = (GraphDelta()
                 .insert(0, 1, 0.123)
                 .delete(*edges[0][:2])
                 .delete(*edges[5][:2])
                 .set_weight(edges[8][0], edges[8][1], edges[8][2] * 3))
        norm = delta.normalize(g)
        norm.apply_to(g)
        assert g != before
        norm.invert().normalize(g).apply_to(g)
        # Edge sets and weights restored (invert does not remove nodes
        # created by the forward pass; none were created here).
        assert g == before


class TestFragmentDeltaReplay:
    def test_replay_reproduces_coordinator_fragment(self):
        """A copy of each fragment, brought current by FragmentDelta
        replay, must equal the mutated original — graph, owned, borders."""
        import pickle

        g = uniform_random_graph(40, 130, seed=11)
        frag = GrapeEngine(3).make_fragmentation(g)
        copies = {f.fid: pickle.loads(pickle.dumps(f)) for f in frag}

        edges = list(g.edges())
        delta = (GraphDelta()
                 .insert(0, "fresh", 0.7)
                 .insert("fresh", 1, 0.4)
                 .delete(*edges[0][:2])
                 .delete(*edges[7][:2])
                 .set_weight(edges[3][0], edges[3][1], edges[3][2] * 2)
                 .insert(2, 3, 0.01))
        touched = apply_delta(frag, delta)
        assert touched

        for fid, fragment_delta in touched.items():
            assert isinstance(fragment_delta, FragmentDelta)
            fragment_delta.replay(copies[fid])
        for f in frag:
            copy = copies[f.fid]
            assert copy.graph == f.graph
            assert copy.owned == f.owned
            assert copy.inner == f.inner
            assert copy.outer == f.outer

    def test_seq_stamped_with_fragmentation_version(self):
        g = uniform_random_graph(20, 50, seed=1)
        frag = GrapeEngine(2).make_fragmentation(g)
        v0 = frag.version
        touched = apply_delta(frag, GraphDelta().insert(0, 1, 0.5)
                              if not g.has_edge(0, 1)
                              else GraphDelta().insert(0, 1, 0.01))
        assert frag.version == v0 + 1
        for d in touched.values():
            assert d.seq == frag.version

    def test_replay_chain_and_gap(self):
        g = uniform_random_graph(20, 50, seed=1)
        frag = GrapeEngine(2).make_fragmentation(g)
        base = frag.version
        apply_delta(frag, GraphDelta().insert("n1", 0, 1.0))
        apply_delta(frag, GraphDelta().insert("n2", 0, 1.0))
        chain = frag.replay_chain(base, frag.version,
                                  [f.fid for f in frag])
        assert chain is not None
        assert all(len(ds) >= 1 for ds in chain.values())
        # A bump without a logged delta creates a gap: full re-ship.
        frag.bump_version()
        assert frag.replay_chain(base, frag.version,
                                 [f.fid for f in frag]) is None
        # But chains starting after the gap resolve again.
        after = frag.version
        apply_delta(frag, GraphDelta().insert("n3", 0, 1.0))
        assert frag.replay_chain(after, frag.version,
                                 [f.fid for f in frag]) is not None


class TestGraphSetEdgeWeight:
    def test_set_edge_weight_directed(self):
        g = line_graph()
        g.set_edge_weight("a", "b", 8.0)
        assert g.edge_weight("a", "b") == 8.0
        with pytest.raises(KeyError):
            g.set_edge_weight("a", "zzz", 1.0)

    def test_set_edge_weight_undirected_sets_both(self):
        g = Graph(directed=False)
        g.add_edge(1, 2, weight=1.0)
        g.set_edge_weight(2, 1, 5.0)
        assert g.edge_weight(1, 2) == 5.0
        assert g.edge_weight(2, 1) == 5.0
