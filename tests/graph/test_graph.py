"""Unit tests for the core Graph structure."""

import pytest

from repro.graph.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert list(g.nodes()) == []
        assert list(g.edges()) == []

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node(1, label="a")
        g.add_node(1)
        assert g.num_nodes == 1
        assert g.node_label(1) == "a"

    def test_add_node_label_update(self):
        g = Graph()
        g.add_node(1, label="a")
        g.add_node(1, label="b")
        assert g.node_label(1) == "b"

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge("x", "y", weight=2.5)
        assert g.has_node("x") and g.has_node("y")
        assert g.has_edge("x", "y")
        assert g.edge_weight("x", "y") == 2.5

    def test_directed_edge_one_way(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)

    def test_undirected_edge_both_ways(self):
        g = Graph(directed=False)
        g.add_edge(1, 2, weight=3.0)
        assert g.has_edge(1, 2) and g.has_edge(2, 1)
        assert g.edge_weight(2, 1) == 3.0
        assert g.num_edges == 1

    def test_readd_edge_overwrites_weight(self):
        g = Graph()
        g.add_edge(1, 2, weight=1.0)
        g.add_edge(1, 2, weight=9.0)
        assert g.edge_weight(1, 2) == 9.0
        assert g.num_edges == 1

    def test_edge_labels(self):
        g = Graph()
        g.add_edge(1, 2, label="knows")
        assert g.edge_label(1, 2) == "knows"
        assert g.edge_label(2, 1) is None

    def test_undirected_edge_label_symmetric(self):
        g = Graph(directed=False)
        g.add_edge(1, 2, label="friend")
        assert g.edge_label(2, 1) == "friend"

    def test_set_node_label_missing_raises(self):
        g = Graph()
        with pytest.raises(KeyError):
            g.set_node_label(42, "x")

    def test_self_loop(self):
        g = Graph()
        g.add_edge(1, 1)
        assert g.has_edge(1, 1)
        assert g.num_edges == 1


class TestRemoval:
    def test_remove_edge(self):
        g = Graph()
        g.add_edge(1, 2)
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.has_node(1) and g.has_node(2)

    def test_remove_edge_missing_raises(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2)
        with pytest.raises(KeyError):
            g.remove_edge(1, 2)

    def test_remove_undirected_edge(self):
        g = Graph(directed=False)
        g.add_edge(1, 2)
        g.remove_edge(2, 1)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 0

    def test_remove_node_removes_incident_edges(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(3, 1)
        g.remove_node(2)
        assert not g.has_node(2)
        assert g.has_edge(3, 1)
        assert g.num_edges == 1

    def test_remove_node_with_self_loop(self):
        g = Graph()
        g.add_edge(1, 1)
        g.remove_node(1)
        assert g.num_nodes == 0


class TestQueries:
    def test_degrees_directed(self, diamond):
        assert diamond.out_degree(0) == 3
        assert diamond.in_degree(3) == 3
        assert diamond.degree(0) == 3

    def test_degrees_undirected(self):
        g = Graph(directed=False)
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        assert g.degree(1) == 2
        assert g.out_degree(1) == 2  # symmetric storage

    def test_successors_predecessors(self, diamond):
        assert set(diamond.successors(0)) == {1, 2, 3}
        assert set(diamond.predecessors(3)) == {1, 2, 0}

    def test_neighbors_directed_union(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(3, 1)
        assert set(g.neighbors(1)) == {2, 3}

    def test_successors_with_weights(self, diamond):
        weights = dict(diamond.successors_with_weights(0))
        assert weights == {1: 1.0, 2: 4.0, 3: 10.0}

    def test_edges_iteration_directed(self, diamond):
        assert len(list(diamond.edges())) == 5

    def test_edges_iteration_undirected_once(self):
        g = Graph(directed=False)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        edges = list(g.edges())
        assert len(edges) == 2

    def test_contains_len_iter(self, diamond):
        assert 0 in diamond
        assert 99 not in diamond
        assert len(diamond) == 4
        assert set(iter(diamond)) == {0, 1, 2, 3}

    def test_repr(self, diamond):
        assert "nodes=4" in repr(diamond)


class TestDerivedGraphs:
    def test_induced_subgraph(self, diamond):
        sub = diamond.induced_subgraph([0, 1, 3])
        assert set(sub.nodes()) == {0, 1, 3}
        assert sub.has_edge(0, 1) and sub.has_edge(1, 3)
        assert sub.has_edge(0, 3)
        assert not sub.has_node(2)

    def test_induced_subgraph_preserves_labels(self):
        g = Graph()
        g.add_node(1, "a")
        g.add_edge(1, 2, weight=5.0, label="e")
        sub = g.induced_subgraph([1, 2])
        assert sub.node_label(1) == "a"
        assert sub.edge_label(1, 2) == "e"
        assert sub.edge_weight(1, 2) == 5.0

    def test_induced_subgraph_missing_node_raises(self, diamond):
        with pytest.raises(KeyError):
            diamond.induced_subgraph([0, 42])

    def test_subgraph_with_edges_not_induced(self, diamond):
        sub = diamond.subgraph_with_edges([0, 1, 3], [(0, 1)])
        assert sub.has_edge(0, 1)
        assert not sub.has_edge(1, 3)

    def test_reverse(self, diamond):
        rev = diamond.reverse()
        assert rev.has_edge(1, 0)
        assert not rev.has_edge(0, 1)
        assert rev.num_edges == diamond.num_edges

    def test_reverse_twice_is_identity(self, diamond):
        assert diamond.reverse().reverse() == diamond

    def test_copy_independent(self, diamond):
        dup = diamond.copy()
        assert dup == diamond
        dup.add_edge(3, 0)
        assert not diamond.has_edge(3, 0)

    def test_equality_considers_labels(self):
        a = Graph()
        a.add_node(1, "x")
        b = Graph()
        b.add_node(1, "y")
        assert a != b

    def test_equality_considers_direction(self):
        a = Graph(directed=True)
        b = Graph(directed=False)
        assert a != b

    def test_equality_considers_weights(self):
        a = Graph()
        a.add_edge(1, 2, weight=1.0)
        b = Graph()
        b.add_edge(1, 2, weight=2.0)
        assert a != b


class TestContentHash:
    """Order-independent integrity hash (store snapshot verification)."""

    def test_insertion_order_does_not_matter(self):
        a = Graph()
        a.add_edge(1, 2, weight=1.0)
        a.add_edge(2, 3, weight=2.0)
        a.add_node(9, "lbl")
        b = Graph()
        b.add_node(9, "lbl")
        b.add_edge(2, 3, weight=2.0)
        b.add_edge(1, 2, weight=1.0)
        assert a == b
        assert a.content_hash() == b.content_hash()

    def test_undirected_insertion_order(self):
        a = Graph(directed=False)
        a.add_edge("x", "y", weight=1.5)
        a.add_edge("y", "z", weight=2.5)
        b = Graph(directed=False)
        b.add_edge("z", "y", weight=2.5)
        b.add_edge("y", "x", weight=1.5)
        assert a == b
        assert a.content_hash() == b.content_hash()

    def test_weight_changes_hash(self):
        a = Graph()
        a.add_edge(1, 2, weight=1.0)
        b = Graph()
        b.add_edge(1, 2, weight=2.0)
        assert a.content_hash() != b.content_hash()

    def test_labels_change_hash(self):
        a = Graph()
        a.add_node(1, "x")
        b = Graph()
        b.add_node(1, "y")
        assert a.content_hash() != b.content_hash()

    def test_edge_label_changes_hash(self):
        a = Graph()
        a.add_edge(1, 2, label="r")
        b = Graph()
        b.add_edge(1, 2)
        assert a.content_hash() != b.content_hash()

    def test_directedness_changes_hash(self):
        a = Graph(directed=True)
        a.add_node(1)
        b = Graph(directed=False)
        b.add_node(1)
        assert a.content_hash() != b.content_hash()

    def test_stable_across_mutation_round_trip(self):
        g = Graph()
        g.add_edge(1, 2, weight=1.0)
        before = g.content_hash()
        g.add_edge(2, 3, weight=5.0)
        assert g.content_hash() != before
        g.remove_node(3)  # drops the edge and the node it created
        assert g.content_hash() == before

    def test_stable_across_processes_seeded(self):
        """The hash must not depend on PYTHONHASHSEED (it keys snapshot
        integrity across processes) — string ids exercise that."""
        import subprocess, sys, os
        code = ("import sys; sys.path.insert(0, 'src');"
                "from repro.graph.graph import Graph;"
                "g = Graph(); g.add_edge('a', 'b', weight=2.0);"
                "print(g.content_hash())")
        outs = set()
        for seed in ("0", "1", "271828"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            outs.add(subprocess.run(
                [sys.executable, "-c", code], env=env, cwd=".",
                capture_output=True, text=True, check=True).stdout.strip())
        assert len(outs) == 1
