"""Tests for edge-list I/O."""

import io

import pytest

from repro.graph import io as gio
from repro.graph.generators import labeled_graph, uniform_random_graph
from repro.graph.graph import Graph


class TestRoundTrip:
    def test_string_round_trip(self):
        g = uniform_random_graph(25, 60, seed=1)
        assert gio.loads(gio.dumps(g)) == g

    def test_labeled_round_trip(self):
        g = labeled_graph(20, 40, num_labels=3, seed=2)
        assert gio.loads(gio.dumps(g)) == g

    def test_undirected_round_trip(self):
        g = uniform_random_graph(15, 25, directed=False, seed=3)
        back = gio.loads(gio.dumps(g))
        assert back == g
        assert not back.directed

    def test_file_round_trip(self, tmp_path):
        g = uniform_random_graph(10, 20, seed=4)
        path = tmp_path / "graph.txt"
        gio.write_edge_list(g, path)
        assert gio.read_edge_list(path) == g

    def test_text_handle_round_trip(self):
        g = uniform_random_graph(10, 15, seed=5)
        buf = io.StringIO()
        gio.write_edge_list(g, buf)
        buf.seek(0)
        assert gio.read_edge_list(buf) == g

    def test_edge_labels_round_trip(self):
        g = Graph()
        g.add_edge(1, 2, weight=2.5, label="road")
        back = gio.loads(gio.dumps(g))
        assert back.edge_label(1, 2) == "road"
        assert back.edge_weight(1, 2) == 2.5

    def test_string_node_ids(self):
        g = Graph()
        g.add_edge("alpha", "beta")
        back = gio.loads(gio.dumps(g))
        assert back.has_edge("alpha", "beta")

    def test_isolated_nodes_preserved(self):
        g = Graph()
        g.add_node(7)
        g.add_node(8, "lonely")
        back = gio.loads(gio.dumps(g))
        assert back.has_node(7) and back.node_label(8) == "lonely"


class TestErrors:
    def test_unknown_record_kind(self):
        with pytest.raises(ValueError):
            gio.loads("# directed=true\nX\t1\t2\n")

    def test_blank_lines_skipped(self):
        g = gio.loads("# directed=true\nN\t1\n\nN\t2\nE\t1\t2\t1.0\n")
        assert g.has_edge(1, 2)
