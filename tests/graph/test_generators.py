"""Tests for synthetic graph generators."""

import math

import pytest

from repro.graph import generators as gen


class TestUniformRandom:
    def test_counts(self):
        g = gen.uniform_random_graph(50, 120, seed=1)
        assert g.num_nodes == 50
        assert g.num_edges == 120

    def test_deterministic(self):
        a = gen.uniform_random_graph(30, 60, seed=7)
        b = gen.uniform_random_graph(30, 60, seed=7)
        assert a == b

    def test_seed_changes_graph(self):
        a = gen.uniform_random_graph(30, 60, seed=7)
        b = gen.uniform_random_graph(30, 60, seed=8)
        assert a != b

    def test_no_self_loops(self):
        g = gen.uniform_random_graph(20, 50, seed=2)
        assert all(u != v for u, v, _w in g.edges())

    def test_caps_at_max_edges(self):
        g = gen.uniform_random_graph(4, 1000, seed=3)
        assert g.num_edges == 12  # 4*3 directed pairs

    def test_undirected(self):
        g = gen.uniform_random_graph(20, 30, directed=False, seed=4)
        assert g.num_edges == 30
        for u, v, _w in g.edges():
            assert g.has_edge(v, u)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            gen.uniform_random_graph(1, 5)


class TestPreferentialAttachment:
    def test_size(self):
        g = gen.preferential_attachment(100, edges_per_node=3, seed=1)
        assert g.num_nodes == 100

    def test_heavy_tail(self):
        g = gen.preferential_attachment(400, edges_per_node=3, seed=5)
        degrees = sorted((g.degree(v) for v in g.nodes()), reverse=True)
        # Hubs exist: the max degree is far above the median.
        assert degrees[0] > 4 * degrees[len(degrees) // 2]

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            gen.preferential_attachment(3, edges_per_node=3)

    def test_deterministic(self):
        a = gen.preferential_attachment(50, seed=9)
        b = gen.preferential_attachment(50, seed=9)
        assert a == b


class TestGridRoad:
    def test_size(self):
        g = gen.grid_road_graph(5, 7, seed=1)
        assert g.num_nodes == 35

    def test_two_way_roads(self):
        g = gen.grid_road_graph(4, 4, seed=2)
        for u, v, _w in list(g.edges()):
            assert g.has_edge(v, u)

    def test_positive_weights(self):
        g = gen.grid_road_graph(4, 4, seed=3)
        assert all(w > 0 for _u, _v, w in g.edges())

    def test_large_diameter(self):
        """Grid diameter grows with side length — the traffic property."""
        from repro.sequential.sssp import dijkstra
        g = gen.grid_road_graph(12, 12, shortcut_prob=0.0, seed=4)
        dist = dijkstra(g, 0)
        hops = max(v for v in dist.values() if v < math.inf)
        assert hops > 15  # weighted; at least ~ side length


class TestBipartiteRatings:
    def test_shapes(self):
        g, uf, itf = gen.bipartite_ratings_graph(20, 10, 100, seed=1)
        users = [v for v in g.nodes() if g.node_label(v) == "user"]
        items = [v for v in g.nodes() if g.node_label(v) == "item"]
        assert len(users) == 20 and len(items) == 10
        assert g.num_edges == 100
        assert uf.shape == (20, 8) and itf.shape == (10, 8)

    def test_edges_go_user_to_item(self):
        g, _u, _i = gen.bipartite_ratings_graph(10, 5, 30, seed=2)
        for u, p, _w in g.edges():
            assert u[0] == "u" and p[0] == "p"

    def test_planted_structure(self):
        """Low noise ratings should correlate with planted factors."""
        g, uf, itf = gen.bipartite_ratings_graph(15, 8, 60, noise=0.01,
                                                 seed=3)
        for (tag_u, ui), (tag_p, pi), rating in g.edges():
            planted = float(uf[ui] @ itf[pi])
            assert abs(rating - planted) < 0.1


class TestLabels:
    def test_assign_labels(self):
        g = gen.uniform_random_graph(20, 30, seed=1)
        gen.assign_labels(g, ["a", "b"], seed=2)
        assert all(g.node_label(v) in ("a", "b") for v in g.nodes())

    def test_labeled_graph_alphabet(self):
        g = gen.labeled_graph(40, 80, num_labels=5, seed=1)
        labels = {g.node_label(v) for v in g.nodes()}
        assert labels <= {f"l{i}" for i in range(5)}


class TestRandomDAG:
    def test_acyclic(self):
        g = gen.random_dag(30, 80, seed=1)
        assert all(u < v for u, v, _w in g.edges())

    def test_counts(self):
        g = gen.random_dag(20, 40, seed=2)
        assert g.num_nodes == 20
        assert g.num_edges == 40
