"""Property-based tests on the graph substrate (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graph import io as gio
from repro.graph.graph import Graph


@st.composite
def random_graphs(draw, max_nodes=12, directed=None):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    if directed is None:
        directed = draw(st.booleans())
    g = Graph(directed=directed)
    labels = ["a", "b", "c"]
    for v in range(n):
        g.add_node(v, draw(st.sampled_from(labels)))
    num_edges = draw(st.integers(min_value=0, max_value=3 * n))
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            w = draw(st.floats(min_value=0.1, max_value=10.0,
                               allow_nan=False))
            g.add_edge(u, v, weight=w)
    return g


@given(random_graphs())
@settings(max_examples=60, deadline=None)
def test_copy_equals_original(g):
    assert g.copy() == g


@given(random_graphs(directed=True))
@settings(max_examples=60, deadline=None)
def test_reverse_involution(g):
    assert g.reverse().reverse() == g


@given(random_graphs(directed=True))
@settings(max_examples=60, deadline=None)
def test_reverse_swaps_degrees(g):
    rev = g.reverse()
    for v in g.nodes():
        assert rev.in_degree(v) == g.out_degree(v)
        assert rev.out_degree(v) == g.in_degree(v)


@given(random_graphs())
@settings(max_examples=60, deadline=None)
def test_io_round_trip(g):
    assert gio.loads(gio.dumps(g)) == g


@given(random_graphs(directed=True))
@settings(max_examples=60, deadline=None)
def test_csr_round_trip(g):
    back = g.to_csr().to_graph()
    assert set(back.nodes()) == set(g.nodes())
    fwd = {(u, v): w for u, v, w in g.edges()}
    back_edges = {(u, v): w for u, v, w in back.edges()}
    assert set(fwd) == set(back_edges)


@given(random_graphs())
@settings(max_examples=60, deadline=None)
def test_induced_subgraph_of_all_nodes_keeps_edges(g):
    sub = g.induced_subgraph(list(g.nodes()))
    assert set(sub.nodes()) == set(g.nodes())
    assert sub.num_edges == g.num_edges


@given(random_graphs())
@settings(max_examples=60, deadline=None)
def test_degree_sum_matches_edges(g):
    if g.directed:
        assert sum(g.out_degree(v) for v in g.nodes()) == g.num_edges
        assert sum(g.in_degree(v) for v in g.nodes()) == g.num_edges
    else:
        # Each undirected edge contributes 2 to the degree sum.
        assert sum(g.degree(v) for v in g.nodes()) == 2 * g.num_edges
