"""Tests for fragments, fragmentation and the fragmentation graph G_P."""

import pytest

from repro.graph.builders import from_weighted_edges, path_graph
from repro.graph.generators import uniform_random_graph
from repro.graph.graph import Graph
from repro.partition.base import (build_edge_cut_fragments,
                                  build_vertex_cut_fragments, cut_edges,
                                  replication_factor)


@pytest.fixture
def chain():
    """Directed path 0 -> 1 -> 2 -> 3 split into two fragments."""
    g = path_graph(4, directed=True)
    frag = build_edge_cut_fragments(g, {0: 0, 1: 0, 2: 1, 3: 1}, 2)
    return g, frag


class TestEdgeCutFragments:
    def test_owned_cover(self, chain):
        g, frag = chain
        owned = set()
        for f in frag:
            owned |= f.owned
        assert owned == set(g.nodes())

    def test_border_sets(self, chain):
        _g, frag = chain
        f0, f1 = frag[0], frag[1]
        # Edge 1 -> 2 crosses: 2 is F0.O (copy at 0) and F1.I (owned at 1).
        assert f0.outer == {2}
        assert f0.inner == set()
        assert f1.inner == {2}
        assert f1.outer == set()

    def test_copy_has_edge(self, chain):
        _g, frag = chain
        assert frag[0].graph.has_edge(1, 2)  # cut edge stored at owner of 1

    def test_border_nodes_union(self, chain):
        _g, frag = chain
        assert frag[0].border_nodes == {2}

    def test_validate_passes(self, chain):
        _g, frag = chain
        frag.validate()

    def test_fragment_of(self, chain):
        _g, frag = chain
        assert frag.fragment_of(1).fid == 0
        assert frag.fragment_of(2).fid == 1

    def test_missing_assignment_raises(self):
        g = path_graph(3, directed=True)
        with pytest.raises(ValueError):
            build_edge_cut_fragments(g, {0: 0, 1: 0}, 2)

    def test_out_of_range_fid_raises(self):
        g = path_graph(2, directed=True)
        with pytest.raises(ValueError):
            build_edge_cut_fragments(g, {0: 0, 1: 5}, 2)

    def test_undirected_cross_edge_present_in_both(self):
        g = path_graph(3, directed=False)
        frag = build_edge_cut_fragments(g, {0: 0, 1: 0, 2: 1}, 2)
        assert frag[0].graph.has_edge(1, 2)
        assert frag[1].graph.has_edge(2, 1)
        assert 2 in frag[0].outer
        assert 1 in frag[1].outer

    def test_single_fragment_no_borders(self):
        g = uniform_random_graph(20, 40, seed=1)
        frag = build_edge_cut_fragments(g, {v: 0 for v in g.nodes()}, 1)
        assert frag[0].inner == set() and frag[0].outer == set()
        frag.validate()

    def test_fragment_repr(self, chain):
        assert "Fragment(fid=0" in repr(chain[1][0])


class TestFragmentationGraph:
    def test_owner(self, chain):
        _g, frag = chain
        assert frag.gp.owner(2) == 1

    def test_holders(self, chain):
        _g, frag = chain
        assert frag.gp.holders(2) == frozenset({0, 1})
        assert frag.gp.holders(0) == frozenset({0})

    def test_pairs(self, chain):
        _g, frag = chain
        assert frag.gp.pairs(2) == [(0, 1)]

    def test_destinations(self, chain):
        _g, frag = chain
        assert frag.gp.destinations(2, from_fragment=0) == frozenset({1})
        assert frag.gp.destinations(2, from_fragment=1) == frozenset({0})

    def test_border_nodes_iter(self, chain):
        _g, frag = chain
        assert set(frag.gp.border_nodes()) == {2}

    def test_contains(self, chain):
        _g, frag = chain
        assert 2 in frag.gp
        assert "nope" not in frag.gp


class TestVertexCut:
    def test_basic_replication(self):
        g = from_weighted_edges([(0, 1, 1.0), (1, 2, 1.0)])
        frag = build_vertex_cut_fragments(g, {(0, 1): 0, (1, 2): 1}, 2)
        # Node 1 is replicated in both fragments.
        assert frag[0].graph.has_node(1) and frag[1].graph.has_node(1)
        assert frag.gp.holders(1) == frozenset({0, 1})
        frag.validate()

    def test_master_is_min_fid(self):
        g = from_weighted_edges([(0, 1, 1.0), (1, 2, 1.0)])
        frag = build_vertex_cut_fragments(g, {(0, 1): 1, (1, 2): 0}, 2)
        assert frag.gp.owner(1) == 0

    def test_isolated_nodes_go_to_fragment_zero(self):
        g = Graph(directed=True)
        g.add_node("solo")
        g.add_edge(1, 2)
        frag = build_vertex_cut_fragments(g, {(1, 2): 1}, 2)
        assert frag.gp.owner("solo") == 0

    def test_replication_factor(self):
        g = from_weighted_edges([(0, 1, 1.0), (1, 2, 1.0)])
        frag = build_vertex_cut_fragments(g, {(0, 1): 0, (1, 2): 1}, 2)
        assert replication_factor(frag) == pytest.approx(4 / 3)


class TestCutEdges:
    def test_counts_cross_edges(self):
        g = path_graph(4, directed=True)
        assert cut_edges(g, {0: 0, 1: 0, 2: 1, 3: 1}) == 1
        assert cut_edges(g, {0: 0, 1: 1, 2: 0, 3: 1}) == 3
        assert cut_edges(g, {v: 0 for v in g.nodes()}) == 0
