"""Property-based tests: partition invariants hold for random graphs and
every strategy (paper Section 2's partition definition)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graph.graph import Graph
from repro.partition.strategies import (GridPartition, HashPartition,
                                        MetisLikePartition, RangePartition,
                                        StreamingPartition,
                                        VertexCutPartition)

STRATEGIES = [HashPartition(), RangePartition(), GridPartition(),
              StreamingPartition(), MetisLikePartition(),
              VertexCutPartition()]


@st.composite
def graphs_and_m(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    directed = draw(st.booleans())
    g = Graph(directed=directed)
    for v in range(n):
        g.add_node(v)
    for _ in range(draw(st.integers(min_value=0, max_value=3 * n))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            g.add_edge(u, v)
    m = draw(st.integers(min_value=1, max_value=min(4, n)))
    idx = draw(st.integers(min_value=0, max_value=len(STRATEGIES) - 1))
    return g, m, STRATEGIES[idx]


@given(graphs_and_m())
@settings(max_examples=80, deadline=None)
def test_partition_invariants(case):
    """V and E are covered, owners are unique, border sets consistent."""
    g, m, strategy = case
    frag = strategy.partition(g, m)
    frag.validate()

    # Every node has exactly one owner.
    owners = {}
    for f in frag:
        for v in f.owned:
            assert v not in owners, "double ownership"
            owners[v] = f.fid
    assert set(owners) == set(g.nodes())

    # G_P holders include the owner.
    for v in g.nodes():
        assert frag.gp.owner(v) in frag.gp.holders(v)

    # Border nodes are exactly the multi-holder nodes.
    multi = {v for v in g.nodes() if len(frag.gp.holders(v)) > 1}
    assert set(frag.gp.border_nodes()) == multi


@given(graphs_and_m())
@settings(max_examples=80, deadline=None)
def test_every_edge_in_some_fragment(case):
    g, m, strategy = case
    frag = strategy.partition(g, m)
    for u, v, w in g.edges():
        found = any(f.graph.has_edge(u, v) for f in frag)
        assert found, f"edge {(u, v)} lost by {strategy.name}"
