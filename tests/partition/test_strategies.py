"""Tests for the built-in partition strategies."""

import pytest

from repro.graph.generators import (preferential_attachment,
                                    uniform_random_graph)
from repro.partition.base import cut_edges, replication_factor
from repro.partition.strategies import (STRATEGIES, GridPartition,
                                        HashPartition, MetisLikePartition,
                                        RangePartition, StreamingPartition,
                                        VertexCutPartition, get_strategy)

EDGE_CUT_STRATEGIES = [HashPartition, RangePartition, GridPartition,
                       StreamingPartition, MetisLikePartition]


@pytest.fixture(scope="module")
def graph():
    return uniform_random_graph(120, 400, seed=11)


@pytest.mark.parametrize("cls", EDGE_CUT_STRATEGIES)
class TestEdgeCutStrategies:
    def test_assign_covers_all_nodes(self, cls, graph):
        assignment = cls().assign(graph, 4)
        assert set(assignment) == set(graph.nodes())
        assert all(0 <= fid < 4 for fid in assignment.values())

    def test_partition_validates(self, cls, graph):
        frag = cls().partition(graph, 4)
        frag.validate()
        assert frag.num_fragments == 4

    def test_single_fragment(self, cls, graph):
        frag = cls().partition(graph, 1)
        frag.validate()
        assert frag[0].owned == set(graph.nodes())

    def test_deterministic(self, cls, graph):
        a = cls().assign(graph, 3)
        b = cls().assign(graph, 3)
        assert a == b


class TestBalance:
    @pytest.mark.parametrize("cls", [HashPartition, RangePartition,
                                     StreamingPartition,
                                     MetisLikePartition])
    def test_roughly_balanced(self, cls, graph):
        assignment = cls().assign(graph, 4)
        sizes = [0] * 4
        for fid in assignment.values():
            sizes[fid] += 1
        assert max(sizes) <= 3 * (graph.num_nodes // 4)


class TestCutQuality:
    def test_metis_beats_hash(self):
        """Multilevel partitioning should cut far fewer edges than hash on
        a clustered graph."""
        g = preferential_attachment(300, edges_per_node=4, seed=3)
        hash_cut = cut_edges(g, HashPartition().assign(g, 4))
        metis_cut = cut_edges(g, MetisLikePartition().assign(g, 4))
        assert metis_cut < hash_cut

    def test_streaming_beats_random_hash(self):
        g = preferential_attachment(300, edges_per_node=4, seed=4)
        hash_cut = cut_edges(g, HashPartition().assign(g, 4))
        ldg_cut = cut_edges(g, StreamingPartition().assign(g, 4))
        assert ldg_cut < hash_cut


class TestVertexCutStrategy:
    def test_partition(self, graph):
        frag = VertexCutPartition().partition(graph, 4)
        frag.validate()
        # Every edge placed exactly once.
        total_edges = sum(f.num_edges for f in frag)
        assert total_edges == graph.num_edges

    def test_replication_reasonable(self, graph):
        frag = VertexCutPartition().partition(graph, 4)
        assert 1.0 <= replication_factor(frag) <= 4.0

    def test_assign_raises(self, graph):
        with pytest.raises(NotImplementedError):
            VertexCutPartition().assign(graph, 2)

    def test_invalid_fragment_count(self, graph):
        with pytest.raises(ValueError):
            VertexCutPartition().partition(graph, 0)


class TestRegistry:
    def test_all_registered(self):
        assert set(STRATEGIES) == {"hash", "range", "grid", "streaming",
                                   "metis", "vertex-cut"}

    def test_get_strategy(self):
        assert isinstance(get_strategy("metis"), MetisLikePartition)

    def test_get_strategy_kwargs(self):
        s = get_strategy("streaming", slack=1.5)
        assert s.slack == 1.5

    def test_get_strategy_unknown(self):
        with pytest.raises(ValueError, match="unknown partition strategy"):
            get_strategy("magic")

    def test_zero_fragments_rejected(self, graph):
        with pytest.raises(ValueError):
            HashPartition().partition(graph, 0)


class TestAmbientSeedingIndependence:
    """Partitioning must be a pure function of (graph, strategy params):
    an explicitly seeded ``random.Random`` is threaded through every
    randomized phase, so ambient ``random.seed(...)`` calls cannot move
    nodes between fragments (regression: the serving layer caches
    fragmentations and ships fragments by content)."""

    @pytest.mark.parametrize("cls", [StreamingPartition, MetisLikePartition])
    def test_global_seed_does_not_change_assignment(self, cls, graph):
        import random as random_module
        random_module.seed(12345)
        first = cls().assign(graph, 4)
        random_module.seed(99999)
        second = cls().assign(graph, 4)
        # drain the global stream mid-everything, then again
        random_module.random()
        third = cls().assign(graph, 4)
        assert first == second == third

    @pytest.mark.parametrize("cls", [StreamingPartition, MetisLikePartition])
    def test_global_stream_not_consumed(self, cls, graph):
        """Partitioning must not advance the global generator either —
        callers interleaving their own seeded global draws would
        otherwise diverge depending on whether they partitioned."""
        import random as random_module
        random_module.seed(7)
        expected = [random_module.random() for _ in range(5)]
        random_module.seed(7)
        cls().assign(graph, 4)
        observed = [random_module.random() for _ in range(5)]
        assert observed == expected

    @pytest.mark.parametrize("cls", [StreamingPartition, MetisLikePartition])
    def test_distinct_seeds_are_honored(self, cls, graph):
        a = cls(seed=0).assign(graph, 4)
        b = cls(seed=1).assign(graph, 4)
        c = cls(seed=0).assign(graph, 4)
        assert a == c
        # distinct seeds *may* coincide on tiny graphs, but not here
        assert a != b
