"""Generation GC: superseded chain files are collected, retention kept.

The satellite fix: before this, only the immediately superseded pair was
removed and any generation skipped by a crashed commit (or left behind
by an older layout) accumulated forever.  Now every commit sweeps the
graph directory against a retention window: files outside
``[current - retain_generations, current]`` are garbage.
"""

from __future__ import annotations

import json

from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph
from repro.store import GraphStore


def make_graph():
    g = Graph()
    for u, v, w in [(1, 2, 1.0), (2, 3, 2.0), (3, 4, 3.0)]:
        g.add_edge(u, v, weight=w)
    return g


def chain_files(store, name):
    gdir = store._graph_dir(name)
    return sorted(p.name for p in gdir.iterdir()
                  if p.name != "MANIFEST.json")


def roll(store, g, rounds):
    """Force ``rounds`` generation rollovers with one record each."""
    for i in range(rounds):
        norm = GraphDelta().insert(9, 100 + i, 0.5).normalize(g)
        norm.apply_to(g)
        store.append_delta("soc", norm, i + 1)
        store.persist_graph("soc", g)


class TestGenerationGC:
    def test_default_deletes_superseded_immediately(self, tmp_path):
        store = GraphStore(tmp_path / "s", sync=False)
        g = make_graph()
        store.persist_graph("soc", g)
        roll(store, g, 3)
        assert chain_files(store, "soc") == ["snapshot-4.snap",
                                             "wal-4.log"]
        assert store.metrics.files_gced == 6  # three superseded pairs
        store.close()

    def test_retention_window_keeps_previous_generations(self, tmp_path):
        store = GraphStore(tmp_path / "s", sync=False,
                           retain_generations=2)
        g = make_graph()
        store.persist_graph("soc", g)
        roll(store, g, 4)  # generations 1..5 existed
        assert chain_files(store, "soc") == [
            "snapshot-3.snap", "snapshot-4.snap", "snapshot-5.snap",
            "wal-3.log", "wal-4.log", "wal-5.log"]
        store.close()

    def test_orphans_from_crashed_commits_are_swept(self, tmp_path):
        """Files of a generation *newer* than the committed manifest —
        a commit that crashed between writing files and publishing —
        are garbage too, and must not poison the next real commit."""
        store = GraphStore(tmp_path / "s", sync=False)
        g = make_graph()
        store.persist_graph("soc", g)
        gdir = store._graph_dir("soc")
        (gdir / "snapshot-9.snap").write_bytes(b"half-written junk")
        (gdir / "wal-9.log").write_bytes(b"half-written junk")
        store.persist_graph("soc", g)  # commits generation 2 + sweeps
        assert chain_files(store, "soc") == ["snapshot-2.snap",
                                             "wal-2.log"]
        manifest = json.loads((gdir / "MANIFEST.json").read_text())
        assert manifest["generation"] == 2
        store.close()

    def test_unrelated_files_survive_the_sweep(self, tmp_path):
        store = GraphStore(tmp_path / "s", sync=False)
        g = make_graph()
        store.persist_graph("soc", g)
        gdir = store._graph_dir("soc")
        (gdir / "NOTES.txt").write_text("keep me")
        store.persist_graph("soc", g)
        assert "NOTES.txt" in {p.name for p in gdir.iterdir()}
        store.close()

    def test_gc_never_strands_an_active_follower_within_retention(
            self, tmp_path):
        """A follower at most ``retain_generations`` rollovers behind
        can still complete the chain byte-for-byte."""
        store = GraphStore(tmp_path / "s", sync=False,
                           retain_generations=1)
        g = make_graph()
        store.persist_graph("soc", g)
        follower = store.follow("soc")
        norm = GraphDelta().insert(9, 10, 0.5).normalize(g)
        norm.apply_to(g)
        store.append_delta("soc", norm, 1)
        store.persist_graph("soc", g)  # generation 2; wal-1 retained
        norm2 = GraphDelta().insert(9, 11, 0.5).normalize(g)
        norm2.apply_to(g)
        store.append_delta("soc", norm2, 2)
        got = follower.poll()
        assert [seq for seq, _ in got] == [1, 2]
        assert follower.generation == 2
        follower.close()
        store.close()
