"""Injected storage faults: torn/failed WAL appends, torn snapshots.

The durability contracts under test: a failed ``append`` is
failure-atomic (the file is truncated back to the last durable record,
so a retry can never duplicate or tear), and a torn snapshot write
never moves the manifest — the committed generation stays loadable.
"""

from __future__ import annotations

import pytest

from repro.graph.delta import GraphDelta
from repro.graph.generators import uniform_random_graph
from repro.graph.graph import Graph
from repro.resilience import FaultPlane, RetryPolicy
from repro.resilience.faults import installed
from repro.sequential import sssp_distances
from repro.service import GrapeService
from repro.store import DeltaWAL
from repro.store.snapshot import SnapshotError, load_snapshot, save_snapshot
from repro.store.wal import WALWriteError


def make_graph():
    g = Graph()
    for u, v, w in [(1, 2, 1.0), (2, 3, 2.0), (3, 4, 3.0), (4, 1, 4.0)]:
        g.add_edge(u, v, weight=w)
    return g


def norm(g, build):
    return build(GraphDelta()).normalize(g)


class TestWALAppendFaults:
    @pytest.mark.parametrize("kind", ["torn", "fsync"])
    def test_failed_append_is_atomic_and_retryable(self, tmp_path, kind):
        g = make_graph()
        wal = DeltaWAL(tmp_path / "w.log")
        wal.append(1, norm(g, lambda d: d.insert(9, 10, 0.5)))
        size_before = wal.size_bytes

        plane = FaultPlane().plan("store.wal.append", kind, at=1)
        with installed(plane):
            with pytest.raises(WALWriteError, match="injected"):
                wal.append(2, norm(g, lambda d: d.delete(1, 2)))
        assert plane.drained()

        # Atomic: nothing of the failed record remains, on disk or in
        # the writer's accounting.
        assert wal.size_bytes == size_before
        assert (tmp_path / "w.log").stat().st_size == size_before
        assert [seq for seq, _ in wal.records()] == [1]

        # Retryable: the same append lands exactly once.
        wal.append(2, norm(g, lambda d: d.delete(1, 2)))
        assert [seq for seq, _ in wal.records()] == [1, 2]
        wal.close()

        reopened = DeltaWAL(tmp_path / "w.log")
        assert [seq for seq, _ in reopened.records()] == [1, 2]
        reopened.close()

    def test_fault_is_scoped_to_the_keyed_file(self, tmp_path):
        g = make_graph()
        a = DeltaWAL(tmp_path / "a.log")
        b = DeltaWAL(tmp_path / "b.log")
        plane = FaultPlane().plan("store.wal.append", "fsync",
                                  key="a.log", at=1)
        with installed(plane):
            b.append(1, norm(g, lambda d: d.insert(9, 10, 0.5)))
            with pytest.raises(WALWriteError):
                a.append(1, norm(g, lambda d: d.insert(9, 10, 0.5)))
        a.close()
        b.close()


class TestSnapshotFaults:
    def test_torn_snapshot_never_clobbers_the_committed_one(self, tmp_path):
        g = make_graph()
        committed = tmp_path / "snapshot-1.npz"
        save_snapshot(committed, g)

        g.add_edge(4, 5, weight=0.5)
        next_gen = tmp_path / "snapshot-2.npz"
        plane = FaultPlane().plan("store.snapshot.write", "torn", at=1)
        with installed(plane):
            with pytest.raises(SnapshotError, match="injected torn"):
                save_snapshot(next_gen, g)

        # The torn file is refused outright; the committed generation
        # still loads in full.
        with pytest.raises(SnapshotError):
            load_snapshot(next_gen)
        loaded = load_snapshot(committed)
        assert sorted(loaded.graph.edges()) == sorted(make_graph().edges())

        # Retrying the save overwrites the torn file and commits.
        save_snapshot(next_gen, g)
        assert sorted(load_snapshot(next_gen).graph.edges()) == \
            sorted(g.edges())


class TestServiceRetryOverStoreFaults:
    def test_update_retries_a_recoverable_wal_fault(self, tmp_path):
        g = uniform_random_graph(40, 130, directed=False, seed=23)
        svc = GrapeService(store_dir=tmp_path / "store", node_id="p",
                           retry=RetryPolicy(max_attempts=3,
                                             base_backoff_s=0.001,
                                             jitter=0.0))
        svc.load_graph("soc", g)
        plane = FaultPlane().plan("store.wal.append", "fsync", at=1)
        with installed(plane):
            svc.update("soc", GraphDelta().insert(0, 999, 0.5))
        assert plane.drained()
        answer = svc.play("sssp", 0, graph="soc").answer
        assert answer == pytest.approx(sssp_distances(g, 0))
        svc.close()

        # Durable exactly once: a cold restart replays the retried
        # append's single record.
        revived = GrapeService(store_dir=tmp_path / "store", node_id="p2")
        assert revived.graph("soc").has_edge(0, 999)
        assert (revived.play("sssp", 0, graph="soc").answer
                == pytest.approx(answer))
        revived.close()
