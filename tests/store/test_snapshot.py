"""Snapshot format: exact round trips, checksums, corruption rejection."""

from __future__ import annotations

import pytest

from repro.core.updates import apply_delta
from repro.graph.delta import GraphDelta
from repro.graph.generators import labeled_graph, uniform_random_graph
from repro.graph.graph import Graph
from repro.partition.strategies import HashPartition, MetisLikePartition
from repro.store import SnapshotError, load_snapshot, save_snapshot


def _float_copy(g):
    dup = Graph(directed=g.directed)
    for v in g.nodes():
        dup.add_node(v, g.node_label(v))
    for u, v, w in g.edges():
        dup.add_edge(u, v, weight=float(w))
    return dup


class TestGraphRoundTrip:
    def test_directed_weighted(self, tmp_path):
        g = uniform_random_graph(80, 240, seed=5)
        path = tmp_path / "g.snap"
        save_snapshot(path, g)
        loaded = load_snapshot(path)
        assert loaded.graph == g
        assert loaded.fragmentation is None
        assert loaded.content_hash == g.content_hash()

    def test_undirected(self, tmp_path):
        g = uniform_random_graph(60, 90, directed=False, seed=8)
        save_snapshot(tmp_path / "g.snap", g)
        back = load_snapshot(tmp_path / "g.snap").graph
        assert back == g
        assert back.num_edges == g.num_edges  # undirected count intact

    def test_labels_and_edge_labels(self, tmp_path):
        g = labeled_graph(50, 140, num_labels=3, seed=2)
        u, v, _w = next(g.edges())
        g._edge_labels[(u, v)] = "special"
        save_snapshot(tmp_path / "g.snap", g)
        back = load_snapshot(tmp_path / "g.snap").graph
        assert back == g
        assert back.edge_label(u, v) == "special"

    def test_string_and_tuple_node_ids(self, tmp_path):
        g = Graph()
        g.add_edge("user:1", ("item", 9), weight=4.5)
        g.add_node("iso", "alone")
        save_snapshot(tmp_path / "g.snap", g)
        assert load_snapshot(tmp_path / "g.snap").graph == g

    def test_int_weights_round_trip(self, tmp_path):
        """Regression: weights land in float64 arrays, so an
        int-weighted graph (any unweighted graph built with default
        weights) must still pass the loader's content-hash check."""
        g = Graph()
        g.add_edge(1, 2, weight=1)
        g.add_edge(2, 3, weight=7)
        assert g.content_hash() == _float_copy(g).content_hash()
        save_snapshot(tmp_path / "g.snap", g)
        back = load_snapshot(tmp_path / "g.snap").graph
        assert back == g

    def test_empty_graph(self, tmp_path):
        g = Graph(directed=False)
        save_snapshot(tmp_path / "g.snap", g)
        back = load_snapshot(tmp_path / "g.snap").graph
        assert back.num_nodes == 0 and not back.directed

    def test_caller_meta_round_trips(self, tmp_path):
        g = Graph()
        g.add_node(1)
        save_snapshot(tmp_path / "g.snap", g, meta={"origin": "test"})
        assert load_snapshot(tmp_path / "g.snap").meta == {"origin": "test"}

    def test_no_temp_files_left(self, tmp_path):
        g = uniform_random_graph(30, 60, seed=1)
        save_snapshot(tmp_path / "g.snap", g)
        assert [p.name for p in tmp_path.iterdir()] == ["g.snap"]


class TestFragmentationRoundTrip:
    @pytest.mark.parametrize("strategy", [HashPartition(),
                                          MetisLikePartition(seed=4)])
    def test_maintained_fragmentation_round_trips(self, tmp_path, strategy):
        """A fragmentation *mutated by deltas* (not just freshly
        partitioned) must round trip exactly: fragments, border sets,
        the G_P index and the version."""
        g = uniform_random_graph(70, 200, directed=False, seed=13)
        frag = strategy.partition(g, 4)
        edges = list(g.edges())
        delta = (GraphDelta().insert(0, 999, 0.3).insert(999, 1, 0.4)
                 .delete(*edges[0][:2]).delete(*edges[9][:2])
                 .set_weight(edges[4][0], edges[4][1], edges[4][2] * 3.0))
        apply_delta(frag, delta)

        save_snapshot(tmp_path / "f.snap", g, fragmentation=frag)
        loaded = load_snapshot(tmp_path / "f.snap")
        lf = loaded.fragmentation
        assert loaded.graph == g
        assert lf.version == frag.version
        assert lf.strategy_name == frag.strategy_name
        assert lf.num_fragments == frag.num_fragments
        for a, b in zip(lf.fragments, frag.fragments):
            assert a.graph == b.graph
            assert a.owned == b.owned
            assert a.inner == b.inner
            assert a.outer == b.outer
        assert lf.gp._owner == frag.gp._owner
        assert lf.gp._holders == frag.gp._holders
        lf.validate()

    def test_restored_fragmentation_honors_delta_log(self, tmp_path):
        """Across a restore no replay chain is provable: the restored
        object has a fresh cache token and an empty delta log, so pooled
        workers holding pre-restart copies get full re-ships."""
        g = uniform_random_graph(40, 100, seed=3)
        frag = HashPartition().partition(g, 3)
        apply_delta(frag, GraphDelta().insert(0, 777, 0.5))
        save_snapshot(tmp_path / "f.snap", g, fragmentation=frag)
        lf = load_snapshot(tmp_path / "f.snap").fragmentation

        assert lf.version == frag.version
        assert lf.cache_token != frag.cache_token  # fresh identity
        # the old incarnation can prove its own chain; the restored one
        # cannot prove any pre-restore chain
        fids = [f.fid for f in frag]
        assert frag.replay_chain(0, frag.version, fids) is not None
        assert lf.replay_chain(0, lf.version, fids) is None

    def test_mismatched_fragmentation_rejected(self, tmp_path):
        g = uniform_random_graph(20, 40, seed=1)
        other = uniform_random_graph(20, 40, seed=2)
        frag = HashPartition().partition(other, 2)
        with pytest.raises(ValueError, match="does not partition"):
            save_snapshot(tmp_path / "f.snap", g, fragmentation=frag)


class TestCorruption:
    def _snap(self, tmp_path):
        g = uniform_random_graph(40, 80, seed=9)
        path = tmp_path / "g.snap"
        save_snapshot(path, g)
        return path

    def test_flipped_payload_byte_detected(self, tmp_path):
        path = self._snap(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="checksum"):
            load_snapshot(path)

    def test_truncation_detected(self, tmp_path):
        path = self._snap(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) - 64])
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(path)

    def test_bad_magic_detected(self, tmp_path):
        path = tmp_path / "not.snap"
        path.write_bytes(b"Z" * 128)
        with pytest.raises(SnapshotError, match="magic"):
            load_snapshot(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(tmp_path / "absent.snap")
