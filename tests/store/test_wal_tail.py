"""WAL tailers and chain followers: the replication read path.

Covers the live-append cursor (:class:`repro.store.wal.WALTailer`), the
regression for reopen-with-torn-tail while a concurrent reader holds the
file, and the cross-generation :class:`repro.store.catalog.WALFollower`
(drain-then-switch rollover, gap detection past the retention window).
"""

from __future__ import annotations

import os
import struct
import zlib

import pytest

from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph
from repro.store import DeltaWAL, GraphStore, WALError
from repro.store.catalog import GenerationGapError
from repro.store.wal import WAL_HEADER_SIZE


def make_graph():
    g = Graph()
    for u, v, w in [(1, 2, 1.0), (2, 3, 2.0), (3, 4, 3.0), (4, 1, 4.0)]:
        g.add_edge(u, v, weight=w)
    return g


def norm(g, u, v, w):
    return GraphDelta().insert(u, v, w).normalize(g)


class TestWALTailer:
    def test_sees_live_appends_poll_by_poll(self, tmp_path):
        g = make_graph()
        wal = DeltaWAL(tmp_path / "w.log")
        tailer = wal.tail()
        assert tailer.poll() == []
        wal.append(1, norm(g, 9, 10, 0.5))
        got = tailer.poll()
        assert [seq for seq, _ in got] == [1]
        assert got[0][1].insertions == {(9, 10): 0.5}
        assert tailer.poll() == []  # caught up
        wal.append(2, norm(g, 9, 11, 0.25))
        wal.append(3, norm(g, 9, 12, 0.75))
        assert [seq for seq, _ in tailer.poll()] == [2, 3]
        assert tailer.records_read == 3
        assert tailer.lag_bytes() == 0
        tailer.close()
        wal.close()

    def test_from_seq_resumes_positionally(self, tmp_path):
        g = make_graph()
        wal = DeltaWAL(tmp_path / "w.log")
        for i in range(5):
            wal.append(i + 1, norm(g, 9, 100 + i, 0.5))
        tailer = wal.tail(from_seq=3)
        assert [seq for seq, _ in tailer.poll()] == [4, 5]
        tailer.close()
        with pytest.raises(WALError, match="cannot resume"):
            wal.tail(from_seq=9)
        wal.close()

    def test_reset_below_cursor_is_detected(self, tmp_path):
        g = make_graph()
        wal = DeltaWAL(tmp_path / "w.log")
        wal.append(1, norm(g, 9, 10, 0.5))
        tailer = wal.tail()
        tailer.poll()
        wal.reset()  # compaction folded the chain into a snapshot
        with pytest.raises(WALError, match="shrank below"):
            tailer.poll()
        tailer.close()
        wal.close()

    def test_tailer_survives_unlink(self, tmp_path):
        """POSIX semantics the follower's drain relies on: the open
        handle keeps reading a GC'd file."""
        g = make_graph()
        wal = DeltaWAL(tmp_path / "w.log")
        wal.append(1, norm(g, 9, 10, 0.5))
        tailer = wal.tail()
        os.unlink(tmp_path / "w.log")
        assert [seq for seq, _ in tailer.poll()] == [1]
        tailer.close()
        wal.close()


class TestTornTailUnderActiveReader:
    """The satellite regression: a writer reopening (and truncating a
    torn tail) must never invalidate a concurrent tailer's position."""

    def _torn_file(self, tmp_path, intact=2):
        g = make_graph()
        wal = DeltaWAL(tmp_path / "w.log")
        for i in range(intact):
            wal.append(i + 1, norm(g, 9, 100 + i, 0.5))
        wal.close()
        # A crash mid-append: half a record's framing at the tail.
        with open(tmp_path / "w.log", "ab") as fh:
            fh.write(struct.pack(">II", 1 << 20, 0xDEAD))
            fh.write(b"\x01\x02\x03")
        return tmp_path / "w.log"

    def test_tailer_never_advances_into_torn_tail(self, tmp_path):
        path = self._torn_file(tmp_path)
        from repro.store.wal import WALTailer
        tailer = WALTailer(path)
        assert len(tailer.poll()) == 2  # stops at the torn frame
        cursor = tailer.offset
        # The writer reopens concurrently and truncates the torn tail.
        wal = DeltaWAL(path)
        assert os.path.getsize(path) == cursor  # truncation == cursor
        # The surviving tailer keeps working: nothing below its cursor
        # moved, and fresh appends show up as usual.
        g = make_graph()
        wal.append(7, norm(g, 9, 200, 0.1))
        assert [seq for seq, _ in tailer.poll()] == [7]
        tailer.close()
        wal.close()

    def test_undecodable_payload_stops_tailer_and_recovery_alike(
            self, tmp_path):
        """Framing-intact but unpicklable record: recovery truncates it,
        so the tailer must not have advanced past it either."""
        g = make_graph()
        path = tmp_path / "w.log"
        wal = DeltaWAL(path)
        wal.append(1, norm(g, 9, 10, 0.5))
        wal.close()
        junk = b"not a pickle at all"
        with open(path, "ab") as fh:
            fh.write(struct.pack(">II", len(junk), zlib.crc32(junk)))
            fh.write(junk)
        from repro.store.wal import WALTailer
        tailer = WALTailer(path)
        assert len(tailer.poll()) == 1
        cursor = tailer.offset
        reopened = DeltaWAL(path)  # recovery truncates the junk frame
        assert os.path.getsize(path) == cursor
        assert reopened.size_bytes == cursor
        tailer.close()
        reopened.close()

    def test_empty_log_cursor_is_header(self, tmp_path):
        wal = DeltaWAL(tmp_path / "w.log")
        tailer = wal.tail()
        assert tailer.offset == WAL_HEADER_SIZE
        tailer.close()
        wal.close()


class TestWALFollower:
    def _store_with_graph(self, tmp_path, **kwargs):
        store = GraphStore(tmp_path / "store", sync=False, **kwargs)
        g = make_graph()
        store.persist_graph("soc", g)
        return store, g

    def test_streams_appends(self, tmp_path):
        store, g = self._store_with_graph(tmp_path)
        follower = store.follow("soc")
        assert follower.position == (1, 0)
        store.append_delta("soc", norm(g, 9, 10, 0.5), 1)
        store.append_delta("soc", norm(g, 9, 11, 0.5), 2)
        assert [seq for seq, _ in follower.poll()] == [1, 2]
        assert follower.position == (1, 2)
        assert follower.caught_up
        follower.close()
        store.close()

    def test_drain_then_switch_across_rollover(self, tmp_path):
        store, g = self._store_with_graph(tmp_path, retain_generations=1)
        follower = store.follow("soc")
        store.append_delta("soc", norm(g, 9, 10, 0.5), 1)
        # Rollover: compaction commits generation 2 with a fresh WAL.
        store.persist_graph("soc", g)
        store.append_delta("soc", norm(g, 9, 11, 0.5), 2)
        got = follower.poll()
        # Both records arrive, in order, across the generation switch.
        assert [seq for seq, _ in got] == [1, 2]
        assert follower.generation == 2
        assert follower.position == (2, 1)
        follower.close()
        store.close()

    def test_multi_rollover_in_one_poll(self, tmp_path):
        store, g = self._store_with_graph(tmp_path, retain_generations=3)
        follower = store.follow("soc")
        seqs = []
        for i in range(3):
            store.append_delta("soc", norm(g, 9, 100 + i, 0.5), i + 1)
            seqs.append(i + 1)
            store.persist_graph("soc", g)
        got = follower.poll()
        assert [seq for seq, _ in got] == seqs
        assert follower.generation == 4
        follower.close()
        store.close()

    def test_gap_past_retention_raises(self, tmp_path):
        store, g = self._store_with_graph(tmp_path, retain_generations=0)
        follower = store.follow("soc")
        store.append_delta("soc", norm(g, 9, 10, 0.5), 1)
        follower.poll()  # on generation 1, fully drained
        # Two rollovers with zero retention: wal-2 is created then GC'd
        # before the follower ever polls again — the chain has a hole.
        store.persist_graph("soc", g)
        store.append_delta("soc", norm(g, 9, 11, 0.5), 2)
        store.persist_graph("soc", g)
        with pytest.raises(GenerationGapError):
            follower.poll()
        follower.close()
        store.close()

    def test_lag_bytes_spans_generations(self, tmp_path):
        store, g = self._store_with_graph(tmp_path, retain_generations=1)
        follower = store.follow("soc")
        store.append_delta("soc", norm(g, 9, 10, 0.5), 1)
        lag_one = follower.lag_bytes()
        assert lag_one > 0
        store.persist_graph("soc", g)
        store.append_delta("soc", norm(g, 9, 11, 0.5), 2)
        assert follower.lag_bytes() > lag_one
        follower.poll()
        assert follower.lag_bytes() == 0
        follower.close()
        store.close()

    def test_follow_from_recorded_position(self, tmp_path):
        """(generation, replayed) from GraphStore.load is exactly the
        resume point: nothing is duplicated, nothing skipped."""
        store, g = self._store_with_graph(tmp_path)
        store.append_delta("soc", norm(g, 9, 10, 0.5), 1)
        ro = GraphStore(tmp_path / "store", read_only=True)
        stored = ro.load("soc")
        assert (stored.generation, stored.replayed) == (1, 1)
        follower = ro.follow("soc", from_generation=stored.generation,
                             from_seq=stored.replayed)
        assert follower.poll() == []
        store.append_delta("soc", norm(g, 9, 11, 0.5), 2)
        assert [seq for seq, _ in follower.poll()] == [2]
        follower.close()
        ro.close()
        store.close()
