"""Warm-start acceptance: a restarted ``GrapeService(store_dir=...)``
serves answers identical to the live pre-restart service.

The PR-5 acceptance property: after N mixed update batches (insertions,
deletions, weight changes), a service restarted over the same store
serves SSSP/CC answers equal to the live service's — recovered purely
from snapshot + WAL replay, with **zero edge-list re-parsing** (proved
by ``stats.edge_lists_parsed``) and no eager re-partitioning.
"""

from __future__ import annotations

import random

import pytest

from repro.graph.delta import GraphDelta
from repro.graph.generators import uniform_random_graph
from repro.graph.io import write_edge_list
from repro.sequential import connected_components, sssp_distances
from repro.service import GrapeService

N_BATCHES = 6


def cc_buckets(g):
    buckets = {}
    for v, c in connected_components(g).items():
        buckets.setdefault(c, set()).add(v)
    return buckets


def mixed_delta(g, rng, round_no):
    """Insertions (some attaching new nodes), deletions, reweights."""
    edges = list(g.edges())
    nodes = list(g.nodes())
    delta = GraphDelta()
    delta.insert(10_000 + round_no, rng.choice(nodes), 0.3)
    u, v = rng.sample(nodes, 2)
    delta.insert(u, v, rng.uniform(0.1, 1.0))
    du, dv, _w = edges[rng.randrange(len(edges))]
    delta.delete(du, dv)
    wu, wv, ww = edges[rng.randrange(len(edges))]
    delta.set_weight(wu, wv, ww * rng.uniform(1.5, 3.0))
    return delta


def run_live(store_dir, path, rng):
    """Drive the live service: load from file, watch, apply N mixed
    batches; returns (service, watch answers, graph copy)."""
    live = GrapeService(store_dir=store_dir)
    live.load_graph_file("social", path)
    assert live.stats.edge_lists_parsed == 1
    sssp_watch = live.watch("sssp", 0, graph="social")
    cc_watch = live.watch("cc", graph="social")
    for round_no in range(N_BATCHES):
        live.update("social",
                    mixed_delta(live.graph("social"), rng, round_no))
    assert live.stats.updates_applied == N_BATCHES
    assert live.stats.wal_appends == N_BATCHES
    return (live, dict(sssp_watch.answer), cc_watch.answer,
            live.graph("social").copy())


def check_warm(warm, live_sssp, live_cc, live_graph):
    """The acceptance property: the restarted service serves answers
    identical to the live pre-restart service, with zero edge-list
    re-parsing."""
    assert warm.graphs() == ["social"]
    assert warm.stats.warm_starts == 1
    assert warm.stats.edge_lists_parsed == 0
    assert warm.graph("social") == live_graph

    warm_sssp = warm.play("sssp", 0, graph="social").answer
    warm_cc = warm.play("cc", graph="social").answer
    assert warm_sssp == pytest.approx(live_sssp)
    assert warm_cc == live_cc
    # and both equal the sequential oracles on the mutated graph
    assert warm_sssp == pytest.approx(
        sssp_distances(warm.graph("social"), 0))
    assert warm_cc == cc_buckets(warm.graph("social"))
    # a watch registered post-restart keeps maintaining correctly
    watch = warm.watch("sssp", 0, graph="social")
    warm.insert_edges("social", [(0, 20_000, 0.05)])
    assert watch.answer[20_000] == pytest.approx(0.05)


def test_graceful_restart_serves_identical_answers(tmp_path):
    """Graceful shutdown: the close-time checkpoint folded the WAL and
    the canonical fragmentation into the snapshot, so the restart
    replays nothing and re-partitions nothing."""
    g = uniform_random_graph(60, 170, directed=False, seed=21)
    path = tmp_path / "social.edges"
    write_edge_list(g, path)
    live, live_sssp, live_cc, live_graph = run_live(
        tmp_path / "store", path, random.Random(99))
    live.close()

    with GrapeService(store_dir=tmp_path / "store") as warm:
        assert warm.stats.wal_replayed == 0  # folded at shutdown
        check_warm(warm, live_sssp, live_cc, live_graph)
        # the canonical fragmentation was seeded from the store: the
        # plays above never re-partitioned
        assert warm.stats.cache_misses == 0
        assert warm.stats.cache_hits > 0


def test_crash_restart_replays_wal(tmp_path):
    """Crash (no shutdown checkpoint): the restart recovers by snapshot
    + WAL replay and re-partitions lazily — same answers."""
    g = uniform_random_graph(60, 170, directed=False, seed=22)
    path = tmp_path / "social.edges"
    write_edge_list(g, path)
    live, live_sssp, live_cc, live_graph = run_live(
        tmp_path / "store", path, random.Random(17))
    live.close(flush=False)  # kill -9 shaped shutdown

    with GrapeService(store_dir=tmp_path / "store") as warm:
        assert warm.stats.wal_replayed == N_BATCHES
        check_warm(warm, live_sssp, live_cc, live_graph)


def test_restart_after_compaction(tmp_path):
    """With a tiny compaction threshold the WAL folds into fresh
    snapshots mid-stream; the restart replays only the post-compaction
    tail and still matches."""
    g = uniform_random_graph(50, 140, directed=False, seed=4)
    store_dir = tmp_path / "store"
    rng = random.Random(5)

    live = GrapeService(store_dir=store_dir, store_compact_threshold=256)
    live.load_graph("social", g)
    for round_no in range(N_BATCHES):
        live.update("social",
                    mixed_delta(live.graph("social"), rng, round_no))
    assert live.store.metrics.compactions >= 1
    assert live.stats.snapshots_written > 1
    live_graph = live.graph("social").copy()
    live_cc = live.play("cc", graph="social").answer
    live.close(flush=False)  # crash: only snapshot + WAL tail on disk

    with GrapeService(store_dir=store_dir) as warm:
        assert warm.stats.wal_replayed < N_BATCHES
        assert warm.graph("social") == live_graph
        assert warm.play("cc", graph="social").answer == live_cc


def test_unload_removes_from_store(tmp_path):
    store_dir = tmp_path / "store"
    with GrapeService(store_dir=store_dir) as service:
        service.load_graph("a", uniform_random_graph(20, 40, seed=1))
        service.load_graph("b", uniform_random_graph(20, 40, seed=2))
        service.unload_graph("a")
    with GrapeService(store_dir=store_dir) as warm:
        assert warm.graphs() == ["b"]


def test_plain_service_has_no_store(tmp_path):
    with GrapeService() as service:
        assert service.store is None
        service.load_graph("g", uniform_random_graph(10, 20, seed=1))
        service.insert_edges("g", [(0, 1, 0.5)])
        assert service.stats.wal_appends == 0
