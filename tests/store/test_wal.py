"""Delta WAL: durable append, replay, torn-tail truncation."""

from __future__ import annotations

import pytest

from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph
from repro.store import DeltaWAL, WALError


def make_graph():
    g = Graph()
    for u, v, w in [(1, 2, 1.0), (2, 3, 2.0), (3, 4, 3.0), (4, 1, 4.0)]:
        g.add_edge(u, v, weight=w)
    return g


def norm_of(g, build):
    return build(GraphDelta()).normalize(g)


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        g = make_graph()
        wal = DeltaWAL(tmp_path / "w.log")
        n1 = norm_of(g, lambda d: d.insert(9, 10, 0.5).delete(1, 2))
        n2 = norm_of(g, lambda d: d.set_weight(2, 3, 9.0))
        wal.append(1, n1)
        wal.append(2, n2)
        records = wal.records()
        assert [seq for seq, _ in records] == [1, 2]
        assert records[0][1].insertions == {(9, 10): 0.5}
        assert records[0][1].deletions == {(1, 2): 1.0}
        assert records[1][1].increases == {(2, 3): (2.0, 9.0)}
        wal.close()

    def test_replay_reproduces_graph(self, tmp_path):
        g = make_graph()
        mirror = make_graph()
        wal = DeltaWAL(tmp_path / "w.log")
        for build in (lambda d: d.insert(7, 8, 0.1),
                      lambda d: d.delete(2, 3),
                      lambda d: d.set_weight(3, 4, 0.5)):
            norm = norm_of(g, build)
            norm.apply_to(g)
            wal.append(0, norm)
        wal.close()

        reopened = DeltaWAL(tmp_path / "w.log")
        for _seq, delta in reopened.replay():
            delta.apply_to(mirror)
        assert mirror == g
        reopened.close()

    def test_persists_across_reopen_and_appends_continue(self, tmp_path):
        g = make_graph()
        with DeltaWAL(tmp_path / "w.log") as wal:
            wal.append(1, norm_of(g, lambda d: d.insert(5, 6, 1.0)))
        with DeltaWAL(tmp_path / "w.log") as wal:
            assert len(wal.records()) == 1
            wal.append(2, norm_of(g, lambda d: d.insert(6, 7, 1.0)))
            assert [s for s, _ in wal.records()] == [1, 2]

    def test_reset_empties(self, tmp_path):
        g = make_graph()
        with DeltaWAL(tmp_path / "w.log") as wal:
            wal.append(1, norm_of(g, lambda d: d.insert(5, 6, 1.0)))
            size_before = wal.size_bytes
            wal.reset()
            assert wal.records() == []
            assert wal.size_bytes < size_before


class TestTornTail:
    def _seeded(self, tmp_path, n=3):
        g = make_graph()
        wal = DeltaWAL(tmp_path / "w.log")
        offsets = [wal.size_bytes]
        for i in range(n):
            wal.append(i + 1, norm_of(
                g, lambda d, i=i: d.insert(100 + i, 200 + i, 1.0)))
            offsets.append(wal.size_bytes)
        wal.close()
        return tmp_path / "w.log", offsets

    def test_truncated_mid_record_drops_only_tail(self, tmp_path):
        path, offsets = self._seeded(tmp_path)
        # kill -9 mid-append: the last record is half-written
        raw = path.read_bytes()
        path.write_bytes(raw[:offsets[2] + 5])
        wal = DeltaWAL(path)
        assert [s for s, _ in wal.records()] == [1, 2]
        assert wal.size_bytes == offsets[2]  # physically truncated back
        wal.close()

    def test_truncated_mid_header_drops_only_tail(self, tmp_path):
        path, offsets = self._seeded(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:offsets[1] + 3])  # 3 bytes of rec-2 header
        with DeltaWAL(path) as wal:
            assert [s for s, _ in wal.records()] == [1]

    def test_corrupt_tail_crc_dropped(self, tmp_path):
        path, offsets = self._seeded(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip a byte inside the last record's payload
        path.write_bytes(bytes(raw))
        with DeltaWAL(path) as wal:
            assert [s for s, _ in wal.records()] == [1, 2]

    def test_append_after_truncation(self, tmp_path):
        path, offsets = self._seeded(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:offsets[2] + 7])
        g = make_graph()
        with DeltaWAL(path) as wal:
            wal.append(9, norm_of(g, lambda d: d.insert(999, 998, 2.0)))
            assert [s for s, _ in wal.records()] == [1, 2, 9]

    def test_not_a_wal_rejected(self, tmp_path):
        path = tmp_path / "junk.log"
        path.write_bytes(b"definitely not a wal file")
        with pytest.raises(WALError, match="magic"):
            DeltaWAL(path)
