"""GraphStore catalog: generation commits, WAL chains, compaction."""

from __future__ import annotations

import json

import pytest

from repro.core.updates import apply_delta
from repro.graph.delta import GraphDelta
from repro.graph.generators import uniform_random_graph
from repro.graph.graph import Graph
from repro.partition.strategies import HashPartition
from repro.store import GraphStore


def small_graph(seed=6):
    return uniform_random_graph(50, 130, directed=False, seed=seed)


class TestCatalog:
    def test_persist_and_load(self, tmp_path):
        store = GraphStore(tmp_path)
        g = small_graph()
        store.persist_graph("soc", g)
        assert store.names() == ["soc"]
        assert "soc" in store
        loaded = store.load("soc")
        assert loaded.graph == g
        assert loaded.replayed == 0
        store.close()

    def test_append_and_replay(self, tmp_path):
        store = GraphStore(tmp_path)
        g = small_graph()
        store.persist_graph("soc", g)
        for i in range(4):
            norm = (GraphDelta().insert(1000 + i, i, 0.5)
                    .normalize(g))
            norm.apply_to(g)
            store.append_delta("soc", norm, i + 1)
        loaded = store.load("soc")
        assert loaded.graph == g
        assert loaded.replayed == 4
        assert store.metrics.wal_appends == 4
        assert store.metrics.wal_replayed == 4
        store.close()

    def test_load_unknown_raises(self, tmp_path):
        with GraphStore(tmp_path) as store:
            with pytest.raises(KeyError):
                store.load("nope")
            with pytest.raises(KeyError):
                store.append_delta("nope", GraphDelta().normalize(Graph()),
                                   1)

    def test_remove_forgets(self, tmp_path):
        store = GraphStore(tmp_path)
        store.persist_graph("a", small_graph())
        store.persist_graph("b", small_graph(seed=7))
        store.remove("a")
        assert store.names() == ["b"]
        assert "a" not in store
        store.close()

    def test_names_survive_new_instance(self, tmp_path):
        with GraphStore(tmp_path) as store:
            store.persist_graph("x", small_graph())
        with GraphStore(tmp_path) as store:
            assert store.names() == ["x"]

    def test_unfriendly_names(self, tmp_path):
        store = GraphStore(tmp_path)
        # incl. a case-colliding pair: distinct even on filesystems
        # that fold case (the dirname carries a crc of the exact name)
        names = ["social/graph", "über graph", "a.b-c_d", "Graph", "graph"]
        for i, name in enumerate(names):
            store.persist_graph(name, small_graph(seed=i))
        assert store.names() == sorted(names)
        assert len({store._graph_dir(n).name.lower()
                    for n in names}) == len(names)
        for name in names:
            assert store.load(name).name == name
        store.close()

    def test_checkpoint_dir_created(self, tmp_path):
        with GraphStore(tmp_path) as store:
            path = store.checkpoint_dir("soc")
            assert path.is_dir()
            assert str(path).startswith(str(tmp_path))


class TestCompaction:
    def test_wal_folds_into_fresh_snapshot(self, tmp_path):
        store = GraphStore(tmp_path, compact_threshold_bytes=512)
        g = small_graph()
        store.persist_graph("soc", g)
        compacted = 0
        for i in range(12):
            norm = GraphDelta().insert(2000 + i, i, 0.5).normalize(g)
            norm.apply_to(g)
            store.append_delta("soc", norm, i + 1)
            if store.maybe_compact("soc", g):
                compacted += 1
        assert compacted >= 1
        assert store.metrics.compactions == compacted

        gdir = store._graph_dir("soc")
        manifest = json.loads((gdir / "MANIFEST.json").read_text())
        assert manifest["generation"] == 1 + compacted
        # only the current generation's files remain
        files = {p.name for p in gdir.iterdir()}
        assert files == {"MANIFEST.json", manifest["snapshot"],
                         manifest["wal"]}

        loaded = store.load("soc")
        assert loaded.graph == g
        # WAL was reset at the last compaction: only post-compaction
        # batches replay
        assert loaded.replayed < 12
        store.close()

    def test_below_threshold_no_compaction(self, tmp_path):
        store = GraphStore(tmp_path)  # default 4 MiB threshold
        g = small_graph()
        store.persist_graph("soc", g)
        norm = GraphDelta().insert(9, 10, 0.1).normalize(g)
        norm.apply_to(g)
        store.append_delta("soc", norm, 1)
        assert not store.maybe_compact("soc", g)
        assert store.metrics.compactions == 0
        store.close()


class TestFragmentationChain:
    def test_load_replays_through_apply_delta(self, tmp_path):
        """When the snapshot carries a fragmentation, WAL replay goes
        through apply_delta, so the recovered fragmentation equals the
        live maintained one — including a deletion-bearing chain."""
        g = small_graph()
        frag = HashPartition().partition(g, 4)
        store = GraphStore(tmp_path)
        store.persist_graph("soc", g, fragmentation=frag)

        edges = list(g.edges())
        deltas = [GraphDelta().insert(0, 555, 0.4),
                  GraphDelta().delete(*edges[2][:2]),
                  GraphDelta().set_weight(edges[8][0], edges[8][1],
                                          edges[8][2] * 2.0)]
        for delta in deltas:
            norm = delta.normalize(g)
            apply_delta(frag, norm,
                        wal=lambda n, seq: store.append_delta("soc", n,
                                                              seq))
        loaded = store.load("soc")
        assert loaded.replayed == 3
        assert loaded.graph == g
        lf = loaded.fragmentation
        assert lf.version == frag.version
        for a, b in zip(lf.fragments, frag.fragments):
            assert a.graph == b.graph and a.owned == b.owned
            assert a.inner == b.inner and a.outer == b.outer
        lf.validate()
        store.close()

    def test_crash_ordering_manifest_last(self, tmp_path):
        """Simulated crash between snapshot write and manifest commit:
        the store still serves the previous generation."""
        store = GraphStore(tmp_path, compact_threshold_bytes=1)
        g = small_graph()
        store.persist_graph("soc", g)
        before = store.load("soc").graph

        # fake a crashed compaction: a newer-generation snapshot exists
        # but the manifest was never flipped
        gdir = store._graph_dir("soc")
        (gdir / "snapshot-2.snap").write_bytes(b"half-written garbage")
        with GraphStore(tmp_path) as fresh:
            assert fresh.load("soc").graph == before
