"""Differential check: a WAL-tailing replica is indistinguishable from
its primary.

After N mixed insert/delete/reweight batches — primary applies, replica
tails — SSSP, CC and PageRank answers served by the replica must be
**bitwise-equal** (plain ``==``, no tolerance) to the primary's, and the
replica's standing watches must equal both the primary's watches and the
sequential oracles.  Swept over the serial, thread and process backends:
replication sits above the executor, so the backend must be invisible.
"""

from __future__ import annotations

import random

import pytest

from repro.graph.delta import GraphDelta
from repro.graph.generators import uniform_random_graph
from repro.pie_programs import PageRankQuery
from repro.replication import ReplicaService
from repro.sequential import connected_components, sssp_distances
from repro.service import GrapeService

from .harness import BACKENDS, normalize


def cc_oracle(g):
    buckets = {}
    for v, c in connected_components(g).items():
        buckets.setdefault(c, set()).add(v)
    return buckets


def mixed_batch(g, rng, i):
    """One replication batch: an insertion (sometimes attaching a new
    node), plus a deletion or a reweight of a live edge."""
    target = 1000 + i if i % 2 else rng.randrange(60)
    delta = GraphDelta().insert(rng.randrange(60), target,
                                round(rng.uniform(0.1, 1.0), 3))
    edges = sorted(g.edges())
    u, v, w = edges[rng.randrange(len(edges))]
    if i % 3 == 0:
        delta.delete(u, v)
    else:
        delta.set_weight(u, v, round(w * rng.uniform(0.25, 4.0), 3))
    return delta


@pytest.mark.parametrize("backend", BACKENDS)
def test_replica_answers_equal_primary_after_mixed_churn(backend, tmp_path):
    g = uniform_random_graph(60, 200, directed=False, seed=31)
    rng = random.Random(47)
    with GrapeService(backend=backend, store_dir=tmp_path / "store",
                      node_id="primary") as primary:
        primary.load_graph("soc", g)
        replica = ReplicaService(tmp_path / "store", backend=backend,
                                 replica_id="r1")
        try:
            watch_p = primary.watch("sssp", 0, graph="soc")
            watch_r = replica.watch("sssp", 0, graph="soc")
            for i in range(10):
                primary.update("soc", mixed_batch(g, rng, i))
                applied = replica.sync()
                assert applied == 1
                # Watches track batch by batch, equal to the primary's
                # watch AND the from-scratch sequential oracle.
                assert watch_r.answer == watch_p.answer
                assert watch_r.answer == pytest.approx(
                    sssp_distances(g, 0))
            assert replica.applied_seq("soc") == 10

            for program, query in [("sssp", 0), ("cc", None),
                                   ("pagerank",
                                    PageRankQuery(max_iterations=8))]:
                want = primary.play(program, query, graph="soc").answer
                got = replica.play(program, query, graph="soc").answer
                assert normalize(got) == normalize(want), program
            # ...and the independent oracles agree with both.
            assert (replica.play("sssp", 0, graph="soc").answer
                    == pytest.approx(sssp_distances(g, 0)))
            assert (normalize(replica.play("cc", graph="soc").answer)
                    == normalize(cc_oracle(g)))
        finally:
            replica.close()
