"""The PR-4 acceptance property, end to end through the serving layer.

``GrapeService.update`` applies a mixed insertion+deletion batch to a
graph with active SSSP and CC watches; afterwards **every** watch answer
must equal a from-scratch computation on the mutated graph — asserted
for the serial, thread and process backends.  Since the delete-aware
bounded path landed, mixed batches are *maintained* (partial reset of
the affected region + resumed fixpoint), not recomputed; the counters
assert that.  Under the process backend the maintenance runs against
the session's live driver-side states — no worker lease, so neither
full fragments nor per-fragment deltas cross the pipe (asserted via
the ``fragments_shipped`` / ``delta_bytes_shipped`` accounting).
"""

from __future__ import annotations

import pytest

from repro.graph.delta import GraphDelta
from repro.graph.generators import uniform_random_graph
from repro.sequential import connected_components, sssp_distances
from repro.service import GrapeService

from .harness import BACKENDS, normalize


def cc_oracle(g):
    buckets = {}
    for v, c in connected_components(g).items():
        buckets.setdefault(c, set()).add(v)
    return buckets


def mixed_delta(g, rng_edges):
    """Insertions (one attaching a brand-new node), a weight increase,
    a weight decrease and two deletions against live edges."""
    edges = list(g.edges())
    (du, dv, _w1), (eu, ev, _w2) = edges[0], edges[len(edges) // 2]
    iu, iv, iw = edges[3]
    ju, jv, jw = edges[7]
    return (GraphDelta()
            .insert(0, 777, 0.3)
            .insert(777, 1, 0.2)
            .delete(du, dv)
            .delete(eu, ev)
            .set_weight(iu, iv, iw * 4.0)
            .set_weight(ju, jv, jw * 0.25))


@pytest.mark.parametrize("backend", BACKENDS)
def test_mixed_update_with_active_watches(backend):
    g = uniform_random_graph(70, 220, directed=False, seed=42)
    with GrapeService(backend=backend) as service:
        service.load_graph("social", g)
        sssp_watch = service.watch("sssp", 0, graph="social")
        cc_watch = service.watch("cc", graph="social")

        shipped_before = (
            sssp_watch.session.metrics.fragments_shipped,
            cc_watch.session.metrics.fragments_shipped)

        refreshed = service.update("social", mixed_delta(g, None))
        assert set(refreshed) == {sssp_watch, cc_watch}

        # Every watch answer equals a from-scratch computation on the
        # mutated graph (sequential oracles, fully independent of the
        # engine path under test).
        assert sssp_watch.answer == pytest.approx(sssp_distances(g, 0))
        assert normalize(cc_watch.answer) == normalize(cc_oracle(g))
        service.fragmentation("social").validate()

        # The batch has deletions: both watches were served by the
        # delete-aware bounded path — a partial reset of the affected
        # region, not a recompute fallback.
        assert service.stats.fallback_reruns == 0
        assert service.stats.incremental_maintained == 2
        assert service.stats.partial_resets == 2
        assert service.stats.affected_vertices > 0
        assert service.stats.deltas_applied == 1

        if backend == "process":
            # The bounded maintenance runs on the session's live states
            # in the driver; no worker is leased, so no fragments ship —
            # neither full re-ships nor delta replays.
            assert service.stats.delta_bytes_shipped == 0
            after = (sssp_watch.session.metrics.fragments_shipped,
                     cc_watch.session.metrics.fragments_shipped)
            assert after == shipped_before
            assert (sssp_watch.session.metrics.fragments_delta_shipped
                    + cc_watch.session.metrics.fragments_delta_shipped) == 0

        # A follow-up monotone batch stays on the incremental fast path
        # for both programs.
        service.insert_edges("social", [(0, 778, 0.9)])
        assert service.stats.incremental_maintained == 4
        assert service.stats.partial_resets == 2  # monotone batch: no reset
        assert sssp_watch.answer == pytest.approx(sssp_distances(g, 0))
        assert normalize(cc_watch.answer) == normalize(cc_oracle(g))


@pytest.mark.parametrize("backend", BACKENDS)
def test_watch_answers_survive_update_streams(backend):
    """Interleaved monotone and non-monotone batches: the maintained
    answers track the oracles at every step."""
    g = uniform_random_graph(50, 140, directed=False, seed=7)
    with GrapeService(backend=backend) as service:
        service.load_graph("g", g)
        sssp_watch = service.watch("sssp", 0, graph="g")
        cc_watch = service.watch("cc", graph="g")
        # new nodes get integer ids: CC component ids are node values
        # and must stay totally ordered under the min aggregator
        batches = [
            GraphDelta().insert(0, 1001, 0.4).insert(1001, 1002, 0.4),
            GraphDelta().delete(*next(iter(g.edges()))[:2]),
            GraphDelta().insert(1, 2, 0.05),
            GraphDelta().set_weight(*[(u, v, w * 5)
                                      for u, v, w in g.edges()][10]),
        ]
        for delta in batches:
            service.update("g", delta)
            assert sssp_watch.answer == pytest.approx(sssp_distances(g, 0))
            assert normalize(cc_watch.answer) == normalize(cc_oracle(g))
        # Every batch — including the deletion and the weight increase —
        # was maintained; the non-monotone ones via partial resets.
        assert service.stats.incremental_maintained == 2 * len(batches)
        assert service.stats.fallback_reruns == 0
        assert service.stats.partial_resets > 0
