"""The PR-4 acceptance property, end to end through the serving layer.

``GrapeService.update`` applies a mixed insertion+deletion batch to a
graph with active SSSP and CC watches; afterwards **every** watch answer
must equal a from-scratch computation on the mutated graph — asserted
for the serial, thread and process backends.  Under the process backend
the fallback re-runs must reach the pooled workers as compact
per-fragment deltas, not full fragment re-ships (asserted via the
``delta_bytes_shipped`` / ``fragments_shipped`` accounting).
"""

from __future__ import annotations

import pytest

from repro.graph.delta import GraphDelta
from repro.graph.generators import uniform_random_graph
from repro.sequential import connected_components, sssp_distances
from repro.service import GrapeService

from .harness import BACKENDS, normalize


def cc_oracle(g):
    buckets = {}
    for v, c in connected_components(g).items():
        buckets.setdefault(c, set()).add(v)
    return buckets


def mixed_delta(g, rng_edges):
    """Insertions (one attaching a brand-new node), a weight increase,
    a weight decrease and two deletions against live edges."""
    edges = list(g.edges())
    (du, dv, _w1), (eu, ev, _w2) = edges[0], edges[len(edges) // 2]
    iu, iv, iw = edges[3]
    ju, jv, jw = edges[7]
    return (GraphDelta()
            .insert(0, 777, 0.3)
            .insert(777, 1, 0.2)
            .delete(du, dv)
            .delete(eu, ev)
            .set_weight(iu, iv, iw * 4.0)
            .set_weight(ju, jv, jw * 0.25))


@pytest.mark.parametrize("backend", BACKENDS)
def test_mixed_update_with_active_watches(backend):
    g = uniform_random_graph(70, 220, directed=False, seed=42)
    with GrapeService(backend=backend) as service:
        service.load_graph("social", g)
        sssp_watch = service.watch("sssp", 0, graph="social")
        cc_watch = service.watch("cc", graph="social")

        shipped_before = (
            sssp_watch.session.metrics.fragments_shipped,
            cc_watch.session.metrics.fragments_shipped)

        refreshed = service.update("social", mixed_delta(g, None))
        assert set(refreshed) == {sssp_watch, cc_watch}

        # Every watch answer equals a from-scratch computation on the
        # mutated graph (sequential oracles, fully independent of the
        # engine path under test).
        assert sssp_watch.answer == pytest.approx(sssp_distances(g, 0))
        assert normalize(cc_watch.answer) == normalize(cc_oracle(g))
        service.fragmentation("social").validate()

        # The batch has deletions: neither program can maintain it, so
        # both watches went through the recompute fallback.
        assert service.stats.fallback_reruns == 2
        assert service.stats.incremental_maintained == 0
        assert service.stats.deltas_applied == 1

        if backend == "process":
            # Happy path: the re-runs lease workers that already cache
            # the fragmentation and are brought current by per-fragment
            # delta replay — zero additional full fragment ships.
            assert service.stats.delta_bytes_shipped > 0
            after = (sssp_watch.session.metrics.fragments_shipped,
                     cc_watch.session.metrics.fragments_shipped)
            assert after == shipped_before
            assert (sssp_watch.session.metrics.fragments_delta_shipped
                    + cc_watch.session.metrics.fragments_delta_shipped) > 0

        # A follow-up monotone batch stays on the incremental fast path
        # for both programs.
        service.insert_edges("social", [(0, 778, 0.9)])
        assert service.stats.incremental_maintained == 2
        assert sssp_watch.answer == pytest.approx(sssp_distances(g, 0))
        assert normalize(cc_watch.answer) == normalize(cc_oracle(g))


@pytest.mark.parametrize("backend", BACKENDS)
def test_watch_answers_survive_update_streams(backend):
    """Interleaved monotone and non-monotone batches: the maintained
    answers track the oracles at every step."""
    g = uniform_random_graph(50, 140, directed=False, seed=7)
    with GrapeService(backend=backend) as service:
        service.load_graph("g", g)
        sssp_watch = service.watch("sssp", 0, graph="g")
        cc_watch = service.watch("cc", graph="g")
        # new nodes get integer ids: CC component ids are node values
        # and must stay totally ordered under the min aggregator
        batches = [
            GraphDelta().insert(0, 1001, 0.4).insert(1001, 1002, 0.4),
            GraphDelta().delete(*next(iter(g.edges()))[:2]),
            GraphDelta().insert(1, 2, 0.05),
            GraphDelta().set_weight(*[(u, v, w * 5)
                                      for u, v, w in g.edges()][10]),
        ]
        for delta in batches:
            service.update("g", delta)
            assert sssp_watch.answer == pytest.approx(sssp_distances(g, 0))
            assert normalize(cc_watch.answer) == normalize(cc_oracle(g))
        # CC maintained the reweight batch incrementally even though
        # SSSP needed a fallback for it.
        assert service.stats.incremental_maintained >= 1
        assert service.stats.fallback_reruns >= 1
