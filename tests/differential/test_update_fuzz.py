"""Randomized update fuzzing for :class:`ContinuousQuerySession`.

Hypothesis-style property testing without the dependency: every scenario
is generated from an explicit seed (replaying a seed reproduces the run
exactly), and a failure is shrunk to a minimal failing insertion batch by
delta-debugging over the applied edges before being reported.

Property under test — the incremental-view discipline: after any batch of
monotone edge insertions (including brand-new nodes and cross-fragment
directed edges), the maintained answer of a standing query must equal a
from-scratch recomputation on the mutated fragmentation, on every
execution backend.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Tuple

import pytest

from repro.core.engine import GrapeEngine
from repro.core.updates import ContinuousQuerySession
from repro.graph.generators import uniform_random_graph
from repro.pie_programs import CCProgram, SSSPProgram

from .harness import BACKENDS, normalize

EdgeBatch = List[Tuple[Any, Any, float]]


def _random_batches(seed: int, reference, *, num_batches: int = 4,
                    batch_size: int = 5,
                    new_node: Callable[[int, int], Any] = None,
                    ) -> List[EdgeBatch]:
    """Seeded insertion batches: existing-node edges (directed across
    arbitrary fragments), brand-new nodes, and chains between new nodes.

    ``reference`` is a throwaway copy of the graph under test; generated
    weights are applied to it so that re-inserting an existing edge is
    always a monotone *decrease* (an increase would be correctly
    rejected by :func:`monotone_insert`, which is not the property under
    test here).  ``new_node(seed, i)`` mints fresh node ids; CC needs
    ids totally ordered against the existing ones (component ids are
    node values), SSSP happily takes strings (exercising stable-hash
    placement).
    """
    if new_node is None:
        new_node = lambda s, i: f"new-{s}-{i}"  # noqa: E731
    rng = random.Random(seed)
    batches: List[EdgeBatch] = []
    known = list(reference.nodes())
    fresh = 0
    for _b in range(num_batches):
        batch: EdgeBatch = []
        for _e in range(batch_size):
            kind = rng.random()
            if kind < 0.2:  # brand-new node -> existing node
                fresh += 1
                u = new_node(seed, fresh)
                v = rng.choice(known)
                known.append(u)
            elif kind < 0.35:  # existing node -> brand-new node
                fresh += 1
                u = rng.choice(known)
                v = new_node(seed, fresh)
                known.append(v)
            else:  # existing -> existing (cross-fragment at random)
                u, v = rng.sample(known, 2)
            if reference.has_node(u) and reference.has_node(v) \
                    and reference.has_edge(u, v):
                w = reference.edge_weight(u, v) * rng.uniform(0.3, 0.95)
            else:
                w = rng.uniform(0.05, 1.0)
            reference.add_node(u)
            reference.add_node(v)
            reference.add_edge(u, v, weight=w)
            batch.append((u, v, w))
        batches.append(batch)
    return batches


def _scenario_answers(make_program: Callable[[], Any], query: Any,
                      graph_factory: Callable[[], Any], backend: str,
                      edges: List[Tuple[Any, Any, float]]):
    """Apply ``edges`` as one session insertion stream; return
    (maintained answer, from-scratch answer on the mutated fragmentation).
    """
    engine = GrapeEngine(3, backend=backend)
    session = ContinuousQuerySession(engine, make_program(), query,
                                     graph=graph_factory())
    if edges:
        session.insert_edges(edges)
    maintained = normalize(session.answer)
    scratch = GrapeEngine(3, backend=backend).run(
        make_program(), query, fragmentation=session.fragmentation)
    return maintained, normalize(scratch.answer)


def _fails(make_program, query, graph_factory, backend, edges) -> bool:
    maintained, scratch = _scenario_answers(make_program, query,
                                            graph_factory, backend, edges)
    return maintained != scratch


def _shrink(fails: Callable[[List], bool], edges: List) -> List:
    """Greedy delta-debugging: drop edges while the failure persists."""
    current = list(edges)
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        i = 0
        while i < len(current):
            candidate = current[:i] + current[i + chunk:]
            if candidate and fails(candidate):
                current = candidate
            else:
                i += chunk
        if chunk == 1:
            break
        chunk //= 2
    return current


def _fuzz(make_program, query, graph_factory, backend, seed,
          new_node=None) -> None:
    batches = _random_batches(seed, graph_factory(), new_node=new_node)
    applied: List[Tuple[Any, Any, float]] = []
    engine = GrapeEngine(3, backend=backend)
    session = ContinuousQuerySession(engine, make_program(), query,
                                     graph=graph_factory())
    for batch in batches:
        session.insert_edges(batch)
        applied.extend(batch)
        maintained = normalize(session.answer)
        scratch = normalize(GrapeEngine(3, backend=backend).run(
            make_program(), query,
            fragmentation=session.fragmentation).answer)
        if maintained != scratch:
            minimal = _shrink(
                lambda subset: _fails(make_program, query, graph_factory,
                                      backend, subset),
                applied)
            pytest.fail(
                f"maintenance diverged from recomputation "
                f"(backend={backend!r}, seed={seed}); minimal failing "
                f"batch ({len(minimal)} of {len(applied)} edges, replay "
                f"with this exact list): {minimal}")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", range(3))
def test_sssp_session_fuzz(backend, seed):
    _fuzz(SSSPProgram, 0,
          lambda: uniform_random_graph(70, 260, seed=1000 + seed),
          backend, seed)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", range(3))
def test_cc_session_fuzz(backend, seed):
    n = 60
    # integer ids for new nodes: CC's component ids are node values and
    # must stay totally ordered under the min aggregator
    _fuzz(CCProgram, None,
          lambda: uniform_random_graph(n, 90, directed=False,
                                       seed=2000 + seed),
          backend, seed,
          new_node=lambda s, i: n + 100 * s + i)


def test_shrinker_minimizes_a_planted_failure():
    """The shrinker itself must work: plant a fake failure predicate and
    check it reduces to the single guilty edge."""
    guilty = ("new-9-1", 3, 0.5)
    edges = [(0, 1, 0.1), guilty, (2, 3, 0.2), (4, 5, 0.9), (5, 6, 0.4)]
    assert _shrink(lambda subset: guilty in subset, edges) == [guilty]
