"""Randomized update fuzzing for :class:`ContinuousQuerySession`.

Hypothesis-style property testing without the dependency: every scenario
is generated from an explicit seed (replaying a seed reproduces the run
exactly), and a failure is shrunk to a minimal failing batch by
delta-debugging over the applied operations before being reported.

Two properties, both the incremental-view discipline of Berkholz et al.:

* **monotone fuzz** — after any batch of monotone edge insertions
  (brand-new nodes, cross-fragment directed edges, weight decreases),
  the maintained answer of a standing query must equal a from-scratch
  recomputation on the mutated fragmentation, on every execution
  backend;
* **mixed fuzz** — the same with deletions and weight increases in the
  batches, exercising the maintainable-vs-recompute dispatch, border-set
  retirement under ``ΔG⁻`` and (under the process backend) worker-side
  delta replay, across every ``(backend × use_csr)`` combination.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Tuple

import pytest

from repro.core.engine import GrapeEngine
from repro.core.updates import ContinuousQuerySession
from repro.graph.delta import GraphDelta
from repro.graph.generators import uniform_random_graph
from repro.pie_programs import BFSProgram, CCProgram, SSSPProgram

from .harness import BACKENDS, CSR_MODES, normalize

EdgeBatch = List[Tuple[Any, Any, float]]
OpBatch = List[Tuple]


def _random_batches(seed: int, reference, *, num_batches: int = 4,
                    batch_size: int = 5,
                    new_node: Callable[[int, int], Any] = None,
                    ) -> List[EdgeBatch]:
    """Seeded insertion batches: existing-node edges (directed across
    arbitrary fragments), brand-new nodes, and chains between new nodes.

    ``reference`` is a throwaway copy of the graph under test; generated
    weights are applied to it so that re-inserting an existing edge is
    always a monotone *decrease* — an increase would route the batch to
    the recompute fallback, and this generator exists to keep the
    incremental fast path under test (mixed batches exercise the
    fallback).  ``new_node(seed, i)`` mints fresh node ids; CC needs
    ids totally ordered against the existing ones (component ids are
    node values), SSSP happily takes strings (exercising stable-hash
    placement).
    """
    if new_node is None:
        new_node = lambda s, i: f"new-{s}-{i}"  # noqa: E731
    rng = random.Random(seed)
    batches: List[EdgeBatch] = []
    known = list(reference.nodes())
    fresh = 0
    for _b in range(num_batches):
        batch: EdgeBatch = []
        for _e in range(batch_size):
            kind = rng.random()
            if kind < 0.2:  # brand-new node -> existing node
                fresh += 1
                u = new_node(seed, fresh)
                v = rng.choice(known)
                known.append(u)
            elif kind < 0.35:  # existing node -> brand-new node
                fresh += 1
                u = rng.choice(known)
                v = new_node(seed, fresh)
                known.append(v)
            else:  # existing -> existing (cross-fragment at random)
                u, v = rng.sample(known, 2)
            if reference.has_node(u) and reference.has_node(v) \
                    and reference.has_edge(u, v):
                w = reference.edge_weight(u, v) * rng.uniform(0.3, 0.95)
            else:
                w = rng.uniform(0.05, 1.0)
            reference.add_node(u)
            reference.add_node(v)
            reference.add_edge(u, v, weight=w)
            batch.append((u, v, w))
        batches.append(batch)
    return batches


def _scenario_answers(make_program: Callable[[], Any], query: Any,
                      graph_factory: Callable[[], Any], backend: str,
                      edges: List[Tuple[Any, Any, float]]):
    """Apply ``edges`` as one session insertion stream; return
    (maintained answer, from-scratch answer on the mutated fragmentation).
    """
    engine = GrapeEngine(3, backend=backend)
    session = ContinuousQuerySession(engine, make_program(), query,
                                     graph=graph_factory())
    if edges:
        session.insert_edges(edges)
    maintained = normalize(session.answer)
    scratch = GrapeEngine(3, backend=backend).run(
        make_program(), query, fragmentation=session.fragmentation)
    return maintained, normalize(scratch.answer)


def _fails(make_program, query, graph_factory, backend, edges) -> bool:
    maintained, scratch = _scenario_answers(make_program, query,
                                            graph_factory, backend, edges)
    return maintained != scratch


def _shrink(fails: Callable[[List], bool], edges: List) -> List:
    """Greedy delta-debugging: drop edges while the failure persists."""
    current = list(edges)
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        i = 0
        while i < len(current):
            candidate = current[:i] + current[i + chunk:]
            if candidate and fails(candidate):
                current = candidate
            else:
                i += chunk
        if chunk == 1:
            break
        chunk //= 2
    return current


def _fuzz(make_program, query, graph_factory, backend, seed,
          new_node=None) -> None:
    batches = _random_batches(seed, graph_factory(), new_node=new_node)
    applied: List[Tuple[Any, Any, float]] = []
    engine = GrapeEngine(3, backend=backend)
    session = ContinuousQuerySession(engine, make_program(), query,
                                     graph=graph_factory())
    for batch in batches:
        session.insert_edges(batch)
        applied.extend(batch)
        maintained = normalize(session.answer)
        scratch = normalize(GrapeEngine(3, backend=backend).run(
            make_program(), query,
            fragmentation=session.fragmentation).answer)
        if maintained != scratch:
            minimal = _shrink(
                lambda subset: _fails(make_program, query, graph_factory,
                                      backend, subset),
                applied)
            pytest.fail(
                f"maintenance diverged from recomputation "
                f"(backend={backend!r}, seed={seed}); minimal failing "
                f"batch ({len(minimal)} of {len(applied)} edges, replay "
                f"with this exact list): {minimal}")


# ---------------------------------------------------------------------------
# Mixed insert/delete/reweight fuzzing
# ---------------------------------------------------------------------------
def _random_op_batches(seed: int, reference, *, num_batches: int = 3,
                       batch_size: int = 6,
                       new_node: Callable[[int, int], Any] = None,
                       insert_rate: float = 0.35,
                       delete_rate: float = 0.25,
                       ) -> List[OpBatch]:
    """Seeded mixed batches of :class:`GraphDelta` operations.

    ``reference`` is a throwaway copy of the graph under test, mutated
    alongside generation so deletions and reweights always target live
    edges.  Default mix: 35% insertions (some attaching brand-new
    nodes), 25% deletions, 20% weight increases, 20% weight decreases;
    ``insert_rate`` / ``delete_rate`` skew the mix (the remainder is
    reweights, half increases half decreases).
    """
    if new_node is None:
        new_node = lambda s, i: f"mix-{s}-{i}"  # noqa: E731
    rng = random.Random(seed)
    batches: List[OpBatch] = []
    known = list(reference.nodes())
    fresh = 0
    for _b in range(num_batches):
        batch: OpBatch = []
        for _e in range(batch_size):
            kind = rng.random()
            live = list(reference.edges())
            if kind < insert_rate or not live:
                if kind < 0.34 * insert_rate:
                    fresh += 1
                    u, v = new_node(seed, fresh), rng.choice(known)
                    known.append(u)
                else:
                    u, v = rng.sample(known, 2)
                w = rng.uniform(0.05, 1.0)
                reference.add_node(u)
                reference.add_node(v)
                reference.add_edge(u, v, weight=w)
                batch.append(("+", u, v, w))
            elif kind < insert_rate + delete_rate:
                u, v, _w = rng.choice(live)
                reference.remove_edge(u, v)
                batch.append(("-", u, v))
            else:
                u, v, w = rng.choice(live)
                mid = insert_rate + delete_rate + (1 - insert_rate
                                                   - delete_rate) / 2
                factor = (rng.uniform(1.1, 3.0) if kind < mid
                          else rng.uniform(0.3, 0.9))
                reference.set_edge_weight(u, v, w * factor)
                batch.append(("w", u, v, w * factor))
        batches.append(batch)
    return batches


def _mixed_scenario_answers(make_program, query, graph_factory, backend,
                            use_csr, ops: OpBatch):
    engine = GrapeEngine(3, backend=backend)
    session = ContinuousQuerySession(engine,
                                     make_program(use_csr=use_csr), query,
                                     graph=graph_factory())
    if ops:
        session.update(GraphDelta(ops))
    maintained = normalize(session.answer)
    scratch = GrapeEngine(3, backend=backend).run(
        make_program(use_csr=use_csr), query,
        fragmentation=session.fragmentation)
    return maintained, normalize(scratch.answer)


def _fails_mixed(make_program, query, graph_factory, backend, use_csr,
                 ops) -> bool:
    maintained, scratch = _mixed_scenario_answers(
        make_program, query, graph_factory, backend, use_csr, ops)
    return maintained != scratch


def _fuzz_mixed(make_program, query, graph_factory, backend, use_csr,
                seed, new_node=None, insert_rate=0.35,
                delete_rate=0.25) -> None:
    batches = _random_op_batches(seed, graph_factory(), new_node=new_node,
                                 insert_rate=insert_rate,
                                 delete_rate=delete_rate)
    applied: OpBatch = []
    engine = GrapeEngine(3, backend=backend)
    session = ContinuousQuerySession(engine,
                                     make_program(use_csr=use_csr), query,
                                     graph=graph_factory())
    for batch in batches:
        session.update(GraphDelta(batch))
        applied.extend(batch)
        session.fragmentation.validate()
        maintained = normalize(session.answer)
        scratch = normalize(GrapeEngine(3, backend=backend).run(
            make_program(use_csr=use_csr), query,
            fragmentation=session.fragmentation).answer)
        if maintained != scratch:
            minimal = _shrink(
                lambda subset: _fails_mixed(make_program, query,
                                            graph_factory, backend,
                                            use_csr, subset),
                applied)
            pytest.fail(
                f"maintenance diverged from recomputation "
                f"(backend={backend!r}, use_csr={use_csr}, seed={seed}); "
                f"minimal failing op batch ({len(minimal)} of "
                f"{len(applied)} ops, replay with GraphDelta(this list)): "
                f"{minimal}")
    # At least one non-monotone batch should have exercised the fallback
    # (the generator's deletion/increase rates make this overwhelmingly
    # likely; assert the plumbing recorded the split).
    m = session.metrics
    assert m.deltas_applied == m.incremental_maintained + m.fallback_reruns


@pytest.mark.parametrize("use_csr", CSR_MODES)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", range(2))
def test_sssp_mixed_fuzz(backend, use_csr, seed):
    _fuzz_mixed(SSSPProgram, 0,
                lambda: uniform_random_graph(60, 200, seed=3000 + seed),
                backend, use_csr, seed)


@pytest.mark.parametrize("use_csr", CSR_MODES)
@pytest.mark.parametrize("seed", range(2))
def test_sssp_mixed_fuzz_undirected(use_csr, seed):
    """Undirected SSSP churn: symmetric orientations must stay in step
    through insertions, deletions and reweights (regression: an
    intra-fragment undirected decrease once seeded only one direction
    of the relaxation)."""
    _fuzz_mixed(SSSPProgram, 0,
                lambda: uniform_random_graph(50, 120, directed=False,
                                             seed=5000 + seed),
                "serial", use_csr, seed)


@pytest.mark.parametrize("seed", range(3))
def test_sssp_deletion_heavy_fuzz_csr(seed):
    """Deletion-dominated batches under ``use_csr=True``: every bounded
    round resets distances on the dict side, so the dense CSR mirror
    (``state._arr``) must be invalidated and rebuilt before the next
    kernel call — a stale mirror diverges from recomputation here."""
    _fuzz_mixed(SSSPProgram, 0,
                lambda: uniform_random_graph(60, 200, seed=6000 + seed),
                "serial", True, seed,
                insert_rate=0.15, delete_rate=0.55)


@pytest.mark.parametrize("use_csr", CSR_MODES)
@pytest.mark.parametrize("seed", range(2))
def test_bfs_mixed_fuzz(use_csr, seed):
    """BFS under mixed churn: reweights must be no-ops for hop counts,
    deletions must route through the bounded path (integer analog of the
    SSSP affected-region machinery)."""
    _fuzz_mixed(BFSProgram, 0,
                lambda: uniform_random_graph(60, 200, seed=7000 + seed),
                "serial", use_csr, seed)


@pytest.mark.parametrize("use_csr", CSR_MODES)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", range(2))
def test_cc_mixed_fuzz(backend, use_csr, seed):
    n = 50
    _fuzz_mixed(CCProgram, None,
                lambda: uniform_random_graph(n, 80, directed=False,
                                             seed=4000 + seed),
                backend, use_csr, seed,
                new_node=lambda s, i: n + 100 * s + i)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", range(3))
def test_sssp_session_fuzz(backend, seed):
    _fuzz(SSSPProgram, 0,
          lambda: uniform_random_graph(70, 260, seed=1000 + seed),
          backend, seed)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", range(3))
def test_cc_session_fuzz(backend, seed):
    n = 60
    # integer ids for new nodes: CC's component ids are node values and
    # must stay totally ordered under the min aggregator
    _fuzz(CCProgram, None,
          lambda: uniform_random_graph(n, 90, directed=False,
                                       seed=2000 + seed),
          backend, seed,
          new_node=lambda s, i: n + 100 * s + i)


def test_shrinker_minimizes_a_planted_failure():
    """The shrinker itself must work: plant a fake failure predicate and
    check it reduces to the single guilty edge."""
    guilty = ("new-9-1", 3, 0.5)
    edges = [(0, 1, 0.1), guilty, (2, 3, 0.2), (4, 5, 0.9), (5, 6, 0.4)]
    assert _shrink(lambda subset: guilty in subset, edges) == [guilty]
