"""The non-monotone operation matrix for the delete-aware bounded path.

One focused scenario per cell of ``directed × {delete, increase}`` on
every execution backend, for each of SSSP, BFS and CC: apply a
single-kind non-monotone batch to a standing session and assert that

* the maintained answer equals the sequential oracle on the mutated
  graph (exact equality — the bounded path re-derives every reset value
  as the same path sum the oracle computes), and
* the batch was served without a recompute fallback, with a partial
  reset exactly when the program's ``invalidates`` dispatch says the
  operation kind threatens converged values (weight increases are
  no-ops for BFS hop counts and CC membership).
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.core.engine import GrapeEngine
from repro.core.updates import ContinuousQuerySession
from repro.graph.delta import GraphDelta
from repro.graph.generators import uniform_random_graph
from repro.pie_programs import BFSProgram, CCProgram, SSSPProgram
from repro.sequential import connected_components, sssp_distances

from .harness import BACKENDS, normalize

OPS = ("delete", "increase")


def bfs_oracle(g, source):
    hops = {v: -1 for v in g.nodes()}
    if g.has_node(source):
        hops[source] = 0
        dq = deque([source])
        while dq:
            v = dq.popleft()
            for w in g.successors(v):
                if hops[w] == -1:
                    hops[w] = hops[v] + 1
                    dq.append(w)
    return hops


def cc_oracle(g):
    buckets = {}
    for v, c in connected_components(g).items():
        buckets.setdefault(c, set()).add(v)
    return buckets


#: (program factory, query, oracle, operation kinds that invalidate)
CASES = {
    "sssp": (SSSPProgram, 0,
             lambda g: sssp_distances(g, 0), {"delete", "increase"}),
    "bfs": (BFSProgram, 0, lambda g: bfs_oracle(g, 0), {"delete"}),
    "cc": (CCProgram, None, cc_oracle, {"delete"}),
}


def _single_kind_delta(g, op, count=3):
    """A batch of ``count`` deletions or weight increases against live
    edges spread across the edge list (and thus across fragments)."""
    edges = sorted(g.edges())
    picked = edges[:: max(1, len(edges) // count)][:count]
    delta = GraphDelta()
    for u, v, w in picked:
        if op == "delete":
            delta.delete(u, v)
        else:
            delta.set_weight(u, v, w * 5.0)
    return delta


@pytest.mark.parametrize("program_key", sorted(CASES))
@pytest.mark.parametrize("op", OPS)
@pytest.mark.parametrize("directed", (True, False),
                         ids=("directed", "undirected"))
@pytest.mark.parametrize("backend", BACKENDS)
def test_nonmonotone_matrix(backend, directed, op, program_key):
    make_program, query, oracle, invalidating = CASES[program_key]
    g = uniform_random_graph(60, 180, directed=directed, seed=90)
    engine = GrapeEngine(3, backend=backend)
    session = ContinuousQuerySession(engine, make_program(), query, graph=g)
    baseline = normalize(session.answer)
    assert baseline == normalize(oracle(g))

    session.update(_single_kind_delta(g, op))
    session.fragmentation.validate()
    assert normalize(session.answer) == normalize(oracle(g))

    m = session.metrics
    assert m.fallback_reruns == 0
    assert m.incremental_maintained == 1
    if op in invalidating:
        assert m.partial_resets == 1
        assert m.affected_vertices >= 0
    else:
        # The kind is answer-preserving for this program: served by the
        # plain monotone fold, no reset at all.
        assert m.partial_resets == 0
