"""Differential correctness across every execution path.

SSSP, BFS, CC and PageRank on seeded random graphs, executed under every
(backend × use_csr × incremental) combination: identical answers
everywhere; identical superstep counts and communication accounting
within each incremental mode.
"""

import pytest

from repro.graph.generators import (grid_road_graph, preferential_attachment,
                                    uniform_random_graph)
from repro.pie_programs import (BFSProgram, CCProgram, PageRankProgram,
                                PageRankQuery, SSSPProgram)

from .harness import ALL_PATHS, run_all_paths


@pytest.mark.parametrize("seed", range(3))
def test_sssp_all_paths(seed):
    results = run_all_paths(
        SSSPProgram, 0,
        lambda: uniform_random_graph(140, 560, seed=seed))
    assert len(results) == len(ALL_PATHS)


@pytest.mark.parametrize("seed", range(3))
def test_bfs_all_paths(seed):
    run_all_paths(
        BFSProgram, 0,
        lambda: preferential_attachment(130, 3, seed=seed))


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("directed", [False, True])
def test_cc_all_paths(seed, directed):
    run_all_paths(
        CCProgram, None,
        lambda: uniform_random_graph(110, 170, directed=directed,
                                     seed=seed))


@pytest.mark.parametrize("seed", range(2))
def test_pagerank_all_paths(seed):
    run_all_paths(
        PageRankProgram, PageRankQuery(max_iterations=6),
        lambda: preferential_attachment(100, 3, seed=seed))


def test_sssp_large_diameter_all_paths():
    # The traffic-shaped regime: many supersteps, small frontiers.
    run_all_paths(SSSPProgram, 0, lambda: grid_road_graph(8, 8, seed=5),
                  workers=4)


def test_virtual_workers_all_paths():
    # m > n: several fragments share a physical worker (paper 3.1).
    run_all_paths(SSSPProgram, 0,
                  lambda: uniform_random_graph(120, 480, seed=11),
                  workers=2, num_fragments=6)
