"""The process-backend pickle contract, audited.

Everything that crosses the worker pipe must round-trip through pickle:
every registered PIE program, fragments, fragmentations and engine
configs.  And a program that *cannot* cross must fail fast with an error
that tells the user what to fix.
"""

import pickle

import pytest

from repro.core.api import default_registry
from repro.core.engine import EngineConfig, GrapeEngine
from repro.core.pie import PIEProgram
from repro.graph.generators import uniform_random_graph
from repro.partition.strategies import HashPartition, RangePartition
from repro.pie_programs import SSSPProgram
from repro.runtime.executors import UnpicklableProgramError
from repro.runtime.fault import FailureInjector


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj,
                                     protocol=pickle.HIGHEST_PROTOCOL))


# ---------------------------------------------------------------------------
# programs
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(default_registry().names(),
                                        key=str.lower))
def test_every_registered_program_roundtrips(name):
    program = default_registry().create(name)
    clone = roundtrip(program)
    assert type(clone) is type(program)
    assert clone.name == program.name
    assert vars(clone) == vars(program)


@pytest.mark.parametrize("name", ["sssp", "bfs", "cc", "pagerank"])
def test_unpickled_program_runs_identically(name):
    from repro.pie_programs import PageRankQuery
    graph = uniform_random_graph(80, 300, seed=4, directed=(name != "cc"))
    query = {"cc": None,
             "pagerank": PageRankQuery(max_iterations=5)}.get(name, 0)
    original = GrapeEngine(3).run(default_registry().create(name), query,
                                  graph=graph)
    clone = GrapeEngine(3).run(roundtrip(default_registry().create(name)),
                               query, graph=graph)
    assert clone.answer == original.answer
    assert clone.supersteps == original.supersteps
    assert clone.metrics.comm_bytes == original.metrics.comm_bytes


# ---------------------------------------------------------------------------
# fragments and fragmentations
# ---------------------------------------------------------------------------
def make_fragmentation():
    g = uniform_random_graph(50, 180, seed=9)
    return GrapeEngine(3).make_fragmentation(g)


def test_fragment_roundtrip_drops_csr_and_lock():
    frag = make_fragmentation()[0]
    frag.csr()          # populate the snapshot + epoch machinery
    frag.invalidate_csr()
    frag.csr()
    clone = roundtrip(frag)
    assert clone.fid == frag.fid
    assert clone.owned == frag.owned
    assert clone.inner == frag.inner
    assert clone.outer == frag.outer
    assert set(clone.graph.nodes()) == set(frag.graph.nodes())
    assert sorted(clone.graph.edges()) == sorted(frag.graph.edges())
    # the snapshot machinery restarts fresh on the receiving side
    assert clone.csr_epoch == 0
    assert clone.csr_builds == 0
    assert clone.csr().n == frag.csr().n


def test_fragmentation_roundtrip_preserves_gp():
    fragmentation = make_fragmentation()
    clone = roundtrip(fragmentation)
    clone.validate()
    assert clone.num_fragments == fragmentation.num_fragments
    for v in fragmentation.graph.nodes():
        assert clone.gp.owner(v) == fragmentation.gp.owner(v)
        assert clone.gp.holders(v) == fragmentation.gp.holders(v)


# ---------------------------------------------------------------------------
# engine configs
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("config", [
    EngineConfig(),
    EngineConfig(num_workers=2, num_fragments=8, backend="process"),
    EngineConfig(partition=RangePartition(), incremental=False),
    EngineConfig(partition=HashPartition(),
                 failure_injector=FailureInjector(planned=[(0, 1)])),
], ids=["default", "process", "range-ni", "hash-ft"])
def test_engine_config_roundtrips(config):
    clone = roundtrip(config)
    assert clone.num_workers == config.num_workers
    assert clone.effective_fragments == config.effective_fragments
    assert clone.backend == config.backend
    assert clone.incremental == config.incremental
    assert type(clone.partition) is type(config.partition)


# ---------------------------------------------------------------------------
# the failure mode: a clear error for unpicklable programs
# ---------------------------------------------------------------------------
def test_unpicklable_program_fails_fast_with_clear_error():
    class LocalProgram(SSSPProgram):
        """Function-local classes cannot be pickled by reference."""

    engine = GrapeEngine(2, backend="process")
    graph = uniform_random_graph(20, 40, seed=1)
    with pytest.raises(UnpicklableProgramError) as excinfo:
        engine.run(LocalProgram(), 0, graph=graph)
    message = str(excinfo.value)
    assert "picklable" in message
    assert "process" in message
    assert "module level" in message


def test_unpicklable_query_fails_fast_too():
    engine = GrapeEngine(2, backend="process")
    graph = uniform_random_graph(20, 40, seed=1)
    unpicklable_query = lambda: 0  # noqa: E731
    with pytest.raises(UnpicklableProgramError):
        engine.run(SSSPProgram(), unpicklable_query, graph=graph)


def test_abstract_program_documents_the_contract():
    assert "Pickle contract" in PIEProgram.__doc__


def test_mapped_fragment_pickles_to_independent_copy():
    """A fragment serving zero-copy shared-memory CSR views must pickle
    without carrying segment handles: the clone is a plain deep copy
    that stays valid after the segment is unlinked."""
    from repro.runtime import shm

    if not shm.shm_available():
        pytest.skip("no shared-memory provider here")
    frag = make_fragmentation()[0]
    prov = shm.provider()
    seg, desc = shm.publish_fragment(prov, 7, 0, 0, frag, frag.csr())
    mapped, _seg = shm.attach_fragment(desc)
    assert mapped.csr_shared
    blob = pickle.dumps(mapped, protocol=pickle.HIGHEST_PROTOCOL)
    # the pickled form dropped the mapped views along with the rest of
    # the snapshot machinery (it must never capture the segment buffer)
    clone = pickle.loads(blob)
    assert not clone.csr_shared
    assert clone.csr_builds == 0
    prov.unlink(desc.name)
    del mapped, seg, _seg  # drop the mappings before touching the clone
    assert clone.owned == frag.owned
    assert sorted(clone.graph.edges()) == sorted(frag.graph.edges())
    # the clone rebuilds its own CSR from its own dict graph
    snap = clone.csr()
    assert clone.csr_builds == 1
    assert snap.n == frag.csr().n
