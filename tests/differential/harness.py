"""The differential correctness harness.

Three result-equivalent execution paths now coexist: the dict-graph
sequential algorithms, the vectorized CSR kernels, and (orthogonally)
three execution backends including out-of-process workers.  Following the
incremental-view discipline of Berkholz et al. ("Answering FO+MOD queries
under updates"), the cheapest way to keep them honest is to assert that
every path agrees with every other — automatically, on randomized inputs.

:func:`run_all_paths` executes one (program, query, graph) workload under
every ``(backend × use_csr × incremental)`` combination and asserts that

* **answers** are identical across *all* combinations, and
* **superstep counts and communication accounting** are identical across
  all combinations sharing the same ``incremental`` mode (GRAPE-NI
  legitimately reaches the same fixpoint along a different superstep
  schedule).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Tuple

from repro.core.engine import GrapeEngine

BACKENDS = ("serial", "thread", "process")
CSR_MODES = (True, False)
INCREMENTAL_MODES = (True, False)

#: every execution-path combination the harness sweeps
ALL_PATHS = tuple(itertools.product(BACKENDS, CSR_MODES, INCREMENTAL_MODES))

PathKey = Tuple[str, bool, bool]


def normalize(answer: Any) -> Any:
    """Make an answer hashable/comparable across runs.

    CC answers map component ids to mutable node sets; freeze them so
    dict equality is well-defined after the originals are garbage
    collected or mutated.
    """
    if isinstance(answer, dict):
        return {k: (frozenset(v) if isinstance(v, (set, frozenset)) else v)
                for k, v in answer.items()}
    return answer


def run_all_paths(make_program: Callable[..., Any], query: Any,
                  graph_factory: Callable[[], Any], *,
                  workers: int = 3,
                  num_fragments: int = None,
                  backends=BACKENDS,
                  csr_modes=CSR_MODES,
                  incremental_modes=INCREMENTAL_MODES,
                  ) -> Dict[PathKey, Any]:
    """Run every (backend × use_csr × incremental) combination, assert
    pairwise agreement, and return the per-path results.

    ``make_program`` is called as ``make_program(use_csr=...)`` per run
    (a fresh program per run — programs may carry per-run state);
    ``graph_factory`` likewise rebuilds the graph so no run observes
    another's mutations.
    """
    results: Dict[PathKey, Any] = {}
    reference_answer = None
    reference_key = None
    by_mode: Dict[bool, Tuple[PathKey, Any]] = {}

    for backend in backends:
        for use_csr in csr_modes:
            for incremental in incremental_modes:
                engine = GrapeEngine(workers,
                                     num_fragments=num_fragments,
                                     backend=backend,
                                     incremental=incremental)
                result = engine.run(make_program(use_csr=use_csr), query,
                                    graph=graph_factory())
                key = (backend, use_csr, incremental)
                results[key] = result
                answer = normalize(result.answer)

                if reference_answer is None:
                    reference_answer, reference_key = answer, key
                else:
                    assert answer == reference_answer, (
                        f"answer diverged: {key} vs {reference_key}")

                costs = (result.supersteps, result.metrics.comm_bytes,
                         result.metrics.comm_messages)
                if incremental not in by_mode:
                    by_mode[incremental] = (key, costs)
                else:
                    ref_key, ref_costs = by_mode[incremental]
                    assert costs == ref_costs, (
                        f"(supersteps, comm_bytes, comm_messages) diverged "
                        f"within incremental={incremental}: "
                        f"{key}={costs} vs {ref_key}={ref_costs}")
    return results
