"""Chaos differential tests: seeded fault schedules over a mixed
query+update workload, across backend × store × replica configurations.

The acceptance property, per configuration:

* every operation **completes** (bounded retries over a finite fault
  schedule — the harness raises if one never does);
* every completed answer is **equal to the fault-free oracle's**;
* every failure observed on the way is a **typed** error from the
  resilience taxonomy (the harness catches nothing else);
* nothing ever hangs (a hard SIGALRM watchdog brackets each run);
* nothing is corrupted (store-backed runs must serve identical answers
  after a cold restart; the replica must converge to the primary).
"""

from __future__ import annotations

import os

import pytest

from repro.core.engine import EngineConfig
from repro.replication import ReplicaService
from repro.resilience import FaultPlane, RetryPolicy
from repro.resilience.faults import installed
from repro.service import GrapeService

from .harness import base_graph, build_ops, run_workload, watchdog

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="SIGALRM watchdog and worker-kill "
    "semantics are POSIX-only")

SEED = 1234


@pytest.fixture(scope="module")
def oracle():
    """The fault-free pass: same ops, no plane installed."""
    ops = build_ops(SEED)
    svc = GrapeService(engine=EngineConfig(num_workers=4), grouping=False)
    svc.load_graph("soc", base_graph())
    with watchdog(60):
        answers, observed = run_workload(svc, "soc", ops)
    svc.close()
    assert observed == []  # nothing fails without faults
    return ops, answers


def test_chaos_serial_inline(oracle):
    """Inline backend: crashes surface as simulated worker failures and
    recover from in-memory checkpoints; slow faults just cost time."""
    ops, expected = oracle
    plane = (FaultPlane(seed=SEED)
             .plan("exec.step", "crash", at=2)
             .plan("exec.step", "slow", at=5, delay_s=0.02)
             .rate("exec.step", "crash", 0.03, times=3))
    svc = GrapeService(engine=EngineConfig(num_workers=4), grouping=False)
    svc.load_graph("soc", base_graph())
    with watchdog(90), installed(plane):
        answers, observed = run_workload(svc, "soc", ops)
    svc.close()
    assert len(plane.fired) >= 1   # the schedule really hit
    assert answers == expected     # bitwise differential


def test_chaos_thread_with_store(oracle, tmp_path):
    """Thread backend over a durable store: executor crashes plus
    torn/failed WAL appends (absorbed by the service's retry policy),
    then a cold restart must replay to identical answers."""
    ops, expected = oracle
    plane = (FaultPlane(seed=SEED + 1)
             .plan("exec.step", "crash", at=3)
             .plan("store.wal.append", "torn", at=1)
             .plan("store.wal.append", "fsync", at=3)
             .rate("exec.step", "crash", 0.02, times=2))
    svc = GrapeService(engine=EngineConfig(num_workers=4),
                       backend="thread", store_dir=tmp_path / "store",
                       node_id="p",
                       retry=RetryPolicy(max_attempts=6,
                                         base_backoff_s=0.001,
                                         jitter=0.0),
                       grouping=False)
    svc.load_graph("soc", base_graph())
    with watchdog(90), installed(plane):
        answers, observed = run_workload(svc, "soc", ops)
    assert len(plane.fired) >= 3
    assert answers == expected
    final = svc.play("sssp", 0, graph="soc").answer
    svc.close()

    # No corruption: a cold restart replays snapshot + WAL to the same
    # graph and the same answers.
    revived = GrapeService(store_dir=tmp_path / "store", node_id="p2")
    with watchdog(60):
        assert revived.play("sssp", 0, graph="soc").answer == final
    revived.close()


def test_chaos_process_store_replica(oracle, tmp_path):
    """The full stack: process backend (real worker crashes and a real
    hang caught by heartbeats), WAL faults, and a tailing replica whose
    stream is stalled — everything must still converge bit-for-bit."""
    ops, expected = oracle
    plane = (FaultPlane(seed=SEED + 2)
             .plan("exec.step", "crash", key=1, at=4)
             .plan("exec.step", "hang", key=0, at=7, hang_s=30.0)
             .plan("store.wal.append", "fsync", at=2)
             .plan("replication.tail", "stall", key="soc", at=1)
             .rate("replication.tail", "stall", 0.2, times=2))
    svc = GrapeService(engine=EngineConfig(num_workers=4),
                       backend="process", store_dir=tmp_path / "store",
                       node_id="primary", heartbeat_timeout_s=0.4,
                       retry=RetryPolicy(max_attempts=6,
                                         base_backoff_s=0.001,
                                         jitter=0.0),
                       grouping=False)
    svc.load_graph("soc", base_graph())
    replica = ReplicaService(tmp_path / "store", replica_id="r1")
    with watchdog(150), installed(plane):
        answers, observed = run_workload(svc, "soc", ops)
        # Drain the replica through the stalls (bounded: the stall
        # schedule is finite, so polls eventually flow again).
        for _ in range(50):
            replica.sync()
            if replica.lag_bytes("soc") == 0:
                break
        assert replica.lag_bytes("soc") == 0
    kinds = {k for (_s, _k, _o, k) in plane.fired}
    assert {"crash", "hang"} <= kinds  # the headline faults really hit
    assert answers == expected
    # Replica convergence: identical answers to the primary.
    with watchdog(60):
        for source in (0, 7, 14):
            assert (replica.play("sssp", source, graph="soc").answer
                    == svc.play("sssp", source, graph="soc").answer)
    replica.close()
    svc.close()
