"""Seeded chaos harness: one mixed workload, one fault schedule, one
differential check.

The harness owns three things the chaos tests share:

* a **deterministic mixed workload** (:func:`build_ops`) of queries and
  update batches, generated as pure data so the oracle pass and every
  chaos pass replay byte-identical operation sequences;
* a **hard watchdog** (:func:`watchdog`, SIGALRM) so a chaos run can
  fail loudly but can never hang the suite;
* the **differential runner** (:func:`run_workload`): each operation is
  retried in a bounded loop until it completes, only the typed error
  taxonomy (:data:`TAXONOMY`) is ever caught, and the answers of the
  operations that completed are collected for bitwise comparison
  against the fault-free oracle.
"""

from __future__ import annotations

import contextlib
import random
import signal

from repro.graph.delta import GraphDelta
from repro.graph.generators import uniform_random_graph
from repro.resilience import (DeadlineExceeded, FailoverInterrupted,
                              QueryCancelled, RetryExhausted)
from repro.runtime.executors import WorkerProcessDied
from repro.runtime.fault import WorkerFailure
from repro.store.snapshot import SnapshotError
from repro.store.wal import WALWriteError

#: every error a resilient run is allowed to surface — anything outside
#: this tuple propagates out of the harness and fails the test.
TAXONOMY = (DeadlineExceeded, QueryCancelled, RetryExhausted,
            WorkerProcessDied, WorkerFailure, WALWriteError,
            SnapshotError, FailoverInterrupted)

QUERY_SOURCES = (0, 7, 14, 21)


class ChaosHung(RuntimeError):
    """The hard watchdog expired: something hung."""


@contextlib.contextmanager
def watchdog(seconds: float):
    """SIGALRM-backed hard timeout: raises :class:`ChaosHung` in the
    main thread no matter what the run is blocked on."""

    def expired(signum, frame):
        raise ChaosHung(f"chaos run exceeded its {seconds}s watchdog")

    previous = signal.signal(signal.SIGALRM, expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def base_graph():
    return uniform_random_graph(40, 130, directed=False, seed=23)


def _delta_from_spec(spec):
    delta = GraphDelta()
    for entry in spec:
        kind, args = entry[0], entry[1:]
        getattr(delta, kind)(*args)
    return delta


def build_ops(seed: int, rounds: int = 6):
    """A deterministic interleaving of update batches and queries.

    Each round mutates the graph (an insertion plus a rotating
    deletion/reweight of a *live* edge — tracked against a mirror so
    every spec is valid at its point in the sequence) and then queries
    it.  Returned as pure data: ``("update", spec)`` and
    ``("query", program, source)`` tuples.
    """
    mirror = base_graph()
    rng = random.Random(seed)
    ops = []
    for i in range(rounds):
        edges = sorted(mirror.edges())
        u, v, w = edges[rng.randrange(len(edges))]
        spec = [("insert", rng.randrange(40), 1000 + i,
                 round(rng.uniform(0.1, 1.0), 3))]
        if i % 3 == 0:
            spec.append(("delete", u, v))
        elif i % 3 == 1:
            spec.append(("set_weight", u, v,
                         round(w * rng.uniform(0.25, 4.0), 3)))
        ops.append(("update", tuple(spec)))
        _delta_from_spec(spec).normalize(mirror).apply_to(mirror)
        ops.append(("query", "sssp", QUERY_SOURCES[i % len(QUERY_SOURCES)]))
    ops.append(("query", "cc", None))
    return ops


def run_workload(service, graph_name: str, ops, *,
                 max_op_attempts: int = 12):
    """Drive ``ops`` against ``service``; every operation must complete.

    Operations that raise a taxonomy error are retried (the schedule is
    finite, so a bounded loop always drains it); any other exception —
    or an operation still failing after ``max_op_attempts`` — is a
    harness failure.  Returns ``(answers, observed_error_types)`` where
    ``answers`` is the ordered list of completed query answers.
    """
    answers = []
    observed = []
    for op in ops:
        for attempt in range(max_op_attempts):
            try:
                if op[0] == "query":
                    _tag, program, source = op
                    ticket = service.play(program, source,
                                          graph=graph_name)
                    answers.append(ticket.answer)
                else:
                    service.update(graph_name, _delta_from_spec(op[1]))
                break
            except TAXONOMY as exc:
                observed.append(type(exc))
        else:
            raise AssertionError(
                f"operation {op!r} failed {max_op_attempts} times")
    return answers, observed
