"""Shared-memory hygiene under chaos: SIGKILLed workers, injected
attach faults and hard backend teardown must leave no orphan segments
in ``/dev/shm`` and no outstanding arena references."""

from __future__ import annotations

import glob
import os
import signal

import pytest

from repro.core.engine import GrapeEngine
from repro.graph.generators import grid_road_graph
from repro.pie_programs import SSSPProgram
from repro.resilience.faults import FaultPlane, installed
from repro.runtime import shm
from repro.runtime.executors import ProcessBackend, WorkerProcessDied
from repro.sequential import sssp_distances

pytestmark = [
    pytest.mark.skipif(os.name != "posix",
                       reason="SIGKILL semantics are POSIX-only"),
    pytest.mark.skipif(not shm.shm_available(),
                       reason="no shared-memory provider here"),
]


class KillOwnWorkerSSSP(SSSPProgram):
    """SSSP whose first IncEval SIGKILLs its own worker (one-shot,
    guarded by a marker file on the shared filesystem)."""

    def __init__(self, marker: str):
        super().__init__()
        self.marker = marker

    def inceval(self, query, fragment, state, message):
        if not os.path.exists(self.marker):
            with open(self.marker, "w") as fh:
                fh.write(str(os.getpid()))
                fh.flush()
                os.fsync(fh.fileno())
            os.kill(os.getpid(), signal.SIGKILL)
        super().inceval(query, fragment, state, message)


def segment_files():
    return sorted(glob.glob("/dev/shm/repro-shm-*"))


def test_killed_workers_and_attach_faults_leave_no_orphans(tmp_path):
    baseline = set(segment_files())
    g = grid_road_graph(6, 6, seed=3)
    backend = ProcessBackend()
    try:
        engine = GrapeEngine(4, backend=backend)
        frag = engine.make_fragmentation(g)

        # cold lease over shared memory, then a worker dies hard while
        # holding mappings of the published segments
        clean = engine.run(SSSPProgram(), 0, fragmentation=frag)
        assert clean.metrics.fragment_bytes_shipped == 0
        with pytest.raises(WorkerProcessDied):
            engine.run(KillOwnWorkerSSSP(str(tmp_path / "killed.pid")),
                       0, fragmentation=frag)

        # the pool replaces the dead worker; a seeded attach fault on
        # the re-lease forces the pickle fallback — answers still match
        plane = FaultPlane(seed=7).plan("exec.shm.attach", "error",
                                        at=1, times=4)
        with installed(plane):
            faulted = engine.run(SSSPProgram(), 0, fragmentation=frag)
        assert faulted.answer == pytest.approx(sssp_distances(g, 0))
        assert faulted.answer == clean.answer
    finally:
        backend.close()

    # nothing leaked: every published segment was unlinked, every
    # worker reference (including the SIGKILLed worker's) was returned
    assert backend._arena.ref_leaks == 0
    assert backend.shm_stats() == (0, 0)
    assert set(segment_files()) <= baseline
    # and the stale sweep agrees there is nothing of ours to reclaim
    assert shm.sweep_stale() == 0
