"""Benchmark harness: all systems agree on answers and report metrics."""

from math import inf

import pytest

from repro.bench.harness import (QUERY_CLASSES, SYSTEMS, run_queries,
                                 sweep_workers)
from repro.bench.reporting import (format_results_table, format_series,
                                   speedup_summary)
from repro.graph.generators import (grid_road_graph, labeled_graph,
                                    uniform_random_graph)
from repro.sequential import sssp_distances
from repro.workloads.queries import generate_pattern


@pytest.fixture(scope="module")
def road():
    return grid_road_graph(6, 6, seed=2)


class TestRunQueries:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_sssp_cross_system_agreement(self, road, system):
        truth = sssp_distances(road, 0)
        result = run_queries(system, "sssp", road, [0], 3)
        assert result.answers[0] == pytest.approx(truth)
        assert result.time_s > 0
        assert result.supersteps > 0

    @pytest.mark.parametrize("system", SYSTEMS)
    def test_cc_cross_system_agreement(self, system):
        g = uniform_random_graph(50, 60, directed=False, seed=7)
        results = [run_queries(s, "cc", g, [None], 3)
                   for s in ("grape", system)]
        assert results[0].answers[0] == results[1].answers[0]

    @pytest.mark.parametrize("system", SYSTEMS)
    def test_sim_cross_system_agreement(self, system):
        g = labeled_graph(50, 150, num_labels=3, seed=4)
        pattern = generate_pattern(g, 3, 2, seed=1)
        base = run_queries("grape", "sim", g, [pattern], 3)
        other = run_queries(system, "sim", g, [pattern], 3)
        assert base.answers[0] == other.answers[0]

    def test_grape_ni_option(self, road):
        result = run_queries("grape", "sssp", road, [0], 3,
                             incremental=False)
        assert result.system == "grape-ni"
        assert result.answers[0] == pytest.approx(sssp_distances(road, 0))

    def test_grape_opts_rejected_elsewhere(self, road):
        with pytest.raises(ValueError):
            run_queries("giraph", "sssp", road, [0], 2, incremental=False)

    def test_unknown_system(self, road):
        with pytest.raises(ValueError, match="unknown system"):
            run_queries("spark", "sssp", road, [0], 2)

    def test_unknown_query_class(self, road):
        with pytest.raises(ValueError, match="unknown query class"):
            run_queries("grape", "pagerank", road, [0], 2)

    def test_batch_averaging(self, road):
        result = run_queries("grape", "sssp", road, [0, 7, 11], 2)
        assert result.num_queries == 3
        assert result.avg_time_s == pytest.approx(result.time_s / 3)


class TestSweepAndReporting:
    @pytest.fixture(scope="class")
    def rows(self, road):
        return sweep_workers(["grape", "blogel"], "sssp", road, [0], [2, 4])

    def test_sweep_shape(self, rows):
        assert len(rows) == 4
        assert {r.num_workers for r in rows} == {2, 4}

    def test_format_results_table(self, rows):
        table = format_results_table(rows, title="T")
        assert "grape" in table and "blogel" in table
        assert "time(s)" in table

    def test_format_series_time(self, rows):
        out = format_series(rows, "time", "SSSP")
        assert "n=2" in out and "n=4" in out

    def test_format_series_comm(self, rows):
        assert "MB" in format_series(rows, "comm")

    def test_speedup_summary(self, rows):
        summary = speedup_summary(rows)
        assert "faster than blogel" in summary

    def test_speedup_summary_no_reference(self, rows):
        only_blogel = [r for r in rows if r.system == "blogel"]
        assert "no grape rows" in speedup_summary(only_blogel)
