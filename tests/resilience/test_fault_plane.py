"""FaultPlane: the one seeded injection registry every layer consults."""

from __future__ import annotations

import pickle

import pytest

from repro.resilience.faults import (FaultAction, FaultPlane, active, check,
                                     install, installed, uninstall)


class TestPlan:
    def test_fires_at_the_planned_ordinal_only(self):
        plane = FaultPlane()
        plane.plan("exec.step", "crash", at=3)
        assert plane.check("exec.step") is None
        assert plane.check("exec.step") is None
        action = plane.check("exec.step")
        assert action is not None and action.kind == "crash"
        assert plane.check("exec.step") is None

    def test_times_fires_consecutively(self):
        plane = FaultPlane()
        plane.plan("exec.step", "slow", at=2, times=3)
        fired = [plane.check("exec.step") is not None for _ in range(6)]
        assert fired == [False, True, True, True, False, False]

    def test_key_scoped_ordinals_are_independent(self):
        plane = FaultPlane()
        plane.plan("exec.step", "hang", key=1, at=2)
        # key 0's counter never matches key 1's spec
        assert plane.check("exec.step", key=0) is None
        assert plane.check("exec.step", key=0) is None
        assert plane.check("exec.step", key=1) is None
        action = plane.check("exec.step", key=1)
        assert action is not None and action.kind == "hang"

    def test_keyless_spec_matches_any_key_by_site_ordinal(self):
        plane = FaultPlane()
        plane.plan("store.wal.append", "torn", at=2)
        assert plane.check("store.wal.append", key="a.log") is None
        action = plane.check("store.wal.append", key="b.log")
        assert action is not None and action.kind == "torn"

    def test_params_ride_the_action(self):
        plane = FaultPlane()
        plane.plan("exec.step", "slow", at=1, delay_s=0.25)
        action = plane.check("exec.step")
        assert action.param("delay_s", 0.0) == 0.25
        assert action.param("missing", "d") == "d"

    def test_first_matching_spec_wins(self):
        plane = FaultPlane()
        plane.plan("exec.step", "crash", at=1)
        plane.plan("exec.step", "slow", at=1)
        assert plane.check("exec.step").kind == "crash"

    def test_fired_records_site_key_ordinal_kind(self):
        plane = FaultPlane()
        plane.plan("exec.step", "crash", key=2, at=1)
        plane.check("exec.step", key=2)
        assert plane.fired == [("exec.step", 2, 1, "crash")]

    def test_plan_is_chainable(self):
        plane = (FaultPlane().plan("exec.step", "crash", at=1)
                             .plan("replication.tail", "stall", at=1))
        assert plane.check("exec.step") is not None
        assert plane.check("replication.tail") is not None

    def test_drained(self):
        plane = FaultPlane().plan("exec.step", "crash", at=1, times=2)
        assert not plane.drained()
        plane.check("exec.step")
        assert not plane.drained()
        plane.check("exec.step")
        assert plane.drained()


class TestRateMode:
    def test_same_seed_same_schedule(self):
        a = FaultPlane(seed=11).rate("exec.step", "crash", 0.4, times=64)
        b = FaultPlane(seed=11).rate("exec.step", "crash", 0.4, times=64)
        pattern_a = [a.check("exec.step") is not None for _ in range(200)]
        pattern_b = [b.check("exec.step") is not None for _ in range(200)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)
        assert a.fired == b.fired

    def test_different_seeds_differ(self):
        a = FaultPlane(seed=1).rate("exec.step", "crash", 0.5, times=64)
        b = FaultPlane(seed=2).rate("exec.step", "crash", 0.5, times=64)
        pattern_a = [a.check("exec.step") is not None for _ in range(200)]
        pattern_b = [b.check("exec.step") is not None for _ in range(200)]
        assert pattern_a != pattern_b

    def test_times_caps_rate_fires(self):
        plane = FaultPlane(seed=3).rate("exec.step", "slow", 1.0, times=4)
        fires = sum(plane.check("exec.step") is not None
                    for _ in range(50))
        assert fires == 4

    def test_max_fires_caps_the_whole_plane(self):
        plane = FaultPlane(seed=3, max_fires=5).rate(
            "exec.step", "slow", 1.0, times=1000)
        fires = sum(plane.check("exec.step") is not None
                    for _ in range(50))
        assert fires == 5


class TestModuleRegistry:
    def teardown_method(self):
        uninstall()

    def test_check_is_noop_without_a_plane(self):
        assert active() is None
        assert check("exec.step") is None

    def test_install_uninstall(self):
        plane = FaultPlane().plan("exec.step", "crash", at=1)
        install(plane)
        assert active() is plane
        assert check("exec.step").kind == "crash"
        uninstall()
        assert active() is None

    def test_double_install_raises(self):
        install(FaultPlane())
        with pytest.raises(RuntimeError):
            install(FaultPlane())

    def test_installed_contextmanager_restores(self):
        plane = FaultPlane().plan("exec.step", "crash", at=1)
        with installed(plane):
            assert active() is plane
        assert active() is None

    def test_may_fire_prefix(self):
        plane = FaultPlane().plan("exec.step", "crash", at=1)
        assert plane.may_fire("exec.")
        assert not plane.may_fire("store.")
        plane.check("exec.step")
        assert not plane.may_fire("exec.")  # schedule drained


class TestFaultAction:
    def test_picklable(self):
        action = FaultAction(site="exec.step", kind="hang",
                             params={"hang_s": 1.0})
        clone = pickle.loads(pickle.dumps(action))
        assert clone.kind == "hang"
        assert clone.param("hang_s", 0.0) == 1.0

    def test_thread_safety_of_check(self):
        import threading
        plane = FaultPlane().rate("exec.step", "slow", 0.5, times=64)
        hits = []

        def worker():
            for _ in range(100):
                if plane.check("exec.step") is not None:
                    hits.append(1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(hits) == len(plane.fired) <= 64
