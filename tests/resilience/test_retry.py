"""RetryPolicy / run_with_retry: bounded seeded-backoff retry."""

from __future__ import annotations

import pytest

from repro.resilience import (DeadlineExceeded, QueryCancelled,
                              RetryExhausted, RetryPolicy, run_with_retry)
from repro.runtime.executors import WorkerProcessDied
from repro.store.wal import WALWriteError


class TestPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff_s=0.1, multiplier=2.0,
                             max_backoff_s=0.3, jitter=0.0)
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(2) == pytest.approx(0.3)  # capped
        assert policy.backoff_s(5) == pytest.approx(0.3)

    def test_jitter_is_seeded_and_bounded(self):
        a = RetryPolicy(seed=9, jitter=0.5, base_backoff_s=0.1)
        b = RetryPolicy(seed=9, jitter=0.5, base_backoff_s=0.1)
        seq_a = [a.backoff_s(0) for _ in range(10)]
        seq_b = [b.backoff_s(0) for _ in range(10)]
        assert seq_a == seq_b
        assert all(0.05 <= s <= 0.15 for s in seq_a)
        assert len(set(seq_a)) > 1  # jitter actually varies

    def test_retryable_taxonomy(self):
        policy = RetryPolicy()
        assert policy.is_retryable(WorkerProcessDied("died"))
        assert policy.is_retryable(WALWriteError("torn"))
        assert not policy.is_retryable(ValueError("logic"))
        assert not policy.is_retryable(DeadlineExceeded("late"))
        assert not policy.is_retryable(QueryCancelled("stop"))

    def test_extra_retryable(self):
        policy = RetryPolicy(extra_retryable=(KeyError,))
        assert policy.is_retryable(KeyError("x"))

    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestRunWithRetry:
    def test_succeeds_after_transient_failures(self):
        calls, sleeps = [], []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise WorkerProcessDied("pool worker died")
            return "answer"

        retries = []
        result = run_with_retry(
            flaky, RetryPolicy(max_attempts=3, jitter=0.0,
                               base_backoff_s=0.01),
            on_retry=lambda i, exc: retries.append((i, type(exc))),
            sleep=sleeps.append)
        assert result == "answer"
        assert len(calls) == 3
        assert retries == [(0, WorkerProcessDied), (1, WorkerProcessDied)]
        assert sleeps == pytest.approx([0.01, 0.02])

    def test_non_retryable_propagates_unchanged(self):
        sleeps = []

        def broken():
            raise ValueError("bad query")

        with pytest.raises(ValueError, match="bad query"):
            run_with_retry(broken, RetryPolicy(), sleep=sleeps.append)
        assert sleeps == []

    def test_deadline_is_never_retried(self):
        calls = []

        def late():
            calls.append(1)
            raise DeadlineExceeded("budget spent", budget_s=1.0)

        with pytest.raises(DeadlineExceeded):
            run_with_retry(late, RetryPolicy(max_attempts=5),
                           sleep=lambda s: None)
        assert len(calls) == 1

    def test_exhausted_wraps_last_error(self):
        def always():
            raise WorkerProcessDied("still dead")

        with pytest.raises(RetryExhausted) as info:
            run_with_retry(always, RetryPolicy(max_attempts=3),
                           sleep=lambda s: None)
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, WorkerProcessDied)
        assert isinstance(info.value.__cause__, WorkerProcessDied)

    def test_single_attempt_disables_retries(self):
        calls = []

        def once():
            calls.append(1)
            raise WorkerProcessDied("died")

        with pytest.raises(RetryExhausted):
            run_with_retry(once, RetryPolicy(max_attempts=1),
                           sleep=lambda s: None)
        assert len(calls) == 1
