"""BackendCircuitBreaker: degrade, probe, restore — with a fake clock."""

from __future__ import annotations

from repro.resilience import DEGRADATION_CHAIN, BackendCircuitBreaker


def make(threshold=3, cooldown=30.0):
    clock = [0.0]
    breaker = BackendCircuitBreaker(failure_threshold=threshold,
                                    cooldown_s=cooldown,
                                    clock=lambda: clock[0])
    return breaker, clock


class TestDegrade:
    def test_healthy_resolves_configured(self):
        breaker, _clock = make()
        assert breaker.resolve("g", "process") == "process"
        assert breaker.degraded_backend("g") is None

    def test_trips_at_threshold(self):
        breaker, _clock = make(threshold=3)
        for _ in range(2):
            breaker.record_failure("g", "process")
            assert breaker.resolve("g", "process") == "process"
        breaker.record_failure("g", "process")
        assert breaker.degraded_backend("g") == "thread"
        assert breaker.resolve("g", "process") == "thread"
        kinds = [t[0] for t in breaker.transitions]
        assert kinds == ["degrade"]
        assert breaker.transitions[0][1:4] == ("g", "process", "thread")

    def test_success_resets_the_failure_count(self):
        breaker, _clock = make(threshold=2)
        breaker.record_failure("g", "process")
        breaker.record_success("g", "process")
        breaker.record_failure("g", "process")
        assert breaker.degraded_backend("g") is None

    def test_failures_while_degraded_deepen_the_chain(self):
        breaker, _clock = make(threshold=1)
        breaker.record_failure("g", "process")
        assert breaker.degraded_backend("g") == "thread"
        breaker.record_failure("g", "thread")
        assert breaker.degraded_backend("g") == "serial"
        # serial is the chain's floor: further failures cannot deepen
        breaker.record_failure("g", "serial")
        assert breaker.degraded_backend("g") == "serial"

    def test_graphs_are_independent(self):
        breaker, _clock = make(threshold=1)
        breaker.record_failure("a", "process")
        assert breaker.degraded_backend("a") == "thread"
        assert breaker.resolve("b", "process") == "process"

    def test_non_chain_backend_is_ignored(self):
        breaker, _clock = make(threshold=1)
        breaker.record_failure("g", "custom")
        assert breaker.degraded_backend("g") is None
        assert breaker.resolve("g", "custom") == "custom"


class TestProbeAndRestore:
    def test_probe_after_cooldown_then_restore(self):
        breaker, clock = make(threshold=1, cooldown=30.0)
        breaker.record_failure("g", "process")
        assert breaker.resolve("g", "process") == "thread"
        clock[0] = 31.0
        # half-open: one query probes the configured backend
        assert breaker.resolve("g", "process") == "process"
        breaker.record_success("g", "process")
        assert breaker.degraded_backend("g") is None
        assert breaker.resolve("g", "process") == "process"
        kinds = [t[0] for t in breaker.transitions]
        assert kinds == ["degrade", "probe", "restore"]

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        breaker, clock = make(threshold=1, cooldown=30.0)
        breaker.record_failure("g", "process")
        clock[0] = 31.0
        assert breaker.resolve("g", "process") == "process"  # probe
        breaker.record_failure("g", "process")
        assert breaker.degraded_backend("g") == "thread"
        clock[0] = 40.0  # fresh cooldown not yet over (31 + 30)
        assert breaker.resolve("g", "process") == "thread"
        clock[0] = 62.0
        assert breaker.resolve("g", "process") == "process"  # probes again

    def test_success_while_degraded_does_not_restore(self):
        breaker, _clock = make(threshold=1, cooldown=30.0)
        breaker.record_failure("g", "process")
        breaker.record_success("g", "thread")  # a degraded run succeeded
        assert breaker.degraded_backend("g") == "thread"

    def test_on_transition_fires_outside_the_lock(self):
        events = []
        breaker, clock = make(threshold=1, cooldown=10.0)
        breaker.on_transition = lambda *e: events.append(e)
        breaker.record_failure("g", "process")
        clock[0] = 11.0
        breaker.resolve("g", "process")
        breaker.record_success("g", "process")
        assert [e[0] for e in events] == ["degrade", "probe", "restore"]


def test_chain_constant():
    assert DEGRADATION_CHAIN == ("process", "thread", "serial")
