"""Unit tests of the PIE programs' hooks against hand-built fragments."""

from math import inf

import pytest

from repro.graph.builders import path_graph
from repro.graph.graph import Graph
from repro.partition.base import build_edge_cut_fragments
from repro.pie_programs import (CCProgram, CFProgram, CFQuery, SimProgram,
                                SSSPProgram, SubIsoProgram)


@pytest.fixture
def split_path():
    """Directed weighted path 0 -> 1 -> 2 -> 3 split at 1|2."""
    g = Graph(directed=True)
    g.add_edge(0, 1, weight=1.0)
    g.add_edge(1, 2, weight=2.0)
    g.add_edge(2, 3, weight=3.0)
    frag = build_edge_cut_fragments(g, {0: 0, 1: 0, 2: 1, 3: 1}, 2)
    return g, frag


class TestSSSPHooks:
    def test_peval_local_only(self, split_path):
        _g, frag = split_path
        prog = SSSPProgram()
        state = prog.init_state(0, frag[0])
        prog.peval(0, frag[0], state)
        assert state.dist[0] == 0.0
        assert state.dist[1] == 1.0
        assert state.dist[2] == 3.0  # the copy got a value via local edge

    def test_read_params_only_finite_outer(self, split_path):
        _g, frag = split_path
        prog = SSSPProgram()
        state = prog.init_state(0, frag[0])
        prog.peval(0, frag[0], state)
        params = prog.read_update_params(0, frag[0], state)
        assert params == {(2, "dist"): 3.0}

    def test_fragment_without_source_reports_nothing(self, split_path):
        _g, frag = split_path
        prog = SSSPProgram()
        state = prog.init_state(0, frag[1])
        prog.peval(0, frag[1], state)
        params = prog.read_update_params(0, frag[1], state)
        assert params == {}

    def test_inceval_propagates(self, split_path):
        _g, frag = split_path
        prog = SSSPProgram()
        state = prog.init_state(0, frag[1])
        prog.peval(0, frag[1], state)
        prog.inceval(0, frag[1], state, {(2, "dist"): 3.0})
        assert state.dist[2] == 3.0
        assert state.dist[3] == 6.0

    def test_apply_message_no_propagation(self, split_path):
        _g, frag = split_path
        prog = SSSPProgram()
        state = prog.init_state(0, frag[1])
        prog.peval(0, frag[1], state)
        prog.apply_message(0, frag[1], state, {(2, "dist"): 3.0})
        assert state.dist[2] == 3.0
        assert state.dist.get(3, inf) == inf  # not propagated yet

    def test_assemble_uses_owned_only(self, split_path):
        _g, frag = split_path
        prog = SSSPProgram()
        states = {f.fid: prog.init_state(0, f) for f in frag}
        for f in frag:
            prog.peval(0, f, states[f.fid])
        answer = prog.assemble(0, frag, states)
        assert set(answer) == {0, 1, 2, 3}
        # Fragment 0's copy estimate for node 2 must not leak.
        assert answer[2] == inf  # fragment 1 never saw the source

    def test_route_to_owner(self):
        assert SSSPProgram.route_to == "owner"


class TestCCHooks:
    def test_peval_builds_components(self):
        g = path_graph(4)
        frag = build_edge_cut_fragments(g, {0: 0, 1: 0, 2: 1, 3: 1}, 2)
        prog = CCProgram()
        state = prog.init_state(None, frag[0])
        prog.peval(None, frag[0], state)
        # Fragment 0's local graph: 0 - 1 - 2(copy): one component, cid 0.
        assert state.comps.cid[0] == 0
        assert state.comps.cid[2] == 0

    def test_inceval_lowers(self):
        g = path_graph(4)
        frag = build_edge_cut_fragments(g, {0: 1, 1: 1, 2: 0, 3: 0}, 2)
        prog = CCProgram()
        state = prog.init_state(None, frag[0])
        prog.peval(None, frag[0], state)
        prog.inceval(None, frag[0], state, {(2, "cid"): 0})
        assert state.comps.cid[3] == 0

    def test_peval_rerun_respects_learned_cids(self):
        g = path_graph(3)
        frag = build_edge_cut_fragments(g, {0: 0, 1: 1, 2: 1}, 2)
        prog = CCProgram()
        state = prog.init_state(None, frag[1])
        prog.peval(None, frag[1], state)
        prog.apply_message(None, frag[1], state, {(1, "cid"): 0})
        prog.peval(None, frag[1], state)  # NI-mode re-run
        assert state.comps.cid[1] == 0  # did not regress to 1


class TestSimHooks:
    def test_read_params_reports_only_falsified(self, small_labeled,
                                                tiny_pattern):
        from repro.partition.strategies import HashPartition
        frag = HashPartition().partition(small_labeled, 3)
        prog = SimProgram()
        state = prog.init_state(tiny_pattern, frag[0])
        prog.peval(tiny_pattern, frag[0], state)
        params = prog.read_update_params(tiny_pattern, frag[0], state)
        for (v, (_tag, u)), value in params.items():
            assert value is False
            assert v in frag[0].inner

    def test_false_pairs_survive_rerun(self, small_labeled, tiny_pattern):
        from repro.partition.strategies import HashPartition
        frag = HashPartition().partition(small_labeled, 2)
        prog = SimProgram()
        state = prog.init_state(tiny_pattern, frag[0])
        prog.peval(tiny_pattern, frag[0], state)
        some_match = next((v for v in state.sim.get("A", set())), None)
        if some_match is None:
            pytest.skip("no match in this fragment")
        prog.apply_message(tiny_pattern, frag[0], state,
                           {(some_match, ("x", "A")): False})
        prog.peval(tiny_pattern, frag[0], state)
        assert some_match not in state.sim["A"]


class TestSubIsoHooks:
    def test_preprocess_ships_missing_neighborhood(self, small_labeled,
                                                   path_pattern):
        from repro.partition.strategies import HashPartition
        frag = HashPartition().partition(small_labeled, 4)
        prog = SubIsoProgram()
        payloads = prog.preprocess(path_pattern, frag)
        assert payloads  # hash partition certainly crosses fragments
        for fid, (nodes, edges) in payloads.items():
            local = frag[fid].graph
            for v, _label in nodes:
                assert not local.has_node(v)

    def test_match_limit(self, small_labeled, path_pattern):
        from repro.core.engine import GrapeEngine
        limited = GrapeEngine(2).run(SubIsoProgram(match_limit=1),
                                     query=path_pattern,
                                     graph=small_labeled)
        full = GrapeEngine(2).run(SubIsoProgram(), query=path_pattern,
                                  graph=small_labeled)
        assert len(limited.answer) <= len(full.answer)


class TestCFHooks:
    def test_init_state_extracts_local_ratings(self):
        from repro.graph.generators import bipartite_ratings_graph
        from repro.partition.strategies import HashPartition
        g, _u, _i = bipartite_ratings_graph(20, 10, 100, seed=1)
        frag = HashPartition().partition(g, 3)
        prog = CFProgram()
        total = 0
        for f in frag:
            state = prog.init_state(CFQuery(), f)
            total += len(state.ratings)
        assert total == 100  # every rating trained exactly once globally

    def test_converged_fragment_stops_reporting_changes(self):
        from repro.graph.generators import bipartite_ratings_graph
        from repro.partition.strategies import HashPartition
        g, _u, _i = bipartite_ratings_graph(10, 5, 40, seed=2)
        frag = HashPartition().partition(g, 2)
        prog = CFProgram()
        query = CFQuery(num_factors=4, max_epochs=1, seed=1)
        state = prog.init_state(query, frag[0])
        prog.peval(query, frag[0], state)
        assert state.converged
        before = prog.read_update_params(query, frag[0], state)
        prog.inceval(query, frag[0], state, {})
        after = prog.read_update_params(query, frag[0], state)
        assert before == after
