"""Property-based Assurance tests: GRAPE == sequential oracle on random
graphs, partitions and worker counts, for SSSP, CC and Sim."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.engine import GrapeEngine
from repro.graph.graph import Graph
from repro.partition.strategies import (HashPartition, MetisLikePartition,
                                        StreamingPartition)
from repro.pie_programs import CCProgram, SimProgram, SSSPProgram
from repro.sequential import (connected_components, maximum_simulation,
                              sssp_distances)

STRATEGIES = [HashPartition(), MetisLikePartition(), StreamingPartition()]


@st.composite
def weighted_digraphs(draw, max_nodes=14):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    g = Graph(directed=True)
    for v in range(n):
        g.add_node(v, draw(st.sampled_from(["a", "b"])))
    for _ in range(draw(st.integers(min_value=1, max_value=3 * n))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            g.add_edge(u, v,
                       weight=draw(st.floats(min_value=0.1, max_value=5.0,
                                             allow_nan=False)))
    return g


@st.composite
def engine_params(draw):
    n_workers = draw(st.integers(min_value=1, max_value=4))
    strategy = STRATEGIES[draw(st.integers(0, len(STRATEGIES) - 1))]
    return n_workers, strategy


@given(weighted_digraphs(), engine_params())
@settings(max_examples=40, deadline=None)
def test_sssp_assurance(g, params):
    n, strategy = params
    engine = GrapeEngine(n, partition=strategy, check_monotonic=True)
    result = engine.run(SSSPProgram(), query=0, graph=g)
    truth = sssp_distances(g, 0)
    for v in g.nodes():
        assert abs(result.answer[v] - truth[v]) < 1e-9 \
            or result.answer[v] == truth[v]  # handles inf == inf


@st.composite
def undirected_graphs(draw, max_nodes=14):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    g = Graph(directed=False)
    for v in range(n):
        g.add_node(v)
    for _ in range(draw(st.integers(min_value=0, max_value=2 * n))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            g.add_edge(u, v)
    return g


@given(undirected_graphs(), engine_params())
@settings(max_examples=40, deadline=None)
def test_cc_assurance(g, params):
    n, strategy = params
    engine = GrapeEngine(n, partition=strategy, check_monotonic=True)
    result = engine.run(CCProgram(), query=None, graph=g)
    expected = {}
    for v, c in connected_components(g).items():
        expected.setdefault(c, set()).add(v)
    assert result.answer == expected


@st.composite
def sim_cases(draw):
    g = draw(weighted_digraphs(max_nodes=12))
    pattern = Graph(directed=True)
    pattern.add_node("u", draw(st.sampled_from(["a", "b"])))
    pattern.add_node("w", draw(st.sampled_from(["a", "b"])))
    pattern.add_edge("u", "w")
    if draw(st.booleans()):
        pattern.add_edge("w", "u")
    return g, pattern


@given(sim_cases(), engine_params())
@settings(max_examples=40, deadline=None)
def test_sim_assurance(case, params):
    g, pattern = case
    n, strategy = params
    engine = GrapeEngine(n, partition=strategy, check_monotonic=True)
    result = engine.run(SimProgram(), query=pattern, graph=g)
    assert result.answer == maximum_simulation(pattern, g)
