"""Tests for the library-extension PIE programs: BFS and PageRank."""

from collections import deque

import networkx as nx
import pytest

from repro.core.async_engine import AsyncGrapeEngine
from repro.core.engine import GrapeEngine
from repro.graph.generators import (grid_road_graph,
                                    preferential_attachment,
                                    uniform_random_graph)
from repro.graph.graph import Graph
from repro.pie_programs import (BFSProgram, PageRankProgram, PageRankQuery)


def bfs_oracle(g, source):
    hops = {v: -1 for v in g.nodes()}
    if g.has_node(source):
        hops[source] = 0
        dq = deque([source])
        while dq:
            v = dq.popleft()
            for w in g.successors(v):
                if hops[w] == -1:
                    hops[w] = hops[v] + 1
                    dq.append(w)
    return hops


def pagerank_reference(g, query, iterations):
    """Sequential power iteration with the same (no dangling
    redistribution) convention as the PIE program."""
    n = g.num_nodes
    rank = {v: 1.0 / n for v in g.nodes()}
    teleport = (1.0 - query.damping) / n
    for _ in range(iterations):
        incoming = {v: 0.0 for v in g.nodes()}
        for v in g.nodes():
            deg = g.out_degree(v)
            if deg == 0:
                continue
            share = rank[v] / deg
            for w in g.successors(v):
                incoming[w] += share
        rank = {v: teleport + query.damping * incoming[v]
                for v in g.nodes()}
    return rank


class TestBFS:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_matches_oracle(self, small_road, n):
        truth = bfs_oracle(small_road, 0)
        result = GrapeEngine(n).run(BFSProgram(), query=0,
                                    graph=small_road)
        assert result.answer == truth

    def test_unreachable_minus_one(self):
        g = Graph(directed=True)
        g.add_edge(0, 1)
        g.add_node(5)
        result = GrapeEngine(2).run(BFSProgram(), query=0, graph=g)
        assert result.answer[5] == -1

    def test_ni_mode(self, small_road):
        truth = bfs_oracle(small_road, 0)
        engine = GrapeEngine(3, incremental=False)
        result = engine.run(BFSProgram(), query=0, graph=small_road)
        assert result.answer == truth

    def test_monotonic_check(self, small_road):
        engine = GrapeEngine(4, check_monotonic=True)
        result = engine.run(BFSProgram(), query=0, graph=small_road)
        assert result.answer == bfs_oracle(small_road, 0)

    def test_async_engine(self, small_road):
        result = AsyncGrapeEngine(4).run(BFSProgram(), query=0,
                                         graph=small_road)
        assert result.answer == bfs_oracle(small_road, 0)

    def test_random_graph(self):
        g = uniform_random_graph(80, 250, seed=5)
        result = GrapeEngine(4).run(BFSProgram(), query=0, graph=g)
        assert result.answer == bfs_oracle(g, 0)


class TestPageRank:
    @pytest.fixture(scope="class")
    def social(self):
        return preferential_attachment(120, edges_per_node=3, seed=5)

    def test_converges_to_reference_fixpoint(self, social):
        query = PageRankQuery(max_iterations=60)
        result = GrapeEngine(4).run(PageRankProgram(), query, graph=social)
        reference = pagerank_reference(social, query, 60)
        for v in social.nodes():
            assert result.answer[v] == pytest.approx(reference[v],
                                                     abs=2e-3)

    def test_ranking_matches_networkx(self, social):
        nxg = nx.DiGraph()
        nxg.add_nodes_from(social.nodes())
        nxg.add_edges_from((u, v) for u, v, _w in social.edges())
        truth = nx.pagerank(nxg, alpha=0.85)
        query = PageRankQuery(max_iterations=40)
        result = GrapeEngine(4).run(PageRankProgram(), query, graph=social)
        top_mine = sorted(result.answer, key=result.answer.get,
                          reverse=True)[:5]
        top_truth = sorted(truth, key=truth.get, reverse=True)[:5]
        assert top_mine == top_truth

    def test_iteration_budget_respected(self, social):
        query = PageRankQuery(max_iterations=5)
        result = GrapeEngine(3).run(PageRankProgram(), query, graph=social)
        assert result.supersteps <= 5 + 3

    def test_tolerance_stops_early(self, social):
        lax = PageRankQuery(max_iterations=500, tolerance=1e9)
        result = GrapeEngine(3).run(PageRankProgram(), lax, graph=social)
        assert result.supersteps <= 4

    def test_single_worker_equals_sequential(self, social):
        query = PageRankQuery(max_iterations=20)
        result = GrapeEngine(1).run(PageRankProgram(), query, graph=social)
        reference = pagerank_reference(social, query, 20)
        for v in social.nodes():
            assert result.answer[v] == pytest.approx(reference[v])

    def test_every_node_ranked_positive(self, social):
        query = PageRankQuery(max_iterations=10)
        result = GrapeEngine(4).run(PageRankProgram(), query, graph=social)
        assert set(result.answer) == set(social.nodes())
        assert all(rank > 0 for rank in result.answer.values())
