"""Cross-system integration property: GRAPE (sync and async), Pregel, GAS
and Blogel all compute identical answers on random inputs.

This is the strongest end-to-end invariant of the reproduction: four
independently implemented engines plus two GRAPE execution modes agree
with the sequential oracle on every random graph hypothesis generates.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.baselines.block_centric import (BlogelEngine, CCBlockProgram,
                                           SSSPBlockProgram)
from repro.baselines.gas import GASEngine
from repro.baselines.gas_programs import CCGASProgram, SSSPGASProgram
from repro.baselines.vertex_centric import PregelEngine
from repro.baselines.vertex_programs import (CCVertexProgram,
                                             SSSPVertexProgram)
from repro.core.async_engine import AsyncGrapeEngine
from repro.core.engine import GrapeEngine
from repro.graph.graph import Graph
from repro.pie_programs import CCProgram, SSSPProgram
from repro.sequential import connected_components, sssp_distances


@st.composite
def weighted_digraphs(draw, max_nodes=12):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    g = Graph(directed=True)
    for v in range(n):
        g.add_node(v)
    for _ in range(draw(st.integers(min_value=1, max_value=3 * n))):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            g.add_edge(u, v, weight=draw(
                st.floats(min_value=0.1, max_value=5.0, allow_nan=False)))
    return g


def close(a, b):
    return all(abs(a[v] - b[v]) < 1e-9 or a[v] == b[v] for v in a)


@given(weighted_digraphs(), st.integers(min_value=1, max_value=4))
@settings(max_examples=25, deadline=None)
def test_all_systems_agree_on_sssp(g, n):
    truth = sssp_distances(g, 0)
    answers = {
        "grape": GrapeEngine(n).run(SSSPProgram(), 0, graph=g).answer,
        "async": AsyncGrapeEngine(n).run(SSSPProgram(), 0,
                                         graph=g).answer,
        "pregel": PregelEngine(n).run(SSSPVertexProgram(), g,
                                      query=0).answer,
        "gas": GASEngine(n).run(SSSPGASProgram(), g, query=0).answer,
        "blogel": BlogelEngine(n).run(SSSPBlockProgram(), g,
                                      query=0).answer,
    }
    for name, answer in answers.items():
        assert close(answer, truth), f"{name} diverged from the oracle"


@st.composite
def undirected_graphs(draw, max_nodes=12):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    g = Graph(directed=False)
    for v in range(n):
        g.add_node(v)
    for _ in range(draw(st.integers(min_value=0, max_value=2 * n))):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            g.add_edge(u, v)
    return g


@given(undirected_graphs(), st.integers(min_value=1, max_value=4))
@settings(max_examples=25, deadline=None)
def test_all_systems_agree_on_cc(g, n):
    expected = {}
    for v, c in connected_components(g).items():
        expected.setdefault(c, set()).add(v)
    answers = {
        "grape": GrapeEngine(n).run(CCProgram(), None, graph=g).answer,
        "async": AsyncGrapeEngine(n).run(CCProgram(), None,
                                         graph=g).answer,
        "pregel": PregelEngine(n).run(CCVertexProgram(), g).answer,
        "gas": GASEngine(n).run(CCGASProgram(), g).answer,
        "blogel": BlogelEngine(n, precompute_cc=True).run(
            CCBlockProgram(), g).answer,
    }
    for name, answer in answers.items():
        assert answer == expected, f"{name} diverged from the oracle"
