"""Fragment CSR snapshot lifecycle: lazy build, reuse, invalidation."""

from repro.core.engine import GrapeEngine
from repro.core.updates import apply_insertions
from repro.graph.csr import CSRGraph
from repro.graph.generators import uniform_random_graph
from repro.pie_programs import SSSPProgram


def make_fragmentation(num_fragments=3, seed=0):
    g = uniform_random_graph(40, 120, seed=seed)
    return GrapeEngine(num_fragments).make_fragmentation(g)


class TestFragmentSnapshot:
    def test_lazy_build_and_reuse(self):
        frag = make_fragmentation()[0]
        assert frag.csr_builds == 0
        snap = frag.csr()
        assert isinstance(snap, CSRGraph)
        assert frag.csr() is snap  # cached
        assert frag.csr_builds == 1

    def test_snapshot_mirrors_local_graph(self):
        frag = make_fragmentation()[1]
        snap = frag.csr()
        assert snap.n == frag.graph.num_nodes
        assert set(snap.node_of) == set(frag.graph.nodes())

    def test_invalidate_drops_and_bumps_epoch(self):
        frag = make_fragmentation()[0]
        snap = frag.csr()
        epoch = frag.csr_epoch
        frag.invalidate_csr()
        assert frag.csr_invalidations == 1
        assert frag.csr_epoch == epoch + 1
        # Idempotent until the next build.
        frag.invalidate_csr()
        assert frag.csr_invalidations == 1
        assert frag.csr() is not snap
        assert frag.csr_builds == 2

    def test_invalidate_without_snapshot_still_moves_epoch(self):
        # No drop is counted, but the epoch must advance anyway: with the
        # process backend the snapshot (and arrays derived from it) may
        # live in a worker while the coordinator-side fragment has
        # nothing cached locally — consumers key on the epoch to notice
        # the mutation.
        frag = make_fragmentation()[2]
        frag.invalidate_csr()
        assert frag.csr_invalidations == 0
        assert frag.csr_epoch == 1


class TestInsertionInvalidation:
    def test_apply_insertions_invalidates_touched_fragments(self):
        fragmentation = make_fragmentation()
        for frag in fragmentation:
            frag.csr()
        touched = apply_insertions(fragmentation, [(0, 1, 0.5)])
        # touched may include fragments with border-set-only deltas
        # (e.g. the owner of 1 gaining an inner node); only fragments
        # whose local *graph* changed drop their snapshot.
        mutated = {fid for fid, d in touched.items() if d.mutates_graph}
        assert mutated
        for frag in fragmentation:
            expected = 1 if frag.fid in mutated else 0
            assert frag.csr_invalidations == expected

    def test_rebuilt_snapshot_sees_inserted_edge(self):
        fragmentation = make_fragmentation()
        for frag in fragmentation:
            frag.csr()
        touched = apply_insertions(fragmentation, [(3, 999, 0.25)])
        for fid in touched:
            snap = fragmentation[fid].csr()
            assert 999 in snap.id_of

    def test_fragmentation_aggregates(self):
        fragmentation = make_fragmentation()
        assert fragmentation.csr_snapshots_built == 0
        for frag in fragmentation:
            frag.csr()
        assert fragmentation.csr_snapshots_built == len(fragmentation)
        apply_insertions(fragmentation, [(0, 1, 0.5)])
        assert fragmentation.csr_snapshot_invalidations >= 1


class TestChangedParamsProtocol:
    def test_dirty_sets_consumed_on_read(self):
        g = uniform_random_graph(40, 120, seed=4)
        engine = GrapeEngine(2)
        frag_n = engine.make_fragmentation(g)
        program = SSSPProgram()
        frag = frag_n.fragment_of(0)  # holds the source: finite dists
        state = program.init_state(0, frag)
        program.peval(0, frag, state)
        first = program.read_changed_params(0, frag, state)
        assert first and first == program.read_update_params(0, frag, state)
        # Nothing ran since: the dirty set was consumed.
        assert program.read_changed_params(0, frag, state) == {}
