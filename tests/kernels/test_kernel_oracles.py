"""Property-style equivalence: every CSR kernel vs its sequential oracle.

Random directed/undirected, weighted, optionally labeled graphs —
including disconnected pieces and self-loops — must produce *exactly*
the same results from the vectorized kernels as from the dict-graph
algorithms in :mod:`repro.sequential` (floats compared with ``==``: the
kernels replay the same IEEE additions, not approximations of them).
"""

from collections import deque
from math import inf

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.kernels import (UNREACHED_HOPS, csr_bfs, csr_components,
                           csr_pagerank_push, csr_sssp)
from repro.sequential.sssp import dijkstra
from repro.sequential.wcc import connected_components


@st.composite
def random_graphs(draw, directed=True, max_nodes=24, labeled=False,
                  self_loops=True):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    g = Graph(directed=directed)
    for v in range(n):
        g.add_node(v, label=f"l{v % 3}" if labeled else None)
    for _ in range(draw(st.integers(min_value=0, max_value=3 * n))):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v and not self_loops:
            continue
        w = draw(st.floats(min_value=0.0, max_value=5.0,
                           allow_nan=False, allow_infinity=False))
        g.add_edge(u, v, weight=w)
    return g


class TestSSSPKernel:
    @given(random_graphs(), st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_matches_dijkstra_directed(self, g, source):
        self._check(g, source)

    @given(random_graphs(directed=False, labeled=True), st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_matches_dijkstra_undirected(self, g, source):
        self._check(g, source)

    @staticmethod
    def _check(g, source):
        truth = dijkstra(g, source)
        csr = g.to_csr()
        seeds = ({csr.id_of[source]: 0.0} if g.has_node(source) else {})
        dist, changed = csr_sssp(csr, seeds)
        got = dict(zip(csr.node_of, dist.tolist()))
        assert got == truth  # exact, including inf for unreachable
        finite = {csr.node_of[i] for i in changed.tolist()}
        assert finite == {v for v, d in truth.items() if d < inf}

    def test_seeds_only_improve_and_propagate(self):
        g = Graph()
        g.add_edge(0, 1, weight=5.0)
        g.add_edge(1, 2, weight=1.0)
        csr = g.to_csr()
        dist = np.array([0.0, inf, inf])
        out, changed = csr_sssp(csr, {csr.id_of[1]: 2.0}, dist)
        assert out.tolist() == [0.0, 2.0, 3.0]
        assert sorted(csr.node_of[i] for i in changed.tolist()) == [1, 2]
        # A non-improving seed is ignored: nothing changes.
        out, changed = csr_sssp(csr, {csr.id_of[1]: 4.0}, out)
        assert out.tolist() == [0.0, 2.0, 3.0]
        assert changed.size == 0

    def test_negative_weight_rejected(self):
        g = Graph()
        g.add_edge(0, 1, weight=-1.0)
        csr = g.to_csr()
        with pytest.raises(ValueError, match="negative edge weight"):
            csr_sssp(csr, {csr.id_of[0]: 0.0})


class TestBFSKernel:
    @staticmethod
    def _oracle(g, source):
        hops = {}
        if g.has_node(source):
            hops[source] = 0
            dq = deque([(source, 0)])
            while dq:
                v, d = dq.popleft()
                for w in g.successors(v):
                    if w not in hops:
                        hops[w] = d + 1
                        dq.append((w, d + 1))
        return hops

    @given(random_graphs(), st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_matches_queue_bfs(self, g, source):
        truth = self._oracle(g, source)
        csr = g.to_csr()
        seeds = {csr.id_of[source]: 0} if g.has_node(source) else {}
        hops, _changed = csr_bfs(csr, seeds)
        got = {v: h for v, h in zip(csr.node_of, hops.tolist())
               if h < UNREACHED_HOPS}
        assert got == truth

    @given(random_graphs(directed=False))
    @settings(max_examples=30, deadline=None)
    def test_undirected(self, g):
        truth = self._oracle(g, 0)
        csr = g.to_csr()
        hops, _ = csr_bfs(csr, {csr.id_of[0]: 0})
        got = {v: h for v, h in zip(csr.node_of, hops.tolist())
               if h < UNREACHED_HOPS}
        assert got == truth


class TestComponentsKernel:
    @staticmethod
    def _partition(cid):
        groups = {}
        for v, c in cid.items():
            groups.setdefault(c, set()).add(v)
        return frozenset(frozenset(s) for s in groups.values())

    @given(random_graphs(directed=False))
    @settings(max_examples=60, deadline=None)
    def test_same_partition_undirected(self, g):
        self._check(g)

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_same_partition_directed_edges_ignored(self, g):
        # connected_components treats direction as irrelevant; so must
        # the kernel (it propagates along both CSR and CSC edges).
        self._check(g)

    def _check(self, g):
        csr = g.to_csr()
        comp = csr_components(csr)
        got = {v: int(c) for v, c in zip(csr.node_of, comp.tolist())}
        assert self._partition(got) == self._partition(
            connected_components(g))
        # Representative = smallest dense id of the component.
        for v, c in got.items():
            assert c <= csr.id_of[v]

    def test_isolated_nodes_are_singletons(self):
        g = Graph(directed=False)
        for v in range(5):
            g.add_node(v)
        comp = csr_components(g.to_csr())
        assert comp.tolist() == [0, 1, 2, 3, 4]


class TestPageRankPushKernel:
    @given(random_graphs(), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_bitwise_identical_to_dict_push(self, g, seed):
        csr = g.to_csr()
        rng = np.random.default_rng(seed)
        rank_vals = rng.random(csr.n)

        incoming = {v: 0.0 for v in g.nodes()}
        for v in g.nodes():
            out_deg = g.out_degree(v)
            if out_deg == 0:
                continue
            share = rank_vals[csr.id_of[v]] / out_deg
            for w in g.successors(v):
                incoming[w] = incoming.get(w, 0.0) + share

        ids = np.arange(csr.n, dtype=np.int64)
        got = csr_pagerank_push(csr, rank_vals, ids)
        assert [incoming[v] for v in csr.node_of] == got.tolist()
