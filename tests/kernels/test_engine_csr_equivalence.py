"""Engine-level equivalence: ``supports_csr`` programs with the kernels
on and off produce byte-identical runs.

The acceptance bar for the vectorized runtime is not "close": answers,
superstep counts and communication accounting must be *equal* between
the CSR dispatch and the dict fallback — the kernels change how fast the
fixpoint is reached, never which fixpoint.
"""

import pytest

from repro.core.engine import GrapeEngine
from repro.core.updates import ContinuousQuerySession
from repro.graph.generators import (grid_road_graph,
                                    preferential_attachment,
                                    uniform_random_graph)
from repro.pie_programs import (BFSProgram, CCProgram, PageRankProgram,
                                PageRankQuery, SSSPProgram)


def run_both(make_program, query, make_graph, workers, **engine_kwargs):
    results = []
    for use_csr in (True, False):
        engine = GrapeEngine(workers, **engine_kwargs)
        results.append(engine.run(make_program(use_csr=use_csr), query,
                                  graph=make_graph()))
    return results


def assert_identical(a, b):
    assert a.answer == b.answer
    assert a.supersteps == b.supersteps
    assert a.metrics.comm_bytes == b.metrics.comm_bytes
    assert a.metrics.comm_messages == b.metrics.comm_messages


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("workers", [1, 3, 6])
def test_sssp_identical(seed, workers):
    a, b = run_both(SSSPProgram, 0,
                    lambda: uniform_random_graph(150, 600, seed=seed),
                    workers)
    assert_identical(a, b)


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("directed", [False, True])
def test_cc_identical(seed, workers, directed):
    a, b = run_both(CCProgram, None,
                    lambda: uniform_random_graph(120, 180,
                                                 directed=directed,
                                                 seed=seed),
                    workers)
    assert_identical(a, b)


@pytest.mark.parametrize("seed", range(3))
def test_bfs_identical(seed):
    a, b = run_both(BFSProgram, 0,
                    lambda: preferential_attachment(150, 3, seed=seed),
                    4)
    assert_identical(a, b)


@pytest.mark.parametrize("tolerance", [None, 1e-7])
def test_pagerank_identical(tolerance):
    query = PageRankQuery(max_iterations=15, tolerance=tolerance)
    a, b = run_both(PageRankProgram, query,
                    lambda: uniform_random_graph(120, 500, seed=2),
                    4)
    assert_identical(a, b)


def test_sssp_identical_high_diameter():
    a, b = run_both(SSSPProgram, 0, lambda: grid_road_graph(9, 9, seed=1),
                    4)
    assert_identical(a, b)


@pytest.mark.parametrize("make_program,query,directed", [
    (SSSPProgram, 0, True),
    (CCProgram, None, False),
])
def test_ni_mode_identical(make_program, query, directed):
    a, b = run_both(make_program, query,
                    lambda: uniform_random_graph(90, 250, directed=directed,
                                                 seed=7),
                    4, incremental=False)
    assert_identical(a, b)


@pytest.mark.parametrize("make_program,query,directed", [
    (SSSPProgram, 0, True),
    (CCProgram, None, False),
])
def test_continuous_sessions_identical(make_program, query, directed):
    """Insertion maintenance: CSR and dict sessions stay in lockstep."""
    batches = [
        [(1, 80, 0.05), (80, 81, 0.05)],
        [(200, 0, 0.5), (0, 200, 0.5)],   # new node
        [(81, 2, 0.01)],
    ]
    sessions = []
    for use_csr in (True, False):
        g = uniform_random_graph(90, 300, directed=directed, seed=11)
        sessions.append(ContinuousQuerySession(
            GrapeEngine(3), make_program(use_csr=use_csr), query, g))
    assert sessions[0].answer == sessions[1].answer
    for batch in batches:
        answers = [s.insert_edges(batch) for s in sessions]
        assert answers[0] == answers[1]
    m0, m1 = sessions[0].metrics, sessions[1].metrics
    assert m0.supersteps == m1.supersteps
    assert m0.comm_bytes == m1.comm_bytes


@pytest.mark.parametrize("use_csr", [True, False])
def test_cc_session_insertion_creates_border_node(use_csr):
    """A directed insertion can promote a node into a fragment's inner
    set without that fragment receiving any edge; the first post-update
    report collection must still ship the owner's authoritative cid
    (regression: the dirty-set protocol alone never saw the node)."""
    from repro.graph.graph import Graph
    from repro.partition.base import build_edge_cut_fragments
    from repro.sequential import connected_components

    g = Graph(directed=True)
    for v in (0, 1, 2):
        g.add_node(v)
    g.add_edge(0, 2, weight=1.0)
    fragmentation = build_edge_cut_fragments(g, {0: 0, 2: 0, 1: 2}, 3)
    session = ContinuousQuerySession(GrapeEngine(3),
                                     CCProgram(use_csr=use_csr), None,
                                     fragmentation=fragmentation)
    # Stored at node 1's owner (fragment 2); fragment 0 sees no edge but
    # node 2 newly joins its inner set.
    session.insert_edges([(1, 2, 1.0)])
    expected = {}
    for v, c in connected_components(g).items():
        expected.setdefault(c, set()).add(v)
    assert session.answer == expected == {0: {0, 1, 2}}


@pytest.mark.parametrize("use_csr", [True, False])
def test_cc_session_insertion_to_brand_new_node(use_csr):
    """An edge to a node the graph has never seen places the node at a
    hash-chosen owner fragment with no local edges; that fragment's CC
    state must treat it as a singleton and still converge with the
    owner-side component id."""
    from repro.sequential import connected_components

    g = uniform_random_graph(40, 60, directed=True, seed=6)
    session = ContinuousQuerySession(GrapeEngine(4),
                                     CCProgram(use_csr=use_csr), None, g)
    session.insert_edges([(2, 99, 1.0), (99, 100, 1.0)])
    expected = {}
    for v, c in connected_components(g).items():
        expected.setdefault(c, set()).add(v)
    assert session.answer == expected


@pytest.mark.parametrize("use_csr", [True, False])
@pytest.mark.parametrize("seed", range(3))
def test_cc_session_tracks_oracle_on_directed_insertions(use_csr, seed):
    from repro.sequential import connected_components

    g = uniform_random_graph(60, 80, directed=True, seed=seed)
    session = ContinuousQuerySession(GrapeEngine(4),
                                     CCProgram(use_csr=use_csr), None, g)
    # Weight 0.0: always monotone even if the edge already exists.
    batches = [[(0, 59, 0.0)], [(70, 5, 0.0), (6, 70, 0.0)],
               [(41, 3, 0.0), (3, 59, 0.0)]]
    for batch in batches:
        session.insert_edges(batch)
        expected = {}
        for v, c in connected_components(g).items():
            expected.setdefault(c, set()).add(v)
        assert session.answer == expected


def test_supports_csr_flags():
    assert SSSPProgram.supports_csr and CCProgram.supports_csr
    assert BFSProgram.supports_csr and PageRankProgram.supports_csr
    from repro.pie_programs import CFProgram, SimProgram, SubIsoProgram
    assert not SimProgram.supports_csr
    assert not SubIsoProgram.supports_csr
    assert not CFProgram.supports_csr
