"""ServiceMetrics aggregation: observe_run / observe_maintenance and the
histogram + skew fields, end to end across every backend."""

import pytest

from repro.core.engine import EngineConfig
from repro.runtime.metrics import CostModel, RunMetrics, ServiceMetrics
from repro.service import GrapeService

CM = CostModel(sync_latency_s=0.0, seconds_per_byte=0.0)


class TestObserveRun:
    def _run(self, wall, worker_times):
        m = RunMetrics(backend="thread")
        m.wall_clock_s = wall
        m.record_superstep(worker_times, 10, 2, CM)
        return m

    def test_totals_and_histograms_fold_in(self):
        stats = ServiceMetrics()
        stats.observe_run(self._run(0.2, [0.01, 0.04]))
        stats.observe_run(self._run(0.3, [0.02, 0.02]))
        assert stats.queries_served == 2
        assert stats.wall_clock_s_total == pytest.approx(0.5)
        assert stats.supersteps_total == 2
        assert stats.comm_bytes_total == 20
        assert stats.comm_messages_total == 4
        # per-query wall clock lands in the service histogram
        assert stats.query_wall_s.count == 2
        assert stats.query_wall_s.sum == pytest.approx(0.5)
        # per-worker superstep times merge bin-wise
        assert stats.worker_time_hist.count == 4
        # skew: [0.01, 0.04] → 0.04 / 0.025 = 1.6; balanced run → 1.0
        assert stats.skew_ratio_max == pytest.approx(1.6)
        assert stats.straggler_steps == 0

    def test_straggler_steps_accumulate(self):
        stats = ServiceMetrics()
        stats.observe_run(self._run(0.1, [0.01, 0.01, 0.04]))  # skew 2.0
        assert stats.straggler_steps == 1
        assert stats.skew_ratio_max == pytest.approx(2.0)


class TestObserveMaintenance:
    def test_folds_delta_costs(self):
        stats = ServiceMetrics()
        stats.observe_maintenance(3, 100, 7, maintained=1,
                                  delta_bytes=64)
        stats.observe_maintenance(2, 50, 3, fallbacks=1,
                                  partial_resets=1, affected_vertices=9)
        assert stats.watch_refreshes == 2
        assert stats.incremental_maintained == 1
        assert stats.fallback_reruns == 1
        assert stats.partial_resets == 1
        assert stats.affected_vertices == 9
        assert stats.delta_bytes_shipped == 64
        assert stats.supersteps_total == 5
        assert stats.comm_bytes_total == 150
        assert stats.comm_messages_total == 10
        assert stats.maintained_ratio == pytest.approx(0.5)
        # maintenance does not count as a served query
        assert stats.queries_served == 0
        assert stats.query_wall_s.count == 0


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
class TestAcrossBackends:
    def test_histograms_populated_by_served_queries(self, small_road,
                                                    backend):
        with GrapeService(engine=EngineConfig(num_workers=4,
                                              backend=backend)) as svc:
            svc.load_graph("roads", small_road)
            svc.play("sssp", 0, graph="roads")
            svc.play("sssp", 5, graph="roads")
            stats = svc.stats
            assert stats.queries_served == 2
            assert stats.query_wall_s.count == 2
            assert stats.query_wall_s.sum > 0
            # every superstep contributed one sample per fragment
            assert stats.worker_time_hist.count >= stats.supersteps_total
            assert stats.skew_ratio_max >= 1.0

    def test_watch_refresh_keeps_skew_fields_coherent(self, small_road,
                                                      backend):
        with GrapeService(engine=EngineConfig(num_workers=4,
                                              backend=backend)) as svc:
            svc.load_graph("roads", small_road)
            handle = svc.watch("sssp", 0, graph="roads")
            svc.insert_edges("roads", [(0, 35, 0.5)])
            assert svc.stats.watch_refreshes == 1
            assert handle.session.metrics.worker_time_hist.count > 0
            report = handle.straggler_report()
            assert report["supersteps"] >= 1
            assert report["max_skew"] >= 1.0
