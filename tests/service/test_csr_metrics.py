"""Serving-layer observability of CSR snapshot reuse."""

from repro.graph.generators import uniform_random_graph
from repro.service import GrapeService


def make_service():
    service = GrapeService()
    service.load_graph("g", uniform_random_graph(40, 140, seed=3))
    return service


class TestServiceCSRCounters:
    def test_play_builds_snapshots_once(self):
        with make_service() as service:
            service.play("sssp", query=0, graph="g")
            built = service.stats.csr_snapshots_built
            assert built > 0
            # Same cached fragmentation, snapshots reused.
            service.play("sssp", query=1, graph="g")
            service.play("bfs", query=0, graph="g")
            assert service.stats.csr_snapshots_built == built
            assert service.stats.csr_snapshot_invalidations == 0

    def test_insert_edges_counts_invalidations(self):
        with make_service() as service:
            watch = service.watch("sssp", 0, graph="g")
            assert service.stats.csr_snapshots_built > 0
            service.insert_edges("g", [(0, 39, 0.01)])
            assert service.stats.csr_snapshot_invalidations >= 1
            assert watch.answer[39] <= 0.01

    def test_counters_survive_cache_retirement(self):
        with make_service() as service:
            service.play("sssp", query=0, graph="g")
            built = service.stats.csr_snapshots_built
            assert built > 0
            service.load_graph("g", uniform_random_graph(40, 140, seed=4),
                               replace=True)
            service.play("sssp", query=0, graph="g")
            assert service.stats.csr_snapshots_built > built

    def test_repr_folds_counters_in(self):
        with make_service() as service:
            service.play("cc", graph="g")
            assert "csr=" in repr(service)
            assert "csr=" in repr(service.stats)
