"""Ticket cancellation and service-level deadlines.

`QueryTicket.cancel()` is best-effort and asynchronous: a queued ticket
fails fast without ever running; a running one is aborted at the next
superstep boundary.  Either way the outcome is the typed
:class:`~repro.resilience.errors.QueryCancelled`, status ``cancelled``,
and a cleanly released pool slot.
"""

from __future__ import annotations

import time

import pytest

from repro.core.engine import EngineConfig
from repro.graph.generators import grid_road_graph
from repro.pie_programs import SSSPProgram
from repro.resilience import DeadlineExceeded, QueryCancelled
from repro.sequential import sssp_distances
from repro.service import GrapeService


class NapSSSP(SSSPProgram):
    """SSSP that naps every IncEval — gives cancel/deadline races a
    wide-open superstep boundary to land in.  Module-level so it stays
    picklable."""

    def __init__(self, nap_s: float = 0.03):
        super().__init__()
        self.nap_s = nap_s

    def inceval(self, query, fragment, state, message):
        time.sleep(self.nap_s)
        super().inceval(query, fragment, state, message)


@pytest.fixture
def graph():
    return grid_road_graph(6, 6, seed=3)


@pytest.fixture
def service(graph):
    svc = GrapeService(engine=EngineConfig(num_workers=4),
                       concurrency=1, grouping=False)
    svc.program("napsssp")(NapSSSP)
    svc.load_graph("road", graph)
    yield svc
    svc.close()


def test_cancel_a_queued_ticket(service, graph):
    slow = service.submit("napsssp", 0, graph="road")
    queued = service.submit("sssp", 7, graph="road")
    assert queued.cancel() is True
    assert queued.wait(timeout=60)
    assert queued.status == "cancelled"
    with pytest.raises(QueryCancelled, match="before it started"):
        queued.result()
    # The in-flight query is untouched.
    assert slow.result(timeout=60) == pytest.approx(
        sssp_distances(graph, 0))
    assert service.stats.queries_cancelled == 1
    assert service.stats.queries_failed == 1


def test_cancel_mid_run_releases_the_slot(service, graph):
    ticket = service.submit("napsssp", 0, graph="road",
                            nap_s=0.05)
    while ticket.status == "pending":
        time.sleep(0.005)
    time.sleep(0.05)  # let it get at least one superstep deep
    assert ticket.cancel() is True
    assert ticket.wait(timeout=60)
    assert ticket.status == "cancelled"
    with pytest.raises(QueryCancelled):
        ticket.result()
    # concurrency=1: this only completes if the cancelled run released
    # its pool slot.
    follow_up = service.play("sssp", 0, graph="road")
    assert follow_up.answer == pytest.approx(sssp_distances(graph, 0))
    assert service.stats.queries_cancelled == 1


def test_result_cancel_on_timeout(service):
    ticket = service.submit("napsssp", 0, graph="road",
                            nap_s=0.05)
    with pytest.raises(TimeoutError, match="not finished"):
        ticket.result(timeout=0.05, cancel_on_timeout=True)
    assert ticket.cancelled
    assert ticket.wait(timeout=60)
    assert ticket.status == "cancelled"


def test_result_timeout_without_flag_leaves_the_run_alone(service, graph):
    ticket = service.submit("napsssp", 0, graph="road")
    with pytest.raises(TimeoutError):
        ticket.result(timeout=0.01)
    assert not ticket.cancelled
    assert ticket.result(timeout=60) == pytest.approx(
        sssp_distances(graph, 0))
    assert ticket.status == "done"


def test_cancel_after_done_is_a_noop(service):
    ticket = service.play("sssp", 0, graph="road")
    assert ticket.cancel() is False
    assert ticket.status == "done"


def test_service_deadline_surfaces_and_counts(graph):
    svc = GrapeService(engine=EngineConfig(num_workers=4),
                       deadline_s=0.1, grouping=False)
    svc.program("napsssp")(NapSSSP)
    svc.load_graph("road", graph)
    try:
        slow = svc.submit("napsssp", 0, graph="road",
                          nap_s=0.06)
        slow.wait(timeout=60)
        assert slow.status == "failed"
        with pytest.raises(DeadlineExceeded):
            slow.result()
        assert svc.stats.deadlines_exceeded == 1
        # A fast query fits the same budget comfortably.
        quick = svc.play("sssp", 0, graph="road")
        assert quick.answer == pytest.approx(sssp_distances(graph, 0))
    finally:
        svc.close()
