"""GrapeService: the plug-and-play serving facade."""

from collections import deque

import pytest

from repro.core.api import PIERegistry
from repro.core.engine import EngineConfig
from repro.core.pie import PIEProgram
from repro.graph.generators import grid_road_graph
from repro.partition.strategies import HashPartition, RangePartition
from repro.pie_programs import SSSPProgram
from repro.sequential import sssp_distances
from repro.service import GrapeService, QueryRequest
from repro.core.aggregators import MaxAggregator


class FrozenSSSP(SSSPProgram):
    """Module-level (picklable): opts out of the recompute fallback and
    of the bounded delete-aware path (maintains monotone batches only),
    so non-monotone batches raise instead of being served."""

    recompute_fallback = False

    def maintainable(self, delta):
        return delta.monotone


class RecomputingSSSP(SSSPProgram):
    """Module-level (picklable): keeps the recompute fallback but does
    not claim non-monotone batches — the pre-bounded-path dispatch,
    preserved to pin the mixed-watchers accounting."""

    def maintainable(self, delta):
        return delta.monotone


def reachable_oracle(graph, source):
    seen = {source} if graph.has_node(source) else set()
    dq = deque(seen)
    while dq:
        v = dq.popleft()
        for w in graph.successors(v):
            if w not in seen:
                seen.add(w)
                dq.append(w)
    return seen


class ReachProgram(PIEProgram):
    """Custom query class: the set of nodes reachable from the source."""

    name = "Reach"
    aggregator = MaxAggregator()
    route_to = "owner"

    def init_state(self, query, fragment):
        return set()

    def _expand(self, fragment, state, frontier):
        stack = list(frontier)
        while stack:
            v = stack.pop()
            for w in fragment.graph.successors(v):
                if w not in state:
                    state.add(w)
                    stack.append(w)

    def peval(self, query, fragment, state):
        if fragment.graph.has_node(query) and query not in state:
            state.add(query)
        self._expand(fragment, state, list(state))

    def inceval(self, query, fragment, state, message):
        frontier = []
        for (v, _name), reached in message.items():
            if reached and v not in state:
                state.add(v)
                frontier.append(v)
        self._expand(fragment, state, frontier)

    def read_update_params(self, query, fragment, state):
        return {(v, "reached"): True for v in fragment.outer if v in state}

    def assemble(self, query, fragmentation, states):
        return {v for frag in fragmentation for v in frag.owned
                if v in states[frag.fid]}


class PluggedReach(ReachProgram):
    """Module-level so it stays picklable under backend='process'."""


class CountingPartition(HashPartition):
    """Hash partition that records every partition() call on the class
    (instance attributes would perturb the service's cache key)."""

    calls = 0

    def partition(self, graph, num_fragments):
        type(self).calls += 1
        return super().partition(graph, num_fragments)


@pytest.fixture
def service(small_road):
    svc = GrapeService(engine=EngineConfig(num_workers=4))
    svc.load_graph("roads", small_road)
    yield svc
    svc.close()


class TestGraphManagement:
    def test_load_and_list(self, service, diamond):
        service.load_graph("diamond", diamond)
        assert service.graphs() == ["diamond", "roads"]
        assert service.graph("diamond") is diamond

    def test_duplicate_rejected_unless_replace(self, service, diamond):
        with pytest.raises(ValueError, match="already loaded"):
            service.load_graph("roads", diamond)
        service.load_graph("roads", diamond, replace=True)
        assert service.graph("roads") is diamond

    def test_replace_drops_cached_fragmentation(self, service, diamond):
        service.play("sssp", 0, graph="roads")
        assert service.stats.cache_misses == 1
        service.load_graph("roads", diamond, replace=True)
        service.play("sssp", 0, graph="roads")
        assert service.stats.cache_misses == 2

    def test_unload(self, service, small_road):
        assert service.unload_graph("roads") is small_road
        with pytest.raises(ValueError, match="no graph loaded"):
            service.play("sssp", 0, graph="roads")

    def test_unknown_graph_error_names_available(self, service):
        with pytest.raises(ValueError, match="roads"):
            service.play("sssp", 0, graph="nowhere")


class TestPlay:
    def test_answer_and_metrics(self, service, small_road):
        ticket = service.play("sssp", 0, graph="roads")
        assert ticket.status == "done" and ticket.done
        assert ticket.answer == pytest.approx(sssp_distances(small_road, 0))
        assert ticket.metrics.supersteps >= 1
        assert ticket.result() is ticket.answer

    def test_unknown_program_raises(self, service):
        with pytest.raises(ValueError, match="no PIE program"):
            service.play("mincut", 0, graph="roads")

    def test_case_insensitive_program_lookup(self, service):
        ticket = service.play("SSSP", 0, graph="roads")
        assert ticket.status == "done"

    def test_fragmentation_cached_across_query_classes(self, service):
        service.play("sssp", 0, graph="roads")
        service.play("cc", graph="roads")
        service.play("bfs", 0, graph="roads")
        assert service.stats.cache_misses == 1
        assert service.stats.cache_hits == 2

    def test_engine_override_gets_own_cache_entry(self, service):
        service.play("sssp", 0, graph="roads")
        override = EngineConfig(num_workers=2, partition=RangePartition())
        ticket = service.play("sssp", 0, graph="roads", engine=override)
        assert len(ticket.grape_result.fragmentation.fragments) == 2
        assert service.stats.cache_misses == 2


class TestSubmitMany:
    def test_batch_of_concurrent_queries(self, service, small_road):
        requests = [("sssp", 0, "roads"), ("sssp", 7, "roads"),
                    ("bfs", 0, "roads"), ("cc", None, "roads"),
                    QueryRequest(program="sssp", query=14, graph="roads")]
        tickets = service.submit_many(requests)
        assert [t.program for t in tickets] == \
            ["sssp", "sssp", "bfs", "cc", "sssp"]
        for ticket in tickets:
            ticket.result(timeout=60)
        assert tickets[0].answer == pytest.approx(
            sssp_distances(small_road, 0))
        assert tickets[4].answer == pytest.approx(
            sssp_distances(small_road, 14))
        assert service.stats.queries_served == 5
        # All five shared one fragmentation.
        assert service.stats.cache_misses == 1

    def test_failure_lands_in_ticket_not_pool(self, service):
        good, bad = service.submit_many([("sssp", 0, "roads"),
                                         ("mincut", 0, "roads")])
        assert good.result(timeout=60)
        bad.wait(timeout=60)
        assert bad.status == "failed"
        with pytest.raises(ValueError, match="no PIE program"):
            bad.result()
        assert service.stats.queries_failed == 1

    def test_dict_requests_with_program_kwargs(self, service):
        [ticket] = service.submit_many([
            {"program": "sssp", "query": 0, "graph": "roads",
             "program_kwargs": {}}])
        assert ticket.result(timeout=60)


class TestWatchAndUpdates:
    def test_watch_maintained_under_insertions(self, service, small_road):
        handle = service.watch("sssp", 0, graph="roads")
        assert handle.answer == pytest.approx(sssp_distances(small_road, 0))
        refreshed = service.insert_edges("roads", [(0, 35, 0.25)])
        assert refreshed == [handle]
        assert handle.answer[35] == pytest.approx(0.25)
        assert handle.answer == pytest.approx(sssp_distances(small_road, 0))
        assert handle.refreshes == 1

    def test_one_batch_fans_out_to_all_watchers(self, service, small_road):
        h1 = service.watch("sssp", 0, graph="roads")
        h2 = service.watch("sssp", 14, graph="roads")
        service.insert_edges("roads", [(0, 35, 0.2), (14, 30, 0.2)])
        assert h1.answer == pytest.approx(sssp_distances(small_road, 0))
        assert h2.answer == pytest.approx(sssp_distances(small_road, 14))
        # One shared fragmentation: still a single partition pass.
        assert service.stats.cache_misses == 1
        assert service.stats.watch_refreshes == 2

    def test_cancelled_watch_not_refreshed(self, service):
        handle = service.watch("sssp", 0, graph="roads")
        handle.cancel()
        refreshed = service.insert_edges("roads", [(0, 35, 0.25)])
        assert refreshed == []
        assert handle.refreshes == 0
        assert service.watches("roads") == []

    def test_unload_blocked_by_active_watch(self, service):
        handle = service.watch("sssp", 0, graph="roads")
        with pytest.raises(ValueError, match="standing queries"):
            service.unload_graph("roads")
        handle.cancel()
        service.unload_graph("roads")

    def test_insert_without_fragmentation_mutates_graph(self, service,
                                                        small_road):
        service.insert_edges("roads", [(0, 35, 0.25)])
        assert small_road.has_edge(0, 35)
        ticket = service.play("sssp", 0, graph="roads")
        assert ticket.answer[35] == pytest.approx(0.25)

    def test_insert_invalidates_other_configs(self, service):
        service.play("sssp", 0, graph="roads")  # canonical entry
        override = EngineConfig(num_workers=2, partition=RangePartition())
        service.play("sssp", 0, graph="roads", engine=override)
        service.insert_edges("roads", [(0, 35, 0.25)])
        assert service.stats.cache_invalidations == 1
        # Canonical entry survived: next play is a cache hit.
        hits = service.stats.cache_hits
        service.play("sssp", 0, graph="roads")
        assert service.stats.cache_hits == hits + 1

    def test_weight_increase_served_by_bounded_path(self, service,
                                                    small_road):
        handle = service.watch("sssp", 0, graph="roads")
        u, v, w = next(iter(small_road.edges()))
        refreshed = service.insert_edges("roads", [(u, v, w + 100.0)])
        assert refreshed == [handle]
        assert small_road.edge_weight(u, v) == pytest.approx(w + 100.0)
        assert handle.answer == pytest.approx(sssp_distances(small_road, 0))
        assert service.stats.fallback_reruns == 0
        assert service.stats.incremental_maintained == 1
        assert service.stats.partial_resets == 1
        assert service.stats.affected_vertices >= 0

    def test_mixed_update_batch_with_watch(self, service, small_road):
        from repro import GraphDelta
        handle = service.watch("sssp", 0, graph="roads")
        u, v, _w = next(iter(small_road.edges()))
        delta = (GraphDelta().delete(u, v).insert(0, 35, 0.25)
                 .insert(0, "annex", 1.5))
        refreshed = service.update("roads", delta)
        assert refreshed == [handle]
        assert not small_road.has_edge(u, v)
        assert handle.answer == pytest.approx(sssp_distances(small_road, 0))
        assert handle.answer["annex"] == pytest.approx(1.5)
        service.fragmentation("roads").validate()

    def test_delete_edges_and_set_weights_sugar(self, service, small_road):
        handle = service.watch("sssp", 0, graph="roads")
        u, v, w = next(iter(small_road.edges()))
        service.set_weights("roads", [(u, v, w * 0.5)])   # decrease
        assert service.stats.incremental_maintained == 1
        service.delete_edges("roads", [(u, v)])
        assert service.stats.fallback_reruns == 0
        assert service.stats.incremental_maintained == 2
        assert service.stats.partial_resets == 1
        assert handle.answer == pytest.approx(sssp_distances(small_road, 0))

    def test_opt_out_watch_cancelled_without_stranding_others(
            self, service, small_road):
        """Regression: one watcher rejecting a non-monotone batch must
        not abort the fan-out — the other watchers refresh and stay
        consistent with the mutated graph; the opt-out watch is
        cancelled and its typed error surfaced afterwards."""
        from repro.core.updates import NonMonotoneUpdateError

        service.plug("frozen-sssp", FrozenSSSP)
        frozen = service.watch("frozen-sssp", 0, graph="roads")
        normal = service.watch("sssp", 0, graph="roads")
        u, v, _w = next(iter(small_road.edges()))
        with pytest.raises(NonMonotoneUpdateError, match="opted out"):
            service.delete_edges("roads", [(u, v)])
        # the mutation landed and the surviving watch tracks it
        assert not small_road.has_edge(u, v)
        assert normal.answer == pytest.approx(sssp_distances(small_road, 0))
        assert not frozen.active
        assert service.watches("roads") == [normal]
        # later updates proceed normally — the service is not wedged
        refreshed = service.insert_edges("roads", [(0, 35, 0.3)])
        assert refreshed == [normal]
        assert normal.answer == pytest.approx(sssp_distances(small_road, 0))

    def test_mixed_watchers_split_maintained_ratio(self, service,
                                                   small_road):
        """One batch, two watches, two outcomes: the bounded-path SSSP
        watch is *maintained* while the hook-less one recomputes — the
        per-session accounting must split the batch across both buckets
        instead of attributing it wholesale to one."""
        service.plug("legacy-sssp", RecomputingSSSP)
        fast = service.watch("sssp", 0, graph="roads")
        slow = service.watch("legacy-sssp", 0, graph="roads")
        u, v, _w = next(iter(small_road.edges()))
        refreshed = service.delete_edges("roads", [(u, v)])
        assert set(refreshed) == {fast, slow}
        truth = sssp_distances(small_road, 0)
        assert fast.answer == pytest.approx(truth)
        assert slow.answer == pytest.approx(truth)
        assert service.stats.incremental_maintained == 1
        assert service.stats.fallback_reruns == 1
        assert service.stats.partial_resets == 1
        assert service.stats.maintained_ratio == pytest.approx(0.5)

    def test_noop_batch_is_free(self, service, small_road):
        service.watch("sssp", 0, graph="roads")
        frag = service.fragmentation("roads")
        token = frag.cache_token
        epochs = [f.csr_epoch for f in frag]
        updates_before = service.stats.updates_applied
        u, v, w = next(iter(small_road.edges()))
        refreshed = service.insert_edges("roads", [(u, v, w)])  # duplicate
        assert refreshed == []
        assert frag.cache_token == token
        assert [f.csr_epoch for f in frag] == epochs
        assert service.stats.updates_applied == updates_before


class TestPlugPanel:
    def test_plug_and_decorator_stay_service_local(self, small_road):
        with GrapeService() as svc:
            svc.load_graph("roads", small_road)
            svc.plug("reach2", ReachProgram)

            @svc.program("triangle-free")
            class _Stub(ReachProgram):
                name = "TriangleFree"

            assert "reach2" in svc.programs()
            assert "triangle-free" in svc.programs()
        # The default library was not polluted.
        from repro.core.api import default_registry
        assert "reach2" not in default_registry()
        assert "triangle-free" not in default_registry()

    def test_private_registry_override(self, small_road):
        registry = PIERegistry()
        registry.register("reach", ReachProgram)
        with GrapeService(registry=registry) as svc:
            svc.load_graph("roads", small_road)
            assert svc.programs() == ["reach"]
            with pytest.raises(ValueError, match="no PIE program"):
                svc.play("sssp", 0, graph="roads")


class TestEndToEnd:
    """The acceptance scenario: plug a custom program, partition once for
    all queries, serve a concurrent batch, then maintain a standing query
    under insertions without re-partitioning."""

    def test_full_serving_lifecycle(self):
        CountingPartition.calls = 0
        graph = grid_road_graph(6, 6, seed=3)
        service = GrapeService(
            engine=EngineConfig(num_workers=4,
                                partition=CountingPartition()),
            concurrency=4)

        # Plug: register a custom PIE program via the decorator.  The
        # class itself lives at module level (the pickle contract for
        # backend="process"); the decorator only registers it here.
        service.program("reach")(PluggedReach)

        service.load_graph("social", graph)

        # Play two different query classes on one cached fragmentation.
        sssp_ticket = service.play("sssp", 0, graph="social")
        reach_ticket = service.play("reach", 0, graph="social")
        assert sssp_ticket.answer == pytest.approx(sssp_distances(graph, 0))
        assert reach_ticket.answer == reachable_oracle(graph, 0)
        assert CountingPartition.calls == 1, \
            "graph must be partitioned once for all queries"

        # Concurrent batched submission (>= 4 queries, pooled engines).
        tickets = service.submit_many([
            ("sssp", 7, "social"), ("reach", 7, "social"),
            ("bfs", 0, "social"), ("cc", None, "social"),
            ("sssp", 14, "social")])
        for ticket in tickets:
            ticket.result(timeout=60)
        assert tickets[0].answer == pytest.approx(sssp_distances(graph, 7))
        assert tickets[1].answer == reachable_oracle(graph, 7)
        assert CountingPartition.calls == 1

        # Standing query maintained incrementally under insertions: a
        # mild shortcut whose effect is localized, so maintenance touches
        # a small affected area while a fresh run still pays the full
        # fixpoint (paper: IncEval cost is bounded by the change).
        handle = service.watch("sssp", 0, graph="social")
        before = handle.metrics.supersteps
        d0 = sssp_distances(graph, 0)
        u, v = 28, 35
        w = (d0[v] - d0[u]) * 0.9
        assert w > 0
        service.insert_edges("social", [(u, v, w)])
        maintenance = handle.metrics.supersteps - before
        assert handle.answer == pytest.approx(sssp_distances(graph, 0))
        assert handle.answer[v] == pytest.approx(d0[u] + w)

        fresh = service.play("sssp", 0, graph="social")
        assert fresh.answer == pytest.approx(handle.answer)
        assert maintenance < fresh.metrics.supersteps, \
            "maintenance must be cheaper than a fresh fixpoint"
        assert CountingPartition.calls == 1, \
            "updates must not trigger a re-partition"

        assert service.stats.queries_served == 9  # 8 plays + watch install
        assert service.stats.queries_failed == 0
        assert service.stats.updates_applied == 1
        assert service.stats.cache_hit_rate > 0.8
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.play("sssp", 0, graph="social")
