"""Backend degradation: retry + circuit breaker at the service layer.

`WorkerKillerSSSP` kills any worker process it lands on (it dies iff
its pid differs from the coordinator's), so it fails on the process
backend and succeeds on the inline ones — exactly the shape of a
backend-specific fault the breaker exists for: retries burn through the
failure threshold, the breaker degrades the graph one level down the
process→thread→serial chain, and the query completes with the exact
fault-free answer on the degraded backend.
"""

from __future__ import annotations

import os

import pytest

from repro.core.engine import EngineConfig
from repro.graph.generators import grid_road_graph
from repro.pie_programs import SSSPProgram
from repro.resilience import BackendCircuitBreaker, RetryPolicy
from repro.sequential import sssp_distances
from repro.service import GrapeService

pytestmark = pytest.mark.skipif(os.name != "posix",
                                reason="worker kill semantics are POSIX")


class WorkerKillerSSSP(SSSPProgram):
    """Dies instantly on any process-backend worker; a plain SSSP on
    inline backends.  ``home_pid`` pickles with the program, so shipped
    copies know they are not at home."""

    def __init__(self):
        super().__init__()
        self.home_pid = os.getpid()

    def peval(self, query, fragment, state):
        if os.getpid() != self.home_pid:
            os._exit(41)
        super().peval(query, fragment, state)


@pytest.fixture
def graph():
    return grid_road_graph(6, 6, seed=3)


def make_service(graph, breaker, retry):
    svc = GrapeService(engine=EngineConfig(num_workers=4),
                       backend="process", degradation=breaker,
                       retry=retry, grouping=False)
    svc.program("killer")(WorkerKillerSSSP)
    svc.load_graph("road", graph)
    return svc


def test_retries_degrade_and_the_query_still_answers(graph):
    breaker = BackendCircuitBreaker(failure_threshold=2,
                                    cooldown_s=1000.0)
    retry = RetryPolicy(max_attempts=3, base_backoff_s=0.001, jitter=0.0)
    svc = make_service(graph, breaker, retry)
    try:
        ticket = svc.play("killer", 0, graph="road")
        # attempt 1: process dies; attempt 2: process dies -> breaker
        # trips; attempt 3: thread backend answers.
        assert ticket.answer == pytest.approx(sssp_distances(graph, 0))
        assert svc.stats.queries_retried == 1
        assert svc.stats.retries_total == 2
        assert svc.stats.backend_degradations == 1
        assert breaker.degraded_backend("road") == "thread"
        assert breaker.transitions[0][:4] == ("degrade", "road",
                                              "process", "thread")
        # While degraded, the same query runs first-try on thread.
        again = svc.play("killer", 7, graph="road")
        assert again.answer == pytest.approx(sssp_distances(graph, 7))
        assert svc.stats.retries_total == 2  # no new retries needed
    finally:
        svc.close()


def test_cooldown_probe_restores_the_configured_backend(graph):
    clock = [0.0]
    breaker = BackendCircuitBreaker(failure_threshold=1, cooldown_s=60.0,
                                    clock=lambda: clock[0])
    retry = RetryPolicy(max_attempts=2, base_backoff_s=0.001, jitter=0.0)
    svc = make_service(graph, breaker, retry)
    try:
        ticket = svc.play("killer", 0, graph="road")
        assert ticket.answer == pytest.approx(sssp_distances(graph, 0))
        assert breaker.degraded_backend("road") == "thread"

        clock[0] = 61.0  # cooldown over: next query probes process
        probe = svc.play("sssp", 0, graph="road")
        assert probe.answer == pytest.approx(sssp_distances(graph, 0))
        assert breaker.degraded_backend("road") is None
        assert svc.stats.backend_probes == 1
        assert svc.stats.backend_restorations == 1
        assert [t[0] for t in breaker.transitions] == \
            ["degrade", "probe", "restore"]
    finally:
        svc.close()


def test_degradation_true_builds_a_default_breaker(graph):
    svc = GrapeService(degradation=True)
    try:
        assert isinstance(svc.breaker, BackendCircuitBreaker)
    finally:
        svc.close()


def test_without_degradation_the_failure_propagates(graph):
    svc = GrapeService(engine=EngineConfig(num_workers=4),
                       backend="process", grouping=False)
    svc.program("killer")(WorkerKillerSSSP)
    svc.load_graph("road", graph)
    try:
        from repro.runtime.executors import WorkerProcessDied
        with pytest.raises(WorkerProcessDied):
            svc.play("killer", 0, graph="road")
        assert svc.stats.queries_failed == 1
    finally:
        svc.close()
