"""Regressions: cancelled watches must stay cancelled, and the graph
read lock must be reentrant for a thread that already holds it."""

import threading

import pytest

from repro.graph.generators import uniform_random_graph
from repro.service import GrapeService
from repro.service.facade import _RWLock


def make_service(**kwargs):
    service = GrapeService(**kwargs)
    service.load_graph("g", uniform_random_graph(60, 200, seed=8,
                                                 directed=False))
    return service


class TestCancelGuard:
    def test_cancel_then_insert_does_not_refresh(self):
        with make_service() as service:
            handle = service.watch("sssp", 0, graph="g")
            service.insert_edges("g", [(0, 59, 0.001)])
            assert handle.refreshes == 1

            handle.cancel()
            refreshed = service.insert_edges("g", [(1, 58, 0.001)])
            assert refreshed == []
            assert handle.refreshes == 1
            assert not handle.active

    def test_refresh_guard_is_race_safe(self):
        """A handle cancelled *after* the service snapshotted its watcher
        list (the in-flight race) is skipped by ``_refresh`` itself."""
        with make_service() as service:
            handle = service.watch("sssp", 0, graph="g")
            handle.cancel()
            # simulate the race: call the refresh path directly, as
            # insert_edges would on a stale snapshot
            assert handle._refresh({}) is None
            assert handle.refreshes == 0

    def test_active_watches_keep_refreshing(self):
        with make_service() as service:
            keep = service.watch("sssp", 0, graph="g")
            drop = service.watch("cc", graph="g")
            drop.cancel()
            refreshed = service.insert_edges("g", [(2, 57, 0.001)])
            assert refreshed == [keep]
            assert keep.refreshes == 1
            assert drop.refreshes == 0

    def test_cancelled_watch_allows_graph_unload(self):
        with make_service() as service:
            handle = service.watch("sssp", 0, graph="g")
            with pytest.raises(ValueError, match="standing queries"):
                service.unload_graph("g")
            handle.cancel()
            service.unload_graph("g")


class TestReentrantReadLock:
    def test_nested_read_with_waiting_writer_does_not_deadlock(self):
        """The process-backend callback shape: a thread re-enters read()
        while a writer queues between the two acquisitions.  Without
        reentrancy the inner read blocks on the writer which blocks on
        the outer read — deadlock."""
        lock = _RWLock()
        writer_waiting = threading.Event()
        wrote = threading.Event()
        inner_done = threading.Event()

        def writer():
            writer_waiting.set()
            with lock.write():
                wrote.set()

        def reader():
            with lock.read():
                thread = threading.Thread(target=writer, daemon=True)
                thread.start()
                writer_waiting.wait(2.0)
                # give the writer time to register as waiting
                for _ in range(100):
                    with lock._cond:
                        if lock._writers_waiting:
                            break
                with lock.read():  # must not block
                    inner_done.set()

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        assert inner_done.wait(5.0), "nested read deadlocked"
        assert wrote.wait(5.0), "writer starved after readers left"

    def test_writer_still_excludes_new_readers(self):
        lock = _RWLock()
        order = []

        with lock.read():
            order.append("outer-read")
            with lock.read():
                order.append("inner-read")

        def writer():
            with lock.write():
                order.append("write")

        t = threading.Thread(target=writer)
        t.start()
        t.join(2.0)
        assert order == ["outer-read", "inner-read", "write"]

    def test_distinct_threads_still_gate_behind_writer(self):
        """Reentrancy is per-thread: a *new* reader thread queues behind
        a waiting writer as before (writer preference intact)."""
        lock = _RWLock()
        release_outer = threading.Event()
        events = []

        def outer_reader():
            with lock.read():
                events.append("reader-in")
                release_outer.wait(5.0)

        def writer():
            with lock.write():
                events.append("writer")

        def late_reader():
            with lock.read():
                events.append("late-reader")

        t1 = threading.Thread(target=outer_reader, daemon=True)
        t1.start()
        while "reader-in" not in events:
            pass
        t2 = threading.Thread(target=writer, daemon=True)
        t2.start()
        for _ in range(1000):
            with lock._cond:
                if lock._writers_waiting:
                    break
        t3 = threading.Thread(target=late_reader, daemon=True)
        t3.start()
        release_outer.set()
        t2.join(5.0)
        t3.join(5.0)
        assert events == ["reader-in", "writer", "late-reader"]
