"""Vertex-centric (Pregel) engine and program tests."""

import pytest

from repro.baselines.vertex_centric import (PregelEngine, VertexContext,
                                            VertexProgram)
from repro.baselines.vertex_programs import (CCVertexProgram,
                                             CFVertexProgram,
                                             SimVertexProgram,
                                             SSSPVertexProgram,
                                             SubIsoVertexProgram)
from repro.graph.graph import Graph
from repro.pie_programs import CFQuery
from repro.sequential import (canonical_match, connected_components,
                              maximum_simulation, sssp_distances,
                              vf2_all_matches)


class EchoOnce(VertexProgram):
    """Each vertex sends one message to itself at superstep 0, then halts."""

    def init_value(self, graph, vertex, query):
        return 0

    def compute(self, ctx, graph, vertex, value, messages, query):
        if ctx.superstep == 0:
            ctx.send(vertex, 1)
        ctx.vote_to_halt()
        return value + sum(messages)


class TestEngineSemantics:
    def test_halted_vertex_woken_by_message(self):
        g = Graph()
        g.add_node(1)
        result = PregelEngine(1).run(EchoOnce(), g)
        assert result.values[1] == 1
        assert result.metrics.supersteps == 2

    def test_intra_worker_messages_free(self):
        g = Graph()
        g.add_node(1)
        result = PregelEngine(1).run(EchoOnce(), g)
        assert result.metrics.comm_bytes == 0

    def test_cross_worker_messages_charged(self, small_road):
        result = PregelEngine(4).run(SSSPVertexProgram(), small_road,
                                     query=0)
        assert result.metrics.comm_bytes > 0

    def test_placement_respected(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2)
        engine = PregelEngine(2, placement={1: 0, 2: 1})
        assert engine._worker_of(1) == 0
        assert engine._worker_of(2) == 1

    def test_nonquiescing_raises(self):
        class Chatter(VertexProgram):
            def init_value(self, graph, vertex, query):
                return 0

            def compute(self, ctx, graph, vertex, value, messages, query):
                ctx.send(vertex, 1)
                return value

        g = Graph()
        g.add_node(1)
        engine = PregelEngine(1, max_supersteps=5)
        with pytest.raises(RuntimeError, match="quiesce"):
            engine.run(Chatter(), g)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            PregelEngine(0)


class TestVertexPrograms:
    def test_sssp(self, small_road):
        truth = sssp_distances(small_road, 0)
        result = PregelEngine(4).run(SSSPVertexProgram(), small_road,
                                     query=0)
        assert result.answer == pytest.approx(truth)

    def test_sssp_many_supersteps_on_chain(self):
        """Vertex-centric SSSP needs ~diameter supersteps — the effect
        behind Table 1."""
        g = Graph(directed=True)
        for i in range(30):
            g.add_edge(i, i + 1, weight=1.0)
        result = PregelEngine(2).run(SSSPVertexProgram(), g, query=0)
        assert result.metrics.supersteps >= 30

    def test_cc(self, small_undirected):
        expected = {}
        for v, c in connected_components(small_undirected).items():
            expected.setdefault(c, set()).add(v)
        result = PregelEngine(3).run(CCVertexProgram(), small_undirected)
        assert result.answer == expected

    def test_sim(self, small_labeled, path_pattern):
        truth = maximum_simulation(path_pattern, small_labeled)
        result = PregelEngine(3).run(SimVertexProgram(), small_labeled,
                                     query=path_pattern)
        assert result.answer == truth

    def test_subiso(self, small_labeled, path_pattern):
        truth = {canonical_match(m)
                 for m in vf2_all_matches(path_pattern, small_labeled)}
        result = PregelEngine(3).run(SubIsoVertexProgram(), small_labeled,
                                     query=path_pattern)
        assert {canonical_match(m) for m in result.answer} == truth

    def test_cf_learns(self):
        from repro.graph.generators import bipartite_ratings_graph
        from repro.sequential.cf import FactorModel, extract_ratings, rmse
        g, _u, _i = bipartite_ratings_graph(30, 15, 250, noise=0.05,
                                            seed=5)
        ratings = extract_ratings(g)
        query = CFQuery(num_factors=6, max_epochs=10, learning_rate=0.05,
                        seed=2)
        result = PregelEngine(3).run(CFVertexProgram(), g, query=query)
        model = FactorModel(6, seed=2)
        model.factors = dict(result.answer)
        baseline = FactorModel(6, seed=2)
        assert rmse(ratings, model) < rmse(ratings, baseline)

    def test_min_combiner_reduces_messages(self, small_road):
        class NoCombine(SSSPVertexProgram):
            def combine(self, messages):
                return messages

        combined = PregelEngine(4).run(SSSPVertexProgram(), small_road,
                                       query=0)
        raw = PregelEngine(4).run(NoCombine(), small_road, query=0)
        assert combined.metrics.comm_bytes <= raw.metrics.comm_bytes
        assert combined.answer == raw.answer
