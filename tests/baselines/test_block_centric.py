"""Block-centric (Blogel stand-in) engine and program tests."""

import pytest

from repro.baselines.block_centric import (BlogelEngine, CCBlockProgram,
                                           SSSPBlockProgram, run_vcompute)
from repro.baselines.vertex_programs import SimVertexProgram
from repro.graph.generators import uniform_random_graph
from repro.sequential import (connected_components, maximum_simulation,
                              sssp_distances)


class TestSSSPBlock:
    def test_matches_oracle(self, small_road):
        truth = sssp_distances(small_road, 0)
        result = BlogelEngine(4).run(SSSPBlockProgram(), small_road,
                                     query=0)
        assert result.answer == pytest.approx(truth)

    def test_fewer_supersteps_than_vertex_centric(self, small_road):
        from repro.baselines.vertex_centric import PregelEngine
        from repro.baselines.vertex_programs import SSSPVertexProgram
        block = BlogelEngine(4).run(SSSPBlockProgram(), small_road,
                                    query=0)
        vertex = PregelEngine(4).run(SSSPVertexProgram(), small_road,
                                     query=0)
        assert block.metrics.supersteps < vertex.metrics.supersteps

    def test_fragmentation_reuse(self, small_road):
        engine = BlogelEngine(4)
        frag = engine.make_fragmentation(small_road)
        for source in (0, 5):
            result = engine.run(SSSPBlockProgram(), small_road,
                                query=source, fragmentation=frag)
            assert result.answer == pytest.approx(
                sssp_distances(small_road, source))


class TestCCBlock:
    def test_matches_oracle_with_precompute(self, small_undirected):
        expected = {}
        for v, c in connected_components(small_undirected).items():
            expected.setdefault(c, set()).add(v)
        engine = BlogelEngine(4, precompute_cc=True)
        result = engine.run(CCBlockProgram(), small_undirected)
        assert result.answer == expected

    def test_precompute_eliminates_communication(self, small_undirected):
        """Blogel's CC-aligned partition -> near-zero query-time comm
        (paper Exp-1(2) / Fig 8(d-f))."""
        engine = BlogelEngine(4, precompute_cc=True)
        result = engine.run(CCBlockProgram(), small_undirected)
        assert result.metrics.comm_bytes == 0

    def test_matches_oracle_without_precompute(self, small_undirected):
        expected = {}
        for v, c in connected_components(small_undirected).items():
            expected.setdefault(c, set()).add(v)
        engine = BlogelEngine(4, precompute_cc=False)
        result = engine.run(CCBlockProgram(), small_undirected)
        assert result.answer == expected

    def test_without_precompute_ships_data(self):
        g = uniform_random_graph(100, 140, directed=False, seed=23)
        with_pre = BlogelEngine(4, precompute_cc=True).run(
            CCBlockProgram(), g)
        without = BlogelEngine(4, precompute_cc=False).run(
            CCBlockProgram(), g)
        assert without.metrics.comm_bytes >= with_pre.metrics.comm_bytes


class TestVCompute:
    def test_sim_matches_oracle(self, small_labeled, path_pattern):
        truth = maximum_simulation(path_pattern, small_labeled)
        result = run_vcompute(SimVertexProgram(), small_labeled,
                              path_pattern, 3)
        assert result.answer == truth

    def test_block_placement_cuts_comm(self, small_labeled, path_pattern):
        """Block-aligned placement ships less than hash placement."""
        from repro.baselines.vertex_centric import PregelEngine
        blogel = run_vcompute(SimVertexProgram(), small_labeled,
                              path_pattern, 4)
        giraph = PregelEngine(4).run(SimVertexProgram(), small_labeled,
                                     query=path_pattern)
        assert blogel.metrics.comm_bytes <= giraph.metrics.comm_bytes
