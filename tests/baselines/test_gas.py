"""GAS (GraphLab stand-in) engine and program tests."""

import pytest

from repro.baselines.gas import GASEngine, run_subiso_on_gas
from repro.baselines.gas_programs import (CCGASProgram, CFGASProgram,
                                          SimGASProgram, SSSPGASProgram)
from repro.pie_programs import CFQuery
from repro.sequential import (canonical_match, connected_components,
                              maximum_simulation, sssp_distances,
                              vf2_all_matches)


class TestGASPrograms:
    def test_sssp(self, small_road):
        truth = sssp_distances(small_road, 0)
        result = GASEngine(4).run(SSSPGASProgram(), small_road, query=0)
        assert result.answer == pytest.approx(truth)

    def test_sssp_single_worker(self, small_road):
        truth = sssp_distances(small_road, 0)
        result = GASEngine(1).run(SSSPGASProgram(), small_road, query=0)
        assert result.answer == pytest.approx(truth)

    def test_cc(self, small_undirected):
        expected = {}
        for v, c in connected_components(small_undirected).items():
            expected.setdefault(c, set()).add(v)
        result = GASEngine(3).run(CCGASProgram(), small_undirected)
        assert result.answer == expected

    def test_sim(self, small_labeled, path_pattern):
        truth = maximum_simulation(path_pattern, small_labeled)
        result = GASEngine(3).run(SimGASProgram(), small_labeled,
                                  query=path_pattern)
        assert result.answer == truth

    def test_subiso_fallback(self, small_labeled, path_pattern):
        truth = {canonical_match(m)
                 for m in vf2_all_matches(path_pattern, small_labeled)}
        result = run_subiso_on_gas(small_labeled, path_pattern, 3)
        assert {canonical_match(m) for m in result.answer} == truth

    def test_cf_terminates_on_epoch_budget(self):
        from repro.graph.generators import bipartite_ratings_graph
        g, _u, _i = bipartite_ratings_graph(20, 10, 120, seed=3)
        query = CFQuery(num_factors=4, max_epochs=4, seed=1)
        result = GASEngine(2).run(CFGASProgram(), g, query=query)
        assert result.metrics.supersteps <= query.max_epochs + 2

    def test_gather_comm_charged(self, small_road):
        result = GASEngine(4).run(SSSPGASProgram(), small_road, query=0)
        assert result.metrics.comm_bytes > 0

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            GASEngine(0)
