"""End-to-end tracing: engine span trees and the service telemetry API.

The acceptance check for the telemetry plane: a traced query on the
process backend yields a span tree with superstep spans and per-worker
child spans (including worker-side compute spans shipped back over the
pipe), all with nonzero durations.
"""

import json

import pytest

from repro.core.engine import EngineConfig, GrapeEngine
from repro.obs import events
from repro.obs.trace import Span
from repro.pie_programs import SSSPProgram
from repro.sequential import sssp_distances
from repro.service import GrapeService


def _run_traced(small_road, backend):
    engine = GrapeEngine(num_workers=4, backend=backend)
    trace = Span("query", {"backend": backend})
    result = engine.run(SSSPProgram(), 0, small_road, trace=trace)
    trace.finish()
    assert result.answer == sssp_distances(small_road, 0)
    assert result.trace is trace
    return trace


class TestEngineTracing:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_span_tree_inline_backends(self, small_road, backend):
        trace = _run_traced(small_road, backend)
        steps = trace.find("superstep")
        assert len(steps) >= 2  # PEval + at least one IncEval
        for step in steps:
            workers = [c for c in step.children if c.name == "worker"]
            assert len(workers) == 4
            assert all(w.duration_s > 0 for w in workers)
        assert trace.find("assemble")
        assert trace.find("session.open")

    def test_process_backend_ships_worker_side_spans(self, small_road):
        trace = _run_traced(small_road, "process")
        # Superstep spans carry one per-worker child per fragment, each
        # with the worker-side compute span measured in the worker
        # process and shipped back by value.
        steps = trace.find("superstep")
        assert len(steps) >= 2
        for step in steps:
            workers = [c for c in step.children if c.name == "worker"]
            assert len(workers) == 4
            for w in workers:
                assert w.duration_s > 0
                compute = [c for c in w.children
                           if c.name == "worker.compute"]
                assert len(compute) == 1
                assert compute[0].duration_s > 0
                assert "phase" in compute[0].tags
        # Worker bring-up is traced too: per-process init spans with
        # fragment install children (shm attach + CSR install, or a
        # pickle fragment.load on the fallback path).
        inits = trace.find("worker.init")
        assert len(inits) == 4
        installs = [c for init in inits for c in init.children]
        assert installs
        assert {c.name for c in installs} <= {
            "shm.attach", "csr.install", "fragment.load", "delta.replay"}
        # The whole tree is JSON-serializable for the slow-query log.
        json.dumps(trace.to_dict())

    def test_untraced_run_has_no_trace(self, small_road):
        engine = GrapeEngine(num_workers=4, backend="serial")
        result = engine.run(SSSPProgram(), 0, small_road)
        assert result.trace is None


class TestServiceTelemetry:
    def test_play_attaches_trace_when_enabled(self, small_road):
        with GrapeService(engine=EngineConfig(num_workers=4),
                          tracing=True) as svc:
            svc.load_graph("roads", small_road)
            ticket = svc.play("sssp", 0, graph="roads")
            trace = ticket.grape_result.trace
            assert trace is not None and trace.finished
            assert trace.name == "query"
            assert trace.find("engine.run")
            assert trace.find("superstep")

    def test_tracing_off_by_default(self, small_road):
        with GrapeService(engine=EngineConfig(num_workers=4)) as svc:
            svc.load_graph("roads", small_road)
            ticket = svc.play("sssp", 0, graph="roads")
            assert ticket.grape_result.trace is None

    def test_slow_query_log_captures_span_tree(self, small_road):
        with GrapeService(engine=EngineConfig(num_workers=4),
                          slow_query_s=0.0) as svc:
            svc.load_graph("roads", small_road)
            svc.play("sssp", 0, graph="roads")
            assert svc.stats.queries_slow == 1
            entries = svc.slow_queries.entries()
            assert len(entries) == 1
            assert entries[0].program == "sssp"
            assert entries[0].trace.find("superstep")

    def test_slow_query_threshold_filters(self, small_road):
        with GrapeService(engine=EngineConfig(num_workers=4),
                          slow_query_s=3600.0) as svc:
            svc.load_graph("roads", small_road)
            svc.play("sssp", 0, graph="roads")
            assert svc.stats.queries_slow == 0
            assert len(svc.slow_queries) == 0
            assert svc.slow_queries.observed == 1

    def test_query_lifecycle_events(self, small_road):
        with events.use(events.EventLog()) as log:
            with GrapeService(engine=EngineConfig(num_workers=4)) as svc:
                svc.load_graph("roads", small_road)
                svc.play("sssp", 0, graph="roads")
            assert log.counts().get("query.admitted") == 1

    def test_expose_metrics_text(self, small_road):
        with GrapeService(engine=EngineConfig(num_workers=4)) as svc:
            svc.load_graph("roads", small_road)
            svc.play("sssp", 0, graph="roads")
            text = svc.expose_metrics()
            assert "repro_queries_served 1" in text.splitlines()
            assert "# TYPE repro_query_wall_s histogram" in text
            assert "repro_query_wall_s_count 1" in text.splitlines()
            assert "repro_graphs_loaded 1" in text.splitlines()

    def test_debug_report_is_json_serializable(self, small_road):
        with events.use(events.EventLog()):
            with GrapeService(engine=EngineConfig(num_workers=4),
                              slow_query_s=0.0) as svc:
                svc.load_graph("roads", small_road)
                svc.play("sssp", 0, graph="roads")
                handle = svc.watch("sssp", 0, graph="roads")
                report = svc.debug_report()
        json.dumps(report)
        assert report["graphs"]["roads"]["watches"] == 1
        # play() plus the watch's initial run both count as served
        assert report["metrics"]["repro_queries_served"] == 2
        assert report["events"]["counts"]["query.admitted"] >= 1
        assert report["slow_queries"]
        assert report["stragglers"]["worker_time_p50_s"] >= 0
        assert handle.straggler_report()["supersteps"] > 0
