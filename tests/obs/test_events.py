"""EventLog: bounded ring, rotation-proof counts, JSONL, scoping."""

import json

import pytest

from repro.obs import events


class TestEventLog:
    def test_emit_and_read_back(self):
        log = events.EventLog()
        log.emit("query.admitted", graph="g", program="sssp")
        log.emit("query.shed", graph="g")
        assert log.total == 2
        assert [e.kind for e in log.events()] == ["query.admitted",
                                                  "query.shed"]
        assert [e.kind for e in log.events("query.shed")] == ["query.shed"]
        assert log.events()[0].fields["program"] == "sssp"

    def test_ring_rotates_but_counts_survive(self):
        log = events.EventLog(capacity=4)
        for i in range(10):
            log.emit("tick", i=i)
        assert len(log) == 4
        assert log.total == 10
        assert log.counts() == {"tick": 10}
        assert [e.fields["i"] for e in log.events()] == [6, 7, 8, 9]

    def test_tail_and_limit(self):
        log = events.EventLog()
        for i in range(5):
            log.emit("tick", i=i)
        assert [e.fields["i"] for e in log.tail(2)] == [3, 4]
        assert [e.fields["i"] for e in log.events(limit=3)] == [2, 3, 4]

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            events.EventLog(capacity=0)

    def test_export_jsonl(self, tmp_path):
        log = events.EventLog()
        log.emit("wal.append", graph="g", seq=1, bytes=64)
        log.emit("odd", payload=object())  # non-JSON value → repr()
        path = tmp_path / "events.jsonl"
        blob = log.export_jsonl(str(path))
        assert path.read_text(encoding="utf-8") == blob
        lines = [json.loads(line) for line in blob.splitlines()]
        assert lines[0]["kind"] == "wal.append"
        assert lines[0]["seq"] == 1
        assert "object" in lines[1]["payload"]

    def test_clear(self):
        log = events.EventLog()
        log.emit("tick")
        log.clear()
        assert len(log) == 0 and log.total == 0 and log.counts() == {}

    def test_kind_field_does_not_collide(self):
        # emit()'s first parameter is positional-only, so events may
        # carry their own "kind" field (it wins in to_dict's flattening
        # only for the event kind key — field is kept under "kind").
        log = events.EventLog()
        event = log.emit("worker.recovered", error="WorkerProcessDied")
        assert event.fields["error"] == "WorkerProcessDied"


class TestModuleLevelLog:
    def test_emit_lands_in_active_log(self):
        with events.use(events.EventLog()) as log:
            events.emit("tick", n=1)
            assert log.total == 1
            assert events.active() is log

    def test_use_restores_previous(self):
        before = events.active()
        with events.use(events.EventLog()):
            assert events.active() is not before
        assert events.active() is before

    def test_install_returns_previous(self):
        fresh = events.EventLog()
        previous = events.install(fresh)
        try:
            assert events.active() is fresh
        finally:
            events.install(previous)
