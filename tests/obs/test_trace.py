"""Span / TraceContext: the in-process trace tree."""

import pickle
import time

from repro.obs.trace import Span, TraceContext, new_span_id


class TestSpan:
    def test_ids_are_unique_and_pid_prefixed(self):
        a, b = new_span_id(), new_span_id()
        assert a != b
        assert "." in a

    def test_finish_measures_elapsed_time(self):
        span = Span("work")
        assert not span.finished
        time.sleep(0.002)
        span.finish()
        assert span.finished
        assert span.duration_s > 0

    def test_finish_is_idempotent(self):
        span = Span("work")
        time.sleep(0.002)
        span.finish()
        first = span.duration_s
        time.sleep(0.002)
        span.finish()
        assert span.duration_s == first

    def test_context_manager_finishes(self):
        with Span("work") as span:
            time.sleep(0.001)
        assert span.finished
        assert span.duration_s > 0

    def test_child_links_parent(self):
        root = Span("root")
        kid = root.child("kid", fid=3)
        assert kid.parent_id == root.span_id
        assert kid.tags == {"fid": 3}
        assert root.children == [kid]

    def test_record_attaches_pre_measured_child(self):
        root = Span("root")
        kid = root.record("worker.compute", 0.125, phase="eval")
        assert kid.finished
        assert kid.duration_s == 0.125
        assert kid.tags["phase"] == "eval"

    def test_walk_and_find(self):
        root = Span("root")
        a = root.child("step")
        a.record("worker", 0.01)
        root.child("step")
        assert len(list(root.walk())) == 4
        assert len(root.find("step")) == 2
        assert len(root.find("worker")) == 1
        assert root.find("missing") == []

    def test_to_dict_round_trips_the_tree(self):
        root = Span("root", {"graph": "g"})
        root.child("step", index=0).finish()
        root.finish()
        d = root.to_dict()
        assert d["name"] == "root"
        assert d["tags"] == {"graph": "g"}
        assert d["children"][0]["name"] == "step"
        assert d["children"][0]["tags"] == {"index": 0}

    def test_format_renders_one_line_per_span(self):
        root = Span("root")
        root.child("step").finish()
        root.finish()
        text = root.format()
        assert len(text.splitlines()) == 2
        assert "root" in text and "step" in text

    def test_finished_span_tree_pickles(self):
        root = Span("root")
        root.record("worker", 0.5, fid=1)
        root.finish()
        clone = pickle.loads(pickle.dumps(root))
        assert clone.name == "root"
        assert clone.children[0].duration_s == 0.5


class TestTraceContext:
    def test_owns_root_and_finishes(self):
        with TraceContext("query", graph="g") as ctx:
            ctx.span("engine.run").finish()
        assert ctx.root.finished
        assert ctx.duration_s == ctx.root.duration_s
        assert ctx.to_dict()["children"][0]["name"] == "engine.run"
