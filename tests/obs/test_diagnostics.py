"""SlowQueryLog and straggler_report."""

import pytest

from repro.obs.diagnostics import SlowQueryLog, straggler_report
from repro.obs.trace import Span
from repro.runtime.metrics import CostModel, RunMetrics

CM = CostModel(sync_latency_s=0.0, seconds_per_byte=0.0)


class TestSlowQueryLog:
    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_s=0.1)
        assert log.offer("sssp", "g", 0, 0.05) is None
        entry = log.offer("sssp", "g", 0, 0.2)
        assert entry is not None
        assert log.observed == 2
        assert len(log) == 1
        assert log.entries() == [entry]

    def test_keeps_span_tree(self):
        root = Span("query")
        root.record("engine.run", 0.3)
        root.finish()
        log = SlowQueryLog(threshold_s=0.0)
        log.offer("sssp", "g", 7, root.duration_s, trace=root)
        dumped = log.to_dicts()[0]
        assert dumped["program"] == "sssp"
        assert dumped["query"] == "7"
        assert dumped["trace"]["children"][0]["name"] == "engine.run"

    def test_bounded_capacity(self):
        log = SlowQueryLog(threshold_s=0.0, capacity=3)
        for i in range(8):
            log.offer("p", "g", i, 1.0)
        assert len(log) == 3
        assert [e.query for e in log.entries()] == [5, 6, 7]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            SlowQueryLog(threshold_s=-1.0)

    def test_clear(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.offer("p", "g", 0, 1.0)
        log.clear()
        assert len(log) == 0


class TestStragglerReport:
    def _metrics_with_skew(self):
        m = RunMetrics(backend="thread")
        # Worker 2 is 4x slower than its peers in both supersteps.
        m.record_superstep([0.01, 0.01, 0.04], 0, 0, CM)
        m.record_superstep([0.01, 0.01, 0.04], 0, 0, CM)
        return m

    def test_identifies_suspect_worker(self):
        report = straggler_report(self._metrics_with_skew())
        assert report["supersteps"] == 2
        assert report["suspect"] == 2
        assert report["slowest_counts"] == {2: 2}
        assert report["max_skew"] == pytest.approx(2.0)
        assert report["straggler_steps"] == 2

    def test_balanced_run_has_no_suspect(self):
        m = RunMetrics(backend="thread")
        m.record_superstep([0.01, 0.01], 0, 0, CM)
        report = straggler_report(m)
        assert report["max_skew"] == pytest.approx(1.0)
        assert report["suspect"] is None
        assert report["straggler_steps"] == 0

    def test_empty_metrics(self):
        report = straggler_report(RunMetrics(backend="serial"))
        assert report["supersteps"] == 0
        assert report["max_skew"] == 1.0
        assert report["suspect"] is None
