"""MetricsRegistry: counters, gauges, histograms, exposition formats."""

import dataclasses
import json
import pickle

import pytest

from repro.obs.registry import (TIME_BUCKETS, Counter, Gauge, Histogram,
                                MetricsRegistry)
from repro.runtime.metrics import ServiceMetrics


class TestCounter:
    def test_inc_and_expose(self):
        c = Counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.expose() == ["hits 5"]

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("hits").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_observe_buckets_and_inf(self):
        h = Histogram((0.1, 1.0), name="lat")
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(5.55)

    def test_expose_is_cumulative(self):
        h = Histogram((0.1, 1.0), name="lat")
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        lines = h.expose()
        assert 'lat_bucket{le="0.1"} 1' in lines
        assert 'lat_bucket{le="1"} 2' in lines
        assert 'lat_bucket{le="+Inf"} 3' in lines
        assert "lat_count 3" in lines

    def test_merge_same_bounds_is_binwise(self):
        a, b = Histogram((0.1, 1.0)), Histogram((0.1, 1.0))
        a.observe(0.05)
        b.observe(0.5)
        a.merge(b)
        assert a.counts == [1, 1, 0]
        assert a.count == 2

    def test_merge_mismatched_bounds_keeps_totals(self):
        a, b = Histogram((0.1,)), Histogram((0.5,))
        b.observe(0.2)
        b.observe(0.7)
        a.merge(b)
        assert a.count == 2
        assert a.sum == pytest.approx(0.9)

    def test_quantile_upper_bounds(self):
        h = Histogram((0.1, 1.0, 10.0))
        for _ in range(9):
            h.observe(0.05)
        h.observe(5.0)
        assert h.quantile(0.5) == 0.1
        assert h.quantile(1.0) == 10.0
        assert Histogram((1.0,)).quantile(0.5) == 0.0

    def test_copy_is_independent(self):
        h = Histogram((1.0,))
        h.observe(0.5)
        dup = h.copy()
        dup.observe(0.5)
        assert h.count == 1 and dup.count == 2

    def test_picklable(self):
        h = Histogram(TIME_BUCKETS, name="lat")
        h.observe(0.01)
        clone = pickle.loads(pickle.dumps(h))
        assert clone.count == 1 and clone.bounds == h.bounds


class TestMetricsRegistry:
    def test_get_or_create_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.histogram("a")

    def test_expose_text_has_type_lines(self):
        reg = MetricsRegistry()
        reg.counter("hits", help="cache hits").inc(3)
        reg.gauge("depth").set(2)
        text = reg.expose_text()
        assert "# HELP hits cache hits" in text
        assert "# TYPE hits counter" in text
        assert "# TYPE depth gauge" in text
        assert "hits 3" in text.splitlines()
        assert text.endswith("\n")

    def test_json_dump_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        data = json.loads(reg.dump_json())
        assert data["hits"] == 3
        assert data["lat"]["count"] == 1


def _parse_exposition(text):
    """name → value for every non-comment sample line."""
    out = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        out[name] = float(value)
    return out


class TestFromObjectRoundTrip:
    def test_every_service_metrics_field_survives_exposition(self):
        """The acceptance check: expose_text() round-trips ALL numeric
        ServiceMetrics fields — a new counter cannot be silently lost."""
        stats = ServiceMetrics()
        # Give every plain numeric field a distinct nonzero value.
        expected = {}
        for i, f in enumerate(dataclasses.fields(stats)):
            value = getattr(stats, f.name)
            if isinstance(value, Histogram):
                value.observe(0.01 * (i + 1))
            elif isinstance(value, bool):
                pass
            elif isinstance(value, int):
                setattr(stats, f.name, i + 1)
                expected["repro_" + f.name] = float(i + 1)
            elif isinstance(value, float):
                setattr(stats, f.name, float(i) + 0.5)
                expected["repro_" + f.name] = float(i) + 0.5
        assert len(expected) > 30  # the reflection really saw the fields

        reg = MetricsRegistry.from_object(
            stats, gauge_fields=("shm_segments_active", "shm_bytes_mapped",
                                 "skew_ratio_max"))
        samples = _parse_exposition(reg.expose_text())
        for name, value in expected.items():
            assert samples[name] == value, name
        # Histogram fields expand into _count/_sum series.
        assert samples["repro_query_wall_s_count"] == 1
        assert samples["repro_worker_time_hist_count"] == 1

    def test_gauge_fields_typed_as_gauges(self):
        reg = MetricsRegistry.from_object(
            ServiceMetrics(), gauge_fields=("shm_segments_active",))
        assert isinstance(reg.get("repro_shm_segments_active"), Gauge)
        assert isinstance(reg.get("repro_queries_served"), Counter)
