"""Simulation Theorem (Theorem 2): BSP, MapReduce and CREW PRAM run on
GRAPE with the promised superstep bounds."""

from typing import Any, Dict, List

import pytest

from repro.core.bsp_sim import BSPProgram, run_bsp_on_grape
from repro.core.mapreduce_sim import MapReduceJob, run_mapreduce_on_grape
from repro.core.pram_sim import (CREWViolation, PRAMProgram,
                                 run_pram_on_grape)


# ---------------------------------------------------------------------
# BSP
# ---------------------------------------------------------------------
class RingMax(BSPProgram):
    """Pass the running max around a ring for n steps."""

    def init(self, worker_id, num_workers, data):
        return {"best": data, "n": num_workers}

    def superstep(self, worker_id, step, state, incoming):
        for value in incoming:
            state["best"] = max(state["best"], value)
        if step < state["n"]:
            return {(worker_id + 1) % state["n"]: [state["best"]]}
        return {}

    def output(self, worker_id, state):
        return state["best"]


class Silent(BSPProgram):
    """Sends nothing: must terminate after one superstep."""

    def init(self, worker_id, num_workers, data):
        return data

    def superstep(self, worker_id, step, state, incoming):
        return {}

    def output(self, worker_id, state):
        return state


class TestBSPOnGrape:
    def test_ring_max(self):
        result = run_bsp_on_grape(RingMax(), [3, 17, 5, 9])
        assert result.answer == [17, 17, 17, 17]

    def test_superstep_count_matches_bsp(self):
        """n ring steps -> n + 1 GRAPE supersteps (the +1 is the final
        quiescent check round where messages drain)."""
        result = run_bsp_on_grape(RingMax(), [1, 2, 3, 4])
        assert result.metrics.supersteps == 5

    def test_silent_program_one_superstep(self):
        result = run_bsp_on_grape(Silent(), ["a", "b"])
        assert result.answer == ["a", "b"]
        assert result.metrics.supersteps == 1

    def test_messages_charged(self):
        result = run_bsp_on_grape(RingMax(), [1, 2, 3])
        assert result.metrics.comm_bytes > 0


# ---------------------------------------------------------------------
# MapReduce
# ---------------------------------------------------------------------
class WordCount(MapReduceJob):
    num_rounds = 1

    def map_fn(self, round_index, key, value):
        for word in value.split():
            yield (word, 1)

    def reduce_fn(self, round_index, key, values):
        yield (key, sum(values))


class TwoRoundTopCount(MapReduceJob):
    """Round 1: word count; round 2: bucket counts by parity."""

    num_rounds = 2

    def map_fn(self, round_index, key, value):
        if round_index == 1:
            for word in value.split():
                yield (word, 1)
        else:
            yield (value % 2, value)

    def reduce_fn(self, round_index, key, values):
        if round_index == 1:
            yield (key, sum(values))
        else:
            yield (key, sorted(values))


class TestMapReduceOnGrape:
    def test_word_count(self):
        slices = [[(0, "a b a")], [(1, "b c")], [(2, "a c c")]]
        result = run_mapreduce_on_grape(WordCount(), slices)
        assert sorted(result.answer) == [("a", 3), ("b", 2), ("c", 3)]

    def test_two_supersteps_per_round(self):
        slices = [[(0, "x y")], [(1, "y z")]]
        result = run_mapreduce_on_grape(WordCount(), slices)
        assert result.metrics.supersteps <= 2 * WordCount.num_rounds

    def test_two_round_job(self):
        slices = [[(0, "a a b")], [(1, "b c c a")]]
        result = run_mapreduce_on_grape(TwoRoundTopCount(), slices)
        by_parity = dict(result.answer)
        # Counts: a=3, b=2, c=2 -> odd: [3], even: [2, 2].
        assert by_parity[1] == [3]
        assert by_parity[0] == [2, 2]

    def test_two_round_superstep_bound(self):
        slices = [[(0, "a b")], [(1, "c d")]]
        result = run_mapreduce_on_grape(TwoRoundTopCount(), slices)
        # <= 2 supersteps per round plus the map-wake hop.
        assert result.metrics.supersteps <= 2 * 2 + 1

    def test_empty_input(self):
        result = run_mapreduce_on_grape(WordCount(), [[], []])
        assert result.answer == []


# ---------------------------------------------------------------------
# PRAM
# ---------------------------------------------------------------------
class TreeMax(PRAMProgram):
    """Binary-tree max reduction: cell 0 ends with the global max."""

    def __init__(self, values):
        self.values = list(values)
        self.n = len(values)
        self.num_processors = max(1, self.n // 2)
        self.num_steps = max(1, (self.n - 1).bit_length())

    def initial_memory(self):
        return dict(enumerate(self.values))

    def _pair(self, pid, t):
        stride = 2 ** t
        left = pid * 2 * stride
        right = left + stride
        if left % (2 * stride) == 0 and right < self.n:
            return left, right
        return None

    def plan_reads(self, pid, t):
        pair = self._pair(pid, t)
        return list(pair) if pair else []

    def step(self, pid, t, values, local):
        pair = self._pair(pid, t)
        if pair and pair[0] in values and pair[1] in values:
            return {pair[0]: max(values[pair[0]], values[pair[1]])}
        return {}


class ConflictingWrites(PRAMProgram):
    """Every processor writes cell 0: an exclusive-write violation."""

    num_processors = 2
    num_steps = 1

    def initial_memory(self):
        return {0: 0}

    def plan_reads(self, pid, t):
        return [0]

    def step(self, pid, t, values, local):
        return {0: pid + 1}


class TestPRAMOnGrape:
    @pytest.mark.parametrize("values", [
        [5, 1, 9, 3, 7, 2, 8, 6],
        [4, 2],
        [10, 20, 30, 40],
    ])
    def test_tree_max(self, values):
        result = run_pram_on_grape(TreeMax(values), num_workers=3)
        assert result.answer[0] == max(values)

    def test_superstep_bound_linear_in_t(self):
        program = TreeMax([5, 1, 9, 3, 7, 2, 8, 6])
        result = run_pram_on_grape(program, num_workers=4)
        # Two supersteps per PRAM step plus setup/drain.
        assert result.metrics.supersteps <= 2 * program.num_steps + 3

    def test_crew_violation_detected(self):
        with pytest.raises(CREWViolation):
            run_pram_on_grape(ConflictingWrites(), num_workers=2)

    def test_single_worker(self):
        result = run_pram_on_grape(TreeMax([3, 1, 4, 1]), num_workers=1)
        assert result.answer[0] == 4

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            run_pram_on_grape(TreeMax([1, 2]), num_workers=0)
