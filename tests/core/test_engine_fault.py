"""Fault tolerance: injected worker failures recover via checkpoints and
results stay correct (paper Section 6)."""

import pytest

from repro.core.engine import GrapeEngine
from repro.graph.generators import grid_road_graph, uniform_random_graph
from repro.pie_programs import CCProgram, SSSPProgram
from repro.runtime.fault import FailureInjector, WorkerFailure
from repro.sequential import connected_components, sssp_distances


class TestFaultRecovery:
    def test_sssp_survives_peval_failure(self, small_road):
        injector = FailureInjector(planned=[(1, 0)])
        engine = GrapeEngine(4, failure_injector=injector)
        result = engine.run(SSSPProgram(), query=0, graph=small_road)
        assert result.answer == pytest.approx(sssp_distances(small_road, 0))
        assert injector.fired == [(1, 0)]
        assert result.recoveries >= 1

    def test_sssp_survives_inceval_failure(self, small_road):
        injector = FailureInjector(planned=[(2, 1)])
        engine = GrapeEngine(4, failure_injector=injector)
        result = engine.run(SSSPProgram(), query=0, graph=small_road)
        assert result.answer == pytest.approx(sssp_distances(small_road, 0))
        assert result.recoveries >= 1

    def test_multiple_failures(self, small_road):
        injector = FailureInjector(planned=[(0, 0), (1, 1), (2, 2)])
        engine = GrapeEngine(4, failure_injector=injector)
        result = engine.run(SSSPProgram(), query=0, graph=small_road)
        assert result.answer == pytest.approx(sssp_distances(small_road, 0))
        assert len(injector.fired) == 3

    def test_cc_survives_random_failures(self):
        g = uniform_random_graph(80, 100, directed=False, seed=17)
        injector = FailureInjector(rate=0.05, seed=4, max_failures=5)
        engine = GrapeEngine(4, failure_injector=injector)
        result = engine.run(CCProgram(), query=None, graph=g)
        expected = {}
        for v, c in connected_components(g).items():
            expected.setdefault(c, set()).add(v)
        assert result.answer == expected

    def test_failed_supersteps_still_accounted(self, small_road):
        clean = GrapeEngine(4).run(SSSPProgram(), query=0,
                                   graph=small_road)
        injector = FailureInjector(planned=[(1, 0)])
        faulty = GrapeEngine(4, failure_injector=injector).run(
            SSSPProgram(), query=0, graph=small_road)
        # The replayed superstep is charged too: at least one extra.
        assert faulty.supersteps > clean.supersteps

    def test_no_injector_no_recoveries(self, small_road):
        result = GrapeEngine(4).run(SSSPProgram(), query=0,
                                    graph=small_road)
        assert result.recoveries == 0


class TestFaultAfterDeletions:
    """Recovery when the failed superstep follows a deletion-bearing
    GraphDelta (PR-4 deletions previously had no fault-path coverage):
    the checkpointed states are built on the *mutated* fragmentation, so
    restore + replay must converge to the post-deletion answers."""

    def _mutate(self, g, engine):
        from repro.core.updates import apply_delta
        from repro.graph.delta import GraphDelta
        frag = engine.make_fragmentation(g)
        edges = list(g.edges())
        (du, dv, _w), (eu, ev, _w2) = edges[0], edges[len(edges) // 2]
        iu, iv, iw = edges[3]
        delta = (GraphDelta().delete(du, dv).delete(eu, ev)
                 .set_weight(iu, iv, iw * 5.0)
                 .insert(0, 4242, 0.7))
        touched = apply_delta(frag, delta)
        assert any(d.has_deletions for d in touched.values())
        return frag

    def test_sssp_recovers_on_deletion_mutated_fragmentation(self,
                                                             small_road):
        clean_engine = GrapeEngine(4)
        frag = self._mutate(small_road, clean_engine)
        clean = clean_engine.run(SSSPProgram(), query=0, fragmentation=frag)

        injector = FailureInjector(planned=[(1, 0), (2, 1)])
        engine = GrapeEngine(4, failure_injector=injector)
        result = engine.run(SSSPProgram(), query=0, fragmentation=frag)
        assert result.recoveries >= 1
        assert len(injector.fired) == 2
        # oracle on the mutated base graph, which apply_delta kept in step
        assert result.answer == pytest.approx(sssp_distances(small_road, 0))
        assert result.answer == pytest.approx(clean.answer)

    def test_cc_recovers_after_deletions_undirected(self):
        g = uniform_random_graph(70, 90, directed=False, seed=23)
        clean_engine = GrapeEngine(4)
        frag = self._mutate(g, clean_engine)

        injector = FailureInjector(planned=[(0, 1)])
        engine = GrapeEngine(4, failure_injector=injector)
        result = engine.run(CCProgram(), query=None, fragmentation=frag)
        assert result.recoveries >= 1
        expected = {}
        for v, c in connected_components(g).items():
            expected.setdefault(c, set()).add(v)
        assert result.answer == expected
