"""Fault tolerance: injected worker failures recover via checkpoints and
results stay correct (paper Section 6)."""

import pytest

from repro.core.engine import GrapeEngine
from repro.graph.generators import grid_road_graph, uniform_random_graph
from repro.pie_programs import CCProgram, SSSPProgram
from repro.runtime.fault import FailureInjector, WorkerFailure
from repro.sequential import connected_components, sssp_distances


class TestFaultRecovery:
    def test_sssp_survives_peval_failure(self, small_road):
        injector = FailureInjector(planned=[(1, 0)])
        engine = GrapeEngine(4, failure_injector=injector)
        result = engine.run(SSSPProgram(), query=0, graph=small_road)
        assert result.answer == pytest.approx(sssp_distances(small_road, 0))
        assert injector.fired == [(1, 0)]
        assert result.recoveries >= 1

    def test_sssp_survives_inceval_failure(self, small_road):
        injector = FailureInjector(planned=[(2, 1)])
        engine = GrapeEngine(4, failure_injector=injector)
        result = engine.run(SSSPProgram(), query=0, graph=small_road)
        assert result.answer == pytest.approx(sssp_distances(small_road, 0))
        assert result.recoveries >= 1

    def test_multiple_failures(self, small_road):
        injector = FailureInjector(planned=[(0, 0), (1, 1), (2, 2)])
        engine = GrapeEngine(4, failure_injector=injector)
        result = engine.run(SSSPProgram(), query=0, graph=small_road)
        assert result.answer == pytest.approx(sssp_distances(small_road, 0))
        assert len(injector.fired) == 3

    def test_cc_survives_random_failures(self):
        g = uniform_random_graph(80, 100, directed=False, seed=17)
        injector = FailureInjector(rate=0.05, seed=4, max_failures=5)
        engine = GrapeEngine(4, failure_injector=injector)
        result = engine.run(CCProgram(), query=None, graph=g)
        expected = {}
        for v, c in connected_components(g).items():
            expected.setdefault(c, set()).add(v)
        assert result.answer == expected

    def test_failed_supersteps_still_accounted(self, small_road):
        clean = GrapeEngine(4).run(SSSPProgram(), query=0,
                                   graph=small_road)
        injector = FailureInjector(planned=[(1, 0)])
        faulty = GrapeEngine(4, failure_injector=injector).run(
            SSSPProgram(), query=0, graph=small_road)
        # The replayed superstep is charged too: at least one extra.
        assert faulty.supersteps > clean.supersteps

    def test_no_injector_no_recoveries(self, small_road):
        result = GrapeEngine(4).run(SSSPProgram(), query=0,
                                    graph=small_road)
        assert result.recoveries == 0
