"""The PIE contract's default hooks and error behaviour."""

import pytest

from repro.core.engine import GrapeEngine
from repro.core.pie import PIEProgram
from repro.graph.builders import path_graph
from repro.partition.base import build_edge_cut_fragments


class MinimalProgram(PIEProgram):
    """Smallest legal PIE program: does nothing, reports nothing."""

    name = "Minimal"

    def init_state(self, query, fragment):
        return {}

    def peval(self, query, fragment, state):
        state["ran"] = True

    def inceval(self, query, fragment, state, message):
        state["inc"] = True

    def read_update_params(self, query, fragment, state):
        return {}

    def assemble(self, query, fragmentation, states):
        return [state.get("ran", False) for state in states.values()]


@pytest.fixture
def fragments():
    g = path_graph(6, directed=True)
    return build_edge_cut_fragments(g, {v: v % 2 for v in g.nodes()}, 2)


class TestDefaults:
    def test_minimal_program_runs(self, fragments):
        result = GrapeEngine(2).run(MinimalProgram(), None,
                                    fragmentation=fragments)
        assert result.answer == [True, True]
        assert result.supersteps == 1  # nothing to exchange

    def test_default_preprocess_none(self, fragments):
        assert MinimalProgram().preprocess(None, fragments) is None

    def test_default_apply_preprocess_raises(self, fragments):
        program = MinimalProgram()
        with pytest.raises(NotImplementedError, match="apply_preprocess"):
            program.apply_preprocess(None, fragments[0], {}, "payload")

    def test_default_drain_messages_empty(self, fragments):
        assert MinimalProgram().drain_messages(None, fragments[0], {}) \
            == ({}, [])

    def test_default_deliver_designated_raises(self, fragments):
        with pytest.raises(NotImplementedError, match="deliver_designated"):
            MinimalProgram().deliver_designated(None, fragments[0], {},
                                                ["x"])

    def test_default_deliver_keyvalue_raises(self, fragments):
        with pytest.raises(NotImplementedError, match="deliver_keyvalue"):
            MinimalProgram().deliver_keyvalue(None, fragments[0], {},
                                              {"k": [1]})

    def test_default_apply_message_delegates_to_inceval(self, fragments):
        program = MinimalProgram()
        state = {}
        program.apply_message(None, fragments[0], state, {})
        assert state.get("inc") is True

    def test_default_route_to_holders(self):
        assert MinimalProgram.route_to == "holders"

    def test_repr(self):
        assert "Minimal" in repr(MinimalProgram())


class BadDesignatedProgram(MinimalProgram):
    """Emits a designated message to an out-of-range worker."""

    def drain_messages(self, query, fragment, state):
        if not state.get("sent"):
            state["sent"] = True
            return {99: ["boom"]}, []
        return {}, []


class TestChannelValidation:
    def test_out_of_range_destination_rejected(self, fragments):
        with pytest.raises(ValueError, match="out of range"):
            GrapeEngine(2).run(BadDesignatedProgram(), None,
                               fragmentation=fragments)
