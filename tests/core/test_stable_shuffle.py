"""The engine's key-value shuffle must route by the stable hash."""

from types import SimpleNamespace

from repro.core.engine import GrapeEngine
from repro.runtime.executors import StepOutcome
from repro.runtime.message import stable_hash


class TestShuffleRouting:
    def test_keyvalue_destinations_use_stable_hash(self):
        m = 4
        pairs = [("alpha", 1), ("beta", 2), ("alpha", 3), (("t", 9), 4)]
        engine = GrapeEngine(m)
        frags = [SimpleNamespace(fid=i) for i in range(m)]
        outcomes = {i: StepOutcome(keyvalue=list(pairs) if i == 0 else [])
                    for i in range(m)}

        designated, keyvalue, _bytes, _msgs = engine._route_channels(
            frags, outcomes)

        assert not designated
        routed = {key: dest for dest, groups in keyvalue.items()
                  for key in groups}
        assert routed == {"alpha": stable_hash("alpha") % m,
                          "beta": stable_hash("beta") % m,
                          ("t", 9): stable_hash(("t", 9)) % m}
        # Values with the same key are grouped at one destination.
        dest = routed["alpha"]
        assert keyvalue[dest]["alpha"] == [1, 3]
