"""Aggregator laws (the aggregateMsg conflict resolvers)."""

import pytest

from repro.core.aggregators import (ConflictError,
                                    DefaultExceptionAggregator,
                                    LatestTimestampAggregator, MaxAggregator,
                                    MinAggregator)


class TestMinAggregator:
    agg = MinAggregator()

    def test_combine(self):
        assert self.agg.combine(3, 5) == 3
        assert self.agg.combine(5, 3) == 3

    def test_progress_strict(self):
        assert self.agg.is_progress(5, 3)
        assert not self.agg.is_progress(3, 5)
        assert not self.agg.is_progress(3, 3)

    def test_booleans_false_precedes_true(self):
        assert self.agg.combine(True, False) is False
        assert self.agg.is_progress(True, False)

    def test_fold(self):
        assert self.agg.fold([4, 2, 9]) == 2

    def test_fold_empty_raises(self):
        with pytest.raises(ValueError):
            self.agg.fold([])


class TestMaxAggregator:
    agg = MaxAggregator()

    def test_combine(self):
        assert self.agg.combine(3, 5) == 5

    def test_progress(self):
        assert self.agg.is_progress(3, 5)
        assert not self.agg.is_progress(5, 5)


class TestLatestTimestampAggregator:
    agg = LatestTimestampAggregator()

    def test_newer_wins(self):
        assert self.agg.combine((1, "old"), (2, "new")) == (2, "new")

    def test_tie_keeps_first(self):
        assert self.agg.combine((2, "a"), (2, "b")) == (2, "a")

    def test_progress_requires_newer(self):
        assert self.agg.is_progress((1, "x"), (2, "y"))
        assert not self.agg.is_progress((2, "x"), (2, "y"))
        assert not self.agg.is_progress((2, "x"), (1, "y"))


class TestDefaultExceptionAggregator:
    agg = DefaultExceptionAggregator()

    def test_identical_values_pass(self):
        assert self.agg.combine(7, 7) == 7

    def test_conflict_raises(self):
        with pytest.raises(ConflictError):
            self.agg.combine(7, 8)

    def test_progress_is_change(self):
        assert self.agg.is_progress(1, 2)
        assert not self.agg.is_progress(1, 1)
