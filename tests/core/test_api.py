"""The PIE program registry (GRAPE API library)."""

import pytest

from repro.core.api import PIERegistry, default_registry
from repro.pie_programs import SimProgram, SSSPProgram


class TestPIERegistry:
    def test_register_and_create(self):
        reg = PIERegistry()
        reg.register("sssp", SSSPProgram)
        program = reg.create("SSSP")
        assert isinstance(program, SSSPProgram)

    def test_create_with_kwargs(self):
        reg = PIERegistry()
        reg.register("sim", SimProgram)
        sentinel = object()
        program = reg.create("sim", candidate_index=sentinel)
        assert program.candidate_index is sentinel

    def test_duplicate_rejected(self):
        reg = PIERegistry()
        reg.register("sssp", SSSPProgram)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("SSSP", SSSPProgram)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="no PIE program"):
            PIERegistry().create("nothing")

    def test_contains_and_iter(self):
        reg = PIERegistry()
        reg.register("sssp", SSSPProgram)
        assert "SSSP" in reg
        assert list(reg) == ["sssp"]
        assert reg.names() == ["sssp"]


class TestCaseHandling:
    def test_display_name_preserved(self):
        reg = PIERegistry()
        reg.register("PageRank-Fast", SSSPProgram)
        assert reg.names() == ["PageRank-Fast"]
        assert list(reg) == ["PageRank-Fast"]
        # Lookup stays case-insensitive.
        assert "pagerank-fast" in reg
        assert isinstance(reg.create("PAGERANK-FAST"), SSSPProgram)

    def test_error_messages_show_display_names(self):
        reg = PIERegistry()
        reg.register("MyProg", SSSPProgram)
        with pytest.raises(ValueError, match="MyProg"):
            reg.create("other")
        # The lowercase canonical key must not leak.
        with pytest.raises(ValueError) as exc:
            reg.create("other")
        assert "myprog" not in str(exc.value)

    def test_duplicate_mentions_replace(self):
        reg = PIERegistry()
        reg.register("sssp", SSSPProgram)
        with pytest.raises(ValueError, match="replace=True"):
            reg.register("SSSP", SimProgram)

    def test_invalid_names_rejected(self):
        reg = PIERegistry()
        with pytest.raises(TypeError, match="non-empty string"):
            reg.register("", SSSPProgram)
        with pytest.raises(TypeError, match="non-empty string"):
            reg.register(None, SSSPProgram)


class TestRegistryMutation:
    def test_replace_overrides(self):
        reg = PIERegistry()
        reg.register("sssp", SSSPProgram)
        reg.register("SSSP", SimProgram, replace=True)
        assert isinstance(reg.create("sssp"), SimProgram)
        assert reg.names() == ["SSSP"]

    def test_unregister(self):
        reg = PIERegistry()
        reg.register("sssp", SSSPProgram)
        assert reg.unregister("SSSP") is SSSPProgram
        assert "sssp" not in reg
        with pytest.raises(ValueError, match="no PIE program"):
            reg.unregister("sssp")

    def test_copy_is_independent(self):
        reg = PIERegistry()
        reg.register("sssp", SSSPProgram)
        clone = reg.copy()
        clone.register("sim", SimProgram)
        clone.unregister("sssp")
        assert reg.names() == ["sssp"]
        assert clone.names() == ["sim"]


class TestProgramDecorator:
    def test_named_decorator(self):
        reg = PIERegistry()

        @reg.program("short-path")
        class Prog(SSSPProgram):
            pass

        assert "short-path" in reg
        assert isinstance(reg.create("Short-Path"), Prog)

    def test_bare_decorator_uses_program_name(self):
        reg = PIERegistry()

        @reg.program
        class Prog(SSSPProgram):
            name = "MySSSP"

        assert reg.names() == ["MySSSP"]
        assert isinstance(reg.create("myssSP"), Prog)

    def test_decorator_returns_factory_unchanged(self):
        reg = PIERegistry()

        @reg.program("x")
        class Prog(SSSPProgram):
            pass

        assert isinstance(Prog(), Prog)

    def test_decorator_replace(self):
        reg = PIERegistry()
        reg.register("x", SSSPProgram)

        @reg.program("x", replace=True)
        class Prog(SSSPProgram):
            pass

        assert isinstance(reg.create("x"), Prog)


class TestDefaultRegistry:
    def test_all_five_classes(self):
        reg = default_registry()
        assert set(reg.names()) == {"sssp", "sim", "subiso", "cc", "cf",
                                    "bfs", "pagerank"}

    def test_singleton(self):
        assert default_registry() is default_registry()

    def test_creates_fresh_instances(self):
        reg = default_registry()
        assert reg.create("sssp") is not reg.create("sssp")
