"""The PIE program registry (GRAPE API library)."""

import pytest

from repro.core.api import PIERegistry, default_registry
from repro.pie_programs import SimProgram, SSSPProgram


class TestPIERegistry:
    def test_register_and_create(self):
        reg = PIERegistry()
        reg.register("sssp", SSSPProgram)
        program = reg.create("SSSP")
        assert isinstance(program, SSSPProgram)

    def test_create_with_kwargs(self):
        reg = PIERegistry()
        reg.register("sim", SimProgram)
        sentinel = object()
        program = reg.create("sim", candidate_index=sentinel)
        assert program.candidate_index is sentinel

    def test_duplicate_rejected(self):
        reg = PIERegistry()
        reg.register("sssp", SSSPProgram)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("SSSP", SSSPProgram)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="no PIE program"):
            PIERegistry().create("nothing")

    def test_contains_and_iter(self):
        reg = PIERegistry()
        reg.register("sssp", SSSPProgram)
        assert "SSSP" in reg
        assert list(reg) == ["sssp"]
        assert reg.names() == ["sssp"]


class TestDefaultRegistry:
    def test_all_five_classes(self):
        reg = default_registry()
        assert set(reg.names()) == {"sssp", "sim", "subiso", "cc", "cf",
                                    "bfs", "pagerank"}

    def test_singleton(self):
        assert default_registry() is default_registry()

    def test_creates_fresh_instances(self):
        reg = default_registry()
        assert reg.create("sssp") is not reg.create("sssp")
