"""Asynchronous GRAPE: barrier-free evaluation reaches the same fixpoint
(the paper's announced future-work extension)."""

import pytest

from repro.core.async_engine import AsyncGrapeEngine
from repro.core.engine import GrapeEngine
from repro.graph.generators import (grid_road_graph, labeled_graph,
                                    uniform_random_graph)
from repro.partition.strategies import MetisLikePartition
from repro.pie_programs import CCProgram, SimProgram, SSSPProgram, \
    SubIsoProgram
from repro.sequential import (canonical_match, connected_components,
                              maximum_simulation, sssp_distances,
                              vf2_all_matches)


class TestAsyncConfig:
    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            AsyncGrapeEngine(0)

    def test_virtual_less_than_physical(self):
        with pytest.raises(ValueError):
            AsyncGrapeEngine(4, num_fragments=2)

    def test_requires_graph_or_fragmentation(self):
        with pytest.raises(ValueError):
            AsyncGrapeEngine(2).run(SSSPProgram(), query=0)

    def test_activation_budget(self, small_road):
        engine = AsyncGrapeEngine(4, max_activations=3)
        with pytest.raises(RuntimeError, match="no fixpoint"):
            engine.run(SSSPProgram(), query=0, graph=small_road)


class TestAsyncEqualsSync:
    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    def test_sssp(self, small_road, n):
        truth = sssp_distances(small_road, 0)
        result = AsyncGrapeEngine(n).run(SSSPProgram(), query=0,
                                         graph=small_road)
        assert result.answer == pytest.approx(truth)

    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_cc(self, small_undirected, n):
        expected = {}
        for v, c in connected_components(small_undirected).items():
            expected.setdefault(c, set()).add(v)
        result = AsyncGrapeEngine(n).run(CCProgram(), query=None,
                                         graph=small_undirected)
        assert result.answer == expected

    def test_sim(self, small_labeled, path_pattern):
        truth = maximum_simulation(path_pattern, small_labeled)
        result = AsyncGrapeEngine(4).run(SimProgram(), query=path_pattern,
                                         graph=small_labeled)
        assert result.answer == truth

    def test_subiso_via_preprocess(self, small_labeled, path_pattern):
        truth = {canonical_match(m)
                 for m in vf2_all_matches(path_pattern, small_labeled)}
        result = AsyncGrapeEngine(4).run(SubIsoProgram(),
                                         query=path_pattern,
                                         graph=small_labeled)
        assert {canonical_match(m) for m in result.answer} == truth

    def test_same_answer_as_sync_engine(self, small_road):
        frag_engine = GrapeEngine(4, partition=MetisLikePartition())
        fragmentation = frag_engine.make_fragmentation(small_road)
        sync = frag_engine.run(SSSPProgram(), query=0,
                               fragmentation=fragmentation)
        async_result = AsyncGrapeEngine(4).run(
            SSSPProgram(), query=0, fragmentation=fragmentation)
        assert async_result.answer == pytest.approx(sync.answer)

    def test_monotonic_check(self, small_road):
        engine = AsyncGrapeEngine(4, check_monotonic=True)
        result = engine.run(SSSPProgram(), query=0, graph=small_road)
        assert result.answer == pytest.approx(
            sssp_distances(small_road, 0))


class TestAsyncBehaviour:
    def test_activations_counted(self, small_road):
        result = AsyncGrapeEngine(4).run(SSSPProgram(), query=0,
                                         graph=small_road)
        # At least one PEval per fragment.
        assert result.activations >= 4

    def test_communication_accounted(self, small_road):
        result = AsyncGrapeEngine(4).run(SSSPProgram(), query=0,
                                         graph=small_road)
        assert result.metrics.comm_bytes > 0
        assert result.metrics.parallel_time_s > 0

    def test_single_fragment_no_messages(self, small_road):
        result = AsyncGrapeEngine(1).run(SSSPProgram(), query=0,
                                         graph=small_road)
        assert result.activations == 1
        assert result.metrics.comm_bytes == 0

    def test_activations_at_most_sync_work(self, small_undirected):
        """Async activates only fragments with real messages; the total
        is bounded by the synchronous supersteps x fragments."""
        sync = GrapeEngine(4).run(CCProgram(), query=None,
                                  graph=small_undirected)
        async_result = AsyncGrapeEngine(4).run(CCProgram(), query=None,
                                               graph=small_undirected)
        assert async_result.activations <= sync.supersteps * 4
