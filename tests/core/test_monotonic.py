"""Monotonic-condition runtime checking (Assurance Theorem §4.1)."""

import pytest

from repro.core.aggregators import MinAggregator
from repro.core.monotonic import MonotonicityChecker, MonotonicityViolation


class TestMonotonicityChecker:
    def test_decreasing_sequence_passes(self):
        checker = MonotonicityChecker(MinAggregator())
        for value in (5, 3, 1):
            checker.observe(("v", "dist"), value)
        assert checker.updates_checked == 3

    def test_repeat_value_passes(self):
        checker = MonotonicityChecker(MinAggregator())
        checker.observe(("v", "dist"), 3)
        checker.observe(("v", "dist"), 3)

    def test_regression_raises(self):
        checker = MonotonicityChecker(MinAggregator())
        checker.observe(("v", "dist"), 3)
        with pytest.raises(MonotonicityViolation):
            checker.observe(("v", "dist"), 7)

    def test_keys_independent(self):
        checker = MonotonicityChecker(MinAggregator())
        checker.observe(("a", "dist"), 3)
        checker.observe(("b", "dist"), 9)  # different key: fine

    def test_disabled_checker_ignores_everything(self):
        checker = MonotonicityChecker(MinAggregator(), enabled=False)
        checker.observe(("v", "dist"), 3)
        checker.observe(("v", "dist"), 100)
        assert checker.updates_checked == 0
