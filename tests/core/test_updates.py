"""Continuous queries under general updates (the transaction-controller
extension of paper Section 6): monotone insertions maintained
incrementally, deletions and weight increases served by the bounded
affected-region path, with the in-session recompute fallback reserved
for programs without the maintenance hooks."""

import pytest

from repro.core.engine import GrapeEngine
from repro.core.updates import (ContinuousQuerySession,
                                NonMonotoneUpdateError, apply_delta,
                                apply_insertions)
from repro.graph.delta import GraphDelta
from repro.graph.generators import grid_road_graph, uniform_random_graph
from repro.graph.graph import Graph
from repro.partition import RangePartition
from repro.pie_programs import CCProgram, SimProgram, SSSPProgram
from repro.sequential import connected_components, sssp_distances


def cc_oracle(g):
    buckets = {}
    for v, c in connected_components(g).items():
        buckets.setdefault(c, set()).add(v)
    return buckets


class FrozenSSSP(SSSPProgram):
    """Module-level (picklable under the process backend): opts out of
    the recompute fallback *and* of the bounded non-monotone path, so
    non-monotone batches genuinely reach the opt-out error."""

    recompute_fallback = False

    def maintainable(self, delta):
        return delta.monotone


class FrozenSim(SimProgram):
    recompute_fallback = False


class TestApplyInsertions:
    def test_edge_lands_at_owner(self, small_road):
        engine = GrapeEngine(4)
        frag = engine.make_fragmentation(small_road)
        owner = frag.gp.owner(0)
        apply_insertions(frag, [(0, 35, 0.5)])
        assert frag[owner].graph.has_edge(0, 35)
        assert small_road.has_edge(0, 35)

    def test_cross_fragment_updates_borders(self, small_road):
        engine = GrapeEngine(4)
        frag = engine.make_fragmentation(small_road)
        u = 0
        fu = frag.gp.owner(u)
        v = next(x for x in sorted(small_road.nodes(), key=repr)
                 if frag.gp.owner(x) != fu
                 and not small_road.has_edge(u, x))
        fv = frag.gp.owner(v)
        apply_insertions(frag, [(u, v, 0.5)])
        assert v in frag[fu].outer
        assert v in frag[fv].inner
        assert fu in frag.gp.holders(v)

    def test_new_nodes_created(self, small_road):
        engine = GrapeEngine(4)
        frag = engine.make_fragmentation(small_road)
        apply_insertions(frag, [("brand-new", 0, 1.0)])
        assert "brand-new" in frag.gp
        owner = frag.gp.owner("brand-new")
        assert "brand-new" in frag[owner].owned

    def test_fragmentation_still_valid(self, small_road):
        engine = GrapeEngine(4)
        frag = engine.make_fragmentation(small_road)
        apply_insertions(frag, [(0, 35, 0.5), (10, 30, 1.0)])
        frag.validate()

    def test_undirected_stored_both_sides(self):
        g = uniform_random_graph(30, 40, directed=False, seed=3)
        engine = GrapeEngine(3)
        frag = engine.make_fragmentation(g)
        u = 0
        v = next(x for x in g.nodes()
                 if x != u and not g.has_edge(u, x))
        apply_insertions(frag, [(u, v, 1.0)])
        fu, fv = frag.gp.owner(u), frag.gp.owner(v)
        assert frag[fu].graph.has_edge(u, v)
        assert frag[fv].graph.has_edge(v, u)


class TestContinuousSSSP:
    def test_initial_answer_correct(self, small_road):
        session = ContinuousQuerySession(GrapeEngine(4), SSSPProgram(), 0,
                                         small_road)
        assert session.answer == pytest.approx(
            sssp_distances(small_road, 0))

    def test_shortcut_insertion_maintained(self, small_road):
        session = ContinuousQuerySession(GrapeEngine(4), SSSPProgram(), 0,
                                         small_road)
        far = max(session.answer,
                  key=lambda v: session.answer[v]
                  if session.answer[v] != float("inf") else -1)
        answer = session.insert_edges([(0, far, 0.25)])
        assert answer[far] == pytest.approx(0.25)
        assert answer == pytest.approx(sssp_distances(small_road, 0))

    def test_batched_insertions(self, small_road):
        session = ContinuousQuerySession(GrapeEngine(4), SSSPProgram(), 0,
                                         small_road)
        answer = session.insert_edges([(0, 20, 0.1), (20, 33, 0.1),
                                       (33, 35, 0.1)])
        assert answer == pytest.approx(sssp_distances(small_road, 0))

    def test_sequential_batches(self, small_road):
        session = ContinuousQuerySession(GrapeEngine(4), SSSPProgram(), 0,
                                         small_road)
        session.insert_edges([(0, 18, 0.3)])
        answer = session.insert_edges([(18, 35, 0.3)])
        assert answer == pytest.approx(sssp_distances(small_road, 0))

    def test_non_improving_insertion_cheap(self, small_road):
        session = ContinuousQuerySession(GrapeEngine(4), SSSPProgram(), 0,
                                         small_road)
        before = session.metrics.supersteps
        answer = session.insert_edges([(0, 14, 1e9)])  # useless detour
        assert answer == pytest.approx(sssp_distances(small_road, 0))
        # One local fold, no message rounds needed.
        assert session.metrics.supersteps <= before + 1

    def test_weight_increase_served_by_bounded_path(self, small_road):
        session = ContinuousQuerySession(GrapeEngine(4), SSSPProgram(), 0,
                                         small_road)
        existing = next(iter(small_road.edges()))
        u, v, w = existing
        answer = session.insert_edges([(u, v, w + 100.0)])
        assert small_road.edge_weight(u, v) == pytest.approx(w + 100.0)
        assert answer == pytest.approx(sssp_distances(small_road, 0))
        assert session.metrics.fallback_reruns == 0
        assert session.metrics.incremental_maintained == 1
        assert session.metrics.partial_resets == 1

    def test_deletion_served_by_bounded_path(self, small_road):
        session = ContinuousQuerySession(GrapeEngine(4), SSSPProgram(), 0,
                                         small_road)
        u, v, _w = max(small_road.edges(),
                       key=lambda e: session.answer.get(e[1], 0.0)
                       if session.answer.get(e[1]) != float("inf") else 0.0)
        answer = session.delete_edges([(u, v)])
        assert not small_road.has_edge(u, v)
        assert answer == pytest.approx(sssp_distances(small_road, 0))
        assert session.metrics.fallback_reruns == 0
        assert session.metrics.partial_resets == 1
        # The reset is bounded: only part of the graph was touched.
        assert 0 < session.metrics.affected_vertices \
            <= small_road.num_nodes
        session.fragmentation.validate()

    def test_undirected_intra_fragment_decrease_relaxes_both_ways(self):
        """Regression: an undirected weight decrease whose edge lives in
        one fragment must seed *both* orientations of the relaxation —
        recording only (u, v) left dist(u) stale via the v -> u path."""
        from repro.graph.graph import Graph
        g = Graph(directed=False)
        g.add_edge("s", "a", weight=1.0)
        g.add_edge("a", "u", weight=20.0)
        g.add_edge("s", "u", weight=30.0)
        session = ContinuousQuerySession(GrapeEngine(1), SSSPProgram(),
                                         "s", g)
        assert session.answer["u"] == pytest.approx(21.0)
        answer = session.set_weights([("u", "a", 2.0)])
        assert session.metrics.incremental_maintained == 1
        assert answer["u"] == pytest.approx(3.0)
        assert answer == pytest.approx(sssp_distances(g, "s"))

    def test_monotone_batches_keep_the_fast_path(self, small_road):
        session = ContinuousQuerySession(GrapeEngine(4), SSSPProgram(), 0,
                                         small_road)
        session.insert_edges([(0, 35, 0.5)])
        u, v, w = next(iter(small_road.edges()))
        session.set_weights([(u, v, w * 0.5)])  # decrease: maintainable
        assert session.metrics.incremental_maintained == 2
        assert session.metrics.fallback_reruns == 0
        assert session.answer == pytest.approx(
            sssp_distances(small_road, 0))

    def test_new_node_attached(self, small_road):
        session = ContinuousQuerySession(GrapeEngine(4), SSSPProgram(), 0,
                                         small_road)
        answer = session.insert_edges([(0, "annex", 2.0)])
        assert answer["annex"] == pytest.approx(2.0)


class TestContinuousCC:
    def test_component_merge_maintained(self):
        g = uniform_random_graph(60, 45, directed=False, seed=9)
        session = ContinuousQuerySession(GrapeEngine(3), CCProgram(), None,
                                         g)
        assert session.answer == cc_oracle(g)
        # Bridge two different components.
        cids = connected_components(g)
        by_comp = {}
        for v, c in cids.items():
            by_comp.setdefault(c, []).append(v)
        comps = sorted(by_comp)
        if len(comps) < 2:
            pytest.skip("graph ended up connected")
        u = by_comp[comps[0]][0]
        v = by_comp[comps[1]][0]
        answer = session.insert_edges([(u, v, 1.0)])
        assert answer == cc_oracle(g)

    def test_many_merges(self):
        g = uniform_random_graph(50, 30, directed=False, seed=11)
        session = ContinuousQuerySession(GrapeEngine(4), CCProgram(), None,
                                         g)
        edges = [(i, i + 25, 1.0) for i in range(0, 20, 5)]
        answer = session.insert_edges(edges)
        assert answer == cc_oracle(g)


class TestSessionBorderMaintenance:
    """Direct coverage of border-set / G_P upkeep when insertions flow
    through a live session (previously only exercised via benchmarks)."""

    @staticmethod
    def _cross_fragment_pair(session):
        gp = session.fragmentation.gp
        graph = session.fragmentation.graph
        nodes = sorted(graph.nodes(), key=repr)
        for u in nodes:
            for v in nodes:
                if u != v and gp.owner(u) != gp.owner(v) \
                        and not graph.has_edge(u, v):
                    return u, v
        pytest.skip("no cross-fragment non-edge available")

    def test_cross_fragment_insert_updates_borders(self, small_road):
        session = ContinuousQuerySession(GrapeEngine(4), SSSPProgram(), 0,
                                         small_road)
        frag = session.fragmentation
        u, v = self._cross_fragment_pair(session)
        fu, fv = frag.gp.owner(u), frag.gp.owner(v)
        session.insert_edges([(u, v, 0.5)])
        # u's owner stores the edge and gains v as an out-border copy.
        assert frag[fu].graph.has_edge(u, v)
        assert v in frag[fu].outer
        # v becomes an in-border node of its own fragment.
        assert v in frag[fv].inner
        # G_P knows every holder of v, so future messages route there.
        assert fu in frag.gp.holders(v)
        assert frag.gp.owner(v) == fv
        frag.validate()
        assert session.answer == pytest.approx(
            sssp_distances(small_road, 0))

    def test_new_node_joins_gp_and_answer(self, small_road):
        session = ContinuousQuerySession(GrapeEngine(4), SSSPProgram(), 0,
                                         small_road)
        frag = session.fragmentation
        session.insert_edges([(0, "annex", 2.0), ("annex", "outpost", 1.0)])
        for fresh in ("annex", "outpost"):
            assert fresh in frag.gp
            owner = frag.gp.owner(fresh)
            assert fresh in frag[owner].owned
        frag.validate()
        assert session.answer["outpost"] == pytest.approx(3.0)
        assert session.answer == pytest.approx(
            sssp_distances(small_road, 0))

    def test_repeated_batches_keep_fragmentation_valid(self, small_road):
        session = ContinuousQuerySession(GrapeEngine(4), SSSPProgram(), 0,
                                         small_road)
        for batch in ([(0, 21, 0.4)], [(21, 35, 0.4)], [(35, 3, 0.4)]):
            session.insert_edges(batch)
            session.fragmentation.validate()
        assert session.answer == pytest.approx(
            sssp_distances(small_road, 0))


class TestSharedFragmentation:
    """Sessions over an owner-managed fragmentation (the service path)."""

    def test_two_sessions_one_fragmentation(self, small_road):
        engine = GrapeEngine(4)
        frag = engine.make_fragmentation(small_road)
        s1 = ContinuousQuerySession(engine, SSSPProgram(), 0,
                                    fragmentation=frag)
        s2 = ContinuousQuerySession(GrapeEngine(4), SSSPProgram(), 14,
                                    fragmentation=frag)
        assert s1.fragmentation is s2.fragmentation
        # The owner applies the batch once; each session folds the deltas.
        touched = apply_insertions(frag, [(0, 35, 0.25), (14, 30, 0.25)])
        s1.apply_update(touched)
        s2.apply_update(touched)
        frag.validate()
        assert s1.answer == pytest.approx(sssp_distances(small_road, 0))
        assert s2.answer == pytest.approx(sssp_distances(small_road, 14))

    def test_constructor_requires_exactly_one_source(self, small_road):
        engine = GrapeEngine(2)
        frag = engine.make_fragmentation(small_road)
        with pytest.raises(ValueError, match="exactly one"):
            ContinuousQuerySession(engine, SSSPProgram(), 0, small_road,
                                   fragmentation=frag)
        with pytest.raises(ValueError, match="exactly one"):
            ContinuousQuerySession(engine, SSSPProgram(), 0)


class TestDeletions:
    """apply_delta border/G_P maintenance under ΔG⁻ (deletions)."""

    @staticmethod
    def _sole_cross_edge(frag):
        """A cross-fragment edge (u, v) where the storing fragment holds
        v only because of this edge (mirror refcount 1)."""
        gp = frag.gp
        for u, v, _w in frag.graph.edges():
            fu, fv = gp.owner(u), gp.owner(v)
            if fu != fv and frag[fu].graph.degree(v) == 1:
                return u, v, fu, fv
        return None

    def test_mirror_retired_when_last_edge_deleted(self, small_road):
        frag = GrapeEngine(4).make_fragmentation(small_road)
        found = self._sole_cross_edge(frag)
        if found is None:
            pytest.skip("no refcount-1 cross edge in this partition")
        u, v, fu, fv = found
        touched = apply_delta(frag, GraphDelta().delete(u, v))
        assert not small_road.has_edge(u, v)
        assert not frag[fu].graph.has_node(v)     # mirror retired
        assert v not in frag[fu].outer
        assert fu not in frag.gp.holders(v)
        assert fu in touched and v in touched[fu].retired_nodes
        frag.validate()

    def test_inner_membership_follows_holders(self, small_road):
        frag = GrapeEngine(4).make_fragmentation(small_road)
        gp = frag.gp
        # Pick an inner node and delete every cross edge reaching it.
        target = next((x for f in frag for x in f.inner), None)
        assert target is not None
        owner = gp.owner(target)
        cross = [(u, target) for f in frag for u, v, _w in f.graph.edges()
                 if v == target and gp.owner(u) != owner]
        apply_delta(frag, GraphDelta.from_deletions(cross))
        assert len(gp.holders(target)) == 1
        assert target not in frag[owner].inner
        frag.validate()

    def test_deletions_keep_fragmentation_valid(self):
        g = uniform_random_graph(40, 120, seed=7)
        frag = GrapeEngine(4).make_fragmentation(g)
        edges = list(g.edges())[::3]
        apply_delta(frag, GraphDelta.from_deletions(
            [(u, v) for u, v, _w in edges]))
        for u, v, _w in edges:
            assert not g.has_edge(u, v)
        frag.validate()

    def test_undirected_deletion_removes_both_sides(self):
        g = uniform_random_graph(30, 60, directed=False, seed=3)
        frag = GrapeEngine(3).make_fragmentation(g)
        gp = frag.gp
        u, v, _w = next((u, v, w) for u, v, w in g.edges()
                        if gp.owner(u) != gp.owner(v))
        apply_delta(frag, GraphDelta().delete(v, u))  # either orientation
        assert not g.has_edge(u, v) and not g.has_edge(v, u)
        assert not frag[gp.owner(u)].graph.has_edge(u, v)
        assert not frag[gp.owner(v)].graph.has_edge(v, u)
        frag.validate()


class TestBorderRetraction:
    """Regression (two fragments): a deletion that *worsens* a border
    node's value must retract the stale parameter from the peer
    fragment's aggregator table.  The min aggregator alone can only
    lower values — without the bounded path's rebaseline (full re-read
    of each touched fragment's params, absent keys becoming tombstones)
    the peer would keep serving the old, smaller value forever."""

    @staticmethod
    def _session(graph, program, query):
        engine = GrapeEngine(2, partition=RangePartition())
        return ContinuousQuerySession(engine, program, query, graph)

    def test_sssp_border_distance_raised_after_delete(self):
        g = Graph(directed=True)
        g.add_edge(0, 3, weight=0.1)   # cheap cross-fragment edge
        g.add_edge(0, 1, weight=1.0)   # detour inside fragment A...
        g.add_edge(1, 3, weight=9.0)   # ...reaching 3 at cost 10.0
        g.add_edge(3, 4, weight=1.0)   # downstream chain in fragment B
        session = self._session(g, SSSPProgram(), 0)
        frag = session.fragmentation
        assert frag.gp.owner(0) != frag.gp.owner(3)
        assert session.answer[3] == pytest.approx(0.1)

        session.update(GraphDelta().delete(0, 3))
        # The stale 0.1 must be gone everywhere: the maintained answer
        # re-converges to the detour, downstream chain included.
        assert session.answer[3] == pytest.approx(10.0)
        assert session.answer[4] == pytest.approx(11.0)
        assert session.answer == pytest.approx(sssp_distances(g, 0))
        m = session.metrics
        assert m.fallback_reruns == 0
        assert m.partial_resets == 1

    def test_cc_border_cid_raised_after_split(self):
        g = Graph(directed=False)
        for u, v in ((0, 1), (1, 2), (2, 3), (3, 4), (4, 5)):
            g.add_edge(u, v, weight=1.0)
        session = self._session(g, CCProgram(), None)
        frag = session.fragmentation
        assert frag.gp.owner(2) != frag.gp.owner(3)
        assert {k: set(v) for k, v in session.answer.items()} \
            == {0: {0, 1, 2, 3, 4, 5}}

        session.update(GraphDelta().delete(2, 3))
        # Fragment B's nodes lose the global minimum 0: the cid 0 border
        # param must be retracted so the split-off half re-derives its
        # own minimum (3), exactly like a from-scratch run.
        assert {k: set(v) for k, v in session.answer.items()} \
            == {0: {0, 1, 2}, 3: {3, 4, 5}}
        assert session.answer == cc_oracle(g)
        m = session.metrics
        assert m.fallback_reruns == 0
        assert m.partial_resets == 1


class TestNoOpBatches:
    """An empty or duplicate-only batch must be a true no-op: no cache
    token movement, no CSR epoch movement (the PR-4 bugfix)."""

    def test_duplicate_insert_is_noop(self, small_road):
        frag = GrapeEngine(4).make_fragmentation(small_road)
        u, v, w = next(iter(small_road.edges()))
        token = frag.cache_token
        epochs = [f.csr_epoch for f in frag]
        touched = apply_insertions(frag, [(u, v, w)])
        assert touched == {}
        assert frag.cache_token == token
        assert [f.csr_epoch for f in frag] == epochs

    def test_absent_delete_and_same_weight_are_noops(self, small_road):
        frag = GrapeEngine(4).make_fragmentation(small_road)
        u, v, w = next(iter(small_road.edges()))
        absent = next(x for x in small_road.nodes()
                      if not small_road.has_edge(u, x) and x != u)
        token = frag.cache_token
        epochs = [f.csr_epoch for f in frag]
        touched = apply_delta(frag, GraphDelta()
                              .delete(u, absent)
                              .set_weight(u, v, w)
                              .insert(u, v, w))
        assert touched == {}
        assert frag.cache_token == token
        assert [f.csr_epoch for f in frag] == epochs

    def test_empty_batch_session_refresh_is_free(self, small_road):
        session = ContinuousQuerySession(GrapeEngine(4), SSSPProgram(), 0,
                                         small_road)
        before = session.metrics.supersteps
        answer = session.update(GraphDelta())
        assert answer == session.answer
        assert session.metrics.supersteps == before
        assert session.metrics.deltas_applied == 0


class TestCCUnderDeltas:
    def test_component_split_served_by_bounded_path(self):
        """Deleting a bridge condemns and relabels the severed side."""
        g = uniform_random_graph(50, 60, directed=False, seed=13)
        # Graft a pendant chain onto the graph: its first edge is a
        # bridge whose deletion provably splits a component.
        anchor = next(iter(g.nodes()))
        g.add_edge(anchor, 900, 1.0)
        g.add_edge(900, 901, 1.0)
        session = ContinuousQuerySession(GrapeEngine(3), CCProgram(), None,
                                         g)
        answer = session.delete_edges([(anchor, 900)])
        assert answer == cc_oracle(g)
        assert answer[900] == {900, 901}
        assert session.metrics.fallback_reruns == 0
        assert session.metrics.partial_resets == 1
        assert session.metrics.affected_vertices > 0
        session.fragmentation.validate()

    def test_redundant_deletion_affects_nothing(self):
        """Split detection is exact: deleting an edge whose endpoints
        stay connected (checked across fragments on the driver) resets
        no vertex at all — the old cids remain valid."""
        g = uniform_random_graph(50, 60, directed=False, seed=13)
        # A triangle glued onto the graph: deleting one of its edges
        # leaves the other two as the reconnecting path.
        anchor = next(iter(g.nodes()))
        g.add_edge(anchor, 900, 1.0)
        g.add_edge(900, 901, 1.0)
        g.add_edge(901, anchor, 1.0)
        session = ContinuousQuerySession(GrapeEngine(3), CCProgram(), None,
                                         g)
        before = session.answer
        answer = session.delete_edges([(900, 901)])
        assert answer == before == cc_oracle(g)
        assert session.metrics.affected_vertices == 0
        assert session.metrics.fallback_reruns == 0
        assert session.metrics.partial_resets == 1

    def test_reweight_stays_incremental_for_cc(self):
        g = uniform_random_graph(50, 60, directed=False, seed=13)
        session = ContinuousQuerySession(GrapeEngine(3), CCProgram(), None,
                                         g)
        u, v, w = next(iter(g.edges()))
        answer = session.set_weights([(u, v, w + 100.0)])  # CC: weights moot
        assert answer == cc_oracle(g)
        assert session.metrics.incremental_maintained == 1
        assert session.metrics.fallback_reruns == 0


class TestSessionErrors:
    def test_program_without_hook_recomputes(self, small_labeled,
                                             tiny_pattern):
        """Programs without on_graph_update now serve standing queries
        through the recompute fallback instead of being rejected."""
        session = ContinuousQuerySession(GrapeEngine(2), SimProgram(),
                                         tiny_pattern, small_labeled)
        u = next(iter(small_labeled.nodes()))
        v = next(x for x in small_labeled.nodes()
                 if x != u and not small_labeled.has_edge(u, x))
        answer = session.insert_edges([(u, v, 1.0)])
        assert session.metrics.fallback_reruns == 1
        assert answer == session.answer

    def test_opt_out_program_raises_typed_error(self, small_road):
        session = ContinuousQuerySession(GrapeEngine(2), FrozenSSSP(), 0,
                                         small_road)
        u, v, _w = next(iter(small_road.edges()))
        with pytest.raises(NonMonotoneUpdateError, match="opted out"):
            session.delete_edges([(u, v)])
        # The fragmentation was mutated before the rejection, so the
        # session's converged state is stale forever: folding even a
        # monotone batch into it would be silently wrong, and must
        # raise instead.
        with pytest.raises(NonMonotoneUpdateError, match="stale"):
            session.insert_edges([(0, 35, 0.25)])

    def test_opt_out_program_maintains_monotone_batches(self, small_road):
        session = ContinuousQuerySession(GrapeEngine(2), FrozenSSSP(), 0,
                                         small_road)
        session.insert_edges([(0, 35, 0.25)])
        assert session.metrics.incremental_maintained == 1
        assert session.answer == pytest.approx(
            sssp_distances(small_road, 0))

    def test_opt_out_without_hook_rejected_at_construction(
            self, small_labeled, tiny_pattern):
        with pytest.raises(TypeError, match="on_graph_update"):
            ContinuousQuerySession(GrapeEngine(2), FrozenSim(),
                                   tiny_pattern, small_labeled)
