"""GRAPE engine tests: correctness against sequential oracles for every
PIE program, across partition strategies and worker counts — the
executable Assurance Theorem."""

from math import inf

import pytest

from repro.core.engine import GrapeEngine
from repro.graph.generators import (grid_road_graph, labeled_graph,
                                    uniform_random_graph)
from repro.graph.graph import Graph
from repro.partition.strategies import (HashPartition, MetisLikePartition,
                                        StreamingPartition)
from repro.pie_programs import (CCProgram, CFProgram, CFQuery, SimProgram,
                                SSSPProgram, SubIsoProgram)
from repro.sequential import (canonical_match, connected_components,
                              maximum_simulation, sssp_distances,
                              vf2_all_matches)

STRATEGIES = [HashPartition(), MetisLikePartition(), StreamingPartition()]


def cc_oracle(g):
    buckets = {}
    for v, c in connected_components(g).items():
        buckets.setdefault(c, set()).add(v)
    return buckets


class TestEngineConfig:
    def test_requires_graph_or_fragmentation(self):
        with pytest.raises(ValueError):
            GrapeEngine(2).run(SSSPProgram(), query=0)

    def test_virtual_less_than_physical_rejected(self):
        with pytest.raises(ValueError):
            GrapeEngine(4, num_fragments=2)

    def test_nonterminating_program_detected(self, small_road):
        engine = GrapeEngine(2, max_supersteps=2)
        with pytest.raises(RuntimeError, match="no fixpoint"):
            engine.run(SSSPProgram(), query=0, graph=small_road)


class TestSSSPOnGrape:
    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    def test_matches_oracle_workers(self, small_road, n):
        truth = sssp_distances(small_road, 0)
        result = GrapeEngine(n).run(SSSPProgram(), query=0,
                                    graph=small_road)
        assert result.answer == pytest.approx(truth)

    @pytest.mark.parametrize("strategy", STRATEGIES,
                             ids=lambda s: s.name)
    def test_matches_oracle_strategies(self, small_road, strategy):
        truth = sssp_distances(small_road, 0)
        engine = GrapeEngine(4, partition=strategy)
        result = engine.run(SSSPProgram(), query=0, graph=small_road)
        assert result.answer == pytest.approx(truth)

    def test_more_fragments_than_workers(self, small_road):
        truth = sssp_distances(small_road, 0)
        engine = GrapeEngine(2, num_fragments=6)
        result = engine.run(SSSPProgram(), query=0, graph=small_road)
        assert result.answer == pytest.approx(truth)

    def test_unreachable_nodes_inf(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_node(99)
        result = GrapeEngine(2).run(SSSPProgram(), query=0, graph=g)
        assert result.answer[99] == inf

    def test_source_missing(self, small_road):
        result = GrapeEngine(2).run(SSSPProgram(), query="ghost",
                                    graph=small_road)
        assert all(d == inf for d in result.answer.values())

    def test_monotonic_check_passes(self, small_road):
        engine = GrapeEngine(4, check_monotonic=True)
        truth = sssp_distances(small_road, 0)
        result = engine.run(SSSPProgram(), query=0, graph=small_road)
        assert result.answer == pytest.approx(truth)

    def test_ni_mode_same_answer(self, small_road):
        truth = sssp_distances(small_road, 0)
        engine = GrapeEngine(4, incremental=False)
        result = engine.run(SSSPProgram(), query=0, graph=small_road)
        assert result.answer == pytest.approx(truth)

    def test_fragmentation_reused_across_queries(self, small_road):
        engine = GrapeEngine(4)
        frag = engine.make_fragmentation(small_road)
        for source in (0, 7, 21):
            result = engine.run(SSSPProgram(), query=source,
                                fragmentation=frag)
            assert result.answer == pytest.approx(
                sssp_distances(small_road, source))

    def test_communication_is_accounted(self, small_road):
        result = GrapeEngine(4).run(SSSPProgram(), query=0,
                                    graph=small_road)
        assert result.metrics.comm_bytes > 0
        assert result.metrics.comm_messages > 0
        assert result.supersteps >= 2

    def test_single_worker_two_supersteps(self, small_road):
        """With one fragment there are no border nodes: PEval answers."""
        result = GrapeEngine(1).run(SSSPProgram(), query=0,
                                    graph=small_road)
        assert result.supersteps == 1
        assert result.metrics.comm_bytes == 0


class TestCCOnGrape:
    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_matches_oracle(self, small_undirected, n):
        result = GrapeEngine(n).run(CCProgram(), query=None,
                                    graph=small_undirected)
        assert result.answer == cc_oracle(small_undirected)

    @pytest.mark.parametrize("strategy", STRATEGIES,
                             ids=lambda s: s.name)
    def test_strategies(self, small_undirected, strategy):
        engine = GrapeEngine(4, partition=strategy)
        result = engine.run(CCProgram(), query=None,
                            graph=small_undirected)
        assert result.answer == cc_oracle(small_undirected)

    def test_ni_mode(self, small_undirected):
        engine = GrapeEngine(4, incremental=False)
        result = engine.run(CCProgram(), query=None,
                            graph=small_undirected)
        assert result.answer == cc_oracle(small_undirected)

    def test_isolated_nodes(self):
        g = Graph(directed=False)
        for v in range(5):
            g.add_node(v)
        result = GrapeEngine(2).run(CCProgram(), query=None, graph=g)
        assert result.answer == {v: {v} for v in range(5)}

    def test_long_chain_across_fragments(self):
        """A path forces multi-round cid propagation."""
        from repro.graph.builders import path_graph
        g = path_graph(40)
        result = GrapeEngine(8).run(CCProgram(), query=None, graph=g)
        assert result.answer == {0: set(range(40))}
        assert result.supersteps > 2  # needed several IncEval rounds


class TestSimOnGrape:
    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_matches_oracle(self, small_labeled, path_pattern, n):
        truth = maximum_simulation(path_pattern, small_labeled)
        result = GrapeEngine(n).run(SimProgram(), query=path_pattern,
                                    graph=small_labeled)
        assert result.answer == truth

    def test_ni_mode_same_answer(self, small_labeled, path_pattern):
        truth = maximum_simulation(path_pattern, small_labeled)
        engine = GrapeEngine(4, incremental=False)
        result = engine.run(SimProgram(), query=path_pattern,
                            graph=small_labeled)
        assert result.answer == truth

    def test_no_match_empty(self, small_labeled):
        pattern = Graph(directed=True)
        pattern.add_node("u", "no-such-label")
        result = GrapeEngine(3).run(SimProgram(), query=pattern,
                                    graph=small_labeled)
        assert result.answer == {"u": set()}

    def test_monotonic_check(self, small_labeled, path_pattern):
        engine = GrapeEngine(4, check_monotonic=True)
        truth = maximum_simulation(path_pattern, small_labeled)
        result = engine.run(SimProgram(), query=path_pattern,
                            graph=small_labeled)
        assert result.answer == truth

    def test_cyclic_pattern(self, small_labeled):
        pattern = Graph(directed=True)
        pattern.add_node("a", "l0")
        pattern.add_node("b", "l1")
        pattern.add_edge("a", "b")
        pattern.add_edge("b", "a")
        truth = maximum_simulation(pattern, small_labeled)
        result = GrapeEngine(4).run(SimProgram(), query=pattern,
                                    graph=small_labeled)
        assert result.answer == truth


class TestSubIsoOnGrape:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_matches_oracle(self, small_labeled, path_pattern, n):
        truth = {canonical_match(m)
                 for m in vf2_all_matches(path_pattern, small_labeled)}
        result = GrapeEngine(n).run(SubIsoProgram(), query=path_pattern,
                                    graph=small_labeled)
        assert {canonical_match(m) for m in result.answer} == truth

    def test_single_superstep(self, small_labeled, path_pattern):
        """SubIso terminates after PEval (paper: two supersteps, ours
        folds the shipping into superstep 1)."""
        result = GrapeEngine(4).run(SubIsoProgram(), query=path_pattern,
                                    graph=small_labeled)
        assert result.supersteps == 1

    def test_neighborhood_shipping_charged(self, small_labeled,
                                           path_pattern):
        result = GrapeEngine(4).run(SubIsoProgram(), query=path_pattern,
                                    graph=small_labeled)
        assert result.metrics.comm_bytes > 0

    def test_no_duplicates(self, small_labeled, path_pattern):
        result = GrapeEngine(4).run(SubIsoProgram(), query=path_pattern,
                                    graph=small_labeled)
        keys = [canonical_match(m) for m in result.answer]
        assert len(keys) == len(set(keys))


class TestCFOnGrape:
    def test_runs_epoch_budget(self):
        from repro.graph.generators import bipartite_ratings_graph
        g, _uf, _itf = bipartite_ratings_graph(30, 15, 250, seed=3)
        query = CFQuery(num_factors=4, max_epochs=5, seed=1)
        result = GrapeEngine(3).run(CFProgram(), query=query, graph=g)
        assert result.supersteps >= query.max_epochs
        assert len(result.answer) == 45  # every node got factors

    def test_learning_reduces_error(self):
        from repro.graph.generators import bipartite_ratings_graph
        from repro.sequential.cf import FactorModel, extract_ratings, rmse
        g, _uf, _itf = bipartite_ratings_graph(40, 20, 400, noise=0.05,
                                               seed=5)
        ratings = extract_ratings(g)
        baseline = FactorModel(6, seed=2)
        before = rmse(ratings, baseline)

        query = CFQuery(num_factors=6, max_epochs=12, learning_rate=0.05,
                        seed=2)
        result = GrapeEngine(3).run(CFProgram(), query=query, graph=g)
        trained = FactorModel(6, seed=2)
        trained.factors = dict(result.answer)
        assert rmse(ratings, trained) < before * 0.8

    def test_target_rmse_stops_early(self):
        from repro.graph.generators import bipartite_ratings_graph
        g, _uf, _itf = bipartite_ratings_graph(20, 10, 150, seed=7)
        query = CFQuery(num_factors=4, max_epochs=50, target_rmse=1e9,
                        seed=1)
        result = GrapeEngine(2).run(CFProgram(), query=query, graph=g)
        # Absurdly lax target: every fragment converges immediately.
        assert result.supersteps <= 3
