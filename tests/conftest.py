"""Shared fixtures: small deterministic graphs and query batches."""

from __future__ import annotations

import pytest

from repro.graph.builders import from_weighted_edges
from repro.graph.generators import (grid_road_graph, labeled_graph,
                                    uniform_random_graph)
from repro.graph.graph import Graph


@pytest.fixture
def diamond():
    """Weighted diamond: 0 -> {1,2} -> 3, plus a 0->3 long edge."""
    return from_weighted_edges([
        (0, 1, 1.0), (0, 2, 4.0), (1, 3, 2.0), (2, 3, 1.0), (0, 3, 10.0),
    ])


@pytest.fixture
def small_road():
    return grid_road_graph(6, 6, seed=3)


@pytest.fixture
def small_undirected():
    return uniform_random_graph(60, 70, directed=False, seed=5)


@pytest.fixture
def small_labeled():
    return labeled_graph(80, 240, num_labels=4, seed=9)


@pytest.fixture
def tiny_pattern():
    pat = Graph(directed=True)
    pat.add_node("A", "l0")
    pat.add_node("B", "l1")
    pat.add_edge("A", "B")
    return pat


@pytest.fixture
def path_pattern():
    pat = Graph(directed=True)
    pat.add_node("A", "l0")
    pat.add_node("B", "l1")
    pat.add_node("C", "l2")
    pat.add_edge("A", "B")
    pat.add_edge("B", "C")
    return pat
