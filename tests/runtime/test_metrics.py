"""Tests for the BSP cost model and run metrics."""

import pytest

from repro.runtime.metrics import CostModel, RunMetrics, message_bytes


class TestMessageBytes:
    def test_positive(self):
        assert message_bytes({"a": 1}) > 0

    def test_monotone_in_content(self):
        small = message_bytes(list(range(10)))
        large = message_bytes(list(range(1000)))
        assert large > small

    def test_deterministic(self):
        payload = {"k": [1, 2, 3]}
        assert message_bytes(payload) == message_bytes(payload)


class TestCostModel:
    def test_superstep_time_components(self):
        cm = CostModel(sync_latency_s=0.5, seconds_per_byte=0.001)
        assert cm.superstep_time(2.0, 100) == pytest.approx(2.0 + 0.5 + 0.1)

    def test_defaults_reasonable(self):
        cm = CostModel()
        assert cm.superstep_time(0.0, 0) == pytest.approx(1e-3)


class TestRunMetrics:
    def test_record_superstep(self):
        m = RunMetrics()
        cm = CostModel(sync_latency_s=0.0, seconds_per_byte=0.0)
        m.record_superstep([1.0, 3.0, 2.0], bytes_shipped=10,
                           num_messages=2, cost_model=cm)
        assert m.supersteps == 1
        assert m.parallel_time_s == pytest.approx(3.0)  # max worker
        assert m.total_compute_s == pytest.approx(6.0)  # sum workers
        assert m.comm_bytes == 10
        assert m.comm_messages == 2

    def test_record_empty_worker_list(self):
        m = RunMetrics()
        m.record_superstep([], 0, 0, CostModel())
        assert m.supersteps == 1

    def test_per_superstep_log(self):
        m = RunMetrics()
        cm = CostModel()
        m.record_superstep([1.0], 5, 1, cm)
        m.record_superstep([2.0], 7, 1, cm)
        assert len(m.per_superstep) == 2
        assert m.per_superstep[1]["bytes"] == 7.0

    def test_comm_megabytes(self):
        m = RunMetrics()
        m.comm_bytes = 2_500_000
        assert m.comm_megabytes == pytest.approx(2.5)

    def test_merge(self):
        cm = CostModel(sync_latency_s=0.0, seconds_per_byte=0.0)
        a = RunMetrics()
        a.record_superstep([1.0], 10, 1, cm)
        b = RunMetrics()
        b.record_superstep([2.0], 20, 2, cm)
        merged = a.merge(b)
        assert merged.supersteps == 2
        assert merged.parallel_time_s == pytest.approx(3.0)
        assert merged.comm_bytes == 30
        assert merged.comm_messages == 3

    def test_repr(self):
        assert "supersteps=0" in repr(RunMetrics())
