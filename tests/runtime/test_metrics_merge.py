"""Reflection regression: merge/absorb must carry EVERY counter.

Historic bug class: a new RunMetrics field gets added, merge()'s
hand-written field list is not updated, and batch/watch accounting
silently drops the counter.  The combination of ``_classify_fields``
(every field must be special, gauge, histogram, or additive) and this
test (every numeric field gets a distinct value and must survive both
merge and absorb) makes that failure impossible to reintroduce quietly.
"""

import dataclasses

import pytest

from repro.obs.registry import Histogram
from repro.runtime.metrics import (RunMetrics, _GAUGE_FIELDS,
                                   _RUN_ADDITIVE_FIELDS,
                                   _RUN_HISTOGRAM_FIELDS, _SPECIAL_FIELDS)


def _populated(offset):
    """A RunMetrics with a distinct nonzero value in every field."""
    m = RunMetrics(backend="thread")
    for i, f in enumerate(dataclasses.fields(m)):
        value = getattr(m, f.name)
        if f.name in _SPECIAL_FIELDS:
            continue
        if isinstance(value, Histogram):
            value.observe(0.001 * (offset + i + 1))
        elif isinstance(value, float):
            setattr(m, f.name, float(offset + i) + 0.25)
        elif isinstance(value, int):
            setattr(m, f.name, offset + i + 1)
    m.per_superstep.append({"max_worker_s": float(offset)})
    return m


def test_every_field_is_classified():
    """No RunMetrics field may fall through the classification."""
    classified = (set(_SPECIAL_FIELDS) | set(_GAUGE_FIELDS)
                  | set(_RUN_ADDITIVE_FIELDS) | set(_RUN_HISTOGRAM_FIELDS))
    for f in dataclasses.fields(RunMetrics):
        assert f.name in classified, f.name


def test_merge_carries_every_counter():
    a, b = _populated(0), _populated(100)
    out = a.merge(b)
    for name in _RUN_ADDITIVE_FIELDS:
        assert getattr(out, name) == pytest.approx(
            getattr(a, name) + getattr(b, name)), name
    for name in _GAUGE_FIELDS:
        assert getattr(out, name) == max(getattr(a, name),
                                         getattr(b, name)), name
    for name in _RUN_HISTOGRAM_FIELDS:
        assert getattr(out, name).count == (getattr(a, name).count
                                            + getattr(b, name).count), name
        # merged histogram is a copy — the inputs keep their own
        assert getattr(out, name) is not getattr(a, name)
    assert out.per_superstep == a.per_superstep + b.per_superstep
    assert out.backend == "thread"


def test_merge_mixed_backend():
    a = _populated(0)
    b = _populated(0)
    b.backend = "process"
    assert a.merge(b).backend == "mixed"


def test_absorb_mutates_in_place():
    a, b = _populated(0), _populated(100)
    before = {name: getattr(a, name)
              for name in _RUN_ADDITIVE_FIELDS + _GAUGE_FIELDS}
    hist_ref = a.worker_time_hist
    a.absorb(b)
    for name in _RUN_ADDITIVE_FIELDS:
        assert getattr(a, name) == pytest.approx(
            before[name] + getattr(b, name)), name
    for name in _GAUGE_FIELDS:
        assert getattr(a, name) == max(before[name],
                                       getattr(b, name)), name
    # in place: session metrics holders keep their reference
    assert a.worker_time_hist is hist_ref
    assert a.worker_time_hist.count == 2


def test_new_field_is_auto_carried():
    """Simulate next year's counter: a dynamically added int field is
    classified additive and survives merge with no merge() change."""
    fresh = dataclasses.make_dataclass(
        "FreshMetrics", [("new_counter", int, dataclasses.field(default=0))],
        bases=(RunMetrics,))
    from repro.runtime.metrics import _classify_fields
    additive, _hists = _classify_fields(fresh)
    assert "new_counter" in additive
