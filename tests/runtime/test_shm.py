"""The shared-memory fragment plane: publish/attach, in-place patching,
republish-on-structural, arena lifecycle, and the stale-segment sweep."""

import glob
import os
import subprocess

import numpy as np
import pytest

from repro.core.engine import GrapeEngine
from repro.core.updates import apply_delta
from repro.graph.delta import GraphDelta
from repro.graph.generators import uniform_random_graph
from repro.runtime import shm

pytestmark = pytest.mark.skipif(not shm.shm_available(),
                                reason="no shared-memory provider here")


def make_fragmentation(seed=5, parts=2):
    g = uniform_random_graph(40, 140, seed=seed)
    return GrapeEngine(parts).make_fragmentation(g), g


def shm_files():
    return glob.glob("/dev/shm/repro-shm-*")


# ---------------------------------------------------------------------------
# publish / attach
# ---------------------------------------------------------------------------
def test_publish_attach_roundtrip():
    fragmentation, _g = make_fragmentation()
    frag = fragmentation[0]
    csr = frag.csr()
    prov = shm.provider()
    seg, desc = shm.publish_fragment(prov, 1, 0, 0, frag, csr)
    try:
        clone, _seg2 = shm.attach_fragment(desc)
        assert clone.fid == frag.fid
        assert clone.owned == frag.owned
        assert clone.inner == frag.inner
        assert clone.outer == frag.outer
        assert sorted(clone.graph.edges()) == sorted(frag.graph.edges())
        # the CSR is installed from the mapped arrays, never rebuilt
        snap = clone.csr()
        assert clone.csr_builds == 0
        assert clone.csr_shared
        np.testing.assert_array_equal(snap.indptr, csr.indptr)
        np.testing.assert_array_equal(snap.indices, csr.indices)
        np.testing.assert_array_equal(snap.weights, csr.weights)
        np.testing.assert_array_equal(snap.rev_indices, csr.rev_indices)
        # attached views are read-only (file provider maps PROT_READ)
        assert not snap.indices.flags.writeable
        assert not snap.weights.flags.writeable
    finally:
        prov.unlink(desc.name)


def test_attach_missing_segment_raises():
    fragmentation, _g = make_fragmentation()
    frag = fragmentation[0]
    prov = shm.provider()
    seg, desc = shm.publish_fragment(prov, 1, 0, 0, frag, frag.csr())
    prov.unlink(desc.name)
    with pytest.raises(OSError):
        shm.attach_fragment(desc)


# ---------------------------------------------------------------------------
# arena: descriptors, patches, republish
# ---------------------------------------------------------------------------
def test_descriptor_reuse_and_weight_patch():
    fragmentation, g = make_fragmentation()
    arena = shm.ShmArena()
    try:
        tid, ver = fragmentation.cache_token
        descs = {f.fid: arena.descriptor_for(tid, ver, fragmentation[f.fid])
                 for f in fragmentation}
        assert all(d is not None for d in descs.values())
        assert arena.publishes == fragmentation.num_fragments
        # a second request at the same version reuses the segments
        again = arena.descriptor_for(tid, ver, fragmentation[0])
        assert again is descs[0]
        assert arena.publishes == fragmentation.num_fragments

        # weight-only delta: patched into the mapped arrays in place —
        # no republish, the coordinator's shared CSR shows the new value
        u, v, w = next(iter(g.edges()))
        built = fragmentation.csr_snapshots_built
        apply_delta(fragmentation, GraphDelta().set_weight(u, v, w + 2.5))
        assert arena.patches >= 1
        assert arena.publishes == fragmentation.num_fragments
        assert fragmentation.csr_snapshots_built == built
        owner = fragmentation.gp.owner(u)
        snap = fragmentation[owner].csr()
        eid = snap.id_of[u]
        row = slice(int(snap.indptr[eid]), int(snap.indptr[eid + 1]))
        hit = np.nonzero(snap.indices[row] == snap.id_of[v])[0]
        assert hit.size > 0
        assert snap.weights[row][hit[0]] == w + 2.5

        # structural delta: the entry goes stale, the next descriptor
        # request republishes under a bumped generation
        apply_delta(fragmentation, GraphDelta().insert(u, "fresh", 0.4))
        tid2, ver2 = fragmentation.cache_token
        assert tid2 == tid
        desc2 = arena.descriptor_for(tid, ver2, fragmentation[owner])
        assert desc2 is not None
        assert desc2.generation > descs[owner].generation
        assert arena.publishes > fragmentation.num_fragments
    finally:
        arena.close()
    assert arena.ref_leaks == 0


def test_keepable_fids_tracks_compat_floor():
    fragmentation, g = make_fragmentation()
    arena = shm.ShmArena()
    try:
        tid, ver = fragmentation.cache_token
        desc = arena.descriptor_for(tid, ver, fragmentation[0])
        attached = {(tid, 0): desc.generation}
        u, v, w = next(iter(fragmentation[0].graph.edges()))
        apply_delta(fragmentation, GraphDelta().set_weight(u, v, w + 1.0))
        _tid, ver2 = fragmentation.cache_token
        # patched in place: a worker mapping the old generation may keep
        # its CSR across the replay
        assert arena.keepable_fids(tid, ver2, attached, [0]) == {0}
        # structural: nothing is keepable
        apply_delta(fragmentation, GraphDelta().delete(u, v))
        _tid, ver3 = fragmentation.cache_token
        assert arena.keepable_fids(tid, ver3, attached, [0]) == set()
    finally:
        arena.close()


def test_forget_unlinks_segments():
    fragmentation, _g = make_fragmentation(seed=6)
    arena = shm.ShmArena()
    tid, ver = fragmentation.cache_token
    for f in fragmentation:
        arena.descriptor_for(tid, ver, fragmentation[f.fid])
    before = {os.path.basename(p) for p in shm_files()}
    assert len(before) >= fragmentation.num_fragments
    arena.forget(tid)
    assert arena.stats() == (0, 0)
    remaining = {os.path.basename(p) for p in shm_files()}
    assert not any(f"-f{f.fid}" in name and name in before
                   for f in fragmentation for name in remaining - before)
    arena.close()


def test_arena_token_lru_bound():
    fragmentation, _g = make_fragmentation(seed=7)
    arena = shm.ShmArena(max_tokens=2)
    try:
        frag = fragmentation[0]
        for tid in (101, 102, 103):
            assert arena.descriptor_for(tid, 0, frag) is not None
        # the oldest token was evicted and its segment unlinked
        assert arena.current_generation(101, 0, 0) is None
        assert arena.current_generation(103, 0, 0) is not None
        segs, _nbytes = arena.stats()
        assert segs == 2
    finally:
        arena.close()


def test_close_unlinks_everything():
    fragmentation, _g = make_fragmentation(seed=8)
    arena = shm.ShmArena()
    tid, ver = fragmentation.cache_token
    desc = arena.descriptor_for(tid, ver, fragmentation[0])
    path = os.path.join("/dev/shm", desc.name)
    assert os.path.exists(path)
    arena.close()
    assert not os.path.exists(path)
    assert arena.stats() == (0, 0)
    # a closed arena serves no descriptors
    assert arena.descriptor_for(tid, ver, fragmentation[0]) is None


# ---------------------------------------------------------------------------
# stale sweep and capability gating
# ---------------------------------------------------------------------------
def test_sweep_stale_reclaims_dead_owner_segments():
    proc = subprocess.Popen(["sleep", "0"])
    proc.wait()
    dead = f"repro-shm-{proc.pid}-1-f0"
    live = f"repro-shm-{os.getpid()}-deadbeef-f0"
    prov = shm.provider()
    for name in (dead, live):
        with open(os.path.join("/dev/shm", name), "wb") as fh:
            fh.write(b"x")
    try:
        removed = shm.sweep_stale()
        assert removed >= 1
        assert not os.path.exists(os.path.join("/dev/shm", dead))
        # live publishers' segments are left alone
        assert os.path.exists(os.path.join("/dev/shm", live))
    finally:
        prov.unlink(dead)
        prov.unlink(live)


def test_env_var_disables_plane(monkeypatch):
    monkeypatch.setenv("REPRO_SHM", "0")
    monkeypatch.setattr(shm, "_provider_box", [])
    assert shm.provider() is None
    assert not shm.shm_available()
    arena = shm.ShmArena()
    assert not arena.available
    assert arena.descriptor_for(1, 0, None) is None
    arena.close()
