"""ParamSizeCache: memoized update-parameter byte accounting."""

import pytest

from repro.runtime.metrics import ParamSizeCache, message_bytes


class TestParamSizeCache:
    def test_empty_dict_matches_pickle(self):
        assert ParamSizeCache().updates_bytes({}) == message_bytes({})

    def test_deterministic_across_calls_and_instances(self):
        payload = {(v, "dist"): float(v) for v in range(20)}
        a = ParamSizeCache()
        first = a.updates_bytes(payload)
        assert a.updates_bytes(payload) == first  # memo hit, same figure
        assert ParamSizeCache().updates_bytes(payload) == first

    def test_order_independent(self):
        entries = [((v, "cid"), v * 7) for v in range(10)]
        sizer = ParamSizeCache()
        assert (sizer.updates_bytes(dict(entries))
                == sizer.updates_bytes(dict(reversed(entries))))

    def test_monotone_in_entries(self):
        sizer = ParamSizeCache()
        small = {(v, "hop"): v for v in range(5)}
        large = {(v, "hop"): v for v in range(50)}
        assert sizer.updates_bytes(large) > sizer.updates_bytes(small) > 0

    def test_close_to_monolithic_pickle(self):
        # The documented deviation (memo-sharing model) stays small.
        for payload in [
            {(v, "dist"): float(v) * 1.5 for v in range(30)},
            {(v, "cid"): v for v in range(30)},
            {(v, ("contrib", 3)): (7, 0.1 * v) for v in range(30)},
        ]:
            memoized = ParamSizeCache().updates_bytes(payload)
            exact = message_bytes(payload)
            assert abs(memoized - exact) <= exact * 0.1

    def test_unhashable_value_falls_back_to_pickle(self):
        payload = {(0, "matches"): [1, 2, 3]}
        assert (ParamSizeCache().updates_bytes(payload)
                == message_bytes(payload))

    def test_memo_is_bounded_and_accounting_unchanged(self):
        bounded = ParamSizeCache(max_entries=8)
        unbounded = ParamSizeCache()
        for start in range(0, 100, 10):
            payload = {(v, "dist"): float(v) for v in range(start,
                                                            start + 10)}
            assert (bounded.updates_bytes(payload)
                    == unbounded.updates_bytes(payload))
            assert len(bounded._sizes) <= 8
