"""Tests for the simulated cluster and load balancer."""

import pytest

from repro.runtime.cluster import LoadBalancer, SimulatedCluster
from repro.runtime.fault import FailureInjector, WorkerFailure
from repro.runtime.metrics import CostModel


class TestLoadBalancer:
    def test_single_physical(self):
        assert LoadBalancer().assign([1.0, 2.0, 3.0], 1) == [0, 0, 0]

    def test_greedy_balance(self):
        placement = LoadBalancer().assign([5.0, 4.0, 3.0, 2.0, 1.0, 1.0], 2)
        loads = [0.0, 0.0]
        for cost, phys in zip([5.0, 4.0, 3.0, 2.0, 1.0, 1.0], placement):
            loads[phys] += cost
        assert abs(loads[0] - loads[1]) <= 2.0

    def test_empty(self):
        assert LoadBalancer().assign([], 3) == []


class TestSimulatedCluster:
    def test_results_in_order(self):
        cluster = SimulatedCluster(2)
        results = cluster.run_superstep([lambda: "a", lambda: "b",
                                         lambda: "c"])
        assert results == ["a", "b", "c"]

    def test_metrics_accumulate(self):
        cluster = SimulatedCluster(2, cost_model=CostModel(
            sync_latency_s=0.0, seconds_per_byte=0.0))
        cluster.run_superstep([lambda: None], bytes_shipped=100,
                              num_messages=3)
        cluster.run_superstep([lambda: None], bytes_shipped=50,
                              num_messages=1)
        assert cluster.metrics.supersteps == 2
        assert cluster.metrics.comm_bytes == 150
        assert cluster.metrics.comm_messages == 4

    def test_reset_metrics(self):
        cluster = SimulatedCluster(1)
        cluster.run_superstep([lambda: None])
        cluster.reset_metrics()
        assert cluster.metrics.supersteps == 0

    def test_virtual_workers_fold_to_physical(self):
        """With 4 virtual tasks and 2 physical workers, parallel time is
        at most the sum of all tasks and at least the max task."""
        cluster = SimulatedCluster(2, cost_model=CostModel(
            sync_latency_s=0.0, seconds_per_byte=0.0))

        def busy():
            total = 0
            for i in range(20000):
                total += i
            return total

        cluster.run_superstep([busy] * 4)
        total = cluster.metrics.total_compute_s
        parallel = cluster.metrics.parallel_time_s
        assert parallel <= total
        assert parallel > 0

    def test_threads_executor(self):
        cluster = SimulatedCluster(2, executor="threads")
        results = cluster.run_superstep([lambda: 1, lambda: 2])
        assert results == [1, 2]

    def test_invalid_executor(self):
        with pytest.raises(ValueError):
            SimulatedCluster(2, executor="processes")

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            SimulatedCluster(0)

    def test_failure_raises_after_accounting(self):
        injector = FailureInjector(planned=[(0, 0)])
        cluster = SimulatedCluster(2, failure_injector=injector)
        with pytest.raises(WorkerFailure):
            cluster.run_superstep([lambda: 1, lambda: 2])
        # The superstep was still recorded (partial work happened).
        assert cluster.metrics.supersteps == 1
        # Replay succeeds: the planned failure fires only once.
        results = cluster.run_superstep([lambda: 1, lambda: 2])
        assert results == [1, 2]

    def test_account_payload(self):
        cluster = SimulatedCluster(1)
        assert cluster.account_payload([1, 2, 3]) > 0

    def test_repr(self):
        assert "SimulatedCluster" in repr(SimulatedCluster(3))
