"""stable_hash: the shuffle hash must not depend on PYTHONHASHSEED."""

import os
import subprocess
import sys
from pathlib import Path

from repro.runtime.message import stable_hash

SRC = str(Path(__file__).resolve().parents[2] / "src")

KEYS = ["alpha", "beta", ("compound", 3), 42, -7, 3.5, b"raw", True,
        frozenset({"x", "y"})]


class TestStableHash:
    def test_deterministic_within_process(self):
        for key in KEYS:
            assert stable_hash(key) == stable_hash(key)

    def test_types_do_not_collide_trivially(self):
        # "1", 1 and 1.0 route independently of builtin-hash equality.
        assert len({stable_hash("1"), stable_hash(1),
                    stable_hash(1.0), stable_hash(True)}) == 4

    def test_pinned_values(self):
        # Pin concrete values: any change to the hash silently re-routes
        # every key-value shuffle, so make it loud.
        assert stable_hash("alpha") == 4090494836
        assert stable_hash(42) == 1030464932
        assert stable_hash(("compound", 3)) == 1680217941

    def test_stable_across_hash_seeds(self):
        """Regression: builtin hash(str) varies with PYTHONHASHSEED, so the
        key-value shuffle routed nondeterministically between processes."""
        code = ("from repro.runtime.message import stable_hash;"
                "print([stable_hash(k) % 4 for k in "
                "['alpha', 'beta', ('compound', 3), 42]])")
        outputs = set()
        for seed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=SRC)
            proc = subprocess.run([sys.executable, "-c", code], env=env,
                                  capture_output=True, text=True, check=True)
            outputs.add(proc.stdout.strip())
        assert len(outputs) == 1, f"routing varied across seeds: {outputs}"
