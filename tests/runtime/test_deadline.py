"""Query deadlines and hung-worker detection at the engine layer.

Three enforcement points, one typed error: a budget overrun raises
:class:`~repro.resilience.errors.DeadlineExceeded` whether the run is
inline (checked at superstep boundaries) or on the process backend
(checked inside every pipe wait, so a worker stuck mid-superstep cannot
outlive the budget).  Independently, ``heartbeat_timeout_s`` detects a
*hung* worker — one whose heartbeat thread stopped stamping — kills it,
and recovers the run from the last checkpoint with identical answers.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.engine import GrapeEngine
from repro.graph.generators import grid_road_graph
from repro.pie_programs import SSSPProgram
from repro.resilience import DeadlineExceeded, FaultPlane
from repro.sequential import sssp_distances

needs_posix = pytest.mark.skipif(os.name != "posix",
                                 reason="worker kill semantics are POSIX")


@needs_posix
def test_hung_worker_is_killed_and_replaced():
    """Heartbeat-based detection: the hang pauses the worker's
    heartbeat thread (honest detection, not a side channel), the
    coordinator kills the frozen worker, and the run recovers from the
    superstep checkpoint with the fault-free answer."""
    g = grid_road_graph(6, 6, seed=3)
    plane = FaultPlane().plan("exec.step", "hang", key=0, at=2,
                              hang_s=30.0)
    engine = GrapeEngine(4, backend="process",
                         heartbeat_timeout_s=0.25, fault_plane=plane)
    result = engine.run(SSSPProgram(), query=0, graph=g)
    assert result.answer == pytest.approx(sssp_distances(g, 0))
    assert result.recoveries >= 1
    assert [k for (_s, _k, _o, k) in plane.fired] == ["hang"]


@needs_posix
def test_deadline_preempts_a_hung_worker():
    """Without heartbeat detection the budget is still a hard bound:
    the pipe wait notices the deadline, kills the stuck worker, and the
    typed error surfaces long before the hang would have ended."""
    g = grid_road_graph(6, 6, seed=3)
    plane = FaultPlane().plan("exec.step", "hang", key=0, at=1,
                              hang_s=5.0)
    engine = GrapeEngine(4, backend="process", deadline_s=0.4,
                         fault_plane=plane)
    start = time.monotonic()
    with pytest.raises(DeadlineExceeded) as info:
        engine.run(SSSPProgram(), query=0, graph=g)
    assert time.monotonic() - start < 3.0  # never waits out the hang
    assert info.value.budget_s == pytest.approx(0.4)


def test_deadline_enforced_inline_at_superstep_boundaries():
    g = grid_road_graph(6, 6, seed=3)
    plane = FaultPlane().plan("exec.step", "slow", at=1, times=50,
                              delay_s=0.1)
    engine = GrapeEngine(4, backend="serial", deadline_s=0.15,
                         fault_plane=plane)
    with pytest.raises(DeadlineExceeded, match="budget"):
        engine.run(SSSPProgram(), query=0, graph=g)


@needs_posix
def test_generous_budget_does_not_perturb_answers():
    g = grid_road_graph(6, 6, seed=3)
    engine = GrapeEngine(4, backend="process", deadline_s=120.0,
                         heartbeat_timeout_s=30.0)
    result = engine.run(SSSPProgram(), query=0, graph=g)
    assert result.answer == pytest.approx(sssp_distances(g, 0))
    assert result.recoveries == 0
