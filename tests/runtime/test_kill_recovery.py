"""End-to-end crash recovery: ``kill -9`` a pooled process-backend
worker mid-run and recover from disk checkpoints.

The PR-5 acceptance property: with disk checkpoints enabled
(``checkpoint_dir`` backed by the durable store's layout), a run whose
worker process is SIGKILLed mid-superstep is transparently recovered —
the engine re-opens its session on fresh pool workers, restores the last
consistent checkpoint from disk, replays the superstep, and finishes
with the *same answer and the same superstep count* as an uninterrupted
run.  This is real OS-level death, not an injected
:class:`~repro.runtime.fault.WorkerFailure`.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.core.engine import GrapeEngine
from repro.graph.generators import grid_road_graph
from repro.pie_programs import SSSPProgram
from repro.runtime.executors import WorkerProcessDied, resolve_backend
from repro.sequential import sssp_distances
from repro.store import GraphStore

pytestmark = pytest.mark.skipif(os.name != "posix",
                                reason="SIGKILL semantics are POSIX-only")


class KillOwnWorkerSSSP(SSSPProgram):
    """SSSP whose first IncEval SIGKILLs its own worker process.

    The marker file is the one-shot guard: it is written *before* the
    kill, so the replayed superstep (and every fragment on every other
    worker) runs normally.  Because the marker lives on the shared
    filesystem it also tells the test which pid died.
    """

    def __init__(self, marker: str):
        super().__init__()
        self.marker = marker

    def inceval(self, query, fragment, state, message):
        if not os.path.exists(self.marker):
            with open(self.marker, "w") as fh:
                fh.write(str(os.getpid()))
                fh.flush()
                os.fsync(fh.fileno())
            os.kill(os.getpid(), signal.SIGKILL)
        super().inceval(query, fragment, state, message)


def test_sigkilled_worker_recovers_from_disk_checkpoint(tmp_path):
    g = grid_road_graph(6, 6, seed=3)
    store = GraphStore(tmp_path / "store")
    marker = str(tmp_path / "killed.pid")

    clean = GrapeEngine(4, backend="process").run(
        SSSPProgram(), query=0, graph=g)

    engine = GrapeEngine(4, backend="process",
                         checkpoint_dir=str(store.checkpoint_dir("road")))
    result = engine.run(KillOwnWorkerSSSP(marker), query=0,
                        fragmentation=clean.fragmentation)

    # The kill really happened: the marker was written and that process
    # is gone (SIGKILL is unmaskable, so if the pid were still this
    # pool's worker it would have answered the next exchange instead).
    assert os.path.exists(marker)
    killed_pid = int(open(marker).read())
    assert killed_pid != os.getpid()

    assert result.recoveries >= 1
    assert result.answer == pytest.approx(sssp_distances(g, 0))
    assert result.answer == pytest.approx(clean.answer)
    # The aborted attempt is not recorded (no complete outcome set
    # exists for it), so the recovered run's logical account equals the
    # uninterrupted run's.
    assert result.supersteps == clean.supersteps
    assert result.metrics.recoveries == result.recoveries

    # The checkpoint the recovery used was a real file in the store's
    # checkpoint area (not an in-memory copy); the engine discards it
    # when the run ends, so the area holds no debris afterwards.
    assert list(store.checkpoint_dir("road").iterdir()) == []
    store.close()


def test_death_without_checkpoints_still_raises(tmp_path):
    """Without disk checkpoints the death is a hard error, as before."""
    g = grid_road_graph(4, 4, seed=1)
    marker = str(tmp_path / "killed.pid")
    engine = GrapeEngine(2, backend="process")
    with pytest.raises(WorkerProcessDied):
        engine.run(KillOwnWorkerSSSP(marker), query=0, graph=g)
    # the shared pool replaces dead workers on the next lease
    result = GrapeEngine(2, backend="process").run(SSSPProgram(), query=0,
                                                   graph=g)
    assert result.answer == pytest.approx(sssp_distances(g, 0))
