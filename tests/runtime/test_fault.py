"""Tests for fault injection and arbitrator recovery."""

import pytest

from repro.runtime.fault import Arbitrator, FailureInjector, WorkerFailure


class TestFailureInjector:
    def test_planned_fires_once(self):
        inj = FailureInjector(planned=[(1, 2)])
        assert not inj.should_fail(0, 2)
        assert inj.should_fail(1, 2)
        assert not inj.should_fail(1, 2)  # consumed
        assert inj.fired == [(1, 2)]

    def test_rate_zero_never_fires(self):
        inj = FailureInjector(rate=0.0)
        assert not any(inj.should_fail(w, s)
                       for w in range(4) for s in range(100))

    def test_rate_one_fires_until_cap(self):
        inj = FailureInjector(rate=1.0, max_failures=3)
        fires = sum(inj.should_fail(0, s) for s in range(10))
        assert fires == 3

    def test_rate_deterministic_with_seed(self):
        a = FailureInjector(rate=0.5, seed=42)
        b = FailureInjector(rate=0.5, seed=42)
        pattern_a = [a.should_fail(0, s) for s in range(20)]
        pattern_b = [b.should_fail(0, s) for s in range(20)]
        assert pattern_a == pattern_b

    def test_same_seed_records_identical_fired_lists(self):
        a = FailureInjector(rate=0.3, seed=7)
        b = FailureInjector(rate=0.3, seed=7)
        for inj in (a, b):
            for w in range(4):
                for s in range(30):
                    inj.should_fail(w, s)
        assert a.fired == b.fired
        assert a.fired  # the schedule actually fired something

    def test_different_seeds_give_different_schedules(self):
        a = FailureInjector(rate=0.5, seed=1)
        b = FailureInjector(rate=0.5, seed=2)
        pattern_a = [a.should_fail(0, s) for s in range(40)]
        pattern_b = [b.should_fail(0, s) for s in range(40)]
        assert pattern_a != pattern_b

    def test_max_failures_caps_fractional_rates(self):
        inj = FailureInjector(rate=0.5, seed=0, max_failures=4)
        fires = sum(inj.should_fail(w, s)
                    for w in range(8) for s in range(100))
        assert fires == 4
        assert len(inj.fired) == 4

    def test_planned_failures_count_toward_the_cap(self):
        inj = FailureInjector(planned=[(0, 1), (1, 1), (2, 1)],
                              max_failures=2)
        fires = sum(inj.should_fail(w, 1) for w in range(3))
        assert fires == 2

    def test_rate_mode_end_to_end_recovers_with_exact_answers(self):
        from repro.core.engine import GrapeEngine
        from repro.graph.generators import grid_road_graph
        from repro.pie_programs import SSSPProgram
        from repro.sequential import sssp_distances

        g = grid_road_graph(6, 6, seed=3)
        inj = FailureInjector(rate=0.15, seed=11, max_failures=5)
        result = GrapeEngine(4, backend="serial",
                             failure_injector=inj).run(
            SSSPProgram(), query=0, graph=g)
        assert inj.fired  # the seeded schedule really injected failures
        # Failures landing in the same superstep share one recovery.
        assert 1 <= result.recoveries <= len(inj.fired)
        assert result.answer == pytest.approx(sssp_distances(g, 0))


class TestWorkerFailure:
    def test_attributes(self):
        err = WorkerFailure(worker=3, superstep=7)
        assert err.worker == 3
        assert err.superstep == 7
        assert "worker 3" in str(err)


class TestArbitrator:
    def test_no_checkpoint_initially(self):
        assert not Arbitrator().has_checkpoint

    def test_checkpoint_restore_round_trip(self):
        arb = Arbitrator()
        state = {0: {"dist": {1: 2.0}}, 1: {"dist": {}}}
        arb.checkpoint(state)
        restored = arb.restore()
        assert restored == state
        assert arb.recoveries == 1

    def test_restore_is_deep_copy(self):
        arb = Arbitrator()
        state = {0: {"values": [1, 2]}}
        arb.checkpoint(state)
        state[0]["values"].append(3)  # mutate after checkpoint
        restored = arb.restore()
        assert restored[0]["values"] == [1, 2]
        restored[0]["values"].append(9)  # mutating restored is safe too
        assert arb.restore()[0]["values"] == [1, 2]

    def test_recoveries_counted(self):
        arb = Arbitrator()
        arb.checkpoint({0: 1})
        arb.restore()
        arb.restore()
        assert arb.recoveries == 2


class TestDiskArbitrator:
    def test_round_trip(self, tmp_path):
        arb = Arbitrator(checkpoint_dir=tmp_path / "ckpt")
        state = {0: {"dist": {1: 2.0}}, 1: {"dist": {}}}
        arb.checkpoint(state)
        assert arb.has_checkpoint
        assert arb.checkpoint_path.is_file()
        restored = arb.restore()
        assert restored == state
        assert arb.recoveries == 1

    def test_restore_is_independent_copy(self, tmp_path):
        arb = Arbitrator(checkpoint_dir=tmp_path)
        state = {0: {"values": [1, 2]}}
        arb.checkpoint(state)
        state[0]["values"].append(3)
        restored = arb.restore()
        assert restored[0]["values"] == [1, 2]
        restored[0]["values"].append(9)
        assert arb.restore()[0]["values"] == [1, 2]

    def test_no_checkpoint_until_written(self, tmp_path):
        arb = Arbitrator(checkpoint_dir=tmp_path)
        assert not arb.has_checkpoint

    def test_instances_are_isolated(self, tmp_path):
        """Concurrent runs sharing one checkpoint directory must never
        see (or clobber) each other's checkpoints: every instance owns
        a unique file."""
        a = Arbitrator(checkpoint_dir=tmp_path)
        b = Arbitrator(checkpoint_dir=tmp_path)
        a.checkpoint({0: "alpha"})
        assert a.has_checkpoint and not b.has_checkpoint
        b.checkpoint({0: "beta"})
        assert a.restore() == {0: "alpha"}
        assert b.restore() == {0: "beta"}

    def test_discard_removes_file(self, tmp_path):
        arb = Arbitrator(checkpoint_dir=tmp_path)
        arb.checkpoint({0: 1})
        path = arb.checkpoint_path
        assert path.is_file()
        arb.discard()
        assert not path.exists() and not arb.has_checkpoint
        arb.discard()  # idempotent

    def test_atomic_overwrite(self, tmp_path):
        arb = Arbitrator(checkpoint_dir=tmp_path)
        arb.checkpoint({0: "first"})
        arb.checkpoint({0: "second"})
        assert arb.restore() == {0: "second"}
        # no stray temp files left behind
        leftovers = [p for p in tmp_path.iterdir()
                     if p != arb.checkpoint_path]
        assert leftovers == []

    def test_checkpoints_written_counted(self, tmp_path):
        arb = Arbitrator(checkpoint_dir=tmp_path)
        arb.checkpoint({0: 1})
        arb.checkpoint({0: 2})
        assert arb.checkpoints_written == 2
