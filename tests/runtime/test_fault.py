"""Tests for fault injection and arbitrator recovery."""

import pytest

from repro.runtime.fault import Arbitrator, FailureInjector, WorkerFailure


class TestFailureInjector:
    def test_planned_fires_once(self):
        inj = FailureInjector(planned=[(1, 2)])
        assert not inj.should_fail(0, 2)
        assert inj.should_fail(1, 2)
        assert not inj.should_fail(1, 2)  # consumed
        assert inj.fired == [(1, 2)]

    def test_rate_zero_never_fires(self):
        inj = FailureInjector(rate=0.0)
        assert not any(inj.should_fail(w, s)
                       for w in range(4) for s in range(100))

    def test_rate_one_fires_until_cap(self):
        inj = FailureInjector(rate=1.0, max_failures=3)
        fires = sum(inj.should_fail(0, s) for s in range(10))
        assert fires == 3

    def test_rate_deterministic_with_seed(self):
        a = FailureInjector(rate=0.5, seed=42)
        b = FailureInjector(rate=0.5, seed=42)
        pattern_a = [a.should_fail(0, s) for s in range(20)]
        pattern_b = [b.should_fail(0, s) for s in range(20)]
        assert pattern_a == pattern_b


class TestWorkerFailure:
    def test_attributes(self):
        err = WorkerFailure(worker=3, superstep=7)
        assert err.worker == 3
        assert err.superstep == 7
        assert "worker 3" in str(err)


class TestArbitrator:
    def test_no_checkpoint_initially(self):
        assert not Arbitrator().has_checkpoint

    def test_checkpoint_restore_round_trip(self):
        arb = Arbitrator()
        state = {0: {"dist": {1: 2.0}}, 1: {"dist": {}}}
        arb.checkpoint(state)
        restored = arb.restore()
        assert restored == state
        assert arb.recoveries == 1

    def test_restore_is_deep_copy(self):
        arb = Arbitrator()
        state = {0: {"values": [1, 2]}}
        arb.checkpoint(state)
        state[0]["values"].append(3)  # mutate after checkpoint
        restored = arb.restore()
        assert restored[0]["values"] == [1, 2]
        restored[0]["values"].append(9)  # mutating restored is safe too
        assert arb.restore()[0]["values"] == [1, 2]

    def test_recoveries_counted(self):
        arb = Arbitrator()
        arb.checkpoint({0: 1})
        arb.restore()
        arb.restore()
        assert arb.recoveries == 2
