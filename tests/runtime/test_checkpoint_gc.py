"""Arbitrator startup GC of stale disk checkpoints.

A coordinator that crashes between ``checkpoint()`` and ``discard()``
leaks its file.  File names embed the owner's pid, so opening the
directory removes any checkpoint whose process no longer exists and
leaves live owners' files alone.
"""

from __future__ import annotations

import os
import subprocess

from repro.runtime.fault import Arbitrator


def _dead_pid() -> int:
    proc = subprocess.Popen(["sleep", "0"])
    proc.wait()
    return proc.pid


def test_stale_checkpoints_are_collected_on_startup(tmp_path):
    stale = tmp_path / f"checkpoint-{_dead_pid()}-abcd.ckpt"
    stale.write_bytes(b"debris")
    live = tmp_path / f"checkpoint-{os.getpid()}-ffff.ckpt"
    live.write_bytes(b"mine")
    other = tmp_path / "not-a-checkpoint.ckpt"
    other.write_bytes(b"unrelated")

    arb = Arbitrator(checkpoint_dir=tmp_path)
    assert arb.stale_discarded == 1
    assert not stale.exists()
    assert live.exists()          # owner (this process) is alive
    assert other.exists()         # unrecognized names are never touched


def test_own_instances_never_collect_each_other(tmp_path):
    first = Arbitrator(checkpoint_dir=tmp_path)
    first.checkpoint({0: {"d": 1.0}})
    second = Arbitrator(checkpoint_dir=tmp_path)
    assert second.stale_discarded == 0
    assert first.has_checkpoint
    assert first.restore() == {0: {"d": 1.0}}


def test_memory_mode_has_nothing_to_collect():
    arb = Arbitrator()
    assert arb.stale_discarded == 0
