"""Unit tests for the pluggable executor backends."""

import pytest

from repro.core.engine import EngineConfig, GrapeEngine
from repro.graph.generators import uniform_random_graph
from repro.pie_programs import SSSPProgram
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.executors import (BACKEND_ENV_VAR, ProcessBackend,
                                     SerialBackend, ThreadBackend,
                                     available_backends, resolve_backend)
from repro.runtime.fault import FailureInjector


class ExplodingError(RuntimeError):
    """Custom exception type to verify worker errors keep their type."""


class ExplodingProgram(SSSPProgram):
    """Module-level (picklable); blows up during partial evaluation."""

    def peval(self, query, fragment, state):
        raise ExplodingError(f"boom in peval of fragment {fragment.fid}")


class TestResolution:
    def test_canonical_names(self):
        assert available_backends() == ["process", "serial", "thread"]

    @pytest.mark.parametrize("alias,cls", [
        ("serial", SerialBackend), ("sync", SerialBackend),
        ("thread", ThreadBackend), ("threads", ThreadBackend),
        ("process", ProcessBackend), ("mp", ProcessBackend),
        ("Process", ProcessBackend),  # case-insensitive
    ])
    def test_aliases(self, alias, cls):
        assert isinstance(resolve_backend(alias), cls)

    def test_named_lookup_is_shared(self):
        assert resolve_backend("process") is resolve_backend("mp")
        assert resolve_backend("serial") is resolve_backend("serial")

    def test_instances_pass_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu")
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_none_reads_environment(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None).name == "serial"
        monkeypatch.setenv(BACKEND_ENV_VAR, "thread")
        assert resolve_backend(None).name == "thread"

    def test_engine_env_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        assert GrapeEngine(2)._resolve_backend().name == "process"
        # explicit choices beat the environment
        assert GrapeEngine(2, backend="serial")._resolve_backend().name \
            == "serial"
        assert GrapeEngine(2, executor="threads")._resolve_backend().name \
            == "thread"

    def test_config_carries_backend(self):
        config = EngineConfig(backend="thread")
        assert config.build()._resolve_backend().name == "thread"


class TestFaultInjectionGate:
    def test_explicit_process_plus_injector_raises(self):
        engine = GrapeEngine(2, backend="process",
                             failure_injector=FailureInjector())
        with pytest.raises(ValueError, match="inline backend"):
            engine._resolve_backend()

    def test_env_process_plus_injector_falls_back(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        engine = GrapeEngine(2, failure_injector=FailureInjector())
        assert engine._resolve_backend().name == "serial"


class TestClosureTasks:
    def test_cluster_delegates_to_inline_backend(self):
        cluster = SimulatedCluster(2, backend="thread")
        results = cluster.run_superstep([lambda: 1, lambda: 2, lambda: 3])
        assert results == [1, 2, 3]
        assert cluster.metrics.supersteps == 1

    def test_process_backend_rejects_closures(self):
        cluster = SimulatedCluster(2, backend="process")
        with pytest.raises(TypeError, match="process boundary"):
            cluster.run_superstep([lambda: 1])

    def test_executor_threads_compat_maps_to_thread_backend(self):
        cluster = SimulatedCluster(2, executor="threads")
        assert cluster.backend.name == "thread"
        assert cluster.run_superstep([lambda: 7]) == [7]


class TestProcessPool:
    def test_pool_reuse_and_fragment_cache(self):
        backend = ProcessBackend()
        try:
            graph = uniform_random_graph(60, 200, seed=3)
            engine = GrapeEngine(2, backend=backend)
            frag = engine.make_fragmentation(graph)

            first = engine.run(SSSPProgram(), 0, fragmentation=frag)
            size_after_first = backend.pool_size
            second = engine.run(SSSPProgram(), 5, fragmentation=frag)

            assert first.answer == GrapeEngine(2).run(
                SSSPProgram(), 0, fragmentation=frag).answer
            # the pool persists across runs instead of respawning
            assert backend.pool_size == size_after_first
            # fragments were cached worker-side: the second run ships
            # only commands/messages, so it moves far fewer pipe bytes
            assert second.metrics.pipe_bytes < first.metrics.pipe_bytes
        finally:
            backend.close()

    def test_worker_fragment_cache_is_bounded(self):
        """A pool serving many distinct graphs must not accumulate them
        all: the per-worker cache is LRU-bounded (coordinator mirror
        checked here; the worker applies the identical policy)."""
        from repro.runtime.executors import (_WORKER_CACHE_TOKENS,
                                             _evict_cached)
        backend = ProcessBackend()
        try:
            engine = GrapeEngine(1, backend=backend)
            for seed in range(_WORKER_CACHE_TOKENS + 4):
                engine.run(SSSPProgram(), 0,
                           graph=uniform_random_graph(20, 50, seed=seed))
            with backend._lock:
                handles = list(backend._idle)
            assert handles
            for handle in handles:
                assert len(handle.cached) <= _WORKER_CACHE_TOKENS
        finally:
            backend.close()

        # the policy itself: recency refresh + same-base eviction
        cache = {(i, 0): {"frags"} for i in range(_WORKER_CACHE_TOKENS)}
        _evict_cached(cache, (0, 0))        # refresh token (0, 0)
        cache[(99, 0)] = {"frags"}
        _evict_cached(cache, (99, 0))       # overflow evicts oldest…
        assert (1, 0) not in cache
        assert (0, 0) in cache              # …not the refreshed one
        _evict_cached(cache, (99, 1))       # new version evicts old one
        assert (99, 0) not in cache

    def test_mutation_bumps_cache_token(self):
        from repro.core.updates import apply_insertions
        graph = uniform_random_graph(40, 120, seed=5)
        frag = GrapeEngine(2).make_fragmentation(graph)
        token = frag.cache_token
        apply_insertions(frag, [(0, 1, 0.01)])
        assert frag.cache_token != token

    def test_mutation_delta_ships_instead_of_reshipping(self):
        """After apply_delta, the next lease brings worker copies
        current by per-fragment delta replay: zero full re-ships, a
        little delta traffic, identical answers.  Pinned to the pickle
        shipping path (use_shm=False) so the byte comparison measures
        delta replay against a real full ship."""
        from repro.core.updates import apply_delta
        from repro.graph.delta import GraphDelta

        backend = ProcessBackend(use_shm=False)
        try:
            graph = uniform_random_graph(60, 200, seed=3)
            engine = GrapeEngine(2, backend=backend)
            frag = engine.make_fragmentation(graph)

            first = engine.run(SSSPProgram(), 0, fragmentation=frag)
            assert first.metrics.fragments_shipped > 0
            assert first.metrics.fragments_delta_shipped == 0

            u, v, _w = next(iter(graph.edges()))
            apply_delta(frag, GraphDelta().delete(u, v)
                        .insert(0, "fresh", 0.2))

            second = engine.run(SSSPProgram(), 0, fragmentation=frag)
            assert second.metrics.fragments_shipped == 0
            assert second.metrics.fragments_delta_shipped > 0
            assert second.metrics.delta_bytes_shipped > 0
            # delta replay moves far fewer bytes than the initial ship
            assert second.metrics.pipe_bytes < first.metrics.pipe_bytes
            # and the replayed fragments compute the same answer as a
            # coordinator-side (serial) run on the mutated fragmentation
            serial = GrapeEngine(2).run(SSSPProgram(), 0,
                                        fragmentation=frag)
            assert second.answer == serial.answer
        finally:
            backend.close()

    def test_log_gap_falls_back_to_full_reship(self):
        from repro.core.updates import apply_delta
        from repro.graph.delta import GraphDelta

        backend = ProcessBackend()
        try:
            graph = uniform_random_graph(40, 120, seed=9)
            engine = GrapeEngine(2, backend=backend)
            frag = engine.make_fragmentation(graph)
            engine.run(SSSPProgram(), 0, fragmentation=frag)

            frag.bump_version()  # version moved with no logged delta
            apply_delta(frag, GraphDelta().insert(0, "n", 0.5))

            rerun = engine.run(SSSPProgram(), 0, fragmentation=frag)
            assert rerun.metrics.fragments_delta_shipped == 0
            assert rerun.metrics.fragments_shipped > 0
            serial = GrapeEngine(2).run(SSSPProgram(), 0,
                                        fragmentation=frag)
            assert rerun.answer == serial.answer
        finally:
            backend.close()

    def test_close_stops_workers(self):
        backend = ProcessBackend()
        graph = uniform_random_graph(30, 80, seed=1)
        engine = GrapeEngine(2, backend=backend)
        engine.run(SSSPProgram(), 0, graph=graph)
        assert backend.pool_size > 0
        backend.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.run(SSSPProgram(), 0, graph=graph)

    def test_worker_exception_preserves_type_and_pool_survives(self):
        backend = ProcessBackend()
        try:
            graph = uniform_random_graph(30, 80, seed=1)
            engine = GrapeEngine(2, backend=backend)
            with pytest.raises(ExplodingError, match="boom in peval"):
                # raised worker-side; the type must survive the pipe
                engine.run(ExplodingProgram(), 0, graph=graph)
            # and the pool stays usable afterwards
            result = engine.run(SSSPProgram(), 0, graph=graph)
            assert result.supersteps >= 1
        finally:
            backend.close()


class TestMetricsPlumbing:
    def test_pipe_bytes_zero_for_inline(self):
        graph = uniform_random_graph(50, 150, seed=2)
        for backend in ("serial", "thread"):
            result = GrapeEngine(2, backend=backend).run(
                SSSPProgram(), 0, graph=graph)
            assert result.metrics.backend == backend
            assert result.metrics.pipe_bytes == 0
            assert result.metrics.wall_clock_s > 0

    def test_pipe_bytes_positive_for_process(self):
        graph = uniform_random_graph(50, 150, seed=2)
        result = GrapeEngine(2, backend="process").run(
            SSSPProgram(), 0, graph=graph)
        assert result.metrics.backend == "process"
        assert result.metrics.pipe_bytes > 0

    def test_merge_tracks_backend_and_pipe(self):
        from repro.runtime.metrics import RunMetrics
        a = RunMetrics(backend="process", pipe_bytes=10, wall_clock_s=1.0)
        b = RunMetrics(backend="process", pipe_bytes=5, wall_clock_s=0.5)
        merged = a.merge(b)
        assert merged.backend == "process"
        assert merged.pipe_bytes == 15
        assert merged.wall_clock_s == 1.5
        assert a.merge(RunMetrics(backend="serial")).backend == "mixed"


class TestSharedMemoryPlane:
    """The zero-copy fragment plane: descriptor shipping, graceful
    fallback, and arena refcount hygiene."""

    needs_shm = pytest.mark.skipif(
        not __import__("repro.runtime.shm", fromlist=["shm_available"]
                       ).shm_available(),
        reason="no shared-memory provider here")

    @needs_shm
    def test_cold_lease_ships_descriptors_not_bytes(self):
        backend = ProcessBackend()
        try:
            graph = uniform_random_graph(60, 200, seed=21)
            engine = GrapeEngine(2, backend=backend)
            frag = engine.make_fragmentation(graph)
            result = engine.run(SSSPProgram(), 0, fragmentation=frag)
            # fragments were transferred (descriptors), but no fragment
            # pickle bytes crossed the pipe
            assert result.metrics.fragments_shipped > 0
            assert result.metrics.fragment_bytes_shipped == 0
            assert result.metrics.shm_fallbacks == 0
            assert result.metrics.shm_segments_active > 0
            assert result.metrics.shm_bytes_mapped > 0
            # control plane is the whole pipe story
            assert (result.metrics.control_plane_bytes
                    == result.metrics.pipe_bytes)
            serial = GrapeEngine(2).run(SSSPProgram(), 0,
                                        fragmentation=frag)
            assert result.answer == serial.answer
        finally:
            backend.close()

    def test_use_shm_false_ships_pickled_fragments(self):
        backend = ProcessBackend(use_shm=False)
        try:
            graph = uniform_random_graph(50, 160, seed=22)
            engine = GrapeEngine(2, backend=backend)
            result = engine.run(SSSPProgram(), 0, graph=graph)
            assert result.metrics.fragments_shipped > 0
            assert result.metrics.fragment_bytes_shipped > 0
            assert result.metrics.shm_fallbacks == 0
            assert result.metrics.shm_segments_active == 0
            assert backend.shm_stats() == (0, 0)
        finally:
            backend.close()

    @needs_shm
    def test_attach_fault_degrades_to_pickle_with_same_answer(self):
        from repro.resilience.faults import FaultPlane, installed

        backend = ProcessBackend()
        try:
            graph = uniform_random_graph(50, 170, seed=23)
            engine = GrapeEngine(2, backend=backend)
            frag = engine.make_fragmentation(graph)
            plane = FaultPlane(seed=3).plan("exec.shm.attach", "error",
                                            at=1, times=8)
            with installed(plane):
                faulted = engine.run(SSSPProgram(), 0, fragmentation=frag)
            assert faulted.metrics.shm_fallbacks > 0
            assert faulted.metrics.fragment_bytes_shipped > 0
            serial = GrapeEngine(2).run(SSSPProgram(), 0,
                                        fragmentation=frag)
            assert faulted.answer == serial.answer
            # the next (fault-free) lease reuses the worker cache: no
            # re-ship, no new fallbacks
            clean = engine.run(SSSPProgram(), 0, fragmentation=frag)
            assert clean.metrics.shm_fallbacks == 0
            assert clean.metrics.fragment_bytes_shipped == 0
            assert clean.answer == serial.answer
        finally:
            backend.close()

    @needs_shm
    def test_weight_only_delta_keeps_worker_csr(self):
        from repro.core.updates import apply_delta
        from repro.graph.delta import GraphDelta

        backend = ProcessBackend()
        try:
            graph = uniform_random_graph(60, 220, seed=24)
            engine = GrapeEngine(2, backend=backend)
            frag = engine.make_fragmentation(graph)
            engine.run(SSSPProgram(), 0, fragmentation=frag)
            built = frag.csr_snapshots_built
            publishes = backend._arena.publishes
            u, v, w = next(iter(graph.edges()))
            apply_delta(frag, GraphDelta().set_weight(u, v, w + 0.75))
            assert backend._arena.patches >= 1
            result = engine.run(SSSPProgram(), 0, fragmentation=frag)
            # replayed via deltas, arrays patched in place: no re-ship,
            # no republish, no CSR rebuild anywhere
            assert result.metrics.fragments_shipped == 0
            assert result.metrics.fragments_delta_shipped > 0
            assert result.metrics.fragment_bytes_shipped == 0
            assert backend._arena.publishes == publishes
            assert frag.csr_snapshots_built == built
            serial = GrapeEngine(2).run(SSSPProgram(), 0,
                                        fragmentation=frag)
            assert result.answer == serial.answer
        finally:
            backend.close()

    @needs_shm
    def test_arena_refcounts_drain_on_close(self):
        backend = ProcessBackend(max_workers=1)
        try:
            engine = GrapeEngine(2, backend=backend)
            # churn more fragmentations than the worker cache holds so
            # LRU eviction must release pins along the way
            for seed in range(10):
                graph = uniform_random_graph(25, 70, seed=seed)
                engine.run(SSSPProgram(), 0, graph=graph)
        finally:
            backend.close()
        assert backend._arena.ref_leaks == 0
        assert backend.shm_stats() == (0, 0)
