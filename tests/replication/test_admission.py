"""Admission control and multi-query grouping: the HA serving knobs."""

from __future__ import annotations

import threading
import time

import pytest

from repro.graph.generators import uniform_random_graph
from repro.optim.grouping import QueryGrouper
from repro.replication import AdmissionController, AdmissionRejected
from repro.service import GrapeService


class TestAdmissionController:
    def test_admits_up_to_cap(self):
        ctrl = AdmissionController(max_concurrent=2, max_queue=0)
        a = ctrl.admit("g")
        b = ctrl.admit("g")
        with pytest.raises(AdmissionRejected) as exc:
            ctrl.admit("g")
        assert exc.value.graph == "g"
        assert exc.value.running == 2
        assert exc.value.max_concurrent == 2
        a.release()
        c = ctrl.admit("g")  # slot freed -> admitted again
        b.release()
        c.release()
        assert ctrl.sheds == 1
        assert ctrl.admissions == 3

    def test_caps_are_per_graph(self):
        ctrl = AdmissionController(max_concurrent=1, max_queue=0)
        a = ctrl.admit("g1")
        b = ctrl.admit("g2")  # different graph: own budget
        a.release()
        b.release()
        assert ctrl.sheds == 0

    def test_queue_admits_when_slot_frees(self):
        ctrl = AdmissionController(max_concurrent=1, max_queue=4)
        slot = ctrl.admit("g")
        admitted = []

        def waiter():
            with ctrl.admit("g"):
                admitted.append(threading.current_thread().name)

        threads = [threading.Thread(target=waiter) for _ in range(3)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        assert ctrl.queued("g") == 3
        assert not admitted
        slot.release()
        for t in threads:
            t.join(timeout=10)
        assert len(admitted) == 3

    def test_queue_timeout_sheds(self):
        ctrl = AdmissionController(max_concurrent=1, max_queue=2,
                                   queue_timeout=0.05)
        slot = ctrl.admit("g")
        with pytest.raises(AdmissionRejected, match="queued >"):
            ctrl.admit("g")
        slot.release()

    def test_burst_of_4x_cap_sheds_instead_of_deadlocking(self):
        """The acceptance property in miniature: cap C, queue C, burst
        4C.  C run, C wait, 2C shed immediately; everyone terminates."""
        cap = 2
        ctrl = AdmissionController(max_concurrent=cap, max_queue=cap)
        gate = threading.Event()
        outcomes = []

        def query(i):
            try:
                with ctrl.admit("g"):
                    gate.wait(timeout=30)
                outcomes.append("ran")
            except AdmissionRejected:
                outcomes.append("shed")

        threads = [threading.Thread(target=query, args=(i,))
                   for i in range(4 * cap)]
        for t in threads:
            t.start()
        deadline = time.time() + 5
        while len(outcomes) < 2 * cap and time.time() < deadline:
            time.sleep(0.01)  # the overflow sheds arrive immediately
        gate.set()
        for t in threads:
            t.join(timeout=30)
        assert len(outcomes) == 4 * cap
        assert outcomes.count("shed") == 2 * cap
        assert outcomes.count("ran") == 2 * cap
        assert ctrl.sheds == 2 * cap

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrent=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)


class TestQueryGrouper:
    def test_leader_then_followers_share_result(self):
        grouper = QueryGrouper()
        key = QueryGrouper.key_for("g", "sssp", 0, {})
        group, leader = grouper.lead_or_join(key)
        assert leader
        _g2, leader2 = grouper.lead_or_join(key)
        assert _g2 is group and not leader2
        grouper.finish(group, "answer")
        assert group.wait(timeout=1) == "answer"
        assert grouper.grouped_queries == 1

    def test_retired_group_is_not_joined(self):
        grouper = QueryGrouper()
        key = QueryGrouper.key_for("g", "sssp", 0, {})
        group, _ = grouper.lead_or_join(key)
        grouper.finish(group, "answer")
        fresh, leader = grouper.lead_or_join(key)
        assert leader and fresh is not group

    def test_leader_error_propagates_to_followers(self):
        grouper = QueryGrouper()
        key = QueryGrouper.key_for("g", "sssp", 0, {})
        group, _ = grouper.lead_or_join(key)
        grouper.lead_or_join(key)
        boom = RuntimeError("engine died")
        grouper.finish(group, None, boom)
        with pytest.raises(RuntimeError, match="engine died"):
            group.wait(timeout=1)

    def test_unhashable_query_opts_out(self):
        assert QueryGrouper.key_for("g", "sim", {"a": 1}, {}) is None
        assert QueryGrouper.key_for("g", "sssp", 0, {}) is not None


class TestServiceIntegration:
    @pytest.fixture
    def graph(self):
        return uniform_random_graph(60, 180, directed=False, seed=11)

    def test_grouped_queries_share_one_engine_run(self, graph):
        """N identical concurrent queries: followers are counted in
        ``queries_grouped`` and the engine's superstep total is that of
        the leader's single run — the metric-level proof of sharing."""
        with GrapeService(concurrency=8) as service:
            service.load_graph("soc", graph)
            solo = service.play("sssp", 0, graph="soc")
            solo_supersteps = solo.metrics.supersteps
            before = service.stats.supersteps_total

            # Hold the graph's write lock so every submitted query
            # blocks at the same point and the joins are deterministic.
            glock = service._graph_lock("soc")
            tickets = []
            with glock.write():
                tickets = [service.submit("sssp", 0, graph="soc")
                           for _ in range(6)]
                time.sleep(0.2)  # let all six reach the grouper
            for t in tickets:
                assert t.result(timeout=60) == solo.answer
            assert service.stats.queries_grouped == 5
            assert (service.stats.supersteps_total - before
                    == solo_supersteps)
            assert service.stats.queries_served == 1 + 6

    def test_distinct_queries_do_not_group(self, graph):
        with GrapeService(concurrency=4) as service:
            service.load_graph("soc", graph)
            tickets = [service.submit("sssp", q, graph="soc")
                       for q in range(4)]
            for t in tickets:
                t.result(timeout=60)
            assert service.stats.queries_grouped == 0

    def test_admission_wired_through_service(self, graph):
        """A burst of 4x the cap on the service: every ticket resolves,
        the overflow resolves to a *typed* rejection."""
        ctrl = AdmissionController(max_concurrent=1, max_queue=1)
        with GrapeService(admission=ctrl, concurrency=8,
                          grouping=False) as service:
            service.load_graph("soc", graph)
            service.play("sssp", 0, graph="soc")  # warm the frag cache
            tickets = [service.submit("sssp", q, graph="soc")
                       for q in range(8)]
            outcomes = {"done": 0, "shed": 0}
            for t in tickets:
                assert t.wait(timeout=120), "admission deadlocked"
                if t.status == "done":
                    outcomes["done"] += 1
                else:
                    assert isinstance(t.error, AdmissionRejected)
                    outcomes["shed"] += 1
            assert outcomes["shed"] >= 1
            assert outcomes["done"] >= 2  # cap + queue at least
            assert service.stats.queries_shed == outcomes["shed"]
            assert ctrl.sheds == outcomes["shed"]

    def test_shed_query_play_raises_typed(self, graph):
        ctrl = AdmissionController(max_concurrent=1, max_queue=0)
        with GrapeService(admission=ctrl, grouping=False) as service:
            service.load_graph("soc", graph)
            service.play("sssp", 0, graph="soc")
            slot = ctrl.admit("soc")  # occupy the only slot
            with pytest.raises(AdmissionRejected):
                service.play("sssp", 1, graph="soc")
            slot.release()
            assert service.play("sssp", 1, graph="soc").answer
