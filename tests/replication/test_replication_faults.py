"""Injected replication faults: tail stalls and the promote race.

A stalled tail leaves the replica's cursor where it was — the next poll
resumes with nothing skipped.  A coordinator crash inside failover's
fence→publish window leaves the epoch bumped with *no* leader: the old
primary stays fenced, and re-running promote completes the failover at
a fresh epoch with nothing lost.
"""

from __future__ import annotations

import time

import pytest

from repro.graph.delta import GraphDelta
from repro.graph.generators import uniform_random_graph
from repro.replication import (FailoverCoordinator, ReplicaService,
                               read_epoch)
from repro.resilience import FailoverInterrupted, FaultPlane
from repro.resilience.faults import installed
from repro.sequential import sssp_distances
from repro.service import GrapeService


def make_primary(tmp_path, **kwargs):
    g = uniform_random_graph(40, 130, directed=False, seed=23)
    primary = GrapeService(store_dir=tmp_path / "store", node_id="primary",
                           **kwargs)
    primary.load_graph("soc", g)
    return primary, g


class TestTailStall:
    def test_stalled_poll_resumes_without_skipping(self, tmp_path):
        primary, g = make_primary(tmp_path)
        replica = ReplicaService(tmp_path / "store", replica_id="r1")
        primary.update("soc", GraphDelta().insert(0, 999, 0.5))

        plane = FaultPlane().plan("replication.tail", "stall",
                                  key="soc", at=1)
        with installed(plane):
            assert replica.sync() == 0       # the stall ate this poll
            assert replica.lag_bytes("soc") > 0
            assert replica.sync() >= 1       # next poll resumes cleanly
        assert plane.drained()
        assert replica.lag_bytes("soc") == 0
        assert (replica.play("sssp", 0, graph="soc").answer
                == primary.play("sssp", 0, graph="soc").answer)
        replica.close()
        primary.close()


class TestPromoteRace:
    def _fenced_setup(self, tmp_path):
        primary, g = make_primary(tmp_path)
        root = tmp_path / "store"
        replica = ReplicaService(root, replica_id="r1")
        for i in range(3):
            primary.insert_edges("soc", [(i, 1000 + i, 0.5)])
            replica.sync()
        primary.close()
        return root, replica, g

    def test_crash_between_fence_and_publish_is_recoverable(self, tmp_path):
        root, replica, g = self._fenced_setup(tmp_path)
        coord = FailoverCoordinator(root)

        plane = FaultPlane().plan("replication.promote", "crash", at=1)
        with installed(plane):
            with pytest.raises(FailoverInterrupted, match="no leader"):
                coord.promote([replica])
        # Fenced but leaderless: the epoch moved, nobody was promoted.
        assert read_epoch(root) == (1, None)
        assert not replica.promoted

        # The restarted coordinator completes at a fresh epoch.
        winner = coord.promote([replica])
        assert winner is replica and replica.promoted
        assert read_epoch(root) == (2, "r1")
        # Nothing acked was lost across the interrupted failover.
        answer = winner.play("sssp", 0, graph="soc").answer
        assert answer == pytest.approx(
            sssp_distances(winner.graph("soc"), 0))
        assert winner.graph("soc").has_edge(2, 1002)
        winner.close()

    def test_delay_widens_the_window_but_completes(self, tmp_path):
        root, replica, _g = self._fenced_setup(tmp_path)
        plane = FaultPlane().plan("replication.promote", "delay", at=1,
                                  delay_s=0.05)
        start = time.monotonic()
        with installed(plane):
            winner = FailoverCoordinator(root).promote([replica])
        assert time.monotonic() - start >= 0.05
        assert winner is replica and replica.promoted
        assert read_epoch(root) == (1, "r1")
        winner.close()
