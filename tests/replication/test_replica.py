"""ReplicaService: bootstrap, tailing, lag, rollover, re-bootstrap.

The tentpole behavior: a replica warm-starts from the primary's durable
chain and stays current by *replaying updates*, serving reads (and
maintaining standing watches) whose answers are equal to the primary's.
"""

from __future__ import annotations

import random

import pytest

from repro.graph.delta import GraphDelta
from repro.graph.generators import uniform_random_graph
from repro.replication import ReadOnlyReplicaError, ReplicaService
from repro.sequential import sssp_distances
from repro.service import GrapeService


def make_primary(tmp_path, seed=23, **kwargs):
    g = uniform_random_graph(40, 130, directed=False, seed=seed)
    primary = GrapeService(store_dir=tmp_path / "store", node_id="primary",
                           **kwargs)
    primary.load_graph("soc", g)
    return primary, g


def mixed_batch(g, rng, i):
    """One mixed batch: an insertion, plus (rotating) a deletion or a
    reweight against a live edge."""
    delta = GraphDelta().insert(rng.randrange(40), 1000 + i,
                                round(rng.uniform(0.1, 1.0), 3))
    edges = sorted(g.edges())
    u, v, w = edges[rng.randrange(len(edges))]
    if i % 3 == 0:
        delta.delete(u, v)
    elif i % 3 == 1:
        delta.set_weight(u, v, round(w * rng.uniform(0.25, 4.0), 3))
    return delta


class TestBootstrapAndTail:
    def test_replica_serves_without_parsing_or_writing(self, tmp_path):
        primary, g = make_primary(tmp_path)
        replica = ReplicaService(tmp_path / "store", replica_id="r1")
        assert replica.graphs() == ["soc"]
        assert replica.stats.edge_lists_parsed == 0
        assert replica.stats.warm_starts == 1
        assert (replica.play("sssp", 0, graph="soc").answer
                == primary.play("sssp", 0, graph="soc").answer)
        replica.close()
        primary.close()

    def test_tails_twenty_mixed_batches_with_monotone_seq(self, tmp_path):
        """The acceptance core: >= 20 mixed insert/delete/reweight
        batches, applied seq strictly advancing, every answer equal to
        the primary oracle (and the sequential oracle)."""
        primary, g = make_primary(tmp_path)
        replica = ReplicaService(tmp_path / "store", replica_id="r1")
        rng = random.Random(5)
        seqs = []
        for i in range(22):
            primary.update("soc", mixed_batch(g, rng, i))
            assert replica.lag_bytes("soc") > 0
            applied = replica.sync()
            assert applied >= 1
            seqs.append(replica.applied_seq("soc"))
            assert replica.lag_bytes("soc") == 0
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert replica.applied_seq("soc") == 22
        assert replica.stats.replica_batches_applied == 22
        answer = replica.play("sssp", 0, graph="soc").answer
        assert answer == primary.play("sssp", 0, graph="soc").answer
        assert answer == pytest.approx(sssp_distances(g, 0))
        status = replica.replication_status("soc")
        assert status["caught_up"] and not status["promoted"]
        replica.close()
        primary.close()

    def test_replica_watch_maintained_by_replaying_updates(self, tmp_path):
        """A standing watch on the replica is refreshed per tailed
        batch — paying for the update, not the query: the replica runs
        the query once and maintains it, never re-running from scratch
        on the incremental path."""
        primary, g = make_primary(tmp_path)
        replica = ReplicaService(tmp_path / "store", replica_id="r1")
        watch_p = primary.watch("sssp", 0, graph="soc")
        watch_r = replica.watch("sssp", 0, graph="soc")
        # Monotone batches: the replica maintains incrementally.
        for i in range(6):
            primary.insert_edges("soc", [(i % 40, 2000 + i, 0.2)])
            replica.sync()
            assert watch_r.answer == watch_p.answer
        assert watch_r.refreshes == 6
        assert replica.stats.incremental_maintained >= 6
        replica.close()
        primary.close()

    def test_follows_generation_rollovers(self, tmp_path):
        """A tiny compaction threshold forces rollovers mid-stream; the
        follower drains and switches without losing a batch."""
        primary, g = make_primary(tmp_path, store_compact_threshold=256,
                                  store_retain_generations=2)
        replica = ReplicaService(tmp_path / "store", replica_id="r1")
        rng = random.Random(9)
        for i in range(10):
            primary.update("soc", mixed_batch(g, rng, i))
            replica.sync()
        assert replica.stats.replica_rollovers > 0
        assert replica.stats.replica_resnapshots == 0
        assert (replica.play("sssp", 0, graph="soc").answer
                == primary.play("sssp", 0, graph="soc").answer)
        assert replica.position("soc")[0] > 1  # generation advanced
        replica.close()
        primary.close()

    def test_resnapshots_after_falling_past_retention(self, tmp_path):
        """Zero retention + aggressive compaction + a replica that never
        syncs mid-churn: the chain it was following is GC'd, so the next
        sync re-bootstraps from the current snapshot — with an active
        watch whose handle survives and stays correct."""
        primary, g = make_primary(tmp_path, store_compact_threshold=256,
                                  store_retain_generations=0)
        replica = ReplicaService(tmp_path / "store", replica_id="r1")
        watch_r = replica.watch("sssp", 0, graph="soc")
        rng = random.Random(13)
        for i in range(12):  # several rollovers, replica never syncs
            primary.update("soc", mixed_batch(g, rng, i))
        replica.sync()
        assert replica.stats.replica_resnapshots >= 1
        assert watch_r.active
        assert watch_r.answer == pytest.approx(sssp_distances(g, 0))
        assert (replica.play("sssp", 0, graph="soc").answer
                == primary.play("sssp", 0, graph="soc").answer)
        replica.close()
        primary.close()

    def test_adopts_graphs_registered_after_start(self, tmp_path):
        primary, g = make_primary(tmp_path)
        replica = ReplicaService(tmp_path / "store", replica_id="r1")
        g2 = uniform_random_graph(20, 50, directed=False, seed=77)
        primary.load_graph("late", g2)
        replica.sync()
        assert sorted(replica.graphs()) == ["late", "soc"]
        assert (replica.play("cc", graph="late").answer
                == primary.play("cc", graph="late").answer)
        replica.close()
        primary.close()


class TestReadOnly:
    def test_mutations_raise_typed_error(self, tmp_path):
        primary, g = make_primary(tmp_path)
        replica = ReplicaService(tmp_path / "store", replica_id="r1")
        with pytest.raises(ReadOnlyReplicaError):
            replica.update("soc", GraphDelta().insert(1, 2, 0.5))
        with pytest.raises(ReadOnlyReplicaError):
            replica.insert_edges("soc", [(1, 2, 0.5)])
        with pytest.raises(ReadOnlyReplicaError):
            replica.load_graph("new", g)
        with pytest.raises(ReadOnlyReplicaError):
            replica.unload_graph("soc")
        # ...and nothing leaked into the primary's WAL.
        assert replica.stats.wal_appends == 0
        replica.close()
        primary.close()

    def test_replica_never_truncates_the_primary_wal(self, tmp_path):
        """A replica opening while the primary's WAL has a torn tail
        must leave the file alone — truncation is the writer's job."""
        primary, g = make_primary(tmp_path)
        primary.insert_edges("soc", [(0, 999, 0.5)])
        wal_path = primary.store._current_wal_path("soc")
        with open(wal_path, "ab") as fh:
            fh.write(b"\x00\x01torn")
        size_before = wal_path.stat().st_size
        replica = ReplicaService(tmp_path / "store", replica_id="r1")
        replica.sync()
        assert wal_path.stat().st_size == size_before
        assert (replica.play("sssp", 0, graph="soc").answer
                == primary.play("sssp", 0, graph="soc").answer)
        replica.close()
        primary.close(flush=False)
