"""Failover: election by replication position, fencing, no acked loss.

Two tiers of tests: in-process failovers (primary closed or still live
but deposed), and a real kill — the primary runs in a child process,
acks each applied batch to a file, and gets ``SIGKILL``-ed mid-stream;
the promoted replica must serve every acked batch.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import time
from pathlib import Path

import pytest

from repro.graph.delta import GraphDelta
from repro.graph.generators import uniform_random_graph
from repro.replication import (FailoverCoordinator, ReplicaService,
                               read_epoch)
from repro.service import GrapeService
from repro.store import FencedError


def make_primary(tmp_path, **kwargs):
    g = uniform_random_graph(40, 130, directed=False, seed=23)
    primary = GrapeService(store_dir=tmp_path / "store", node_id="primary",
                           **kwargs)
    primary.load_graph("soc", g)
    return primary, g


class TestElection:
    def test_promotes_the_most_advanced_replica(self, tmp_path):
        """The replica that replayed further wins — a laggard (its
        drain stubbed out, as if unreachable during the failover) must
        not be elected even though it sorts later by id."""
        primary, g = make_primary(tmp_path)
        root = tmp_path / "store"
        fast = ReplicaService(root, replica_id="r1")
        lag = ReplicaService(root, replica_id="r2")
        for i in range(5):
            primary.insert_edges("soc", [(i, 1000 + i, 0.5)])
            fast.sync()  # lag never syncs
        primary.close()
        lag.sync = lambda name=None: 0  # unreachable during the drain
        winner = FailoverCoordinator(root).promote([fast, lag])
        del lag.sync
        assert winner is fast
        assert winner.promoted and not lag.promoted
        assert read_epoch(root) == (1, "r1")
        # The loser keeps serving, now tailing the new primary.
        winner.insert_edges("soc", [(0, 2000, 0.25)])
        lag.sync()
        assert (lag.play("sssp", 0, graph="soc").answer
                == winner.play("sssp", 0, graph="soc").answer)
        winner.close()
        lag.close()

    def test_promote_requires_a_candidate(self, tmp_path):
        make_primary(tmp_path)[0].close()
        with pytest.raises(ValueError):
            FailoverCoordinator(tmp_path / "store").promote([])

    def test_each_failover_bumps_the_epoch(self, tmp_path):
        primary, g = make_primary(tmp_path)
        primary.close()
        root = tmp_path / "store"
        coord = FailoverCoordinator(root)
        assert coord.epoch() == (0, None)
        r1 = ReplicaService(root, replica_id="r1")
        coord.promote([r1]).close()
        assert read_epoch(root) == (1, "r1")
        r2 = ReplicaService(root, replica_id="r2")
        coord.promote([r2]).close()
        assert read_epoch(root) == (2, "r2")


class TestEndToEndHA:
    def test_failover_fences_the_old_primary(self, tmp_path):
        """The full acceptance arc with a *live* deposed primary: warm
        replicas tail 20+ batches, the coordinator fences + promotes,
        the old primary's next write dies with :class:`FencedError`,
        a restart under its old identity is refused at open, and no
        acked update is missing from the new primary."""
        primary, g = make_primary(tmp_path)
        root = tmp_path / "store"
        r1 = ReplicaService(root, replica_id="r1")
        r2 = ReplicaService(root, replica_id="r2")
        for i in range(21):
            delta = GraphDelta().insert(i % 40, 1000 + i, 0.5)
            if i % 3 == 0:
                edges = sorted(g.edges())
                u, v, _w = edges[i % len(edges)]
                delta.delete(u, v)
            primary.update("soc", delta)
            r1.sync()
        r2.sync()
        oracle = primary.play("sssp", 0, graph="soc").answer

        # The primary is partitioned away (but still running!) and the
        # coordinator fails over.
        winner = FailoverCoordinator(root).promote([r1, r2])
        loser = r2 if winner is r1 else r1

        # 1. Every acked update survived the failover.
        assert winner.play("sssp", 0, graph="soc").answer == oracle
        # 2. The deposed primary can no longer ack writes.
        with pytest.raises(FencedError):
            primary.insert_edges("soc", [(0, 9999, 0.1)])
        primary.close(flush=False)
        # 3. ...nor rejoin under its stale identity after a restart.
        with pytest.raises(FencedError):
            GrapeService(store_dir=root, node_id="primary")
        # 4. The new primary writes; the surviving replica tails it.
        winner.insert_edges("soc", [(0, 5000, 0.125)])
        loser.sync()
        assert (loser.play("sssp", 0, graph="soc").answer
                == winner.play("sssp", 0, graph="soc").answer)
        # 5. A node *adopting the published leader's identity* (the old
        # box rejoining demoted, re-imaged as a replica) is fine.
        rejoined = ReplicaService(root, replica_id="old-primary-demoted")
        assert (rejoined.play("sssp", 0, graph="soc").answer
                == winner.play("sssp", 0, graph="soc").answer)
        rejoined.close()
        loser.close()
        winner.close()


# ----------------------------------------------------------------------
# kill-the-primary: a real process death, not a polite close()
# ----------------------------------------------------------------------
def _churning_primary(root: str, ack_path: str) -> None:
    """Child-process body: apply deterministic batches forever, acking
    each one (atomically) only after ``update`` returned — i.e. after
    the batch is fsync-durable in the WAL."""
    service = GrapeService(store_dir=root, node_id="primary")
    for i in itertools.count():
        delta = GraphDelta().insert(i % 30, 1000 + i, (i % 7 + 1) / 8)
        service.update("soc", delta)
        tmp = ack_path + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(str(i + 1))
        os.replace(tmp, ack_path)


class TestKillThePrimary:
    def test_sigkill_mid_churn_loses_no_acked_update(self, tmp_path):
        primary, g = make_primary(tmp_path)
        primary.close()
        root = tmp_path / "store"
        ack_path = tmp_path / "acked"

        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_churning_primary,
                           args=(str(root), str(ack_path)), daemon=True)
        proc.start()
        try:
            deadline = time.time() + 60
            while time.time() < deadline:
                if ack_path.exists() and int(ack_path.read_text()) >= 20:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("child primary never reached 20 acked batches")
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=30)
        acked = int(ack_path.read_text())
        assert acked >= 20

        r1 = ReplicaService(root, replica_id="r1")
        r2 = ReplicaService(root, replica_id="r2")
        winner = FailoverCoordinator(root).promote([r1, r2])
        loser = r2 if winner is r1 else r1

        graph = winner.play("cc", graph="soc")  # the service is live
        assert graph.answer
        got = winner._graphs["soc"]
        for i in range(acked):
            u, v = i % 30, 1000 + i
            assert got.has_edge(u, v), f"acked batch {i} lost"
            assert got.edge_weight(u, v) == (i % 7 + 1) / 8
        # The dead primary's identity is fenced out on rejoin.
        with pytest.raises(FencedError):
            GrapeService(store_dir=root, node_id="primary")
        # And the promoted node is a fully writable primary.
        winner.insert_edges("soc", [(0, 7777, 0.5)])
        loser.sync()
        assert loser._graphs["soc"].has_edge(0, 7777)
        loser.close()
        winner.close()
