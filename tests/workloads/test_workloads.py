"""Dataset stand-ins and query generators."""

import pytest

from repro.graph.graph import Graph
from repro.workloads.datasets import (knowledge_like, load_dataset,
                                      ratings_like, social_like,
                                      traffic_like)
from repro.workloads.queries import (generate_pattern, generate_patterns,
                                     sample_sources)


class TestDatasets:
    def test_traffic_shape(self):
        g = traffic_like(scale=0.05)
        assert g.directed
        assert g.num_nodes > 100
        # Low average out-degree, the road-network signature.
        avg_deg = sum(g.out_degree(v) for v in g.nodes()) / g.num_nodes
        assert avg_deg < 5

    def test_social_has_labels_and_components(self):
        g = social_like(scale=0.05)
        assert all(g.node_label(v) is not None for v in g.nodes())
        from repro.sequential.wcc import connected_components
        assert len(set(connected_components(g).values())) > 1

    def test_knowledge_label_alphabet(self):
        g = knowledge_like(scale=0.05, num_labels=7)
        labels = {g.node_label(v) for v in g.nodes()}
        assert labels <= {f"t{i}" for i in range(7)}

    def test_ratings_bipartite(self):
        g, uf, itf = ratings_like(scale=0.1)
        for u, p, _w in g.edges():
            assert g.node_label(u) == "user"
            assert g.node_label(p) == "item"

    def test_load_dataset(self):
        g = load_dataset("traffic", scale=0.03)
        assert isinstance(g, Graph)

    def test_load_dataset_unknown(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("imdb")

    def test_determinism(self):
        assert traffic_like(scale=0.03) == traffic_like(scale=0.03)


class TestQueries:
    def test_sample_sources_distinct(self, small_road):
        sources = sample_sources(small_road, 5, seed=1)
        assert len(sources) == len(set(sources)) == 5
        assert all(small_road.out_degree(v) > 0 for v in sources)

    def test_sample_sources_caps_at_population(self):
        g = Graph()
        g.add_edge(1, 2)
        assert set(sample_sources(g, 10)) <= {1, 2}

    def test_pattern_shape(self, small_labeled):
        p = generate_pattern(small_labeled, 4, 5, seed=1)
        assert p.num_nodes == 4
        assert p.num_edges >= 3  # at least a spanning tree

    def test_pattern_connected(self, small_labeled):
        from repro.sequential.subiso import pattern_diameter
        p = generate_pattern(small_labeled, 5, 6, seed=2)
        # Connected pattern: diameter computation reaches everyone.
        assert pattern_diameter(p) >= 1

    def test_pattern_carved_has_match(self, small_labeled):
        from repro.sequential.subiso import vf2_all_matches
        p = generate_pattern(small_labeled, 3, 2, seed=3,
                             ensure_match=True)
        assert vf2_all_matches(p, small_labeled, limit=1)

    def test_pattern_too_few_edges_rejected(self, small_labeled):
        with pytest.raises(ValueError):
            generate_pattern(small_labeled, 5, 2)

    def test_generate_patterns_batch(self, small_labeled):
        patterns = generate_patterns(small_labeled, 4, 3, 3, seed=5)
        assert len(patterns) == 4

    def test_deterministic(self, small_labeled):
        a = generate_pattern(small_labeled, 4, 4, seed=9)
        b = generate_pattern(small_labeled, 4, 4, seed=9)
        assert a == b
