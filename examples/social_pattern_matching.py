"""Pattern matching on a social graph: Sim, SubIso, and the optimizations.

Demonstrates the paper's Section 5.1 and Exp-2/Exp-3:

* graph simulation and subgraph isomorphism through the same engine;
* the incremental ablation (GRAPE vs GRAPE-NI);
* plugging a sequential optimization (neighborhood index) into PEval
  without touching the engine.

Run:  python examples/social_pattern_matching.py
"""

from repro import GrapeEngine
from repro.optim.indexing import IndexedSimCandidates
from repro.pie_programs import SimProgram, SubIsoProgram
from repro.workloads import generate_pattern, social_like


def main():
    graph = social_like(scale=0.15)
    pattern = generate_pattern(graph, 4, 5, seed=11)
    print(f"social graph: {graph.num_nodes} users, "
          f"{graph.num_edges} follows")
    print(f"pattern: {pattern.num_nodes} query nodes, "
          f"{pattern.num_edges} query edges\n")

    engine = GrapeEngine(num_workers=6)
    fragmentation = engine.make_fragmentation(graph)

    # --- graph simulation -------------------------------------------
    sim = engine.run(SimProgram(), pattern, fragmentation=fragmentation)
    total = sum(len(vs) for vs in sim.answer.values())
    print(f"Sim: {total} (query node, user) matches "
          f"in {sim.supersteps} supersteps, "
          f"{sim.metrics.comm_bytes} bytes shipped")

    # --- the incremental ablation (Exp-2) ----------------------------
    ni_engine = GrapeEngine(num_workers=6, incremental=False)
    ni = ni_engine.run(SimProgram(), pattern,
                       fragmentation=fragmentation)
    assert ni.answer == sim.answer
    print(f"GRAPE-NI (no IncEval) total compute: "
          f"{ni.metrics.total_compute_s * 1000:.2f} ms vs "
          f"GRAPE {sim.metrics.total_compute_s * 1000:.2f} ms")

    # --- index-optimized sequential algorithm (Exp-3) ----------------
    indexed = engine.run(SimProgram(candidate_index=IndexedSimCandidates()),
                         pattern, fragmentation=fragmentation)
    assert indexed.answer == sim.answer
    print(f"index-optimized Sim compute: "
          f"{indexed.metrics.total_compute_s * 1000:.2f} ms "
          "(same answer)")

    # --- subgraph isomorphism ----------------------------------------
    iso = engine.run(SubIsoProgram(match_limit=500), pattern,
                     fragmentation=fragmentation)
    print(f"\nSubIso: {len(iso.answer)} exact matches "
          f"in {iso.supersteps} superstep(s)")
    if iso.answer:
        sample = iso.answer[0]
        print("example match:", {u: v for u, v in sorted(
            sample.items(), key=lambda kv: str(kv[0]))})


if __name__ == "__main__":
    main()
