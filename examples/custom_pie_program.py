"""Writing your own PIE program: single-source reachability.

The paper's recipe for a new query class (Section 3): take a sequential
algorithm (here DFS reachability), add a message preamble — one Boolean
status variable per node, candidate set = the out-border copies,
``aggregateMsg = min`` over ``true ≺ false`` (a node once reachable stays
reachable) — and an incremental version that just resumes the traversal
from newly reached border nodes.  The engine supplies partitioning,
message routing, termination detection and the correctness guarantee.

Run:  python examples/custom_pie_program.py
"""

from dataclasses import dataclass, field
from typing import Dict, Set

from repro import GrapeEngine
from repro.core.aggregators import MaxAggregator
from repro.core.pie import ParamUpdates, PIEProgram
from repro.graph.graph import Node
from repro.partition.base import Fragment, Fragmentation
from repro.workloads import social_like


@dataclass
class ReachState:
    reached: Set[Node] = field(default_factory=set)


class ReachabilityProgram(PIEProgram):
    """Query: source node.  Answer: the set of reachable nodes."""

    name = "Reach"
    # true > false and a node never becomes unreachable: max is monotonic.
    aggregator = MaxAggregator()
    route_to = "owner"

    def init_state(self, query: Node, fragment: Fragment) -> ReachState:
        return ReachState()

    def _traverse(self, fragment: Fragment, state: ReachState,
                  frontier) -> None:
        """The sequential DFS, untouched: used by PEval and IncEval."""
        stack = [v for v in frontier if fragment.graph.has_node(v)]
        while stack:
            v = stack.pop()
            if v in state.reached:
                continue
            state.reached.add(v)
            stack.extend(w for w in fragment.graph.successors(v)
                         if w not in state.reached)

    def peval(self, query: Node, fragment: Fragment,
              state: ReachState) -> None:
        if fragment.graph.has_node(query):
            self._traverse(fragment, state, [query])

    def inceval(self, query: Node, fragment: Fragment, state: ReachState,
                message: ParamUpdates) -> None:
        newly = [v for (v, _name), flag in message.items() if flag]
        self._traverse(fragment, state, newly)

    def read_update_params(self, query: Node, fragment: Fragment,
                           state: ReachState) -> ParamUpdates:
        # C_i = F_i.O: reached border copies are news for their owners.
        return {(v, "reached"): True for v in fragment.outer
                if v in state.reached}

    def assemble(self, query: Node, fragmentation: Fragmentation,
                 states: Dict[int, ReachState]) -> Set[Node]:
        answer: Set[Node] = set()
        for frag in fragmentation:
            answer |= states[frag.fid].reached & frag.owned
        return answer


def main():
    graph = social_like(scale=0.1, seed=21)
    source = max(graph.nodes(), key=graph.out_degree)

    engine = GrapeEngine(num_workers=5, check_monotonic=True)
    result = engine.run(ReachabilityProgram(), source, graph=graph)

    # Verify against a plain sequential traversal of the whole graph.
    expected, stack = set(), [source]
    while stack:
        v = stack.pop()
        if v in expected:
            continue
        expected.add(v)
        stack.extend(graph.successors(v))
    assert result.answer == expected

    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"{len(result.answer)} nodes reachable from {source!r}")
    print(f"supersteps: {result.supersteps}, "
          f"messages: {result.metrics.comm_messages}, "
          f"monotonicity verified ✓")


if __name__ == "__main__":
    main()
