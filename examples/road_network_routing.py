"""Road-network routing: the Table 1 story at laptop scale.

Runs the same batch of shortest-path queries on a large-diameter road
network under all four systems (GRAPE, vertex-centric "Giraph", GAS
"GraphLab", block-centric "Blogel") and prints the paper-style
comparison: GRAPE needs a fraction of the supersteps and bytes because a
fragment's worth of road network is traversed locally per superstep,
while a vertex program advances one hop per superstep.

Run:  python examples/road_network_routing.py
"""

from repro.bench import format_results_table, run_queries, speedup_summary
from repro.workloads import sample_sources, traffic_like


def main():
    graph = traffic_like(scale=0.2)  # ~800 nodes, large diameter
    sources = sample_sources(graph, 3, seed=7)
    print(f"road network: {graph.num_nodes} intersections, "
          f"{graph.num_edges} road segments; "
          f"{len(sources)} routing queries\n")

    rows = [run_queries(system, "sssp", graph, sources, num_workers=8)
            for system in ("giraph", "graphlab", "blogel", "grape")]

    print(format_results_table(rows, title="SSSP, n=8 workers"))
    print()
    print(speedup_summary(rows))

    # Sanity: every system agrees on the answers.
    for row in rows[1:]:
        for a, b in zip(rows[0].answers, row.answers):
            assert all(abs(a[v] - b[v]) < 1e-9 for v in a
                       if a[v] != float("inf"))
    print("\nall four systems returned identical distances ✓")


if __name__ == "__main__":
    main()
