"""Collaborative filtering end-to-end: train a recommender on GRAPE.

The paper's Section 5.3 case study: SGD matrix factorization as PEval,
ISGD as IncEval, the coordinator reconciling shared factor vectors by
timestamp.  This example does the full workflow — train/test split,
distributed training, held-out RMSE — on a movieLens-like rating graph.

Run:  python examples/recommender.py
"""

from repro import Graph, GrapeEngine
from repro.pie_programs import CFProgram, CFQuery
from repro.sequential.cf import (FactorModel, extract_ratings, rmse,
                                 split_train_test)
from repro.workloads import ratings_like


def main():
    full, _true_user_f, _true_item_f = ratings_like(scale=0.3, seed=4)
    ratings = extract_ratings(full)
    train, test = split_train_test(ratings, train_fraction=0.9, seed=1)
    print(f"ratings: {len(ratings)} total -> {len(train)} train, "
          f"{len(test)} test")

    # The training graph: one directed edge per training rating.
    train_graph = Graph(directed=True)
    for user, item, rating in train:
        train_graph.add_node(user, "user")
        train_graph.add_node(item, "item")
        train_graph.add_edge(user, item, weight=rating)

    query = CFQuery(num_factors=8, max_epochs=15, learning_rate=0.05,
                    regularization=0.05, seed=3)
    engine = GrapeEngine(num_workers=4)
    result = engine.run(CFProgram(), query, graph=train_graph)

    model = FactorModel(query.num_factors, seed=query.seed)
    model.factors = dict(result.answer)

    untrained = FactorModel(query.num_factors, seed=query.seed)
    print(f"\ntest RMSE before training: {rmse(test, untrained):.3f}")
    print(f"test RMSE after training:  {rmse(test, model):.3f}")
    print(f"training RMSE:             {rmse(train, model):.3f}")
    print(f"\nsupersteps: {result.supersteps}, "
          f"factors shipped: {result.metrics.comm_megabytes:.3f} MB")

    # Recommend: top items for one user by predicted rating.
    user = train[0][0]
    items = {p for _u, p, _r in ratings}
    rated = {p for u, p, _r in ratings if u == user}
    scored = sorted(((model.predict(user, p), p)
                     for p in items - rated), reverse=True)
    print(f"\ntop-3 recommendations for {user}:")
    for score, item in scored[:3]:
        print(f"  {item}  (predicted rating {score:+.2f})")


if __name__ == "__main__":
    main()
