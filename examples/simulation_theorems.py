"""The Simulation Theorem in action: BSP, MapReduce and PRAM on GRAPE.

Paper Theorem 2: programs written for other parallel models run on GRAPE
with no asymptotic overhead, so "algorithms for existing graph systems
can be migrated to GRAPE".  This example runs one program per model:

* a BSP token-ring maximum;
* a two-phase MapReduce inverted index;
* a CREW PRAM parallel tree-sum.

Run:  python examples/simulation_theorems.py
"""

from repro.core.bsp_sim import BSPProgram, run_bsp_on_grape
from repro.core.mapreduce_sim import MapReduceJob, run_mapreduce_on_grape
from repro.core.pram_sim import PRAMProgram, run_pram_on_grape


# --- BSP --------------------------------------------------------------
class RingMaximum(BSPProgram):
    """Each worker forwards the running maximum around a ring."""

    def init(self, worker_id, num_workers, data):
        return {"best": data, "n": num_workers}

    def superstep(self, worker_id, step, state, incoming):
        for value in incoming:
            state["best"] = max(state["best"], value)
        if step < state["n"]:
            return {(worker_id + 1) % state["n"]: [state["best"]]}
        return {}

    def output(self, worker_id, state):
        return state["best"]


# --- MapReduce ---------------------------------------------------------
class InvertedIndex(MapReduceJob):
    """doc -> words, then word -> sorted posting list."""

    num_rounds = 1

    def map_fn(self, round_index, doc_id, text):
        for word in text.split():
            yield (word, doc_id)

    def reduce_fn(self, round_index, word, doc_ids):
        yield (word, sorted(set(doc_ids)))


# --- PRAM ---------------------------------------------------------------
class TreeSum(PRAMProgram):
    """Binary-tree reduction: cell 0 ends with the sum of all cells."""

    def __init__(self, values):
        self.values = list(values)
        self.n = len(values)
        self.num_processors = max(1, self.n // 2)
        self.num_steps = max(1, (self.n - 1).bit_length())

    def initial_memory(self):
        return dict(enumerate(self.values))

    def _pair(self, pid, t):
        stride = 2 ** t
        left = pid * 2 * stride
        right = left + stride
        if left % (2 * stride) == 0 and right < self.n:
            return left, right
        return None

    def plan_reads(self, pid, t):
        pair = self._pair(pid, t)
        return list(pair) if pair else []

    def step(self, pid, t, values, local):
        pair = self._pair(pid, t)
        if pair and pair[0] in values and pair[1] in values:
            return {pair[0]: values[pair[0]] + values[pair[1]]}
        return {}


def main():
    bsp = run_bsp_on_grape(RingMaximum(), [12, 99, 7, 45])
    print(f"BSP ring max:      {bsp.answer[0]}  "
          f"({bsp.metrics.supersteps} supersteps — one per BSP step +"
          " drain)")

    docs = [[(0, "graph engines love graphs")],
            [(1, "sequential algorithms love simplicity")],
            [(2, "graphs everywhere")]]
    mr = run_mapreduce_on_grape(InvertedIndex(), docs)
    postings = dict(mr.answer)
    print(f"MapReduce index:   'love' -> {postings['love']}  "
          f"({mr.metrics.supersteps} supersteps <= 2 rounds)")

    values = [3, 1, 4, 1, 5, 9, 2, 6]
    pram = run_pram_on_grape(TreeSum(values), num_workers=4)
    print(f"PRAM tree sum:     {pram.answer[0]} == {sum(values)}  "
          f"({pram.metrics.supersteps} supersteps, O(t) for t="
          f"{TreeSum(values).num_steps} PRAM steps)")


if __name__ == "__main__":
    main()
