"""Quickstart: plug and play — parallelize Dijkstra in a dozen lines.

The point of the paper: you do NOT rewrite your algorithm.  PIE programs
wrapping stock sequential algorithms are *plugged* into a service once;
end users just *play* queries.  The service partitions each named graph a
single time and serves every query — any class, any user — from that
cached fragmentation.

Run:  python examples/quickstart.py
"""

from repro import GrapeService, Graph


def build_road_map() -> Graph:
    g = Graph(directed=True)
    roads = [
        ("airport", "downtown", 12.0),
        ("downtown", "harbor", 4.0),
        ("downtown", "university", 3.0),
        ("university", "harbor", 2.0),
        ("harbor", "airport", 15.0),
        ("university", "stadium", 6.0),
        ("stadium", "harbor", 1.0),
    ]
    for src, dst, km in roads:
        g.add_edge(src, dst, weight=km)
    return g


def main():
    service = GrapeService()            # four workers by default
    service.load_graph("city", build_road_map())

    # Play: one query class...
    ticket = service.play("sssp", query="airport", graph="city")
    print("shortest distances from 'airport':")
    for node, dist in sorted(ticket.answer.items()):
        print(f"  {node:<12} {dist:6.1f} km")

    # ...and another, reusing the same cached fragmentation.
    reachable = service.play("bfs", query="airport", graph="city")
    hops = sum(1 for h in reachable.answer.values() if h >= 0)
    print(f"\nreachable from 'airport': {hops} locations")

    m = ticket.metrics
    print(f"supersteps: {m.supersteps}   "
          f"communication: {m.comm_bytes} bytes   "
          f"simulated time: {m.parallel_time_s * 1000:.2f} ms")
    print(f"service totals: {service.stats}")


def advanced_single_run():
    """The low-level path: one engine, one run, no serving layer.

    Useful for experiments that sweep engine parameters per run; the
    service wraps exactly this machinery.
    """
    from repro import GrapeEngine
    from repro.pie_programs import SSSPProgram

    engine = GrapeEngine(num_workers=4)
    result = engine.run(SSSPProgram(), query="airport",
                        graph=build_road_map())
    print(f"\n[advanced] direct engine run: {result.metrics}")


if __name__ == "__main__":
    main()
    advanced_single_run()
