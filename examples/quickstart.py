"""Quickstart: parallelize Dijkstra with GRAPE in a dozen lines.

The point of the paper: you do NOT rewrite your algorithm.  The engine
takes the stock sequential Dijkstra (PEval), the stock incremental
shortest-path algorithm (IncEval), partitions the graph, and runs the
fixpoint for you.

Run:  python examples/quickstart.py
"""

from repro import Graph, GrapeEngine
from repro.pie_programs import SSSPProgram


def main():
    # A small weighted road map.
    g = Graph(directed=True)
    roads = [
        ("airport", "downtown", 12.0),
        ("downtown", "harbor", 4.0),
        ("downtown", "university", 3.0),
        ("university", "harbor", 2.0),
        ("harbor", "airport", 15.0),
        ("university", "stadium", 6.0),
        ("stadium", "harbor", 1.0),
    ]
    for src, dst, km in roads:
        g.add_edge(src, dst, weight=km)

    # Four workers; the default hash edge-cut partition.
    engine = GrapeEngine(num_workers=4)
    result = engine.run(SSSPProgram(), query="airport", graph=g)

    print("shortest distances from 'airport':")
    for node, dist in sorted(result.answer.items()):
        print(f"  {node:<12} {dist:6.1f} km")

    m = result.metrics
    print(f"\nsupersteps: {m.supersteps}   "
          f"communication: {m.comm_bytes} bytes   "
          f"simulated time: {m.parallel_time_s * 1000:.2f} ms")


if __name__ == "__main__":
    main()
