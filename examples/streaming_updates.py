"""Streaming updates: standing queries maintained as the graph churns.

Two extensions beyond the paper's evaluation, both sketched in the paper
itself:

* the **continuous-query service** (Section 6's lightweight transaction
  controller, over general batches ``ΔG = (ΔG⁺, ΔG⁻)``) —
  ``service.watch`` registers a standing query; ``service.update`` folds
  insertions into every watcher's answer by IncEval and serves
  non-monotone changes (road closures, weight increases) by a
  transparent in-session recompute on the mutated fragments;
* the **asynchronous engine** (Section 8: "an asynchronous version of
  GRAPE is also under development") — no barriers, fragments activate as
  messages arrive (shown via the low-level path at the end).

Run:  python examples/streaming_updates.py
"""

from repro import GrapeService, GraphDelta
from repro.sequential import sssp_distances
from repro.workloads import traffic_like


def main():
    graph = traffic_like(scale=0.1)
    source = 0
    print(f"road network: {graph.num_nodes} nodes, "
          f"{graph.num_edges} edges; standing SSSP from {source}\n")

    service = GrapeService()
    service.load_graph("roads", graph)

    # Two standing queries share one fragmentation and one update stream.
    watch_near = service.watch("sssp", source, graph="roads")
    watch_cc = service.watch("cc", graph="roads")

    far = max((v for v in watch_near.answer
               if watch_near.answer[v] != float("inf")),
              key=lambda v: watch_near.answer[v])
    print(f"farthest node {far}: dist = {watch_near.answer[far]:.1f}")

    base_supersteps = watch_near.metrics.supersteps
    service.insert_edges("roads", [(source, far, 1.0)])  # a new highway
    print(f"inserted shortcut ({source} -> {far}, weight 1.0)")
    print(f"maintained dist({far}) = {watch_near.answer[far]:.1f} in "
          f"{watch_near.metrics.supersteps - base_supersteps} incremental "
          "supersteps; CC watcher refreshed too "
          f"({watch_cc.refreshes} refresh)")

    assert watch_near.answer == {v: d for v, d in
                                 sssp_distances(graph, source).items()}, \
        "maintained answer must equal recomputation"
    print("maintained answer equals full recomputation ✓")

    # Now the non-monotone side: close the new highway again and jack up
    # a road's weight in the same batch.  SSSP cannot maintain that
    # incrementally (distances grow), so the service recomputes the
    # watch in place — same session, same fragmentation, no re-partition.
    u, v, w = next(iter(graph.edges()))
    service.update("roads", (GraphDelta()
                             .delete(source, far)
                             .set_weight(u, v, w * 5.0)))
    print(f"\nclosed the shortcut and reweighted ({u} -> {v}) x5: "
          f"dist({far}) back to {watch_near.answer[far]:.1f} via "
          f"recompute fallback "
          f"(maintained={watch_near.metrics.incremental_maintained}, "
          f"fallbacks={watch_near.metrics.fallback_reruns})")
    assert watch_near.answer == {n: d for n, d in
                                 sssp_distances(graph, source).items()}, \
        "fallback answer must equal recomputation"
    print("answer tracks the mutated graph under deletions too ✓")
    print(f"\nservice totals: {service.stats}")
    service.close()


def advanced_async_engine():
    """Low-level variant: the barrier-free asynchronous engine."""
    from repro import GrapeEngine
    from repro.core.async_engine import AsyncGrapeEngine
    from repro.pie_programs import SSSPProgram

    graph = traffic_like(scale=0.1)
    sync = GrapeEngine(4).run(SSSPProgram(), 0, graph=graph)
    async_run = AsyncGrapeEngine(4).run(SSSPProgram(), 0, graph=graph)
    assert all(abs(sync.answer[v] - async_run.answer[v]) < 1e-9
               or sync.answer[v] == async_run.answer[v]
               for v in sync.answer)
    print(f"\n[advanced] sync engine:  {sync.supersteps} supersteps")
    print(f"[advanced] async engine: {async_run.activations} fragment "
          "activations, same answer ✓")


if __name__ == "__main__":
    main()
    advanced_async_engine()
