"""Streaming updates: maintain a standing query as the graph grows.

Two extensions beyond the paper's evaluation, both sketched in the paper
itself:

* the **asynchronous engine** (Section 8: "an asynchronous version of
  GRAPE is also under development") — no barriers, fragments activate as
  messages arrive;
* the **continuous-query session** (Section 6's lightweight transaction
  controller) — edge insertions are folded into the standing answer by
  IncEval instead of recomputing from scratch.

Run:  python examples/streaming_updates.py
"""

from repro import GrapeEngine
from repro.core.async_engine import AsyncGrapeEngine
from repro.core.updates import ContinuousQuerySession
from repro.pie_programs import SSSPProgram
from repro.sequential import sssp_distances
from repro.workloads import traffic_like


def main():
    graph = traffic_like(scale=0.1)
    source = 0
    print(f"road network: {graph.num_nodes} nodes, "
          f"{graph.num_edges} edges; standing SSSP from {source}\n")

    # --- async vs sync -----------------------------------------------
    sync = GrapeEngine(4).run(SSSPProgram(), source, graph=graph)
    async_run = AsyncGrapeEngine(4).run(SSSPProgram(), source,
                                        graph=graph)
    assert all(abs(sync.answer[v] - async_run.answer[v]) < 1e-9
               or sync.answer[v] == async_run.answer[v]
               for v in sync.answer)
    print(f"sync engine:  {sync.supersteps} supersteps")
    print(f"async engine: {async_run.activations} fragment activations, "
          "same answer ✓\n")

    # --- continuous query under insertions ----------------------------
    session = ContinuousQuerySession(GrapeEngine(4), SSSPProgram(),
                                     source, graph)
    far = max((v for v in session.answer
               if session.answer[v] != float("inf")),
              key=lambda v: session.answer[v])
    print(f"farthest node {far}: dist = {session.answer[far]:.1f}")

    base_supersteps = session.metrics.supersteps
    answer = session.insert_edges([(source, far, 1.0)])  # a new highway
    print(f"inserted shortcut ({source} -> {far}, weight 1.0)")
    print(f"maintained dist({far}) = {answer[far]:.1f} in "
          f"{session.metrics.supersteps - base_supersteps} incremental "
          "supersteps")

    assert answer == {v: d for v, d in
                      sssp_distances(graph, source).items()}, \
        "maintained answer must equal recomputation"
    print("maintained answer equals full recomputation ✓")


if __name__ == "__main__":
    main()
