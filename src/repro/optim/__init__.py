"""Graph-level optimizations: indexing, compression, message grouping."""

from repro.optim.compression import (bisimulation_compress, chain_compress,
                                     decompress_sim)
from repro.optim.grouping import (grouped_bytes, grouping_savings,
                                  ungrouped_bytes)
from repro.optim.indexing import (IndexedSimCandidates, NeighborhoodIndex,
                                  TwoHopIndex)

__all__ = [
    "NeighborhoodIndex", "IndexedSimCandidates", "TwoHopIndex",
    "bisimulation_compress", "decompress_sim", "chain_compress",
    "grouped_bytes", "ungrouped_bytes", "grouping_savings",
]
