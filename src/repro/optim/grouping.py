"""Dynamic message grouping (paper Section 6).

GRAPE groups border-node updates behind a "dummy node" and ships them in
batches instead of one by one, cutting per-message envelope overhead.  The
GRAPE engine already ships one grouped dict per destination; this module
quantifies what grouping saves, powering the grouping ablation bench.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Tuple

from repro.runtime.metrics import message_bytes

__all__ = ["grouped_bytes", "ungrouped_bytes", "grouping_savings"]


def grouped_bytes(message: Mapping) -> int:
    """Wire size of a batched message (one envelope for all entries)."""
    return message_bytes(dict(message))


def ungrouped_bytes(message: Mapping) -> int:
    """Wire size if every update were its own message (one envelope per
    border-node update, as vertex-level synchronization requires)."""
    return sum(message_bytes({k: v}) for k, v in message.items())


def grouping_savings(messages: Iterable[Mapping]) -> Dict[str, float]:
    """Compare batched vs. per-update shipping over a message stream.

    Returns grouped/ungrouped byte totals and the savings ratio.
    """
    grouped = 0
    ungrouped = 0
    for message in messages:
        if not message:
            continue
        grouped += grouped_bytes(message)
        ungrouped += ungrouped_bytes(message)
    ratio = (1.0 - grouped / ungrouped) if ungrouped else 0.0
    return {"grouped_bytes": float(grouped),
            "ungrouped_bytes": float(ungrouped),
            "savings_fraction": ratio}
