"""Dynamic grouping (paper Section 6): messages and queries.

GRAPE groups border-node updates behind a "dummy node" and ships them in
batches instead of one by one, cutting per-message envelope overhead.  The
GRAPE engine already ships one grouped dict per destination; the byte
helpers here quantify what that saves, powering the grouping ablation
bench.

The same idea one level up is **multi-query grouping**: when identical
read queries arrive concurrently — the common case on a hot read tier,
many users asking the same question of the same graph — running one
engine per request duplicates the whole superstep pipeline for bitwise
identical answers.  :class:`QueryGrouper` coalesces them: the first
arrival becomes the *leader* and runs the engine; concurrent identical
arrivals become *followers* that wait on the leader's result and share
it.  The serving facade (primary and replica alike) threads every query
through a grouper, so the saving applies wherever the load does.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.runtime.metrics import message_bytes

__all__ = ["QueryGroup", "QueryGrouper", "grouped_bytes",
           "ungrouped_bytes", "grouping_savings"]


def grouped_bytes(message: Mapping) -> int:
    """Wire size of a batched message (one envelope for all entries)."""
    return message_bytes(dict(message))


def ungrouped_bytes(message: Mapping) -> int:
    """Wire size if every update were its own message (one envelope per
    border-node update, as vertex-level synchronization requires)."""
    return sum(message_bytes({k: v}) for k, v in message.items())


def grouping_savings(messages: Iterable[Mapping]) -> Dict[str, float]:
    """Compare batched vs. per-update shipping over a message stream.

    Returns grouped/ungrouped byte totals and the savings ratio.
    """
    grouped = 0
    ungrouped = 0
    for message in messages:
        if not message:
            continue
        grouped += grouped_bytes(message)
        ungrouped += ungrouped_bytes(message)
    ratio = (1.0 - grouped / ungrouped) if ungrouped else 0.0
    return {"grouped_bytes": float(grouped),
            "ungrouped_bytes": float(ungrouped),
            "savings_fraction": ratio}


# ---------------------------------------------------------------------------
# Multi-query grouping
# ---------------------------------------------------------------------------
class QueryGroup:
    """One in-flight engine run shared by identical concurrent queries.

    The leader runs the engine and :meth:`publish`\\ es; followers block
    in :meth:`wait` and receive the same result object (or the leader's
    exception, re-raised).
    """

    __slots__ = ("key", "followers", "_event", "_result", "_error")

    def __init__(self, key: Tuple):
        self.key = key
        #: concurrent identical queries that joined instead of running
        self.followers = 0
        self._event = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None

    def publish(self, result: Any, error: Optional[BaseException]) -> None:
        self._result = result
        self._error = error
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        if not self._event.wait(timeout):
            raise TimeoutError(f"grouped query {self.key!r} still "
                               f"running after {timeout}s")
        if self._error is not None:
            raise self._error
        return self._result


class QueryGrouper:
    """Coalesces concurrent identical read queries into one engine run.

    ``lead_or_join`` is the only decision point: the first caller for a
    key becomes the leader (runs the engine, then ``publish``\\ es via
    :meth:`finish`), later callers joining *while the leader is still
    in flight* become followers.  The group leaves the in-flight table
    **before** its result is published, so a request arriving after
    completion never receives a stale answer — it leads a fresh run
    against the graph's current state.

    Keys must capture everything that determines the answer:
    ``(graph name, program, query, sorted program kwargs)``; the facade
    only groups queries bound for its shared engine config, so the
    config is fixed per grouper.  Unhashable queries opt out (key
    ``None``) rather than guess at equality.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._inflight: Dict[Tuple, QueryGroup] = {}
        #: engine runs saved by grouping (total follower joins)
        self.grouped_queries = 0
        #: groups that ran (leader count, grouped or not)
        self.groups_led = 0

    @staticmethod
    def key_for(graph: str, program: str, query: Any,
                program_kwargs: Mapping) -> Optional[Tuple]:
        """A grouping key, or ``None`` when the query is unhashable."""
        try:
            kw = tuple(sorted(program_kwargs.items()))
            key = (graph, program, query, kw)
            hash(key)
        except TypeError:
            return None
        return key

    def lead_or_join(self, key: Tuple) -> Tuple[QueryGroup, bool]:
        """Returns ``(group, is_leader)`` for one arriving query."""
        with self._lock:
            group = self._inflight.get(key)
            if group is None:
                group = QueryGroup(key)
                self._inflight[key] = group
                self.groups_led += 1
                return group, True
            group.followers += 1
            self.grouped_queries += 1
            return group, False

    def finish(self, group: QueryGroup, result: Any,
               error: Optional[BaseException] = None) -> None:
        """Leader-side: retire the group, then publish to followers."""
        with self._lock:
            if self._inflight.get(group.key) is group:
                del self._inflight[group.key]
        group.publish(result, error)

    def __repr__(self) -> str:
        with self._lock:
            return (f"QueryGrouper(inflight={len(self._inflight)}, "
                    f"grouped={self.grouped_queries}, "
                    f"led={self.groups_led})")
