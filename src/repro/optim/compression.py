"""Query-preserving compression (paper Section 6, citing [20]).

Each worker may compress its fragment offline such that any query of the
class can be answered on the compressed graph without decompression.

For graph simulation the right equivalence is **bisimulation**: nodes in
the same bisimulation class match exactly the same query nodes, so the
maximum simulation on the quotient graph lifts to the original by class
membership.  :func:`bisimulation_compress` computes the coarsest partition
by iterated signature refinement (Paige–Tarjan style, hash-signature
variant) and builds the quotient.

For traversal queries, :func:`chain_compress` contracts induced weighted
paths (degree-2 chains) into single edges, preserving pairwise distances
between the retained junction nodes.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.graph.graph import Graph, Node

__all__ = ["bisimulation_compress", "decompress_sim", "chain_compress"]


def bisimulation_compress(graph: Graph) -> Tuple[Graph, Dict[Node, Node]]:
    """Quotient ``graph`` by its coarsest bisimulation.

    Returns ``(compressed, representative_of)`` where ``representative_of``
    maps each node to its class representative (a node of the compressed
    graph).  Node labels are preserved; a class edge exists when any member
    has the edge.
    """
    # Initial blocks: by label.
    block_of: Dict[Node, int] = {}
    blocks: Dict[object, int] = {}
    for v in graph.nodes():
        key = graph.node_label(v)
        if key not in blocks:
            blocks[key] = len(blocks)
        block_of[v] = blocks[key]

    # Refine until stable: signature = (own block, set of successor blocks).
    while True:
        signatures: Dict[Node, tuple] = {}
        for v in graph.nodes():
            succ_blocks = frozenset(block_of[w] for w in graph.successors(v))
            signatures[v] = (block_of[v], succ_blocks)
        remap: Dict[tuple, int] = {}
        new_block_of: Dict[Node, int] = {}
        for v in graph.nodes():
            sig = signatures[v]
            if sig not in remap:
                remap[sig] = len(remap)
            new_block_of[v] = remap[sig]
        if len(remap) == len(set(block_of.values())):
            block_of = new_block_of
            break
        block_of = new_block_of

    # Representative: the minimal member (stable, deterministic).
    members: Dict[int, List[Node]] = {}
    for v, b in block_of.items():
        members.setdefault(b, []).append(v)
    rep_of_block = {b: min(vs, key=repr) for b, vs in members.items()}
    representative_of = {v: rep_of_block[b] for v, b in block_of.items()}

    compressed = Graph(directed=graph.directed)
    for b, rep in rep_of_block.items():
        compressed.add_node(rep, graph.node_label(rep))
    for u, v, w in graph.edges():
        ru, rv = representative_of[u], representative_of[v]
        if not compressed.has_edge(ru, rv):
            compressed.add_edge(ru, rv, weight=w)
    return compressed, representative_of


def decompress_sim(sim_on_compressed: Dict[Node, Set[Node]],
                   representative_of: Dict[Node, Node],
                   ) -> Dict[Node, Set[Node]]:
    """Lift a simulation relation on the quotient back to the original."""
    members: Dict[Node, List[Node]] = {}
    for v, rep in representative_of.items():
        members.setdefault(rep, []).append(v)
    out: Dict[Node, Set[Node]] = {}
    for u, reps in sim_on_compressed.items():
        expanded: Set[Node] = set()
        for rep in reps:
            expanded.update(members.get(rep, (rep,)))
        out[u] = expanded
    return out


def chain_compress(graph: Graph) -> Tuple[Graph, Dict[Node, Tuple[Node, float]]]:
    """Contract degree-2 chains for traversal queries.

    Returns ``(compressed, offsets)``: interior chain nodes are removed,
    the chain becomes one edge whose weight is the path length, and
    ``offsets[v] = (chain_head, distance_from_head)`` reconstructs interior
    distances (``dist(s, v) = dist(s, head) + offset``).

    Only applies to directed graphs where interior nodes have exactly one
    predecessor and one successor.
    """
    interior = [v for v in graph.nodes()
                if graph.in_degree(v) == 1 and graph.out_degree(v) == 1
                and next(graph.predecessors(v)) != v]
    interior_set = set(interior)
    compressed = Graph(directed=graph.directed)
    offsets: Dict[Node, Tuple[Node, float]] = {}

    for v in graph.nodes():
        if v not in interior_set:
            compressed.add_node(v, graph.node_label(v))

    visited: Set[Node] = set()
    for head in compressed.nodes():
        if not graph.has_node(head):
            continue
        for nxt, w in graph.successors_with_weights(head):
            if nxt not in interior_set:
                if not compressed.has_edge(head, nxt) or \
                        compressed.edge_weight(head, nxt) > w:
                    compressed.add_edge(head, nxt, weight=w)
                continue
            # Walk the chain to its junction tail.
            total = w
            cur = nxt
            while cur in interior_set and cur not in visited:
                visited.add(cur)
                offsets[cur] = (head, total)
                nxt2, w2 = next(graph.successors_with_weights(cur))
                total += w2
                cur = nxt2
            if cur not in interior_set:
                if not compressed.has_edge(head, cur) or \
                        compressed.edge_weight(head, cur) > total:
                    compressed.add_edge(head, cur, weight=total)
    return compressed, offsets
