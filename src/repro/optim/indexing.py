"""Indexing optimizations (paper Section 6, "Graph-level optimization").

Any index effective for a sequential algorithm can be computed offline and
plugged into PEval/IncEval unchanged.  We provide the two the paper names:

* :class:`NeighborhoodIndex` — candidate filtering for pattern matching
  (the paper's [31]; also the optimized simulation of [19] used in Exp-3):
  a node is a candidate for query node ``u`` only if its label matches and
  its successor-label set covers ``u``'s required successor labels;
* :class:`TwoHopIndex` — 2-hop reachability labels (the paper's [15]):
  ``u`` reaches ``v`` iff ``L_out(u) ∩ L_in(v) ≠ ∅``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Optional, Set

from repro.graph.graph import Graph, Node

__all__ = ["NeighborhoodIndex", "IndexedSimCandidates", "TwoHopIndex"]


class NeighborhoodIndex:
    """Per-node successor-label summaries for candidate filtering."""

    def __init__(self, graph: Graph):
        self._labels: Dict[Node, object] = {}
        self._succ_labels: Dict[Node, FrozenSet] = {}
        self._by_label: Dict[object, Set[Node]] = {}
        for v in graph.nodes():
            label = graph.node_label(v)
            self._labels[v] = label
            self._by_label.setdefault(label, set()).add(v)
            self._succ_labels[v] = frozenset(
                graph.node_label(w) for w in graph.successors(v))

    def candidates(self, pattern: Graph) -> Dict[Node, Set[Node]]:
        """Filtered initial candidate sets for every pattern node."""
        out: Dict[Node, Set[Node]] = {}
        for u in pattern.nodes():
            required = frozenset(pattern.node_label(w)
                                 for w in pattern.successors(u))
            pool = self._by_label.get(pattern.node_label(u), set())
            out[u] = {v for v in pool
                      if required <= self._succ_labels[v]}
        return out


class IndexedSimCandidates:
    """Adapter plugging :class:`NeighborhoodIndex` into
    :class:`~repro.pie_programs.sim.SimProgram`.

    Indexes are built lazily once per fragment graph and cached — the
    paper's "computed offline and directly used" story (index build time
    is not part of query evaluation).
    """

    def __init__(self):
        self._cache: Dict[int, NeighborhoodIndex] = {}

    def __call__(self, pattern: Graph, graph: Graph) -> Dict[Node, Set[Node]]:
        index = self._cache.get(id(graph))
        if index is None:
            index = NeighborhoodIndex(graph)
            self._cache[id(graph)] = index
        return index.candidates(pattern)


class TwoHopIndex:
    """Pruned 2-hop reachability labeling (Cohen et al., SICOMP 2003).

    Landmarks are processed in decreasing-degree order; each landmark BFS
    skips nodes whose reachability to/from the landmark is already covered
    by earlier labels (pruned landmark labeling).
    """

    def __init__(self, graph: Graph):
        self._out: Dict[Node, Set[Node]] = {v: set() for v in graph.nodes()}
        self._in: Dict[Node, Set[Node]] = {v: set() for v in graph.nodes()}
        order = sorted(graph.nodes(),
                       key=lambda v: -(graph.out_degree(v)
                                       + graph.in_degree(v)))
        for landmark in order:
            self._bfs(graph, landmark, forward=True)
            self._bfs(graph, landmark, forward=False)

    def _bfs(self, graph: Graph, landmark: Node, *, forward: bool) -> None:
        seen = {landmark}
        dq = deque([landmark])
        while dq:
            v = dq.popleft()
            if v != landmark:
                if self._covered(landmark, v) if forward \
                        else self._covered(v, landmark):
                    continue
                if forward:
                    self._in[v].add(landmark)
                else:
                    self._out[v].add(landmark)
            else:
                self._out[landmark].add(landmark)
                self._in[landmark].add(landmark)
            nbrs = graph.successors(v) if forward else graph.predecessors(v)
            for w in nbrs:
                if w not in seen:
                    seen.add(w)
                    dq.append(w)

    def _covered(self, u: Node, v: Node) -> bool:
        return not self._out[u].isdisjoint(self._in[v])

    def reaches(self, u: Node, v: Node) -> bool:
        """Whether a directed path from ``u`` to ``v`` exists."""
        if u == v:
            return True
        return not self._out[u].isdisjoint(self._in[v])

    def label_size(self) -> int:
        """Total label entries (the index footprint)."""
        return (sum(len(s) for s in self._out.values())
                + sum(len(s) for s in self._in.values()))
