"""Edge-list serialization for graphs.

Format (one record per line, tab separated)::

    # directed=true
    N <node> [label]
    E <src> <dst> <weight> [label]

Node ids are written as ``repr``-free strings; integer-looking ids round-trip
as ``int``, anything else as ``str``.  This mirrors the plain edge-list files
(SNAP / DIMACS-style) the paper's datasets ship in.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

from repro.graph.graph import Graph

__all__ = ["write_edge_list", "read_edge_list", "dumps", "loads"]


def _parse_node(tok: str):
    try:
        return int(tok)
    except ValueError:
        return tok


def write_edge_list(g: Graph, dest: Union[str, Path, TextIO]) -> None:
    """Write ``g`` to a path or text file object."""
    if isinstance(dest, (str, Path)):
        with open(dest, "w", encoding="utf-8") as fh:
            _write(g, fh)
    else:
        _write(g, dest)


def _write(g: Graph, fh: TextIO) -> None:
    fh.write(f"# directed={'true' if g.directed else 'false'}\n")
    for v in g.nodes():
        lbl = g.node_label(v)
        if lbl is None:
            fh.write(f"N\t{v}\n")
        else:
            fh.write(f"N\t{v}\t{lbl}\n")
    for u, v, w in g.edges():
        lbl = g.edge_label(u, v)
        if lbl is None:
            fh.write(f"E\t{u}\t{v}\t{w!r}\n")
        else:
            fh.write(f"E\t{u}\t{v}\t{w!r}\t{lbl}\n")


def read_edge_list(src: Union[str, Path, TextIO]) -> Graph:
    """Read a graph written by :func:`write_edge_list`."""
    if isinstance(src, (str, Path)):
        with open(src, "r", encoding="utf-8") as fh:
            return _read(fh)
    return _read(src)


def _read(fh: TextIO) -> Graph:
    header = fh.readline().strip()
    directed = header.endswith("true")
    g = Graph(directed=directed)
    for line in fh:
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        kind = parts[0]
        if kind == "N":
            label = parts[2] if len(parts) > 2 else None
            g.add_node(_parse_node(parts[1]), label)
        elif kind == "E":
            u, v = _parse_node(parts[1]), _parse_node(parts[2])
            w = float(parts[3])
            label = parts[4] if len(parts) > 4 else None
            g.add_edge(u, v, weight=w, label=label)
        else:
            raise ValueError(f"unknown record kind {kind!r}")
    return g


def dumps(g: Graph) -> str:
    """Serialize to a string."""
    buf = io.StringIO()
    _write(g, buf)
    return buf.getvalue()


def loads(text: str) -> Graph:
    """Deserialize from a string produced by :func:`dumps`."""
    return _read(io.StringIO(text))
