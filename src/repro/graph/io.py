"""Edge-list serialization for graphs.

Format (one record per line, tab separated)::

    # directed=true
    N <node> [label]
    E <src> <dst> <weight> [label]

Node ids are written as ``repr``-free strings; integer-looking ids round-trip
as ``int``, anything else as ``str``.  This mirrors the plain edge-list files
(SNAP / DIMACS-style) the paper's datasets ship in.
"""

from __future__ import annotations

import io
import re
from pathlib import Path
from typing import Optional, TextIO, Union

from repro.graph.graph import Graph

__all__ = ["write_edge_list", "read_edge_list", "dumps", "loads"]


def _parse_node(tok: str):
    try:
        return int(tok)
    except ValueError:
        return tok


def write_edge_list(g: Graph, dest: Union[str, Path, TextIO]) -> None:
    """Write ``g`` to a path or text file object."""
    if isinstance(dest, (str, Path)):
        with open(dest, "w", encoding="utf-8") as fh:
            _write(g, fh)
    else:
        _write(g, dest)


def _write(g: Graph, fh: TextIO) -> None:
    fh.write(f"# directed={'true' if g.directed else 'false'}\n")
    for v in g.nodes():
        lbl = g.node_label(v)
        if lbl is None:
            fh.write(f"N\t{v}\n")
        else:
            fh.write(f"N\t{v}\t{lbl}\n")
    for u, v, w in g.edges():
        lbl = g.edge_label(u, v)
        if lbl is None:
            fh.write(f"E\t{u}\t{v}\t{w!r}\n")
        else:
            fh.write(f"E\t{u}\t{v}\t{w!r}\t{lbl}\n")


def read_edge_list(src: Union[str, Path, TextIO]) -> Graph:
    """Read a graph written by :func:`write_edge_list`."""
    if isinstance(src, (str, Path)):
        with open(src, "r", encoding="utf-8") as fh:
            return _read(fh)
    return _read(src)


_DIRECTED_RE = re.compile(r"directed\s*=\s*(true|false)", re.IGNORECASE)


def _read(fh: TextIO) -> Graph:
    """Parse an edge list, tolerating real-world file noise.

    Blank (or whitespace-only) lines and ``#`` comments are skipped
    anywhere in the file — SNAP-style dumps open with several comment
    lines and editors love trailing newlines.  The ``directed=`` header
    may appear in any comment line before the first record (defaulting
    to directed, the common SNAP convention).  Stray whitespace around
    the *structural* fields — record kind, node ids, weight — and line
    endings (including ``\\r`` from CRLF files) are tolerated; label
    fields are preserved byte-for-byte, so a label with significant
    leading/trailing whitespace round-trips exactly.
    """
    directed: bool = True
    g: Optional[Graph] = None  # created lazily so the directed header
    # can arrive in any leading comment line
    for lineno, raw in enumerate(fh, start=1):
        line = raw.rstrip("\r\n")
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            match = _DIRECTED_RE.search(stripped)
            if match and g is None:
                directed = match.group(1).lower() == "true"
            continue
        if g is None:
            g = Graph(directed=directed)
        parts = line.split("\t")
        # trailing tabs produce empty fields; drop them
        while parts and not parts[-1].strip():
            parts.pop()
        kind = parts[0].strip()
        try:
            if kind == "N":
                label = parts[2] if len(parts) > 2 else None
                g.add_node(_parse_node(parts[1].strip()), label)
            elif kind == "E":
                u = _parse_node(parts[1].strip())
                v = _parse_node(parts[2].strip())
                w = float(parts[3]) if len(parts) > 3 else 1.0
                label = parts[4] if len(parts) > 4 else None
                g.add_edge(u, v, weight=w, label=label)
            else:
                raise ValueError(f"unknown record kind {kind!r}")
        except (IndexError, ValueError) as exc:
            raise ValueError(
                f"malformed edge-list record on line {lineno}: "
                f"{line!r} ({exc})") from None
    return g if g is not None else Graph(directed=directed)


def dumps(g: Graph) -> str:
    """Serialize to a string."""
    buf = io.StringIO()
    _write(g, buf)
    return buf.getvalue()


def loads(text: str) -> Graph:
    """Deserialize from a string produced by :func:`dumps`."""
    return _read(io.StringIO(text))
