"""First-class graph update batches: ``ΔG = (ΔG⁺, ΔG⁻)``.

The paper's incremental machinery (Section 5's IncEval, Section 6's
"lightweight transaction controller ... to support not only queries but
also updates") is defined over *general* update batches — insertions,
deletions and attribute changes — not just monotone insertions.  This
module is the value type that carries such a batch through every layer
of the system:

* :class:`GraphDelta` — an ordered recorder of edge operations
  (``insert``, ``delete``, ``set_weight``), built by callers without a
  graph in hand;
* :class:`NormalizedDelta` — the same batch resolved against a concrete
  graph: deduped (last write per edge wins, undirected orientations
  unified), no-ops dropped, and every surviving change classified as a
  brand-new insertion, a weight decrease, a weight increase or a
  deletion.  Normalized deltas are **invertible** — :meth:`~NormalizedDelta.invert`
  returns the batch that undoes them — and carry the
  :attr:`~NormalizedDelta.monotone` predicate the maintenance layer
  dispatches on;
* :class:`FragmentDelta` — what one fragment actually absorbed when a
  normalized delta was applied to a fragmentation
  (:func:`repro.core.updates.apply_delta`): local edge mutations plus the
  border-set / ownership bookkeeping, **replayable** onto a remote copy
  of the fragment (the process backend ships these instead of whole
  fragments).

The monotone/non-monotone split mirrors the dynamic-query-answering
literature (Berkholz, Keppeler & Schweikardt, "Answering FO+MOD queries
under updates"): a monotone delta (new edges, weight decreases) can be
folded into a standing answer by resuming the IncEval fixpoint, while a
non-monotone one (deletions, weight increases) generally cannot and
forces a recompute from reset state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.graph.graph import Edge, Graph, Node

__all__ = ["FragmentDelta", "GraphDelta", "NormalizedDelta"]

#: recorded operations: ("+", u, v, w) insert / ("-", u, v) delete /
#: ("w", u, v, w) set weight
Op = Tuple


class GraphDelta:
    """An ordered batch of edge updates against some (future) graph.

    Operations are recorded verbatim and resolved only by
    :meth:`normalize` — so a delta can be built before the target graph
    is chosen, shipped around, and applied to several replicas.  Within a
    batch the *last* operation on an edge wins (for undirected targets,
    both orientations count as the same edge).

    ``insert`` and ``set_weight`` share one meaning — "this edge exists
    with this weight afterwards" — so re-inserting an existing edge is a
    weight change and setting the weight of a missing edge is an
    insertion.  The distinction that matters downstream (new edge,
    decrease, increase, deletion) is made by normalization against the
    concrete graph.
    """

    __slots__ = ("_ops",)

    def __init__(self, ops: Optional[Iterable[Op]] = None):
        self._ops: List[Op] = list(ops or ())

    # -- construction ---------------------------------------------------
    def insert(self, u: Node, v: Node, w: float = 1.0) -> "GraphDelta":
        """Record ``(u, v)`` present with weight ``w``; chainable."""
        self._ops.append(("+", u, v, float(w)))
        return self

    def delete(self, u: Node, v: Node) -> "GraphDelta":
        """Record ``(u, v)`` absent afterwards; chainable."""
        self._ops.append(("-", u, v))
        return self

    def set_weight(self, u: Node, v: Node, w: float) -> "GraphDelta":
        """Record ``(u, v)`` present with weight ``w``; chainable."""
        self._ops.append(("w", u, v, float(w)))
        return self

    @classmethod
    def from_insertions(cls, edges: Iterable[Tuple[Node, Node, float]]
                        ) -> "GraphDelta":
        return cls(("+", u, v, float(w)) for u, v, w in edges)

    @classmethod
    def from_deletions(cls, pairs: Iterable[Tuple[Node, Node]]
                       ) -> "GraphDelta":
        return cls(("-", u, v) for u, v in pairs)

    @classmethod
    def from_weight_changes(cls, triples: Iterable[Tuple[Node, Node, float]]
                            ) -> "GraphDelta":
        return cls(("w", u, v, float(w)) for u, v, w in triples)

    # -- resolution -----------------------------------------------------
    def normalize(self, graph: Graph) -> "NormalizedDelta":
        """Resolve this batch against ``graph`` (which is not mutated).

        Dedupes (last write per edge wins; for undirected graphs both
        orientations are one edge), drops exact no-ops (re-insert at the
        current weight, delete of an absent edge), and classifies every
        surviving change.  The result is what the rest of the pipeline
        consumes.
        """
        directed = graph.directed
        intents: Dict[Edge, Optional[float]] = {}
        order: List[Edge] = []
        for op in self._ops:
            kind, u, v = op[0], op[1], op[2]
            key = (u, v)
            if not directed and key not in intents and (v, u) in intents:
                key = (v, u)
            if key not in intents:
                order.append(key)
            intents[key] = None if kind == "-" else op[3]

        norm = NormalizedDelta(directed=directed)
        for key in order:
            u, v = key
            target = intents[key]
            exists = graph.has_edge(u, v)
            if target is None:
                if exists:
                    norm.deletions[key] = graph.edge_weight(u, v)
            elif not exists:
                norm.insertions[key] = target
            else:
                old = graph.edge_weight(u, v)
                if target < old:
                    norm.decreases[key] = (old, target)
                elif target > old:
                    norm.increases[key] = (old, target)
                # target == old: exact duplicate, a true no-op
        return norm

    # -- dunder ---------------------------------------------------------
    @property
    def ops(self) -> Tuple[Op, ...]:
        """The recorded operations, in order (read-only view)."""
        return tuple(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __bool__(self) -> bool:
        return bool(self._ops)

    def __add__(self, other: "GraphDelta") -> "GraphDelta":
        """Concatenate two batches (later ops still win on overlap)."""
        if not isinstance(other, GraphDelta):
            return NotImplemented
        return GraphDelta(self._ops + other._ops)

    def __repr__(self) -> str:
        kinds = {"+": 0, "-": 0, "w": 0}
        for op in self._ops:
            kinds[op[0]] += 1
        return (f"GraphDelta(inserts={kinds['+']}, deletes={kinds['-']}, "
                f"reweights={kinds['w']})")


@dataclass
class NormalizedDelta:
    """A deduped update batch classified against a concrete graph.

    The four categories are disjoint by construction; old weights are
    retained for ``decreases``/``increases``/``deletions`` so the delta
    is invertible.  ``monotone`` is the maintenance dispatch predicate:
    insertions and weight decreases can only *improve* the answers of
    inflationary fixpoints (shorter paths, merged components), while
    deletions and increases can invalidate them.
    """

    directed: bool = True
    #: brand-new edges -> weight
    insertions: Dict[Edge, float] = field(default_factory=dict)
    #: existing edges -> (old weight, new lower weight)
    decreases: Dict[Edge, Tuple[float, float]] = field(default_factory=dict)
    #: existing edges -> (old weight, new higher weight)
    increases: Dict[Edge, Tuple[float, float]] = field(default_factory=dict)
    #: removed edges -> their old weight
    deletions: Dict[Edge, float] = field(default_factory=dict)

    @property
    def has_deletions(self) -> bool:
        return bool(self.deletions)

    @property
    def has_weight_increases(self) -> bool:
        return bool(self.increases)

    @property
    def monotone(self) -> bool:
        """No deletions and no weight increases."""
        return not (self.deletions or self.increases)

    @property
    def num_changes(self) -> int:
        return (len(self.insertions) + len(self.decreases)
                + len(self.increases) + len(self.deletions))

    def __bool__(self) -> bool:
        return self.num_changes > 0

    def invert(self) -> GraphDelta:
        """The batch that undoes this one (edge set and weights only;
        nodes created by the forward application are left in place as
        isolated nodes)."""
        inv = GraphDelta()
        for (u, v), w in self.deletions.items():
            inv.insert(u, v, w)
        for (u, v), (old, _new) in chain(self.decreases.items(),
                                         self.increases.items()):
            inv.set_weight(u, v, old)
        for (u, v) in self.insertions:
            inv.delete(u, v)
        return inv

    # -- (de)serialization ----------------------------------------------
    def to_record(self) -> Tuple:
        """A compact plain-tuple form for the durable store's write-ahead
        log: ``(directed, insertions, decreases, increases, deletions)``
        as item tuples.  Stable under pickling (no dataclass module path
        baked into every WAL record) and round-tripped exactly by
        :meth:`from_record`."""
        return (self.directed,
                tuple(self.insertions.items()),
                tuple(self.decreases.items()),
                tuple(self.increases.items()),
                tuple(self.deletions.items()))

    @classmethod
    def from_record(cls, record: Tuple) -> "NormalizedDelta":
        """Rebuild a delta from :meth:`to_record` output."""
        directed, ins, dec, inc, dele = record
        return cls(directed=directed, insertions=dict(ins),
                   decreases=dict(dec), increases=dict(inc),
                   deletions=dict(dele))

    def apply_to(self, graph: Graph) -> None:
        """Apply to a bare :class:`Graph` (no fragmentation bookkeeping).

        Partitioned graphs go through
        :func:`repro.core.updates.apply_delta` instead, which keeps the
        fragments, border sets and ``G_P`` index in step.
        """
        for (u, v), w in self.insertions.items():
            graph.add_edge(u, v, weight=w)
        for (u, v), (_old, new) in chain(self.decreases.items(),
                                         self.increases.items()):
            graph.set_edge_weight(u, v, new)
        for (u, v) in self.deletions:
            graph.remove_edge(u, v)

    def __repr__(self) -> str:
        return (f"NormalizedDelta(+{len(self.insertions)}, "
                f"↓{len(self.decreases)}, ↑{len(self.increases)}, "
                f"-{len(self.deletions)}, monotone={self.monotone})")


@dataclass
class FragmentDelta:
    """What one fragment absorbed from an applied update batch.

    Produced by :func:`repro.core.updates.apply_delta` — one per touched
    fragment — and consumed in three places:

    * PIE programs fold maintainable deltas into live per-fragment state
      through :meth:`~repro.core.pie.PIEProgram.on_graph_update`
      (``insertions`` / ``as_insertions`` are the interesting views);
    * the process backend ships these, instead of whole fragments, to
      pooled workers whose cached copy lags by a few versions —
      :meth:`replay` applies the identical mutations there;
    * the maintenance layer dispatches on ``monotone`` /
      ``has_deletions`` via
      :meth:`~repro.core.pie.PIEProgram.maintainable`.

    Edge lists are in the fragment's *local orientation*: for undirected
    graphs the symmetric orientation of a cross edge appears in the other
    endpoint's fragment delta, exactly as the edge-cut construction
    stores it.
    """

    fid: int
    #: fragmentation version this delta produced (assigned by
    #: :meth:`~repro.partition.base.Fragmentation.record_delta`)
    seq: int = 0
    #: brand-new local edges ``(u, v, w)``
    insertions: List[Tuple[Node, Node, float]] = field(default_factory=list)
    #: removed local edges ``(u, v, old weight)`` — the weight at deletion
    #: time, so programs can test whether a converged value was supported
    #: by the vanished edge (the bounded non-monotone IncEval path)
    deletions: List[Tuple[Node, Node, float]] = field(default_factory=list)
    #: reweighted local edges ``(u, v, old, new)``
    weight_changes: List[Tuple[Node, Node, float, float]] = \
        field(default_factory=list)
    #: nodes added to the local graph ``(v, label)`` (owned or mirror)
    new_nodes: List[Tuple[Node, Any]] = field(default_factory=list)
    #: mirror copies dropped because their last local edge was deleted
    retired_nodes: List[Node] = field(default_factory=list)
    owned_added: List[Node] = field(default_factory=list)
    inner_added: List[Node] = field(default_factory=list)
    inner_removed: List[Node] = field(default_factory=list)
    outer_added: List[Node] = field(default_factory=list)
    outer_removed: List[Node] = field(default_factory=list)

    # -- predicates -----------------------------------------------------
    @property
    def has_deletions(self) -> bool:
        return bool(self.deletions or self.retired_nodes)

    @property
    def has_weight_increases(self) -> bool:
        return any(new > old for _u, _v, old, new in self.weight_changes)

    @property
    def monotone(self) -> bool:
        """Insertions and weight decreases only — the fragment-local
        restriction of :attr:`NormalizedDelta.monotone`."""
        return not (self.has_deletions or self.has_weight_increases)

    @property
    def as_insertions(self) -> List[Tuple[Node, Node, float]]:
        """Insertions plus weight decreases viewed as ``(u, v, w)`` —
        the edges that can open shortcuts for inflationary programs."""
        return self.insertions + [(u, v, new)
                                  for u, v, old, new in self.weight_changes
                                  if new < old]

    @property
    def mutates_graph(self) -> bool:
        """Whether the local graph changed (vs border-set-only upkeep)."""
        return bool(self.insertions or self.deletions or self.weight_changes
                    or self.new_nodes or self.retired_nodes)

    @property
    def weight_only(self) -> bool:
        """Reweights without any structural change — the shape-preserving
        case the shared-memory arena patches into mapped CSR arrays in
        place instead of republishing the segment."""
        return bool(self.weight_changes) and not (
            self.insertions or self.deletions
            or self.new_nodes or self.retired_nodes)

    def __bool__(self) -> bool:
        return bool(self.mutates_graph or self.owned_added
                    or self.inner_added or self.inner_removed
                    or self.outer_added or self.outer_removed)

    # -- remote replay --------------------------------------------------
    def replay(self, fragment, *, keep_csr: bool = False) -> None:
        """Apply this delta to a (remote) copy of the fragment.

        Mutation order mirrors :func:`repro.core.updates.apply_delta`
        exactly — nodes, insertions, reweights, deletions, retirements,
        then border-set adjustments — so a replayed copy is structurally
        identical to the coordinator's fragment at the same version.
        Invalidate-on-mutate keeps the copy's CSR epoch moving just like
        the original's.

        ``keep_csr`` is the shared-memory fast path: the coordinator
        attests that this delta is weight-only and already patched into
        the segment the copy's CSR maps, so the views stay valid — the
        epoch advances without dropping the snapshot.  It is honoured
        only when those conditions actually hold locally.
        """
        g = fragment.graph
        for v, label in self.new_nodes:
            g.add_node(v, label)
        for u, v, w in self.insertions:
            g.add_edge(u, v, weight=w)
        for u, v, _old, new in self.weight_changes:
            g.set_edge_weight(u, v, new)
        for u, v, _old in self.deletions:
            if g.has_edge(u, v):
                g.remove_edge(u, v)
        for v in self.retired_nodes:
            if g.has_node(v):
                g.remove_node(v)
        fragment.owned.update(self.owned_added)
        fragment.inner.update(self.inner_added)
        fragment.inner.difference_update(self.inner_removed)
        fragment.outer.update(self.outer_added)
        fragment.outer.difference_update(self.outer_removed)
        if self.mutates_graph:
            if keep_csr and self.weight_only and fragment.csr_shared:
                fragment.touch_csr_epoch()
            else:
                fragment.invalidate_csr()

    def __repr__(self) -> str:
        return (f"FragmentDelta(fid={self.fid}, seq={self.seq}, "
                f"+{len(self.insertions)}e, -{len(self.deletions)}e, "
                f"w{len(self.weight_changes)}, "
                f"retired={len(self.retired_nodes)})")
