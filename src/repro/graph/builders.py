"""Convenience constructors for :class:`repro.graph.Graph`."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Sequence, Tuple

from repro.graph.graph import Graph, Node

__all__ = [
    "from_edges",
    "from_weighted_edges",
    "from_adjacency",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
]


def from_edges(edges: Iterable[Tuple[Node, Node]], directed: bool = True,
               node_labels: Mapping[Node, Any] | None = None) -> Graph:
    """Build a graph from ``(u, v)`` pairs with unit weights."""
    g = Graph(directed=directed)
    for u, v in edges:
        g.add_edge(u, v)
    if node_labels:
        for v, lbl in node_labels.items():
            g.add_node(v, lbl)
    return g


def from_weighted_edges(edges: Iterable[Tuple[Node, Node, float]],
                        directed: bool = True) -> Graph:
    """Build a graph from ``(u, v, weight)`` triples."""
    g = Graph(directed=directed)
    for u, v, w in edges:
        g.add_edge(u, v, weight=w)
    return g


def from_adjacency(adj: Mapping[Node, Sequence[Node]],
                   directed: bool = True) -> Graph:
    """Build a graph from a ``node -> neighbors`` mapping.

    Isolated nodes (empty neighbor lists) are preserved.
    """
    g = Graph(directed=directed)
    for u, nbrs in adj.items():
        g.add_node(u)
        for v in nbrs:
            g.add_edge(u, v)
    return g


def path_graph(n: int, directed: bool = False) -> Graph:
    """Path ``0 - 1 - ... - (n-1)``."""
    g = Graph(directed=directed)
    for v in range(n):
        g.add_node(v)
    for v in range(n - 1):
        g.add_edge(v, v + 1)
    return g


def cycle_graph(n: int, directed: bool = False) -> Graph:
    """Cycle over ``n`` nodes; requires ``n >= 3``."""
    if n < 3:
        raise ValueError("cycle requires at least 3 nodes")
    g = path_graph(n, directed=directed)
    g.add_edge(n - 1, 0)
    return g


def complete_graph(n: int, directed: bool = False) -> Graph:
    g = Graph(directed=directed)
    for v in range(n):
        g.add_node(v)
    for u in range(n):
        for v in range(n):
            if u == v:
                continue
            if not directed and u > v:
                continue
            g.add_edge(u, v)
    return g


def star_graph(n_leaves: int, directed: bool = False) -> Graph:
    """Hub node ``0`` connected to leaves ``1..n_leaves``."""
    g = Graph(directed=directed)
    g.add_node(0)
    for v in range(1, n_leaves + 1):
        g.add_edge(0, v)
    return g
