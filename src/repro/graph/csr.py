"""Compressed sparse row (CSR) snapshot of a :class:`repro.graph.Graph`.

GRAPE's optimization story (paper Section 6) relies on the fact that
fragment-local computation may use any representation effective for the
sequential algorithm.  ``CSRGraph`` is a frozen, numpy-backed adjacency used
by the heavier numeric kernels (e.g. collaborative filtering mini-batches)
and by the benchmark harness when a read-only traversal is hot.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph, Node

__all__ = ["CSRGraph"]


class CSRGraph:
    """Immutable CSR adjacency with parallel reverse (CSC) structure.

    Attributes
    ----------
    indptr, indices, weights:
        Standard CSR arrays over dense node ids ``0..n-1``.
    rev_indptr, rev_indices, rev_weights:
        The transposed (incoming-edge) structure.
    id_of, node_of:
        Mappings between original node objects and dense ids.
    """

    __slots__ = ("n", "directed", "indptr", "indices", "weights",
                 "rev_indptr", "rev_indices", "rev_weights",
                 "id_of", "node_of", "labels")

    def __init__(self, n: int, directed: bool,
                 indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray,
                 rev_indptr: np.ndarray, rev_indices: np.ndarray,
                 rev_weights: np.ndarray,
                 id_of: Dict[Node, int], node_of: List[Node],
                 labels: List):
        self.n = n
        self.directed = directed
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.rev_indptr = rev_indptr
        self.rev_indices = rev_indices
        self.rev_weights = rev_weights
        self.id_of = id_of
        self.node_of = node_of
        self.labels = labels

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, g: Graph) -> "CSRGraph":
        node_of = list(g.nodes())
        id_of = {v: i for i, v in enumerate(node_of)}
        n = len(node_of)
        labels = [g.node_label(v) for v in node_of]

        out_deg = np.zeros(n + 1, dtype=np.int64)
        in_deg = np.zeros(n + 1, dtype=np.int64)
        # For undirected graphs Graph stores both orientations already; use
        # successors directly so CSR mirrors the symmetric adjacency.
        rows: List[Tuple[int, int, float]] = []
        for v in node_of:
            vid = id_of[v]
            for u, w in g.successors_with_weights(v):
                rows.append((vid, id_of[u], w))
                out_deg[vid + 1] += 1
                in_deg[id_of[u] + 1] += 1

        indptr = np.cumsum(out_deg)
        rev_indptr = np.cumsum(in_deg)
        m = len(rows)
        indices = np.empty(m, dtype=np.int64)
        weights = np.empty(m, dtype=np.float64)
        rev_indices = np.empty(m, dtype=np.int64)
        rev_weights = np.empty(m, dtype=np.float64)

        fill = indptr[:-1].copy() if n else np.empty(0, dtype=np.int64)
        rev_fill = rev_indptr[:-1].copy() if n else np.empty(0, dtype=np.int64)
        for src, dst, w in rows:
            pos = fill[src]
            indices[pos] = dst
            weights[pos] = w
            fill[src] += 1
            rpos = rev_fill[dst]
            rev_indices[rpos] = src
            rev_weights[rpos] = w
            rev_fill[dst] += 1

        return cls(n, g.directed, indptr, indices, weights,
                   rev_indptr, rev_indices, rev_weights,
                   id_of, node_of, labels)

    # ------------------------------------------------------------------
    def out_neighbors(self, vid: int) -> np.ndarray:
        return self.indices[self.indptr[vid]:self.indptr[vid + 1]]

    def out_weights(self, vid: int) -> np.ndarray:
        return self.weights[self.indptr[vid]:self.indptr[vid + 1]]

    def in_neighbors(self, vid: int) -> np.ndarray:
        return self.rev_indices[self.rev_indptr[vid]:self.rev_indptr[vid + 1]]

    def in_weights(self, vid: int) -> np.ndarray:
        return self.rev_weights[self.rev_indptr[vid]:self.rev_indptr[vid + 1]]

    def out_degree(self, vid: int) -> int:
        return int(self.indptr[vid + 1] - self.indptr[vid])

    def in_degree(self, vid: int) -> int:
        return int(self.rev_indptr[vid + 1] - self.rev_indptr[vid])

    @property
    def num_directed_edges(self) -> int:
        return int(self.indices.shape[0])

    def to_graph(self) -> Graph:
        """Round-trip back to a mutable :class:`Graph`."""
        g = Graph(directed=self.directed)
        for vid in range(self.n):
            g.add_node(self.node_of[vid], self.labels[vid])
        for vid in range(self.n):
            start, end = self.indptr[vid], self.indptr[vid + 1]
            for k in range(start, end):
                u = self.node_of[vid]
                v = self.node_of[int(self.indices[k])]
                if not g.has_edge(u, v):
                    g.add_edge(u, v, weight=float(self.weights[k]))
        return g

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.n}, m={self.num_directed_edges})"
