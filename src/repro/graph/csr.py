"""Compressed sparse row (CSR) snapshot of a :class:`repro.graph.Graph`.

GRAPE's optimization story (paper Section 6) relies on the fact that
fragment-local computation may use any representation effective for the
sequential algorithm.  ``CSRGraph`` is a frozen, numpy-backed adjacency used
by the heavier numeric kernels (e.g. collaborative filtering mini-batches)
and by the benchmark harness when a read-only traversal is hot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph, Node

__all__ = ["CSRGraph"]


class CSRGraph:
    """Immutable CSR adjacency with parallel reverse (CSC) structure.

    Attributes
    ----------
    indptr, indices, weights:
        Standard CSR arrays over dense node ids ``0..n-1``.
    rev_indptr, rev_indices, rev_weights:
        The transposed (incoming-edge) structure.
    id_of, node_of:
        Mappings between original node objects and dense ids.
    """

    __slots__ = ("n", "directed", "indptr", "indices", "weights",
                 "rev_indptr", "rev_indices", "rev_weights",
                 "id_of", "node_of", "labels")

    def __init__(self, n: int, directed: bool,
                 indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray,
                 rev_indptr: np.ndarray, rev_indices: np.ndarray,
                 rev_weights: np.ndarray,
                 id_of: Dict[Node, int], node_of: List[Node],
                 labels: List):
        self.n = n
        self.directed = directed
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.rev_indptr = rev_indptr
        self.rev_indices = rev_indices
        self.rev_weights = rev_weights
        self.id_of = id_of
        self.node_of = node_of
        self.labels = labels

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, g: Graph) -> "CSRGraph":
        # Reads the adjacency rows directly: this runs on every snapshot
        # rebuild after a structural mutation, which lands inside the
        # update latency of the first query or maintenance pass to touch
        # the fragment — C-speed row copies instead of per-edge
        # generator hops keep that rebuild off the critical path.
        succ = g._succ
        node_of = list(succ)
        id_of = {v: i for i, v in enumerate(node_of)}
        n = len(node_of)
        labels = [g.node_label(v) for v in node_of]

        # For undirected graphs Graph stores both orientations already; use
        # successors directly so CSR mirrors the symmetric adjacency.
        counts = np.empty(n, dtype=np.int64)
        dst_ids: List[int] = []
        wgts: List[float] = []
        get_id = id_of.__getitem__
        for i, v in enumerate(node_of):
            row = succ[v]
            counts[i] = len(row)
            dst_ids.extend(map(get_id, row))
            wgts.extend(row.values())
        dst = np.array(dst_ids, dtype=np.int64)
        wgt = np.array(wgts, dtype=np.float64)
        return cls._assemble(n, g.directed, counts, dst, wgt,
                             id_of, node_of, labels)

    @classmethod
    def from_edges(cls, edges: Sequence[Tuple[Node, Node, float]], *,
                   directed: bool = True,
                   nodes: Optional[Sequence[Node]] = None,
                   labels: Optional[Dict[Node, object]] = None
                   ) -> "CSRGraph":
        """Build a snapshot straight from an edge list, skipping the
        intermediate dict :class:`Graph`.

        Dense ids follow ``nodes`` when given, otherwise first-seen order
        over the edge list (sources before destinations, as when the
        edges are replayed through ``Graph.add_edge``).  For an
        undirected snapshot each input edge contributes both
        orientations, mirroring the symmetric storage of :class:`Graph`.
        Parallel duplicate edges are kept as given (deduplicate upstream
        if the source may repeat edges).
        """
        id_of: Dict[Node, int] = {}
        node_of: List[Node] = []
        if nodes is not None:
            for v in nodes:
                if v not in id_of:
                    id_of[v] = len(node_of)
                    node_of.append(v)

        def vid(v: Node) -> int:
            i = id_of.get(v)
            if i is None:
                i = id_of[v] = len(node_of)
                node_of.append(v)
            return i

        num_edges = len(edges)
        slots = num_edges if directed else 2 * num_edges
        src = np.empty(slots, dtype=np.int64)
        dst = np.empty(slots, dtype=np.int64)
        wgt = np.empty(slots, dtype=np.float64)
        k = 0
        for u, v, w in edges:
            ui, vi = vid(u), vid(v)
            src[k], dst[k], wgt[k] = ui, vi, w
            k += 1
            if not directed and ui != vi:
                src[k], dst[k], wgt[k] = vi, ui, w
                k += 1
        src, dst, wgt = src[:k], dst[:k], wgt[:k]

        n = len(node_of)
        counts = np.bincount(src, minlength=n).astype(np.int64)
        # Stable argsort groups edges by source while preserving input
        # order within each row — the same adjacency order Graph.add_edge
        # replay would produce.
        order = np.argsort(src, kind="stable")
        label_list = ([labels.get(v) for v in node_of] if labels
                      else [None] * n)
        return cls._assemble(n, directed, counts, dst[order], wgt[order],
                             id_of, node_of, label_list)

    @classmethod
    def _assemble(cls, n: int, directed: bool, counts: np.ndarray,
                  dst: np.ndarray, wgt: np.ndarray,
                  id_of: Dict[Node, int], node_of: List[Node],
                  labels: List) -> "CSRGraph":
        """Finish construction from row-grouped edge arrays.

        ``dst``/``wgt`` must already be grouped by source row with row
        sizes ``counts``; the reverse (CSC) structure is derived with a
        stable argsort over destinations — bucket placement without the
        per-edge Python fill loop, and with the same within-bucket order
        that loop produced.
        """
        out_deg = np.zeros(n + 1, dtype=np.int64)
        out_deg[1:] = counts
        indptr = np.cumsum(out_deg)

        in_deg = np.zeros(n + 1, dtype=np.int64)
        in_deg[1:] = np.bincount(dst, minlength=n)
        rev_indptr = np.cumsum(in_deg)

        src = np.repeat(np.arange(n, dtype=np.int64), counts)
        rev_order = np.argsort(dst, kind="stable")
        return cls(n, directed, indptr, dst, wgt,
                   rev_indptr, src[rev_order], wgt[rev_order],
                   id_of, node_of, labels)

    # ------------------------------------------------------------------
    # Array (de)serialization — the durable store's snapshot payload
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The forward CSR arrays, the complete structural payload.

        The reverse (CSC) structure is derived, not stored — roughly
        halving snapshot size; :meth:`from_arrays` rebuilds it.  Node
        identities and labels are Python objects and travel separately
        (the snapshot container pickles them as metadata).
        """
        return {"indptr": self.indptr, "indices": self.indices,
                "weights": self.weights}

    @classmethod
    def from_arrays(cls, *, directed: bool, indptr: np.ndarray,
                    indices: np.ndarray, weights: np.ndarray,
                    node_of: Sequence[Node],
                    labels: Optional[Sequence] = None) -> "CSRGraph":
        """Rebuild a snapshot from :meth:`to_arrays` output plus the node
        identity/label metadata; the reverse structure is re-derived."""
        node_of = list(node_of)
        n = len(node_of)
        if indptr.shape[0] != n + 1:
            raise ValueError(f"indptr has {indptr.shape[0]} entries "
                             f"for {n} nodes")
        id_of = {v: i for i, v in enumerate(node_of)}
        counts = np.diff(np.asarray(indptr, dtype=np.int64))
        label_list = list(labels) if labels is not None else [None] * n
        return cls._assemble(n, directed, counts,
                             np.asarray(indices, dtype=np.int64),
                             np.asarray(weights, dtype=np.float64),
                             id_of, node_of, label_list)

    # ------------------------------------------------------------------
    # Shared-memory (de)serialization — the process backend's zero-copy
    # fragment plane (repro.runtime.shm)
    # ------------------------------------------------------------------
    #: the six structural arrays a shared segment carries, in layout order
    SHARED_FIELDS = ("indptr", "indices", "weights",
                     "rev_indptr", "rev_indices", "rev_weights")
    _SHARED_ALIGN = 64

    @classmethod
    def _aligned(cls, offset: int) -> int:
        a = cls._SHARED_ALIGN
        return (offset + a - 1) // a * a

    def shared_nbytes(self, offset: int = 0) -> int:
        """Bytes needed to place the structural arrays in a shared
        buffer starting at ``offset`` (each array 64-byte aligned)."""
        for name in self.SHARED_FIELDS:
            offset = self._aligned(offset) + getattr(self, name).nbytes
        return self._aligned(offset)

    def to_shared(self, buf, offset: int = 0
                  ) -> List[Tuple[str, str, int, int]]:
        """Copy the six structural arrays into ``buf`` (any writable
        buffer — typically a mapped shared segment) starting at
        ``offset``.  Unlike :meth:`to_arrays` both orientations are
        stored: attachers must not pay the reverse-derivation pass.
        Returns the ``(field, dtype, count, offset)`` layout placed."""
        layout: List[Tuple[str, str, int, int]] = []
        for name in self.SHARED_FIELDS:
            arr = np.ascontiguousarray(getattr(self, name))
            offset = self._aligned(offset)
            count = int(arr.shape[0])
            np.frombuffer(buf, dtype=arr.dtype, count=count,
                          offset=offset)[:] = arr
            layout.append((name, arr.dtype.str, count, offset))
            offset += arr.nbytes
        return layout

    @classmethod
    def from_shared(cls, buf, layout, *, n: int, directed: bool,
                    id_of: Dict[Node, int], node_of: List[Node],
                    labels: List) -> "CSRGraph":
        """Zero-copy snapshot over a shared buffer written by
        :meth:`to_shared`: every array is a view into ``buf`` (read-only
        when the buffer is, and flagged read-only regardless), so the
        buffer must stay mapped for the snapshot's lifetime."""
        views: Dict[str, np.ndarray] = {}
        for name, dtype, count, off in layout:
            if name not in cls.SHARED_FIELDS:
                continue
            arr = np.frombuffer(buf, dtype=dtype, count=count, offset=off)
            if arr.flags.writeable:
                arr = arr.view()
                arr.flags.writeable = False
            views[name] = arr
        return cls(n, directed, views["indptr"], views["indices"],
                   views["weights"], views["rev_indptr"],
                   views["rev_indices"], views["rev_weights"],
                   id_of, node_of, labels)

    # ------------------------------------------------------------------
    def out_neighbors(self, vid: int) -> np.ndarray:
        return self.indices[self.indptr[vid]:self.indptr[vid + 1]]

    def out_weights(self, vid: int) -> np.ndarray:
        return self.weights[self.indptr[vid]:self.indptr[vid + 1]]

    def in_neighbors(self, vid: int) -> np.ndarray:
        return self.rev_indices[self.rev_indptr[vid]:self.rev_indptr[vid + 1]]

    def in_weights(self, vid: int) -> np.ndarray:
        return self.rev_weights[self.rev_indptr[vid]:self.rev_indptr[vid + 1]]

    def out_degree(self, vid: int) -> int:
        return int(self.indptr[vid + 1] - self.indptr[vid])

    def in_degree(self, vid: int) -> int:
        return int(self.rev_indptr[vid + 1] - self.rev_indptr[vid])

    @property
    def num_directed_edges(self) -> int:
        return int(self.indices.shape[0])

    def to_graph(self) -> Graph:
        """Round-trip back to a mutable :class:`Graph`."""
        g = Graph(directed=self.directed)
        for vid in range(self.n):
            g.add_node(self.node_of[vid], self.labels[vid])
        for vid in range(self.n):
            start, end = self.indptr[vid], self.indptr[vid + 1]
            for k in range(start, end):
                u = self.node_of[vid]
                v = self.node_of[int(self.indices[k])]
                if not g.has_edge(u, v):
                    g.add_edge(u, v, weight=float(self.weights[k]))
        return g

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.n}, m={self.num_directed_edges})"
