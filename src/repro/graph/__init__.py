"""Graph substrate: data structures, builders, generators and I/O."""

from repro.graph.graph import Graph, Node, Edge
from repro.graph.csr import CSRGraph
from repro.graph.delta import FragmentDelta, GraphDelta, NormalizedDelta
from repro.graph import builders, generators, io

__all__ = ["Graph", "Node", "Edge", "CSRGraph", "FragmentDelta",
           "GraphDelta", "NormalizedDelta", "builders", "generators", "io"]
