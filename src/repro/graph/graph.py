"""Core graph data structure used throughout the GRAPE reproduction.

The paper (Section 2) works with graphs ``G = (V, E, L)``, directed or
undirected, where every node and edge may carry a label.  Edges may in
addition carry a numeric weight (used by SSSP and collaborative filtering).

``Graph`` is a mutable adjacency-list structure tuned for the access
patterns of the sequential algorithms in :mod:`repro.sequential`:

* ``successors(v)`` / ``predecessors(v)`` in O(out-degree) / O(in-degree);
* O(1) membership tests for nodes and edges;
* cheap induced-subgraph extraction (used by fragment construction).

For read-heavy numeric kernels a frozen CSR snapshot is available via
:meth:`Graph.to_csr` (see :mod:`repro.graph.csr`).
"""

from __future__ import annotations

from itertools import chain
from typing import Any, Dict, Hashable, Iterable, Iterator, Optional, Set, Tuple

Node = Hashable
Edge = Tuple[Node, Node]

__all__ = ["Graph", "Node", "Edge"]


class Graph:
    """A directed or undirected labeled, weighted graph.

    Undirected graphs are stored as symmetric directed graphs: adding edge
    ``(u, v)`` also records ``(v, u)``, and both orientations share the same
    label and weight.  ``num_edges`` counts each undirected edge once.

    Parameters
    ----------
    directed:
        Whether edges are one-way.  Defaults to ``True`` (the paper's SSSP,
        Sim and SubIso use directed graphs; CC uses undirected).
    """

    __slots__ = ("directed", "_succ", "_pred", "_node_labels", "_edge_labels",
                 "_edge_weights", "_num_undirected_edges")

    def __init__(self, directed: bool = True):
        self.directed = directed
        # node -> dict(successor -> weight)
        self._succ: Dict[Node, Dict[Node, float]] = {}
        self._pred: Dict[Node, Dict[Node, float]] = {}
        self._node_labels: Dict[Node, Any] = {}
        self._edge_labels: Dict[Edge, Any] = {}
        self._edge_weights: Dict[Edge, float] = {}
        self._num_undirected_edges = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, v: Node, label: Any = None) -> None:
        """Add node ``v`` (idempotent); set its label if given."""
        if v not in self._succ:
            self._succ[v] = {}
            self._pred[v] = {}
        if label is not None:
            self._node_labels[v] = label

    def add_edge(self, u: Node, v: Node, weight: float = 1.0,
                 label: Any = None) -> None:
        """Add edge ``(u, v)``; endpoints are created if missing.

        Re-adding an existing edge overwrites its weight and label.
        """
        self.add_node(u)
        self.add_node(v)
        is_new = v not in self._succ[u]
        self._succ[u][v] = weight
        self._pred[v][u] = weight
        self._edge_weights[(u, v)] = weight
        if label is not None:
            self._edge_labels[(u, v)] = label
        if not self.directed:
            self._succ[v][u] = weight
            self._pred[u][v] = weight
            self._edge_weights[(v, u)] = weight
            if label is not None:
                self._edge_labels[(v, u)] = label
            if is_new:
                self._num_undirected_edges += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove edge ``(u, v)``; raises ``KeyError`` if absent."""
        del self._succ[u][v]
        del self._pred[v][u]
        self._edge_weights.pop((u, v), None)
        self._edge_labels.pop((u, v), None)
        if not self.directed:
            self._succ[v].pop(u, None)
            self._pred[u].pop(v, None)
            self._edge_weights.pop((v, u), None)
            self._edge_labels.pop((v, u), None)
            self._num_undirected_edges -= 1

    def set_edge_weight(self, u: Node, v: Node, weight: float) -> None:
        """Reweight existing edge ``(u, v)``; raises ``KeyError`` if absent.

        Unlike :meth:`add_edge` this never creates nodes or edges, so
        update pipelines can use it to assert the edge's existence while
        changing its weight (both orientations for undirected graphs).
        """
        if not self.has_edge(u, v):
            raise KeyError((u, v))
        self._succ[u][v] = weight
        self._pred[v][u] = weight
        self._edge_weights[(u, v)] = weight
        if not self.directed:
            self._succ[v][u] = weight
            self._pred[u][v] = weight
            self._edge_weights[(v, u)] = weight

    def remove_node(self, v: Node) -> None:
        """Remove ``v`` and every incident edge."""
        for u in list(self._pred[v]):
            self.remove_edge(u, v)
        for w in list(self._succ.get(v, ())):
            self.remove_edge(v, w)
        self._succ.pop(v, None)
        self._pred.pop(v, None)
        self._node_labels.pop(v, None)

    def set_node_label(self, v: Node, label: Any) -> None:
        if v not in self._succ:
            raise KeyError(v)
        self._node_labels[v] = label

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        """Directed edge count; undirected edges are counted once."""
        if self.directed:
            return len(self._edge_weights)
        return self._num_undirected_edges

    def nodes(self) -> Iterator[Node]:
        return iter(self._succ)

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate ``(u, v, weight)``; undirected edges appear once."""
        if self.directed:
            for u, nbrs in self._succ.items():
                for v, w in nbrs.items():
                    yield u, v, w
        else:
            # Both orientations of an undirected edge are stored; emit
            # each edge from the endpoint visited first.  A node whose
            # row was already iterated is in ``done``, so the reverse
            # orientation is skipped without allocating a per-edge key.
            done: Set[Node] = set()
            for u, nbrs in self._succ.items():
                for v, w in nbrs.items():
                    if v not in done:
                        yield u, v, w
                done.add(u)

    def has_node(self, v: Node) -> bool:
        return v in self._succ

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._succ and v in self._succ[u]

    def successors(self, v: Node) -> Iterator[Node]:
        return iter(self._succ[v])

    def predecessors(self, v: Node) -> Iterator[Node]:
        return iter(self._pred[v])

    def neighbors(self, v: Node) -> Iterator[Node]:
        """Successors and predecessors, without duplicates."""
        if not self.directed:
            return iter(self._succ[v])
        return iter(dict.fromkeys(chain(self._succ[v], self._pred[v])))

    def out_degree(self, v: Node) -> int:
        return len(self._succ[v])

    def in_degree(self, v: Node) -> int:
        return len(self._pred[v])

    def degree(self, v: Node) -> int:
        if self.directed:
            return len(self._succ[v]) + len(self._pred[v])
        return len(self._succ[v])

    def node_label(self, v: Node, default: Any = None) -> Any:
        return self._node_labels.get(v, default)

    def edge_label(self, u: Node, v: Node, default: Any = None) -> Any:
        return self._edge_labels.get((u, v), default)

    def edge_weight(self, u: Node, v: Node) -> float:
        return self._succ[u][v]

    def successors_with_weights(self, v: Node) -> Iterator[Tuple[Node, float]]:
        return iter(self._succ[v].items())

    def predecessors_with_weights(self, v: Node) -> Iterator[Tuple[Node, float]]:
        return iter(self._pred[v].items())

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Subgraph induced by ``nodes`` (paper Section 2).

        Contains every edge of ``self`` whose endpoints are both in
        ``nodes``, with labels and weights preserved.
        """
        keep = set(nodes)
        sub = Graph(directed=self.directed)
        for v in keep:
            if v not in self._succ:
                raise KeyError(v)
            sub.add_node(v, self._node_labels.get(v))
        for u in keep:
            for v, w in self._succ[u].items():
                if v in keep and not sub.has_edge(u, v):
                    sub.add_edge(u, v, weight=w,
                                 label=self._edge_labels.get((u, v)))
        return sub

    def subgraph_with_edges(self, nodes: Iterable[Node],
                            edges: Iterable[Edge]) -> "Graph":
        """Subgraph with explicit node and edge sets (not induced)."""
        sub = Graph(directed=self.directed)
        for v in nodes:
            sub.add_node(v, self._node_labels.get(v))
        for u, v in edges:
            sub.add_edge(u, v, weight=self._succ[u][v],
                         label=self._edge_labels.get((u, v)))
        return sub

    def reverse(self) -> "Graph":
        """Graph with all edges reversed (labels/weights preserved)."""
        rev = Graph(directed=self.directed)
        for v in self._succ:
            rev.add_node(v, self._node_labels.get(v))
        for u, v, w in self.edges():
            rev.add_edge(v, u, weight=w, label=self._edge_labels.get((u, v)))
        return rev

    def copy(self) -> "Graph":
        dup = Graph(directed=self.directed)
        for v in self._succ:
            dup.add_node(v, self._node_labels.get(v))
        for u, v, w in self.edges():
            dup.add_edge(u, v, weight=w, label=self._edge_labels.get((u, v)))
        return dup

    def to_csr(self):
        """Frozen CSR snapshot; see :class:`repro.graph.csr.CSRGraph`."""
        from repro.graph.csr import CSRGraph
        return CSRGraph.from_graph(self)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def content_hash(self) -> int:
        """Cheap order-independent hash of the graph's full content.

        Two graphs that compare ``==`` (same directedness, nodes, edges,
        labels and weights) hash equal no matter what order their nodes
        and edges were inserted in — each node and stored edge record is
        hashed independently with :func:`~repro.runtime.message.stable_hash`
        and the records are folded with commutative XOR/sum mixing.
        Used by the durable store to verify a loaded snapshot decoded to
        the graph that was saved, and usable as a content-addressed cache
        key.  This is an integrity check, not a cryptographic digest.

        Each record is hashed from its ``repr`` — stable across processes
        and ``PYTHONHASHSEED`` values for the builtin id/label types
        (and for custom types exactly as stable as their repr, the same
        contract :func:`~repro.runtime.message.stable_hash` documents) —
        and records are folded with commutative XOR/sum mixing, so
        insertion order cannot matter.
        """
        from zlib import crc32
        mask = (1 << 64) - 1
        nl = self._node_labels
        el = self._edge_labels
        # One repr per node, reused across its edges — the hash runs on
        # the store's warm-start path, so per-record cost matters.
        reprs = {v: repr(v) for v in self._succ}
        acc_xor = 0
        acc_sum = 0
        count = 0
        for v, rv in reprs.items():
            h = crc32(("N\x1f%s\x1f%r" % (rv, nl.get(v)))
                      .encode("utf-8", "backslashreplace"))
            acc_xor ^= h
            acc_sum = (acc_sum + h * h) & mask
            count += 1
        # Rows of _succ: directed edges, or both orientations of each
        # undirected edge — either way an insertion-order-free multiset.
        for u, nbrs in self._succ.items():
            ru = reprs[u]
            for v, w in nbrs.items():
                lbl = el.get((u, v))
                # float(w): weights are hashed in their float identity,
                # matching both dict equality (1 == 1.0 under __eq__)
                # and the store's float64 array round trip — an
                # int-weighted graph must hash equal to its loaded self.
                if lbl is None:
                    data = "E\x1f%s\x1f%s\x1f%r" % (ru, reprs[v], float(w))
                else:
                    data = "E\x1f%s\x1f%s\x1f%r\x1f%r" % (ru, reprs[v],
                                                          float(w), lbl)
                h = crc32(data.encode("utf-8", "backslashreplace"))
                acc_xor ^= h
                acc_sum = (acc_sum + h * h) & mask
                count += 1
        head = crc32(("G\x1f%r\x1f%d" % (self.directed, count))
                     .encode("utf-8"))
        return ((acc_sum << 32) ^ (acc_xor << 1) ^ head) & mask

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, v: Node) -> bool:
        return v in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (f"Graph({kind}, nodes={self.num_nodes}, "
                f"edges={self.num_edges})")

    def __eq__(self, other: object) -> bool:
        """Structural equality: same nodes, edges, labels and weights."""
        if not isinstance(other, Graph):
            return NotImplemented
        if self.directed != other.directed:
            return False
        if set(self._succ) != set(other._succ):
            return False
        for u, nbrs in self._succ.items():
            if nbrs != other._succ[u]:
                return False
        for v in self._succ:
            if self._node_labels.get(v) != other._node_labels.get(v):
                return False
        for e, lbl in self._edge_labels.items():
            if other._edge_labels.get(e) != lbl:
                return False
        return True

    def __hash__(self):  # mutable: identity hash
        return id(self)
