"""Seeded synthetic graph generators.

These stand in for the paper's datasets (Section 7 and Appendix B):

* :func:`grid_road_graph` — the *traffic* stand-in: a 2-D grid with random
  diagonal shortcuts and positive weights; very large diameter and tiny
  average degree, the regime where vertex-centric SSSP needs thousands of
  supersteps.
* :func:`preferential_attachment` — the *liveJournal*/*DBpedia* stand-in:
  heavy-tailed degrees, small diameter.
* :func:`uniform_random_graph` — Erdős–Rényi-style G(n, m).
* :func:`bipartite_ratings_graph` — the *movieLens* stand-in for CF, with
  planted latent factors so SGD has real structure to recover.
* :func:`labeled_graph` — wraps any generator with labels drawn from an
  alphabet, as in the paper's synthetic generator (|L| = 50 labels).

All generators take an explicit ``seed`` and are fully deterministic.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph

__all__ = [
    "uniform_random_graph",
    "preferential_attachment",
    "grid_road_graph",
    "bipartite_ratings_graph",
    "assign_labels",
    "labeled_graph",
    "random_dag",
]


def uniform_random_graph(num_nodes: int, num_edges: int, *, directed: bool = True,
                         seed: int = 0, max_weight: float = 1.0) -> Graph:
    """G(n, m): ``num_edges`` distinct edges sampled uniformly.

    Self-loops are excluded.  Weights are uniform in ``(0, max_weight]``.
    """
    if num_nodes < 2 and num_edges > 0:
        raise ValueError("need at least 2 nodes to place edges")
    rng = random.Random(seed)
    g = Graph(directed=directed)
    for v in range(num_nodes):
        g.add_node(v)
    placed = 0
    limit = num_nodes * (num_nodes - 1)
    if not directed:
        limit //= 2
    target = min(num_edges, limit)
    while placed < target:
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v or g.has_edge(u, v):
            continue
        w = rng.uniform(0.0, max_weight) or max_weight
        g.add_edge(u, v, weight=w)
        placed += 1
    return g


def preferential_attachment(num_nodes: int, edges_per_node: int = 4, *,
                            directed: bool = True, seed: int = 0,
                            max_weight: float = 1.0) -> Graph:
    """Barabási–Albert-style power-law graph.

    Each new node attaches ``edges_per_node`` edges to existing nodes chosen
    proportionally to degree, giving the heavy-tailed degree distribution of
    social networks such as liveJournal.
    """
    if num_nodes < edges_per_node + 1:
        raise ValueError("num_nodes must exceed edges_per_node")
    rng = random.Random(seed)
    g = Graph(directed=directed)
    # Seed clique over the first edges_per_node + 1 nodes.
    core = edges_per_node + 1
    for v in range(core):
        g.add_node(v)
    repeated: List[int] = []  # node repeated once per incident edge
    for u in range(core):
        for v in range(u + 1, core):
            g.add_edge(u, v, weight=rng.uniform(0.1, max_weight))
            repeated.extend((u, v))
    for v in range(core, num_nodes):
        g.add_node(v)
        chosen = set()
        while len(chosen) < edges_per_node:
            chosen.add(rng.choice(repeated))
        for u in chosen:
            g.add_edge(v, u, weight=rng.uniform(0.1, max_weight))
            repeated.extend((u, v))
    return g


def grid_road_graph(rows: int, cols: int, *, shortcut_prob: float = 0.05,
                    seed: int = 0, directed: bool = True,
                    max_weight: float = 10.0) -> Graph:
    """Road-network stand-in: ``rows x cols`` grid plus random diagonals.

    Every grid edge is added in both directions (roads are two-way) with a
    positive random weight.  Diameter is Θ(rows + cols), matching the key
    property of the paper's *traffic* dataset.
    """
    rng = random.Random(seed)
    g = Graph(directed=directed)

    def nid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            g.add_node(nid(r, c))
    for r in range(rows):
        for c in range(cols):
            w = rng.uniform(1.0, max_weight)
            if c + 1 < cols:
                g.add_edge(nid(r, c), nid(r, c + 1), weight=w)
                if directed:
                    g.add_edge(nid(r, c + 1), nid(r, c), weight=w)
            if r + 1 < rows:
                w2 = rng.uniform(1.0, max_weight)
                g.add_edge(nid(r, c), nid(r + 1, c), weight=w2)
                if directed:
                    g.add_edge(nid(r + 1, c), nid(r, c), weight=w2)
            if (r + 1 < rows and c + 1 < cols
                    and rng.random() < shortcut_prob):
                w3 = rng.uniform(1.0, max_weight)
                g.add_edge(nid(r, c), nid(r + 1, c + 1), weight=w3)
                if directed:
                    g.add_edge(nid(r + 1, c + 1), nid(r, c), weight=w3)
    return g


def bipartite_ratings_graph(num_users: int, num_items: int, num_ratings: int,
                            *, num_factors: int = 8, noise: float = 0.2,
                            seed: int = 0) -> Tuple[Graph, np.ndarray, np.ndarray]:
    """movieLens stand-in: bipartite user->item graph with planted factors.

    Users are nodes ``("u", i)``; items are ``("p", j)``.  Ratings (edge
    weights) are generated from planted latent vectors plus Gaussian noise,
    so CF via SGD has genuine low-rank structure to recover.  Item popularity
    is Zipf-distributed, as in real rating data.

    Returns ``(graph, true_user_factors, true_item_factors)``.
    """
    rng = np.random.default_rng(seed)
    user_f = rng.normal(0.0, 1.0, size=(num_users, num_factors))
    item_f = rng.normal(0.0, 1.0, size=(num_items, num_factors))

    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    item_probs = (1.0 / ranks)
    item_probs /= item_probs.sum()

    g = Graph(directed=True)
    for i in range(num_users):
        g.add_node(("u", i), label="user")
    for j in range(num_items):
        g.add_node(("p", j), label="item")

    placed = set()
    max_possible = num_users * num_items
    target = min(num_ratings, max_possible)
    while len(placed) < target:
        u = int(rng.integers(num_users))
        p = int(rng.choice(num_items, p=item_probs))
        if (u, p) in placed:
            continue
        placed.add((u, p))
        rating = float(user_f[u] @ item_f[p] + rng.normal(0.0, noise))
        g.add_edge(("u", u), ("p", p), weight=rating, label="rating")
    return g, user_f, item_f


def assign_labels(g: Graph, alphabet: Sequence, *, seed: int = 0) -> Graph:
    """Assign node labels uniformly from ``alphabet`` (in place)."""
    rng = random.Random(seed)
    for v in g.nodes():
        g.set_node_label(v, rng.choice(list(alphabet)))
    return g


def labeled_graph(num_nodes: int, num_edges: int, *, num_labels: int = 50,
                  seed: int = 0, directed: bool = True) -> Graph:
    """The paper's synthetic generator: |L| labels drawn uniformly.

    Used in the Fig. 9 scalability experiments (alphabet of 50 labels).
    """
    g = uniform_random_graph(num_nodes, num_edges, directed=directed,
                             seed=seed)
    return assign_labels(g, [f"l{i}" for i in range(num_labels)],
                         seed=seed + 1)


def random_dag(num_nodes: int, num_edges: int, *, seed: int = 0) -> Graph:
    """Random DAG: edges only go from lower to higher node id."""
    rng = random.Random(seed)
    g = Graph(directed=True)
    for v in range(num_nodes):
        g.add_node(v)
    placed = 0
    limit = num_nodes * (num_nodes - 1) // 2
    target = min(num_edges, limit)
    while placed < target:
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v:
            continue
        u, v = min(u, v), max(u, v)
        if g.has_edge(u, v):
            continue
        g.add_edge(u, v)
        placed += 1
    return g
