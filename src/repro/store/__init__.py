"""Durable graph store: snapshots, delta WALs and the graph catalog.

The persistence layer under the serving stack (paper Section 6's
"partitioned once for all queries" amortization, made restart-proof):

* :mod:`repro.store.snapshot` — checksummed binary snapshots of graphs
  and fragmentations (npz CSR arrays + pickled metadata);
* :mod:`repro.store.wal` — an append-only, torn-tail-truncating log of
  applied :class:`~repro.graph.delta.NormalizedDelta` batches;
* :mod:`repro.store.catalog` — :class:`GraphStore`, mapping graph names
  to snapshot + WAL chains with atomic rename-based commits and
  size-triggered compaction.

``GrapeService(store_dir=...)`` wires all three in: registered graphs
and applied deltas persist transparently, and a restarted service
warm-starts from the store instead of re-parsing and re-building.
"""

from repro.store.catalog import GraphStore, StoreMetrics, StoredGraph
from repro.store.snapshot import (LoadedSnapshot, SnapshotError,
                                  load_snapshot, save_snapshot)
from repro.store.wal import DeltaWAL, WALError

__all__ = [
    "DeltaWAL",
    "GraphStore",
    "LoadedSnapshot",
    "SnapshotError",
    "StoreMetrics",
    "StoredGraph",
    "WALError",
    "load_snapshot",
    "save_snapshot",
]
