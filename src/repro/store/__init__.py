"""Durable graph store: snapshots, delta WALs and the graph catalog.

The persistence layer under the serving stack (paper Section 6's
"partitioned once for all queries" amortization, made restart-proof):

* :mod:`repro.store.snapshot` — checksummed binary snapshots of graphs
  and fragmentations (npz CSR arrays + pickled metadata);
* :mod:`repro.store.wal` — an append-only, torn-tail-truncating log of
  applied :class:`~repro.graph.delta.NormalizedDelta` batches;
* :mod:`repro.store.catalog` — :class:`GraphStore`, mapping graph names
  to snapshot + WAL chains with atomic rename-based commits,
  size-triggered compaction and retention-windowed generation GC.

``GrapeService(store_dir=...)`` wires all three in: registered graphs
and applied deltas persist transparently, and a restarted service
warm-starts from the store instead of re-parsing and re-building.

The store is also the replication substrate: read-only stores
(:class:`GraphStore` with ``read_only=True``) load snapshots without
touching the writer's files, :class:`WALTailer` / :class:`WALFollower`
stream the WAL chain live (within one file / across generation
rollovers), and the ``EPOCH``-file fencing protocol
(:class:`FencedError`) keeps a deposed primary from acking writes —
see :mod:`repro.replication`.
"""

from repro.store.catalog import (FencedError, GenerationGapError,
                                 GraphStore, StoreMetrics, StoredGraph,
                                 WALFollower)
from repro.store.snapshot import (LoadedSnapshot, SnapshotError,
                                  load_snapshot, save_snapshot)
from repro.store.wal import DeltaWAL, WALError, WALTailer

__all__ = [
    "DeltaWAL",
    "FencedError",
    "GenerationGapError",
    "GraphStore",
    "LoadedSnapshot",
    "SnapshotError",
    "StoreMetrics",
    "StoredGraph",
    "WALError",
    "WALFollower",
    "WALTailer",
    "load_snapshot",
    "save_snapshot",
]
