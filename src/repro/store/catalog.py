"""The durable graph catalog: named graphs -> snapshot + WAL chains.

``GraphStore`` is the persistence root the serving layer plugs into
(``GrapeService(store_dir=...)``).  Each stored graph owns one directory
holding a generation-numbered snapshot, the delta WAL accumulated on top
of it, and a ``MANIFEST.json`` naming the current pair::

    <root>/
      graphs/<dir>/
        MANIFEST.json          # {"name", "generation", "snapshot", "wal"}
        snapshot-<N>.snap      # repro.store.snapshot container
        wal-<N>.log            # repro.store.wal chain on top of it
      checkpoints/<dir>/       # Arbitrator disk checkpoints (fault path)

Commits are crash-ordered: a new snapshot and a fresh WAL are fully
written (and fsynced) under the next generation number *before* the
manifest is atomically replaced to point at them; stale generations are
deleted only afterwards.  A crash at any point leaves either the old
consistent pair or the new one — never a mix.

Compaction folds a WAL that outgrew ``compact_threshold_bytes`` into a
fresh snapshot of the live graph (the write path calls
:meth:`maybe_compact` after each append), bounding both recovery time
and disk growth under sustained churn.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.graph.delta import NormalizedDelta
from repro.graph.graph import Graph
from repro.ioutil import atomic_write_bytes
from repro.partition.base import Fragmentation
from repro.store.snapshot import load_snapshot, save_snapshot
from repro.store.wal import DeltaWAL

__all__ = ["GraphStore", "StoreMetrics", "StoredGraph"]

#: default WAL size beyond which the next append triggers compaction
DEFAULT_COMPACT_THRESHOLD = 4 << 20


@dataclass
class StoreMetrics:
    """Counters for one store's lifetime (folded into
    :class:`~repro.runtime.metrics.ServiceMetrics` by the service)."""

    snapshots_written: int = 0
    wal_appends: int = 0
    wal_replayed: int = 0
    compactions: int = 0

    def __repr__(self) -> str:
        return (f"StoreMetrics(snapshots={self.snapshots_written}, "
                f"appends={self.wal_appends}, "
                f"replayed={self.wal_replayed}, "
                f"compactions={self.compactions})")


@dataclass
class StoredGraph:
    """What :meth:`GraphStore.load` recovered for one graph."""

    name: str
    graph: Graph
    fragmentation: Optional[Fragmentation]
    #: WAL records replayed on top of the snapshot
    replayed: int = 0
    meta: Dict = field(default_factory=dict)
    #: caller-defined identity of the persisted fragmentation (the
    #: service records its ``(strategy signature, m)`` so a restart can
    #: tell whether the stored partition matches its own config)
    frag_key: Optional[List] = None


def _dirname(name: str) -> str:
    """Filesystem-safe directory name for a graph name.

    A readable sanitized prefix plus a crc of the *exact* name — the
    suffix keeps distinct names distinct even where sanitization or the
    filesystem would fold them together (``"G"`` vs ``"g"`` on a
    case-insensitive filesystem, escaped characters, long names).
    """
    safe = "".join(ch if (ch.isalnum() or ch in "-_.") else "_"
                   for ch in name)[:80]
    tag = zlib.crc32(name.encode("utf-8"))
    return f"{safe or 'g'}-{tag:08x}"


class GraphStore:
    """Catalog of durably stored graphs with atomic generation commits.

    Thread-safe, with **per-graph** write locks: one graph's compaction
    (a multi-second snapshot pack + fsync for a large graph) never
    blocks another graph's WAL appends — the serving facade promises
    per-graph concurrency and the store must not quietly serialize it.
    A narrow catalog lock guards only the shared dictionaries and the
    metrics counters.
    """

    def __init__(self, root: Union[str, Path], *,
                 compact_threshold_bytes: int = DEFAULT_COMPACT_THRESHOLD,
                 sync: bool = True):
        self.root = Path(root)
        self.compact_threshold_bytes = compact_threshold_bytes
        self._sync = sync
        self._graphs_dir = self.root / "graphs"
        self._checkpoints_dir = self.root / "checkpoints"
        self._graphs_dir.mkdir(parents=True, exist_ok=True)
        self.metrics = StoreMetrics()
        self._wals: Dict[str, DeltaWAL] = {}
        self._lock = threading.RLock()  # dicts + metrics + closed flag
        self._name_locks: Dict[str, threading.RLock] = {}
        self._closed = False

    def _name_lock(self, name: str) -> threading.RLock:
        with self._lock:
            lock = self._name_locks.get(name)
            if lock is None:
                lock = self._name_locks[name] = threading.RLock()
            return lock

    # ------------------------------------------------------------------
    # layout helpers
    # ------------------------------------------------------------------
    def _graph_dir(self, name: str) -> Path:
        return self._graphs_dir / _dirname(name)

    def _manifest_path(self, name: str) -> Path:
        return self._graph_dir(name) / "MANIFEST.json"

    def _read_manifest(self, name: str) -> Optional[Dict]:
        try:
            return json.loads(self._manifest_path(name).read_text(
                encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    def _commit_manifest(self, name: str, manifest: Dict) -> None:
        """Atomically publish a manifest (tmp write + durable rename)."""
        blob = json.dumps(manifest, indent=2,
                          sort_keys=True).encode("utf-8")
        atomic_write_bytes(self._manifest_path(name), blob)

    def checkpoint_dir(self, name: str) -> Path:
        """Directory for this graph's engine-run disk checkpoints
        (handed to :class:`~repro.runtime.fault.Arbitrator`)."""
        path = self._checkpoints_dir / _dirname(name)
        path.mkdir(parents=True, exist_ok=True)
        return path

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """Every committed graph name, sorted."""
        found = []
        for child in sorted(self._graphs_dir.iterdir()):
            manifest = child / "MANIFEST.json"
            if manifest.is_file():
                try:
                    found.append(json.loads(
                        manifest.read_text(encoding="utf-8"))["name"])
                except (OSError, json.JSONDecodeError, KeyError):
                    continue
        return sorted(found)

    def __contains__(self, name: str) -> bool:
        return self._read_manifest(name) is not None

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def persist_graph(self, name: str, graph: Graph, *,
                      fragmentation: Optional[Fragmentation] = None,
                      frag_key: Optional[List] = None,
                      meta: Optional[Dict] = None) -> None:
        """Commit a fresh snapshot generation for ``name`` (new graph or
        compaction target) with an empty WAL on top.

        ``frag_key`` is an opaque JSON-serializable identity recorded in
        the manifest alongside a persisted fragmentation; loaders use it
        to decide whether the stored partition matches their config.
        """
        with self._name_lock(name):
            self._require_open()
            gdir = self._graph_dir(name)
            gdir.mkdir(parents=True, exist_ok=True)
            old = self._read_manifest(name)
            generation = (old["generation"] + 1) if old else 1
            snap_name = f"snapshot-{generation}.snap"
            wal_name = f"wal-{generation}.log"

            save_snapshot(gdir / snap_name, graph,
                          fragmentation=fragmentation, meta=meta)
            fresh = DeltaWAL(gdir / wal_name, sync=self._sync)
            self._commit_manifest(name, {
                "name": name, "generation": generation,
                "snapshot": snap_name, "wal": wal_name,
                "frag_key": (frag_key if fragmentation is not None
                             else None),
            })
            # The open WAL handle is swapped only after the manifest
            # committed: if the commit fails, appends keep landing in
            # the WAL the manifest still points at.
            with self._lock:
                self.metrics.snapshots_written += 1
                wal = self._wals.pop(name, None)
                self._wals[name] = fresh
            if wal is not None:
                wal.close()
            # Only after the manifest points at the new pair are the old
            # generation's files garbage.
            if old is not None:
                for stale in (old.get("snapshot"), old.get("wal")):
                    if stale and stale not in (snap_name, wal_name):
                        try:
                            os.unlink(gdir / stale)
                        except OSError:
                            pass

    def _wal_for(self, name: str) -> DeltaWAL:
        """The graph's open WAL handle (callers hold its name lock)."""
        with self._lock:
            wal = self._wals.get(name)
        if wal is None:
            manifest = self._read_manifest(name)
            if manifest is None:
                raise KeyError(f"no stored graph named {name!r}")
            wal = DeltaWAL(self._graph_dir(name) / manifest["wal"],
                           sync=self._sync)
            with self._lock:
                self._wals[name] = wal
        return wal

    def append_delta(self, name: str, delta: NormalizedDelta,
                     seq: int) -> int:
        """Durably log one applied batch; returns bytes appended."""
        with self._name_lock(name):
            self._require_open()
            written = self._wal_for(name).append(seq, delta)
            with self._lock:
                self.metrics.wal_appends += 1
            return written

    def wal_size(self, name: str) -> int:
        with self._name_lock(name):
            return self._wal_for(name).size_bytes

    def has_pending_wal(self, name: str) -> bool:
        """Whether any batch was appended since the last snapshot
        (O(1): compares the log size against its bare header)."""
        with self._name_lock(name):
            return self._wal_for(name).has_records

    def fragmentation_key(self, name: str) -> Optional[List]:
        """The ``frag_key`` of the stored snapshot's fragmentation, or
        ``None`` when the snapshot is graph-only."""
        manifest = self._read_manifest(name)
        return manifest.get("frag_key") if manifest else None

    def maybe_compact(self, name: str, graph: Graph, *,
                      fragmentation: Optional[Fragmentation] = None,
                      frag_key: Optional[List] = None) -> bool:
        """Fold the WAL into a fresh snapshot if it outgrew the
        threshold; returns whether compaction ran."""
        with self._name_lock(name):
            self._require_open()
            if self._wal_for(name).size_bytes < self.compact_threshold_bytes:
                return False
            self.persist_graph(name, graph, fragmentation=fragmentation,
                               frag_key=frag_key)
            with self._lock:
                self.metrics.compactions += 1
            return True

    def remove(self, name: str) -> None:
        """Forget a stored graph (manifest first, then the files)."""
        with self._name_lock(name):
            with self._lock:
                wal = self._wals.pop(name, None)
            if wal is not None:
                wal.close()
            gdir = self._graph_dir(name)
            try:
                os.unlink(self._manifest_path(name))
            except OSError:
                pass
            if gdir.is_dir():
                for child in gdir.iterdir():
                    try:
                        os.unlink(child)
                    except OSError:
                        pass
                try:
                    os.rmdir(gdir)
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def load(self, name: str) -> StoredGraph:
        """Recover one graph: load its snapshot, replay the WAL chain.

        When the snapshot carried a fragmentation, deltas are replayed
        through :func:`repro.core.updates.apply_delta` so fragments,
        border sets and the ``G_P`` index are maintained exactly as they
        were live; otherwise they are applied to the bare graph.
        """
        with self._name_lock(name):
            self._require_open()
            manifest = self._read_manifest(name)
            if manifest is None:
                raise KeyError(f"no stored graph named {name!r}")
            gdir = self._graph_dir(name)
            snap = load_snapshot(gdir / manifest["snapshot"])
            replayed = 0
            for _seq, delta in self._wal_for(name).replay():
                if snap.fragmentation is not None:
                    from repro.core.updates import apply_delta
                    apply_delta(snap.fragmentation, delta)
                else:
                    delta.apply_to(snap.graph)
                replayed += 1
            with self._lock:
                self.metrics.wal_replayed += replayed
            return StoredGraph(name=name, graph=snap.graph,
                               fragmentation=snap.fragmentation,
                               replayed=replayed, meta=snap.meta,
                               frag_key=manifest.get("frag_key"))

    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("graph store is closed")

    def close(self) -> None:
        with self._lock:
            self._closed = True
            wals, self._wals = list(self._wals.values()), {}
        for wal in wals:
            wal.close()

    def __enter__(self) -> "GraphStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"GraphStore({str(self.root)!r}, "
                f"graphs={len(self.names())}, {self.metrics!r})")
