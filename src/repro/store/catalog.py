"""The durable graph catalog: named graphs -> snapshot + WAL chains.

``GraphStore`` is the persistence root the serving layer plugs into
(``GrapeService(store_dir=...)``).  Each stored graph owns one directory
holding a generation-numbered snapshot, the delta WAL accumulated on top
of it, and a ``MANIFEST.json`` naming the current pair::

    <root>/
      graphs/<dir>/
        MANIFEST.json          # {"name", "generation", "snapshot", "wal"}
        snapshot-<N>.snap      # repro.store.snapshot container
        wal-<N>.log            # repro.store.wal chain on top of it
      checkpoints/<dir>/       # Arbitrator disk checkpoints (fault path)

Commits are crash-ordered: a new snapshot and a fresh WAL are fully
written (and fsynced) under the next generation number *before* the
manifest is atomically replaced to point at them; stale generations are
deleted only afterwards.  A crash at any point leaves either the old
consistent pair or the new one — never a mix.

Compaction folds a WAL that outgrew ``compact_threshold_bytes`` into a
fresh snapshot of the live graph (the write path calls
:meth:`maybe_compact` after each append), bounding both recovery time
and disk growth under sustained churn.  Superseded generations are
garbage-collected with a small retention window
(``retain_generations``, default 0: superseded files are removed as
soon as the next generation commits).  Replication setups raise it so
an active tailer a rollover or two behind can still open the previous
chain by path; a tailer mid-drain is safe either way — its open handle
outlives the unlink.

The store is also the **replication substrate**: a read-only store
(``GraphStore(root, read_only=True)``) on the same directory can
:meth:`load` snapshots and :meth:`follow` a graph's WAL chain — a
:class:`WALFollower` streams every appended batch, surviving live
appends and generation rollovers — which is what
:class:`~repro.replication.ReplicaService` tails.  Write fencing
(:meth:`arm_fence` + an ``EPOCH`` file maintained by
:class:`~repro.replication.FailoverCoordinator`) rejects appends from a
deposed primary with a typed :class:`FencedError`.
"""

from __future__ import annotations

import json
import os
import re
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.graph.delta import NormalizedDelta
from repro.graph.graph import Graph
from repro.ioutil import atomic_write_bytes
from repro.obs import events as _events
from repro.partition.base import Fragmentation
from repro.resilience import faults as _faults
from repro.store.snapshot import load_snapshot, save_snapshot
from repro.store.wal import (DeltaWAL, WALError, WALTailer,
                             WAL_HEADER_SIZE)

__all__ = ["FencedError", "GenerationGapError", "GraphStore",
           "StoreMetrics", "StoredGraph", "WALFollower"]

#: default WAL size beyond which the next append triggers compaction
DEFAULT_COMPACT_THRESHOLD = 4 << 20

#: name of the fencing-epoch file under the store root
EPOCH_FILE = "EPOCH"

_CHAIN_FILE = re.compile(r"^(snapshot|wal)-(\d+)\.(snap|log)$")


class FencedError(RuntimeError):
    """A write was rejected because this store handle's fencing epoch is
    no longer the one on disk — a newer primary was promoted.  The
    deposed writer must stop acking updates."""


class GenerationGapError(RuntimeError):
    """A follower fell more generations behind than the store retains
    WAL files for; it must re-bootstrap from the current snapshot."""


@dataclass
class StoreMetrics:
    """Counters for one store's lifetime (folded into
    :class:`~repro.runtime.metrics.ServiceMetrics` by the service)."""

    snapshots_written: int = 0
    wal_appends: int = 0
    wal_replayed: int = 0
    compactions: int = 0
    #: superseded snapshot/WAL chain files removed by generation GC
    files_gced: int = 0
    #: writes rejected because a newer fencing epoch was on disk
    fenced_rejections: int = 0

    def __repr__(self) -> str:
        return (f"StoreMetrics(snapshots={self.snapshots_written}, "
                f"appends={self.wal_appends}, "
                f"replayed={self.wal_replayed}, "
                f"compactions={self.compactions}, "
                f"gced={self.files_gced}, "
                f"fenced={self.fenced_rejections})")


@dataclass
class StoredGraph:
    """What :meth:`GraphStore.load` recovered for one graph."""

    name: str
    graph: Graph
    fragmentation: Optional[Fragmentation]
    #: WAL records replayed on top of the snapshot
    replayed: int = 0
    #: the generation the snapshot + WAL chain was read from; together
    #: with ``replayed`` this is the exact ``(generation, seq)`` resume
    #: position a replica hands to :meth:`GraphStore.follow`
    generation: int = 0
    meta: Dict = field(default_factory=dict)
    #: caller-defined identity of the persisted fragmentation (the
    #: service records its ``(strategy signature, m)`` so a restart can
    #: tell whether the stored partition matches its own config)
    frag_key: Optional[List] = None


def _dirname(name: str) -> str:
    """Filesystem-safe directory name for a graph name.

    A readable sanitized prefix plus a crc of the *exact* name — the
    suffix keeps distinct names distinct even where sanitization or the
    filesystem would fold them together (``"G"`` vs ``"g"`` on a
    case-insensitive filesystem, escaped characters, long names).
    """
    safe = "".join(ch if (ch.isalnum() or ch in "-_.") else "_"
                   for ch in name)[:80]
    tag = zlib.crc32(name.encode("utf-8"))
    return f"{safe or 'g'}-{tag:08x}"


class GraphStore:
    """Catalog of durably stored graphs with atomic generation commits.

    Thread-safe, with **per-graph** write locks: one graph's compaction
    (a multi-second snapshot pack + fsync for a large graph) never
    blocks another graph's WAL appends — the serving facade promises
    per-graph concurrency and the store must not quietly serialize it.
    A narrow catalog lock guards only the shared dictionaries and the
    metrics counters.
    """

    def __init__(self, root: Union[str, Path], *,
                 compact_threshold_bytes: int = DEFAULT_COMPACT_THRESHOLD,
                 sync: bool = True,
                 read_only: bool = False,
                 retain_generations: int = 0,
                 node_id: Optional[str] = None):
        self.root = Path(root)
        self.compact_threshold_bytes = compact_threshold_bytes
        self._sync = sync
        self.read_only = read_only
        #: this writer's identity for fencing (``None`` = anonymous)
        self.node_id = node_id
        #: superseded generations whose chain files GC keeps around (so
        #: a tailer that lags by up to this many rollovers can still
        #: open the older WAL); 0 deletes them as soon as superseded
        self.retain_generations = max(0, retain_generations)
        self._graphs_dir = self.root / "graphs"
        self._checkpoints_dir = self.root / "checkpoints"
        if not read_only:
            self._graphs_dir.mkdir(parents=True, exist_ok=True)
        self.metrics = StoreMetrics()
        self._wals: Dict[str, DeltaWAL] = {}
        self._lock = threading.RLock()  # dicts + metrics + closed flag
        self._name_locks: Dict[str, threading.RLock] = {}
        self._closed = False
        #: fencing epoch this handle writes under (None = fencing off)
        self._fence_epoch: Optional[int] = None
        if not read_only:
            # A writable handle arms itself with the epoch currently on
            # disk (0 when no coordinator ever ran — then the check is a
            # tautology and fencing stays invisible).  A deposed primary
            # that kept running therefore fails its next write the
            # moment a coordinator publishes a newer epoch; one that
            # *restarts* and names itself is rejected here, at open,
            # when the published leader is someone else.
            epoch, leader = self.read_epoch()
            if (leader is not None and node_id is not None
                    and leader != node_id):
                self.metrics.fenced_rejections += 1
                raise FencedError(
                    f"store {str(self.root)!r} is fenced to leader "
                    f"{leader!r} at epoch {epoch}; {node_id!r} was "
                    "deposed — rejoin as a replica instead")
            self._fence_epoch = epoch

    def _name_lock(self, name: str) -> threading.RLock:
        with self._lock:
            lock = self._name_locks.get(name)
            if lock is None:
                lock = self._name_locks[name] = threading.RLock()
            return lock

    # ------------------------------------------------------------------
    # layout helpers
    # ------------------------------------------------------------------
    def _graph_dir(self, name: str) -> Path:
        return self._graphs_dir / _dirname(name)

    def _manifest_path(self, name: str) -> Path:
        return self._graph_dir(name) / "MANIFEST.json"

    def _read_manifest(self, name: str) -> Optional[Dict]:
        try:
            return json.loads(self._manifest_path(name).read_text(
                encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    def _commit_manifest(self, name: str, manifest: Dict) -> None:
        """Atomically publish a manifest (tmp write + durable rename)."""
        blob = json.dumps(manifest, indent=2,
                          sort_keys=True).encode("utf-8")
        atomic_write_bytes(self._manifest_path(name), blob)

    def checkpoint_dir(self, name: str) -> Path:
        """Directory for this graph's engine-run disk checkpoints
        (handed to :class:`~repro.runtime.fault.Arbitrator`)."""
        path = self._checkpoints_dir / _dirname(name)
        path.mkdir(parents=True, exist_ok=True)
        return path

    # ------------------------------------------------------------------
    # fencing
    # ------------------------------------------------------------------
    @property
    def epoch_path(self) -> Path:
        return self.root / EPOCH_FILE

    def read_epoch(self) -> Tuple[int, Optional[str]]:
        """The on-disk fencing state ``(epoch, leader)``; ``(0, None)``
        when no coordinator has ever written one."""
        try:
            data = json.loads(self.epoch_path.read_text(encoding="utf-8"))
            return int(data["epoch"]), data.get("leader")
        except (OSError, json.JSONDecodeError, KeyError, ValueError):
            return 0, None

    def arm_fence(self, epoch: int) -> None:
        """Fence this handle's write path at ``epoch``: every subsequent
        write re-reads the ``EPOCH`` file and raises :class:`FencedError`
        if a newer epoch was published (a replica was promoted over us).
        Writable handles self-arm at open with the on-disk epoch; this
        re-arms after a promotion this handle itself won."""
        self._fence_epoch = epoch

    def _check_fence(self) -> None:
        if self._fence_epoch is None:
            return
        disk_epoch, leader = self.read_epoch()
        if disk_epoch != self._fence_epoch:
            with self._lock:
                self.metrics.fenced_rejections += 1
            raise FencedError(
                f"write fenced: this handle holds epoch "
                f"{self._fence_epoch} but the store is at epoch "
                f"{disk_epoch} (leader {leader!r}); a newer primary was "
                "promoted — stop acking updates")

    def _require_writable(self) -> None:
        if self.read_only:
            raise RuntimeError(
                "graph store was opened read_only=True (replica mode); "
                "writes go through the primary")

    # ------------------------------------------------------------------
    # generation GC
    # ------------------------------------------------------------------
    def _gc_generations(self, name: str, current: int) -> int:
        """Remove superseded snapshot/WAL chain files older than the
        retention window (and orphans from crashed commits *newer* than
        the committed generation).  Returns the number of files removed.

        Retention keeps ``retain_generations`` superseded generations on
        disk so an active follower that lags by a rollover or two can
        still open the older chain; anything further back is garbage —
        its content is folded into the current snapshot.  Tailers
        holding open handles to a removed file keep reading it (POSIX
        unlink semantics), so GC never corrupts an in-flight drain.
        """
        gdir = self._graph_dir(name)
        keep_floor = current - self.retain_generations
        removed = 0
        try:
            children = list(gdir.iterdir())
        except OSError:
            return 0
        for child in children:
            m = _CHAIN_FILE.match(child.name)
            if m is None:
                continue
            generation = int(m.group(2))
            if keep_floor <= generation <= current:
                continue
            try:
                os.unlink(child)
                removed += 1
            except OSError:
                pass
        if removed:
            with self._lock:
                self.metrics.files_gced += removed
        return removed

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """Every committed graph name, sorted."""
        found = []
        try:
            children = sorted(self._graphs_dir.iterdir())
        except OSError:
            return found  # read-only store opened before any commit
        for child in children:
            manifest = child / "MANIFEST.json"
            if manifest.is_file():
                try:
                    found.append(json.loads(
                        manifest.read_text(encoding="utf-8"))["name"])
                except (OSError, json.JSONDecodeError, KeyError):
                    continue
        return sorted(found)

    def __contains__(self, name: str) -> bool:
        return self._read_manifest(name) is not None

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def persist_graph(self, name: str, graph: Graph, *,
                      fragmentation: Optional[Fragmentation] = None,
                      frag_key: Optional[List] = None,
                      meta: Optional[Dict] = None) -> None:
        """Commit a fresh snapshot generation for ``name`` (new graph or
        compaction target) with an empty WAL on top.

        ``frag_key`` is an opaque JSON-serializable identity recorded in
        the manifest alongside a persisted fragmentation; loaders use it
        to decide whether the stored partition matches their config.
        """
        with self._name_lock(name):
            self._require_open()
            self._require_writable()
            self._check_fence()
            gdir = self._graph_dir(name)
            gdir.mkdir(parents=True, exist_ok=True)
            old = self._read_manifest(name)
            generation = (old["generation"] + 1) if old else 1
            snap_name = f"snapshot-{generation}.snap"
            wal_name = f"wal-{generation}.log"

            save_snapshot(gdir / snap_name, graph,
                          fragmentation=fragmentation, meta=meta)
            fresh = DeltaWAL(gdir / wal_name, sync=self._sync)
            self._commit_manifest(name, {
                "name": name, "generation": generation,
                "snapshot": snap_name, "wal": wal_name,
                "frag_key": (frag_key if fragmentation is not None
                             else None),
            })
            # The open WAL handle is swapped only after the manifest
            # committed: if the commit fails, appends keep landing in
            # the WAL the manifest still points at.
            with self._lock:
                self.metrics.snapshots_written += 1
                wal = self._wals.pop(name, None)
                self._wals[name] = fresh
            if wal is not None:
                wal.close()
            # Only after the manifest points at the new pair are older
            # generations garbage; the sweep also removes orphans from
            # commits that crashed between writing files and committing
            # the manifest.
            self._gc_generations(name, generation)

    def _wal_for(self, name: str) -> DeltaWAL:
        """The graph's open WAL handle (callers hold its name lock)."""
        with self._lock:
            wal = self._wals.get(name)
        if wal is None:
            manifest = self._read_manifest(name)
            if manifest is None:
                raise KeyError(f"no stored graph named {name!r}")
            wal = DeltaWAL(self._graph_dir(name) / manifest["wal"],
                           sync=self._sync)
            with self._lock:
                self._wals[name] = wal
        return wal

    def append_delta(self, name: str, delta: NormalizedDelta,
                     seq: int) -> int:
        """Durably log one applied batch; returns bytes appended."""
        with self._name_lock(name):
            self._require_open()
            self._require_writable()
            self._check_fence()
            written = self._wal_for(name).append(seq, delta)
            with self._lock:
                self.metrics.wal_appends += 1
            _events.emit("wal.append", graph=name, seq=seq, bytes=written)
            return written

    def wal_size(self, name: str) -> int:
        with self._name_lock(name):
            if self.read_only:
                try:
                    return self._current_wal_path(name).stat().st_size
                except OSError:
                    return 0
            return self._wal_for(name).size_bytes

    def has_pending_wal(self, name: str) -> bool:
        """Whether any batch was appended since the last snapshot
        (O(1): compares the log size against its bare header)."""
        with self._name_lock(name):
            if self.read_only:
                return self.wal_size(name) > WAL_HEADER_SIZE
            return self._wal_for(name).has_records

    def fragmentation_key(self, name: str) -> Optional[List]:
        """The ``frag_key`` of the stored snapshot's fragmentation, or
        ``None`` when the snapshot is graph-only."""
        manifest = self._read_manifest(name)
        return manifest.get("frag_key") if manifest else None

    def maybe_compact(self, name: str, graph: Graph, *,
                      fragmentation: Optional[Fragmentation] = None,
                      frag_key: Optional[List] = None) -> bool:
        """Fold the WAL into a fresh snapshot if it outgrew the
        threshold; returns whether compaction ran."""
        with self._name_lock(name):
            self._require_open()
            self._require_writable()
            if self._wal_for(name).size_bytes < self.compact_threshold_bytes:
                return False
            self.persist_graph(name, graph, fragmentation=fragmentation,
                               frag_key=frag_key)
            with self._lock:
                self.metrics.compactions += 1
            return True

    def remove(self, name: str) -> None:
        """Forget a stored graph (manifest first, then the files)."""
        with self._name_lock(name):
            self._require_writable()
            with self._lock:
                wal = self._wals.pop(name, None)
            if wal is not None:
                wal.close()
            gdir = self._graph_dir(name)
            try:
                os.unlink(self._manifest_path(name))
            except OSError:
                pass
            if gdir.is_dir():
                for child in gdir.iterdir():
                    try:
                        os.unlink(child)
                    except OSError:
                        pass
                try:
                    os.rmdir(gdir)
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def load(self, name: str) -> StoredGraph:
        """Recover one graph: load its snapshot, replay the WAL chain.

        When the snapshot carried a fragmentation, deltas are replayed
        through :func:`repro.core.updates.apply_delta` so fragments,
        border sets and the ``G_P`` index are maintained exactly as they
        were live; otherwise they are applied to the bare graph.
        """
        with self._name_lock(name):
            self._require_open()
            manifest = self._read_manifest(name)
            if manifest is None:
                raise KeyError(f"no stored graph named {name!r}")
            gdir = self._graph_dir(name)
            snap = load_snapshot(gdir / manifest["snapshot"])
            replayed = 0
            for _seq, delta in self._replay_wal(name, manifest):
                if snap.fragmentation is not None:
                    from repro.core.updates import apply_delta
                    apply_delta(snap.fragmentation, delta)
                else:
                    delta.apply_to(snap.graph)
                replayed += 1
            with self._lock:
                self.metrics.wal_replayed += replayed
            return StoredGraph(name=name, graph=snap.graph,
                               fragmentation=snap.fragmentation,
                               replayed=replayed, meta=snap.meta,
                               generation=manifest["generation"],
                               frag_key=manifest.get("frag_key"))

    def _replay_wal(self, name: str, manifest: Dict):
        """Replay the manifest's WAL records.

        A writable store goes through its owning :class:`DeltaWAL`
        handle (validating + truncating any torn tail, which it is
        entitled to do); a read-only store must never truncate a live
        primary's log, so it reads through a throwaway
        :class:`WALTailer` — same intact-prefix definition, zero
        mutation."""
        if not self.read_only:
            yield from self._wal_for(name).replay()
            return
        path = self._graph_dir(name) / manifest["wal"]
        try:
            tailer = WALTailer(path)
        except FileNotFoundError:
            return
        with tailer:
            yield from tailer.poll()

    def _current_wal_path(self, name: str) -> Path:
        manifest = self._read_manifest(name)
        if manifest is None:
            raise KeyError(f"no stored graph named {name!r}")
        return self._graph_dir(name) / manifest["wal"]

    def peek_manifest(self, name: str) -> Dict:
        """The committed manifest for ``name`` (read-only callers:
        replicas, the failover coordinator)."""
        manifest = self._read_manifest(name)
        if manifest is None:
            raise KeyError(f"no stored graph named {name!r}")
        return dict(manifest)

    def generation(self, name: str) -> int:
        """The committed generation number for ``name``."""
        return self.peek_manifest(name)["generation"]

    def follow(self, name: str, *, from_generation: Optional[int] = None,
               from_seq: int = 0) -> "WALFollower":
        """Stream ``name``'s WAL chain from ``(from_generation,
        from_seq)`` onwards — the replication read API.

        ``from_seq`` counts *records within that generation's WAL* (0 =
        its beginning, i.e. the state of ``snapshot-<from_generation>``);
        it is the positional cursor a replica resumes at, not the
        advisory per-record seq stamp.  Defaults to the current
        generation's beginning.  See :class:`WALFollower`.
        """
        if from_generation is None:
            from_generation = self.generation(name)
        return WALFollower(self, name, from_generation, from_seq)

    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("graph store is closed")

    def close(self) -> None:
        with self._lock:
            self._closed = True
            wals, self._wals = list(self._wals.values()), {}
        for wal in wals:
            wal.close()

    def __enter__(self) -> "GraphStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"GraphStore({str(self.root)!r}, "
                f"graphs={len(self.names())}, {self.metrics!r})")


class WALFollower:
    """A streaming cursor over one graph's snapshot + WAL *chain*.

    Where :class:`~repro.store.wal.WALTailer` follows a single file,
    the follower follows the chain across **generation rollovers**: when
    the primary compacts (new snapshot + fresh WAL under generation
    ``N+1``), the follower first drains its open handle to the old
    generation's end — every record folded into the new snapshot — then
    switches to the new WAL at its beginning, so the stream it yields is
    gap-free: applying it to generation ``from_generation``'s snapshot
    state always reproduces the primary's graph.

    The drain-then-switch step is why it is safe for generation GC to
    unlink a superseded WAL: a mid-drain follower keeps its open handle.
    Only when the follower falls more rollovers behind than the store's
    retention window keeps files for does :meth:`poll` raise
    :class:`GenerationGapError` — the consumer re-bootstraps from the
    current snapshot (a replica counts this as a resnapshot).

    Positions are ``(generation, seq)`` with ``seq`` the number of
    records consumed *within that generation* — totally ordered across
    followers of the same store, which is what failover's
    most-advanced-replica selection compares.
    """

    def __init__(self, store: GraphStore, name: str,
                 from_generation: int, from_seq: int = 0):
        self.store = store
        self.name = name
        self.generation = from_generation
        self._gdir = store._graph_dir(name)
        try:
            self._tailer = WALTailer(self._wal_path(from_generation),
                                     from_seq=from_seq)
        except FileNotFoundError:
            raise GenerationGapError(
                f"generation {from_generation} of {name!r} is no longer "
                "on disk; re-bootstrap from the current snapshot")

    def _wal_path(self, generation: int) -> Path:
        return self._gdir / f"wal-{generation}.log"

    @property
    def seq(self) -> int:
        """Records consumed within the current generation."""
        return self._tailer.records_read

    @property
    def position(self) -> Tuple[int, int]:
        """``(generation, seq)`` — the follower's replication position."""
        return (self.generation, self._tailer.records_read)

    @property
    def last_seq(self) -> Optional[int]:
        """Advisory seq stamp of the last consumed record."""
        return self._tailer.last_seq

    def poll(self) -> List[Tuple[int, NormalizedDelta]]:
        """Every batch appended (across rollovers) since the last poll.

        Yields ``(seq_stamp, delta)`` pairs in application order.
        Raises :class:`GenerationGapError` when the chain cannot be
        proven gap-free (a needed superseded WAL was GC'd) — the
        consumer must re-bootstrap from the current snapshot.

        An injected ``replication.tail`` *stall* fault makes this poll
        return nothing — indistinguishable from a quiet primary, which
        is exactly what a stalled tail looks like to the consumer; the
        cursor does not move, so draining resumes cleanly once the
        schedule is exhausted.
        """
        fault = _faults.check("replication.tail", key=self.name)
        if fault is not None and fault.kind == "stall":
            return []
        out: List[Tuple[int, NormalizedDelta]] = []
        while True:
            out.extend(self._tailer.poll())
            try:
                current = self.store.generation(self.name)
            except KeyError:
                # the graph was removed from the store; nothing further
                return out
            if current == self.generation:
                return out
            # Rollover: appends to the old WAL stopped before the new
            # manifest committed, so one more drain of the (possibly
            # already unlinked) old handle completes its chain...
            out.extend(self._tailer.poll())
            # ...and the next generation's WAL continues from exactly
            # the state its snapshot captured.
            nxt = self.generation + 1
            try:
                fresh = WALTailer(self._wal_path(nxt))
            except FileNotFoundError:
                raise GenerationGapError(
                    f"WAL of generation {nxt} of {self.name!r} was "
                    "garbage-collected before this follower drained it; "
                    "re-bootstrap from the current snapshot")
            self._tailer.close()
            self._tailer = fresh
            self.generation = nxt

    def lag_bytes(self) -> int:
        """Unconsumed bytes: the remainder of the current file plus the
        full size of every newer generation's WAL."""
        lag = self._tailer.lag_bytes()
        try:
            current = self.store.generation(self.name)
        except KeyError:
            return lag
        for generation in range(self.generation + 1, current + 1):
            try:
                lag += self._wal_path(generation).stat().st_size
            except OSError:
                pass
        return lag

    @property
    def caught_up(self) -> bool:
        """No unconsumed bytes and no pending rollover."""
        try:
            current = self.store.generation(self.name)
        except KeyError:
            return True
        return current == self.generation and self._tailer.lag_bytes() == 0

    def close(self) -> None:
        self._tailer.close()

    def __enter__(self) -> "WALFollower":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"WALFollower({self.name!r}, gen={self.generation}, "
                f"seq={self.seq})")
