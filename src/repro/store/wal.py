"""Delta write-ahead log: the durable form of applied update batches.

Every non-no-op batch applied to a stored graph is appended here as its
:class:`~repro.graph.delta.NormalizedDelta` (via
:meth:`~repro.graph.delta.NormalizedDelta.to_record`) together with the
fragmentation version sequence number the batch produced — the same
``seq`` stamped into the in-memory delta log by
:meth:`~repro.partition.base.Fragmentation.record_delta`, so the on-disk
chain and the worker-replay chain speak the same version language.

File layout::

    MAGIC (8 bytes, ``b"GRAPEWAL"``) + format version (1 byte)
    records: [payload length (4 bytes BE) | crc32 (4 bytes BE) | payload]*

Each record's payload is the pickled ``(seq, delta_record)`` tuple.  The
length/crc framing makes a torn tail — a writer killed mid-append —
detectable: on reopen the log is scanned and truncated back to the last
intact record, so a crash can lose at most the batch being written when
it died, never corrupt the replayable prefix.

Appends are flushed and (by default) fsynced before returning: once
``append`` returns, the batch survives a crash.

Besides the owning writer, a log supports any number of concurrent
**tailers** (:class:`WALTailer`, via :meth:`DeltaWAL.tail` or
:meth:`~repro.store.catalog.GraphStore.follow`): read-only cursors that
never truncate, advance only past records the writer's own recovery
would keep (same framing scan *and* the same decodability check), and
pick up live appends on every :meth:`~WALTailer.poll`.  This is what
read replicas ride on.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro.graph.delta import NormalizedDelta
from repro.resilience import faults as _faults

__all__ = ["DeltaWAL", "WALError", "WALTailer", "WALWriteError",
           "WAL_HEADER_SIZE"]

MAGIC = b"GRAPEWAL"
FORMAT_VERSION = 1
_FILE_HEADER = MAGIC + bytes([FORMAT_VERSION])
#: size of the file header (the "empty log" size) for offset math
WAL_HEADER_SIZE = len(_FILE_HEADER)
_REC_HEADER = struct.Struct(">II")


class WALError(RuntimeError):
    """The log file exists but is not a WAL (bad magic/version)."""


class WALWriteError(WALError):
    """An append failed to reach the disk.

    Raised by :meth:`DeltaWAL.append` after the log has been truncated
    back to its last durable record, so the failed (possibly torn)
    record is gone and a retry of the same append is safe — this is the
    store error the service's retry policy treats as recoverable.
    """


class DeltaWAL:
    """An append-only, crash-truncating log of normalized deltas.

    Opening an existing log validates the header and truncates any torn
    tail; opening a missing path creates an empty log.  One ``DeltaWAL``
    owns its file handle — the store keeps one open per graph.
    """

    def __init__(self, path: Union[str, Path], *, sync: bool = True):
        self.path = Path(path)
        self._sync = sync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        created = not self.path.exists()
        self._fh = open(self.path, "a+b")
        if created or self.path.stat().st_size == 0:
            self._fh.write(_FILE_HEADER)
            self._fh.flush()
            self._size = len(_FILE_HEADER)
        else:
            self._size = self._recover()

    # ------------------------------------------------------------------
    @staticmethod
    def _scan(fh) -> Iterator[Tuple[int, bytes]]:
        """Walk intact records from the current position, yielding
        ``(end_offset, payload)`` per record and stopping at the first
        torn or corrupt frame.  The single framing implementation both
        recovery truncation and replay consume — they must never
        disagree about where the intact prefix ends.
        """
        offset = fh.tell()
        while True:
            head = fh.read(_REC_HEADER.size)
            if len(head) < _REC_HEADER.size:
                return  # clean end, or a tail torn inside the header
            length, crc = _REC_HEADER.unpack(head)
            payload = fh.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                return  # torn or corrupt tail record
            offset += _REC_HEADER.size + length
            yield offset, payload

    @staticmethod
    def _scan_decoded(fh) -> Iterator[Tuple[int, int, NormalizedDelta]]:
        """Walk *decodable* records from the current position, yielding
        ``(end_offset, seq, delta)`` and stopping at the first frame a
        writer's recovery would truncate.

        This is the one definition of "replayable prefix" shared by
        recovery truncation, replay and live tailers: a record must be
        intact (framing + CRC) **and** unpickle.  A tailer that used a
        laxer check could advance past a record the writer later
        truncates — the torn-tail-under-active-reader hazard.
        """
        for offset, payload in DeltaWAL._scan(fh):
            try:
                seq, record = pickle.loads(payload)
            except Exception:
                return  # framing intact but payload undecodable
            yield offset, seq, NormalizedDelta.from_record(record)

    def _recover(self) -> int:
        """Validate the header, scan records, truncate any torn tail.

        Returns the size of the intact prefix (which the file is
        truncated to).  Truncation only ever removes the torn suffix —
        bytes no tailer can have advanced past (tailers use the same
        :meth:`_scan_decoded` prefix definition) — so it is safe under
        concurrently open readers.
        """
        self._fh.seek(0)
        header = self._fh.read(len(_FILE_HEADER))
        if header[:len(MAGIC)] != MAGIC:
            raise WALError(f"{self.path} is not a delta WAL (bad magic)")
        if header[len(MAGIC):] != bytes([FORMAT_VERSION]):
            raise WALError(f"{self.path} has an unsupported WAL version")
        good = len(_FILE_HEADER)
        for offset, _seq, _delta in self._scan_decoded(self._fh):
            good = offset
        actual = self.path.stat().st_size
        if actual > good:
            self._fh.truncate(good)
            self._fh.flush()
        return good

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Current log size including the file header."""
        return self._size

    @property
    def has_records(self) -> bool:
        """Whether the log holds any record (anything past the header)."""
        return self._size > len(_FILE_HEADER)

    def append(self, seq: int, delta: NormalizedDelta) -> int:
        """Durably append one applied batch; returns bytes written.

        Failure-atomic: any error past the seek — a torn write, a failed
        flush/fsync, an injected ``store.wal.append`` fault — truncates
        the file back to the last durable record before the typed
        :exc:`WALWriteError` is raised, so retrying the same append can
        never duplicate a record or leave a torn frame mid-log.
        """
        payload = pickle.dumps((seq, delta.to_record()),
                               protocol=pickle.HIGHEST_PROTOCOL)
        record = _REC_HEADER.pack(len(payload),
                                  zlib.crc32(payload)) + payload
        fault = _faults.check("store.wal.append", key=self.path.name)
        try:
            self._fh.seek(0, os.SEEK_END)
            if fault is not None and fault.kind == "torn":
                # A writer dying mid-write: a prefix of the record lands
                # on disk, then the append "crashes".
                cut = max(1, int(len(record)
                                 * float(fault.param("keep_fraction",
                                                     0.5))))
                self._fh.write(record[:cut])
                self._fh.flush()
                raise OSError("injected torn WAL append")
            self._fh.write(record)
            self._fh.flush()
            if fault is not None and fault.kind == "fsync":
                raise OSError("injected fsync failure")
            if self._sync:
                os.fsync(self._fh.fileno())
        except Exception as exc:
            self._truncate_back()
            raise WALWriteError(
                f"append to {self.path.name} failed: {exc}") from exc
        self._size += len(record)
        return len(record)

    def _truncate_back(self) -> None:
        """Drop whatever a failed append left behind (best effort: if
        even the truncate fails, reopen-recovery and the framing scan
        still refuse the torn tail)."""
        try:
            self._fh.truncate(self._size)
            self._fh.flush()
            if self._sync:
                os.fsync(self._fh.fileno())
        except OSError:
            pass

    def records(self) -> List[Tuple[int, NormalizedDelta]]:
        """Every intact ``(seq, delta)`` record, in append order."""
        return list(self.replay())

    def replay(self) -> Iterator[Tuple[int, NormalizedDelta]]:
        """Iterate the intact records (used by warm start)."""
        self._fh.flush()
        with open(self.path, "rb") as fh:
            fh.seek(len(_FILE_HEADER))
            for offset, seq, delta in self._scan_decoded(fh):
                if offset > self._size:
                    break  # past the recovered prefix
                yield seq, delta

    def tail(self, from_seq: int = 0) -> "WALTailer":
        """A live read cursor over this log (see :class:`WALTailer`).

        ``from_seq`` is the number of *records* to skip — the tailer's
        resume cursor is positional (record index within this file), not
        the embedded per-record seq stamp, which is advisory (it mirrors
        the producing fragmentation's version and is not strictly
        monotone across a graph's whole history).
        """
        return WALTailer(self.path, from_seq=from_seq)

    def reset(self) -> None:
        """Drop every record (after the chain was folded into a fresh
        snapshot by compaction)."""
        self._fh.truncate(len(_FILE_HEADER))
        self._fh.flush()
        if self._sync:
            os.fsync(self._fh.fileno())
        self._size = len(_FILE_HEADER)

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "DeltaWAL":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"DeltaWAL({self.path.name}, {self._size}B)"


class WALTailer:
    """A read-only live cursor over one WAL file.

    The tailer opens its own handle (never the writer's), remembers the
    byte offset of the last record it yielded, and on every
    :meth:`poll` scans forward from there — so live appends show up
    poll by poll, in append order, each exactly once.

    **Safety under writer recovery.**  The tailer advances only past
    records the writer's own reopen-recovery would keep (the shared
    :meth:`DeltaWAL._scan_decoded` prefix), so a crashed writer's
    torn-tail truncation always lands at or after the tailer's offset —
    the file can never shrink below a position the tailer has consumed.
    If the file *does* shrink below the cursor (a reset or an unrelated
    rewrite), :meth:`poll` raises :class:`WALError` so the consumer can
    fall back to a fresh snapshot instead of replaying garbage.

    The handle survives the file being unlinked (generation GC after
    compaction): a tailer mid-drain keeps reading its open handle, which
    is exactly how a replica finishes a superseded generation's chain
    before switching to the next one.
    """

    def __init__(self, path: Union[str, Path], *, from_seq: int = 0):
        self.path = Path(path)
        self._fh = open(self.path, "rb")
        header = self._fh.read(len(_FILE_HEADER))
        if header[:len(MAGIC)] != MAGIC:
            self._fh.close()
            raise WALError(f"{self.path} is not a delta WAL (bad magic)")
        if header[len(MAGIC):] != bytes([FORMAT_VERSION]):
            self._fh.close()
            raise WALError(f"{self.path} has an unsupported WAL version")
        self._offset = len(_FILE_HEADER)
        #: records yielded so far (== the record index of the cursor)
        self.records_read = 0
        #: embedded seq stamp of the last yielded record (advisory)
        self.last_seq: Optional[int] = None
        if from_seq:
            for _ in range(from_seq):
                if not self._advance_one():
                    raise WALError(
                        f"{self.path} holds only {self.records_read} "
                        f"records, cannot resume at {from_seq}")

    def _advance_one(self) -> bool:
        self._fh.seek(self._offset)
        for offset, seq, _delta in DeltaWAL._scan_decoded(self._fh):
            self._offset = offset
            self.records_read += 1
            self.last_seq = seq
            return True
        return False

    @property
    def offset(self) -> int:
        """Byte offset of the cursor (end of the last yielded record)."""
        return self._offset

    def poll(self) -> List[Tuple[int, NormalizedDelta]]:
        """Every record appended since the last poll, in append order.

        Returns an empty list at the (current) end of the replayable
        prefix; a torn or still-in-flight tail record is left for the
        next poll.
        """
        size = os.fstat(self._fh.fileno()).st_size
        if size < self._offset:
            raise WALError(
                f"{self.path} shrank below the tail cursor "
                f"({size} < {self._offset}); the log was reset — "
                "re-bootstrap from a snapshot")
        out: List[Tuple[int, NormalizedDelta]] = []
        self._fh.seek(self._offset)
        for offset, seq, delta in DeltaWAL._scan_decoded(self._fh):
            self._offset = offset
            self.records_read += 1
            self.last_seq = seq
            out.append((seq, delta))
        return out

    def lag_bytes(self) -> int:
        """Bytes between the cursor and the file's current end (includes
        any torn tail byte-for-byte; 0 when fully caught up)."""
        return max(0, os.fstat(self._fh.fileno()).st_size - self._offset)

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "WALTailer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"WALTailer({self.path.name}, records={self.records_read}, "
                f"offset={self._offset})")
