"""Delta write-ahead log: the durable form of applied update batches.

Every non-no-op batch applied to a stored graph is appended here as its
:class:`~repro.graph.delta.NormalizedDelta` (via
:meth:`~repro.graph.delta.NormalizedDelta.to_record`) together with the
fragmentation version sequence number the batch produced — the same
``seq`` stamped into the in-memory delta log by
:meth:`~repro.partition.base.Fragmentation.record_delta`, so the on-disk
chain and the worker-replay chain speak the same version language.

File layout::

    MAGIC (8 bytes, ``b"GRAPEWAL"``) + format version (1 byte)
    records: [payload length (4 bytes BE) | crc32 (4 bytes BE) | payload]*

Each record's payload is the pickled ``(seq, delta_record)`` tuple.  The
length/crc framing makes a torn tail — a writer killed mid-append —
detectable: on reopen the log is scanned and truncated back to the last
intact record, so a crash can lose at most the batch being written when
it died, never corrupt the replayable prefix.

Appends are flushed and (by default) fsynced before returning: once
``append`` returns, the batch survives a crash.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Iterator, List, Tuple, Union

from repro.graph.delta import NormalizedDelta

__all__ = ["DeltaWAL", "WALError"]

MAGIC = b"GRAPEWAL"
FORMAT_VERSION = 1
_FILE_HEADER = MAGIC + bytes([FORMAT_VERSION])
_REC_HEADER = struct.Struct(">II")


class WALError(RuntimeError):
    """The log file exists but is not a WAL (bad magic/version)."""


class DeltaWAL:
    """An append-only, crash-truncating log of normalized deltas.

    Opening an existing log validates the header and truncates any torn
    tail; opening a missing path creates an empty log.  One ``DeltaWAL``
    owns its file handle — the store keeps one open per graph.
    """

    def __init__(self, path: Union[str, Path], *, sync: bool = True):
        self.path = Path(path)
        self._sync = sync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        created = not self.path.exists()
        self._fh = open(self.path, "a+b")
        if created or self.path.stat().st_size == 0:
            self._fh.write(_FILE_HEADER)
            self._fh.flush()
            self._size = len(_FILE_HEADER)
        else:
            self._size = self._recover()

    # ------------------------------------------------------------------
    @staticmethod
    def _scan(fh) -> Iterator[Tuple[int, bytes]]:
        """Walk intact records from the current position, yielding
        ``(end_offset, payload)`` per record and stopping at the first
        torn or corrupt frame.  The single framing implementation both
        recovery truncation and replay consume — they must never
        disagree about where the intact prefix ends.
        """
        offset = fh.tell()
        while True:
            head = fh.read(_REC_HEADER.size)
            if len(head) < _REC_HEADER.size:
                return  # clean end, or a tail torn inside the header
            length, crc = _REC_HEADER.unpack(head)
            payload = fh.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                return  # torn or corrupt tail record
            offset += _REC_HEADER.size + length
            yield offset, payload

    def _recover(self) -> int:
        """Validate the header, scan records, truncate any torn tail.

        Returns the size of the intact prefix (which the file is
        truncated to).
        """
        self._fh.seek(0)
        header = self._fh.read(len(_FILE_HEADER))
        if header[:len(MAGIC)] != MAGIC:
            raise WALError(f"{self.path} is not a delta WAL (bad magic)")
        if header[len(MAGIC):] != bytes([FORMAT_VERSION]):
            raise WALError(f"{self.path} has an unsupported WAL version")
        good = len(_FILE_HEADER)
        for offset, payload in self._scan(self._fh):
            try:
                pickle.loads(payload)
            except Exception:
                break  # framing intact but payload undecodable
            good = offset
        actual = self.path.stat().st_size
        if actual > good:
            self._fh.truncate(good)
            self._fh.flush()
        return good

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Current log size including the file header."""
        return self._size

    @property
    def has_records(self) -> bool:
        """Whether the log holds any record (anything past the header)."""
        return self._size > len(_FILE_HEADER)

    def append(self, seq: int, delta: NormalizedDelta) -> int:
        """Durably append one applied batch; returns bytes written."""
        payload = pickle.dumps((seq, delta.to_record()),
                               protocol=pickle.HIGHEST_PROTOCOL)
        record = _REC_HEADER.pack(len(payload),
                                  zlib.crc32(payload)) + payload
        self._fh.seek(0, os.SEEK_END)
        self._fh.write(record)
        self._fh.flush()
        if self._sync:
            os.fsync(self._fh.fileno())
        self._size += len(record)
        return len(record)

    def records(self) -> List[Tuple[int, NormalizedDelta]]:
        """Every intact ``(seq, delta)`` record, in append order."""
        return list(self.replay())

    def replay(self) -> Iterator[Tuple[int, NormalizedDelta]]:
        """Iterate the intact records (used by warm start)."""
        self._fh.flush()
        with open(self.path, "rb") as fh:
            fh.seek(len(_FILE_HEADER))
            for offset, payload in self._scan(fh):
                if offset > self._size:
                    break  # past the recovered prefix
                seq, record = pickle.loads(payload)
                yield seq, NormalizedDelta.from_record(record)

    def reset(self) -> None:
        """Drop every record (after the chain was folded into a fresh
        snapshot by compaction)."""
        self._fh.truncate(len(_FILE_HEADER))
        self._fh.flush()
        if self._sync:
            os.fsync(self._fh.fileno())
        self._size = len(_FILE_HEADER)

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "DeltaWAL":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"DeltaWAL({self.path.name}, {self._size}B)"
