"""Binary snapshot format for graphs and fragmentations.

A snapshot is the durable store's "precompute once" artifact: the full
content of a :class:`~repro.graph.graph.Graph` — and optionally of a
maintained :class:`~repro.partition.base.Fragmentation` — in one
self-verifying file.  The paper's serving architecture (Section 6) only
pays off if that state survives the process; this module is the byte
format everything else in :mod:`repro.store` builds on.

File layout::

    MAGIC (9 bytes, ``b"GRAPESNAP"``)
    format version (1 byte, currently 1)
    sha256 of the payload (32 bytes)
    payload length (8 bytes, big endian)
    payload: an ``npz`` archive

The npz payload carries the structural bulk as numpy CSR arrays
(:meth:`~repro.graph.csr.CSRGraph.to_arrays` — ``indptr``/``indices``/
``weights``; the reverse structure is derived on load, not stored) and
everything object-shaped — node identities, labels, border sets, the
saved graph's :meth:`~repro.graph.graph.Graph.content_hash` — as one
pickled metadata blob stored as a ``uint8`` array.  Loading verifies the
header checksum (bytes arrived intact) *and* the content hash (the
decoded graph is the graph that was saved).

Writes are atomic: the file is assembled under a temporary name in the
destination directory and published with ``os.replace``, so a crashed
writer can never leave a half-snapshot under the real name.
"""

from __future__ import annotations

import hashlib
import io
import pickle
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.ioutil import atomic_write_bytes
from repro.partition.base import Fragment, Fragmentation
from repro.resilience import faults as _faults

__all__ = ["LoadedSnapshot", "SnapshotError", "load_snapshot",
           "save_snapshot"]

MAGIC = b"GRAPESNAP"
FORMAT_VERSION = 1
_HEADER = struct.Struct(f">{len(MAGIC)}sB32sQ")


class SnapshotError(RuntimeError):
    """A snapshot file is missing, truncated, corrupt or incompatible."""


@dataclass
class LoadedSnapshot:
    """What :func:`load_snapshot` decoded.

    ``fragmentation`` is present only when one was saved; ``meta`` is the
    caller-supplied metadata dict passed to :func:`save_snapshot`.
    """

    graph: Graph
    fragmentation: Optional[Fragmentation]
    meta: Dict
    content_hash: int


# ---------------------------------------------------------------------------
# Graph <-> arrays
# ---------------------------------------------------------------------------
def _pack_graph(graph: Graph, prefix: str, arrays: Dict[str, np.ndarray],
                meta: Dict) -> None:
    """Add one graph's CSR arrays and object metadata under ``prefix``."""
    csr = CSRGraph.from_graph(graph)
    for name, arr in csr.to_arrays().items():
        arrays[f"{prefix}{name}"] = arr
    meta[prefix] = {
        "directed": graph.directed,
        "node_of": csr.node_of,
        "labels": csr.labels,
        "edge_labels": dict(graph._edge_labels),
    }


def _unpack_graph(prefix: str, arrays, meta: Dict) -> Graph:
    """Rebuild one graph from its packed arrays + metadata.

    Rebuilds the adjacency dicts directly from the CSR rows instead of
    replaying ``add_edge`` per edge — warm start is the store's hot
    read path and the per-edge method dispatch dominated it.  The CSR
    rows hold the *stored* adjacency (both orientations for undirected
    graphs), so one pass fills ``_succ``/``_pred``/``_edge_weights``
    exactly; correctness of this fast path is guarded by the loader's
    content-hash verification against the saved graph's hash.
    """
    gm = meta[prefix]
    directed = gm["directed"]
    node_of = gm["node_of"]
    labels = gm["labels"]
    indptr = arrays[f"{prefix}indptr"].tolist()
    indices = arrays[f"{prefix}indices"].tolist()
    weights = arrays[f"{prefix}weights"].tolist()

    g = Graph(directed=directed)
    succ = g._succ
    pred = g._pred
    ew = g._edge_weights
    node_labels = g._node_labels
    for v, lbl in zip(node_of, labels):
        succ[v] = {}
        pred[v] = {}
        if lbl is not None:
            node_labels[v] = lbl
    undirected_edges = 0
    k = 0
    for uid, u in enumerate(node_of):
        row = succ[u]
        end = indptr[uid + 1]
        while k < end:
            vid = indices[k]
            v = node_of[vid]
            w = weights[k]
            k += 1
            row[v] = w
            pred[v][u] = w
            ew[(u, v)] = w
            if not directed and uid <= vid:
                # each undirected edge is stored in both orientations
                # (a self loop in one); count its canonical one
                undirected_edges += 1
    g._num_undirected_edges = undirected_edges
    g._edge_labels.update(gm["edge_labels"])
    return g


def _derive_base(gm: Dict, fragments: List[Fragment]) -> Graph:
    """Reassemble the base graph from the fragments' local graphs.

    Edge-cut invariant: every base edge's stored orientation lives at
    its source's owner (undirected edges at both endpoints' owners), so
    merging the fragments' adjacency rows reproduces the base adjacency
    exactly — in C-speed dict copies/updates rather than per-edge
    replay.  Vertex-cut fragments partition the edge set outright, so
    the same merge covers them.  Node labels come from each node's
    owner.  Verified by the loader's content-hash check.
    """
    g = Graph(directed=gm["directed"])
    succ = g._succ
    pred = g._pred
    node_labels = g._node_labels
    for frag in fragments:
        for u, row in frag.graph._succ.items():
            base_row = succ.get(u)
            if base_row is None:
                succ[u] = dict(row)
            elif row:
                base_row.update(row)
        local_labels = frag.graph._node_labels
        for u in frag.owned:
            lbl = local_labels.get(u)
            if lbl is not None:
                node_labels[u] = lbl
    ew = g._edge_weights
    self_loops = 0
    for u in succ:
        pred.setdefault(u, {})
    for u, row in succ.items():
        for v, w in row.items():
            pred[v][u] = w
            ew[(u, v)] = w
            if u == v:
                self_loops += 1
    if not g.directed:
        g._num_undirected_edges = (self_loops
                                   + (len(ew) - self_loops) // 2)
    g._edge_labels.update(gm["edge_labels"])
    return g


# ---------------------------------------------------------------------------
# Save / load
# ---------------------------------------------------------------------------
def save_snapshot(path: Union[str, Path], graph: Graph, *,
                  fragmentation: Optional[Fragmentation] = None,
                  meta: Optional[Dict] = None) -> int:
    """Write a snapshot of ``graph`` (and optionally a fragmentation of
    it) to ``path`` atomically; returns the file size in bytes.

    A saved fragmentation captures the *maintained* partition state —
    per-fragment local graphs, owned/inner/outer border sets and the
    version its delta log had reached — not merely a re-runnable
    partition assignment, so a fragmentation mutated by
    :func:`repro.core.updates.apply_delta` round-trips exactly.
    """
    if fragmentation is not None and fragmentation.graph is not graph:
        raise ValueError("fragmentation does not partition the given graph")
    arrays: Dict[str, np.ndarray] = {}
    obj_meta: Dict = {
        "meta": dict(meta or {}),
        "content_hash": graph.content_hash(),
        "num_fragments": None,
    }
    if fragmentation is None:
        _pack_graph(graph, "g_", arrays, obj_meta)
    else:
        # The fragments jointly cover every base edge (and owners cover
        # every node), so the base graph's arrays would be pure
        # duplication: store only the fragments plus the base metadata
        # and re-derive the base adjacency on load — roughly halving
        # snapshot size and decode work.  The content-hash check below
        # verifies the derivation against the saved graph.
        obj_meta["g_"] = {"directed": graph.directed,
                          "derived": True,
                          "edge_labels": dict(graph._edge_labels)}
        obj_meta["num_fragments"] = fragmentation.num_fragments
        obj_meta["strategy_name"] = fragmentation.strategy_name
        obj_meta["frag_version"] = fragmentation.version
        for frag in fragmentation:
            prefix = f"f{frag.fid}_"
            _pack_graph(frag.graph, prefix, arrays, obj_meta)
            obj_meta[prefix].update({
                "owned": list(frag.owned),
                "inner": list(frag.inner),
                "outer": list(frag.outer),
            })
    blob = pickle.dumps(obj_meta, protocol=pickle.HIGHEST_PROTOCOL)
    arrays["pickled_meta"] = np.frombuffer(blob, dtype=np.uint8)

    buf = io.BytesIO()
    np.savez(buf, **arrays)
    payload = buf.getvalue()
    header = _HEADER.pack(MAGIC, FORMAT_VERSION,
                          hashlib.sha256(payload).digest(), len(payload))

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fault = _faults.check("store.snapshot.write", key=path.name)
    if fault is not None and fault.kind == "torn":
        # A writer crashing mid-snapshot: a truncated file lands at the
        # *new* generation's path (the manifest never moves to it, and
        # load_snapshot refuses it by size/checksum), then the save
        # "crashes".  The committed generation is untouched.
        data = header + payload
        cut = max(1, int(len(data) * float(fault.param("keep_fraction",
                                                       0.5))))
        path.write_bytes(data[:cut])
        raise SnapshotError(f"injected torn snapshot write: {path.name}")
    atomic_write_bytes(path, header + payload)
    return len(header) + len(payload)


def load_snapshot(path: Union[str, Path]) -> LoadedSnapshot:
    """Read a snapshot back; verifies the checksummed header and the
    decoded graph's content hash.  Raises :exc:`SnapshotError` on any
    truncation, corruption or format mismatch."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if len(raw) < _HEADER.size:
        raise SnapshotError(f"snapshot {path} is truncated "
                            f"({len(raw)} bytes)")
    magic, version, digest, length = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise SnapshotError(f"{path} is not a snapshot (bad magic)")
    if version != FORMAT_VERSION:
        raise SnapshotError(f"snapshot {path} has format version "
                            f"{version}, expected {FORMAT_VERSION}")
    payload = raw[_HEADER.size:]
    if len(payload) != length:
        raise SnapshotError(f"snapshot {path} is truncated: header "
                            f"promises {length} payload bytes, "
                            f"found {len(payload)}")
    if hashlib.sha256(payload).digest() != digest:
        raise SnapshotError(f"snapshot {path} failed its checksum")

    with np.load(io.BytesIO(payload), allow_pickle=False) as arrays:
        obj_meta = pickle.loads(arrays["pickled_meta"].tobytes())
        m = obj_meta["num_fragments"]
        fragments: List[Fragment] = []
        for fid in range(m or 0):
            prefix = f"f{fid}_"
            local = _unpack_graph(prefix, arrays, obj_meta)
            fm = obj_meta[prefix]
            frag = Fragment(fid, local, set(fm["owned"]),
                            set(fm["inner"]), set(fm["outer"]))
            gm = fm
            # The stored arrays *are* a current CSR snapshot: install it
            # so a warm-started service serves its first kernel query
            # without re-deriving CSR from the dict graph (installs do
            # not count as builds — csr_snapshots_built stays honest).
            frag.install_csr(CSRGraph.from_arrays(
                directed=gm["directed"],
                indptr=arrays[f"{prefix}indptr"],
                indices=arrays[f"{prefix}indices"],
                weights=arrays[f"{prefix}weights"],
                node_of=gm["node_of"], labels=gm["labels"]))
            fragments.append(frag)
        if obj_meta["g_"].get("derived"):
            graph = _derive_base(obj_meta["g_"], fragments)
        else:
            graph = _unpack_graph("g_", arrays, obj_meta)
        if graph.content_hash() != obj_meta["content_hash"]:
            raise SnapshotError(
                f"snapshot {path} decoded to a different graph than was "
                "saved (content hash mismatch)")
        fragmentation = None
        if m is not None:
            fragmentation = Fragmentation.restored(
                graph, fragments,
                strategy_name=obj_meta["strategy_name"],
                version=obj_meta["frag_version"])
    return LoadedSnapshot(graph=graph, fragmentation=fragmentation,
                          meta=obj_meta["meta"],
                          content_hash=obj_meta["content_hash"])
