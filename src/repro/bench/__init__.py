"""Benchmark harness and reporting for the paper's evaluation."""

from repro.bench.harness import (QUERY_CLASSES, SYSTEMS, BenchResult,
                                 run_queries, sweep_workers)
from repro.bench.reporting import (format_results_table, format_series,
                                   speedup_summary)

__all__ = [
    "SYSTEMS", "QUERY_CLASSES", "BenchResult", "run_queries",
    "sweep_workers", "format_results_table", "format_series",
    "speedup_summary",
]
