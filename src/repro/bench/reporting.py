"""Tabular reporting for experiment results.

Formats the rows the paper's tables and figure series report: per-system
response time, communication (MB) and supersteps, plus relative speedups
(the "GRAPE is X times faster" summary lines).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.bench.harness import BenchResult

__all__ = ["format_results_table", "format_series", "speedup_summary"]


def format_results_table(rows: Sequence[BenchResult],
                         title: Optional[str] = None) -> str:
    """Table 1-style output: one line per (system, n)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = (f"{'system':<10} {'class':<7} {'n':>3} {'time(s)':>12} "
              f"{'comm(MB)':>12} {'supersteps':>11}")
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append(f"{r.system:<10} {r.query_class:<7} "
                     f"{r.num_workers:>3} {r.avg_time_s:>12.4f} "
                     f"{r.avg_comm_mb:>12.4f} {r.avg_supersteps:>11.1f}")
    return "\n".join(lines)


def format_series(rows: Sequence[BenchResult], metric: str = "time",
                  title: Optional[str] = None) -> str:
    """Fig. 6/8/9-style output: systems as rows, worker counts as columns.

    ``metric`` is "time", "comm" or "supersteps".
    """
    getter = {
        "time": lambda r: r.avg_time_s,
        "comm": lambda r: r.avg_comm_mb,
        "supersteps": lambda r: r.avg_supersteps,
    }[metric]
    ns = sorted({r.num_workers for r in rows})
    systems = list(dict.fromkeys(r.system for r in rows))
    cells: Dict[tuple, float] = {(r.system, r.num_workers): getter(r)
                                 for r in rows}
    unit = {"time": "s", "comm": "MB", "supersteps": ""}[metric]
    lines: List[str] = []
    caption = f"[{metric}{(' ' + unit) if unit else ''}]"
    lines.append(f"{title}  {caption}" if title else caption)
    header = f"{'system':<10}" + "".join(f"{f'n={n}':>12}" for n in ns)
    lines.append(header)
    lines.append("-" * len(header))
    for system in systems:
        row = f"{system:<10}"
        for n in ns:
            value = cells.get((system, n))
            row += f"{value:>12.4f}" if value is not None else f"{'-':>12}"
        lines.append(row)
    return "\n".join(lines)


def speedup_summary(rows: Sequence[BenchResult],
                    reference: str = "grape") -> str:
    """The paper's summary style: "GRAPE is X, Y and Z times faster"."""
    by_system: Dict[str, List[BenchResult]] = {}
    for r in rows:
        by_system.setdefault(r.system, []).append(r)
    if reference not in by_system:
        return f"(no {reference} rows to compare against)"
    ref_by_n = {r.num_workers: r for r in by_system[reference]}
    lines = []
    for system, srows in by_system.items():
        if system == reference:
            continue
        ratios = []
        comm_ratios = []
        for r in srows:
            ref = ref_by_n.get(r.num_workers)
            if ref is None or ref.avg_time_s == 0:
                continue
            ratios.append(r.avg_time_s / ref.avg_time_s)
            if r.avg_comm_mb > 0:
                comm_ratios.append(ref.avg_comm_mb / r.avg_comm_mb)
        if ratios:
            avg = sum(ratios) / len(ratios)
            comm = (f"; ships {100 * sum(comm_ratios) / len(comm_ratios):.1f}%"
                    f" of its data" if comm_ratios else "")
            lines.append(f"{reference} is {avg:.1f}x faster than "
                         f"{system} on average{comm}")
    return "\n".join(lines) if lines else "(nothing to compare)"
