"""Experiment harness: one entry point per (system, query class).

This reproduces the paper's evaluation protocol (Section 7): the same
query batch runs on GRAPE, the vertex-centric engine ("giraph"), the GAS
engine ("graphlab") and the block-centric engine ("blogel"); each run
reports response time, communication volume and supersteps on the shared
simulated cluster, so the cross-system comparisons of Figs. 6, 8 and 9 and
Table 1 come from identical inputs and identical accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.baselines.block_centric import (BlogelEngine, CCBlockProgram,
                                           SSSPBlockProgram, run_vcompute)
from repro.baselines.gas import GASEngine, run_subiso_on_gas
from repro.baselines.gas_programs import (CCGASProgram, CFGASProgram,
                                          SimGASProgram, SSSPGASProgram)
from repro.baselines.vertex_centric import PregelEngine
from repro.baselines.vertex_programs import (CCVertexProgram,
                                             CFVertexProgram,
                                             SimVertexProgram,
                                             SSSPVertexProgram,
                                             SubIsoVertexProgram)
from repro.core.engine import GrapeEngine
from repro.graph.graph import Graph
from repro.partition.strategies import MetisLikePartition
from repro.pie_programs import (CCProgram, CFProgram, CFQuery, SimProgram,
                                SSSPProgram, SubIsoProgram)
from repro.runtime.metrics import CostModel, RunMetrics

__all__ = ["SYSTEMS", "QUERY_CLASSES", "BenchResult", "run_queries",
           "sweep_workers"]

SYSTEMS = ("grape", "giraph", "graphlab", "blogel")
QUERY_CLASSES = ("sssp", "cc", "sim", "subiso", "cf")


@dataclass
class BenchResult:
    """Aggregated metrics for one (system, query class, n) cell."""

    system: str
    query_class: str
    num_workers: int
    time_s: float = 0.0
    comm_mb: float = 0.0
    supersteps: int = 0
    num_queries: int = 0
    answers: List[Any] = field(default_factory=list)

    def add(self, metrics: RunMetrics, answer: Any) -> None:
        self.time_s += metrics.parallel_time_s
        self.comm_mb += metrics.comm_megabytes
        self.supersteps += metrics.supersteps
        self.num_queries += 1
        self.answers.append(answer)

    @property
    def avg_time_s(self) -> float:
        return self.time_s / max(1, self.num_queries)

    @property
    def avg_comm_mb(self) -> float:
        return self.comm_mb / max(1, self.num_queries)

    @property
    def avg_supersteps(self) -> float:
        return self.supersteps / max(1, self.num_queries)


def _run_grape(query_class: str, graph: Graph, queries: Sequence[Any],
               num_workers: int, *, incremental: bool = True,
               candidate_index=None,
               cost_model: Optional[CostModel] = None) -> BenchResult:
    programs = {
        "sssp": lambda: SSSPProgram(),
        "cc": lambda: CCProgram(),
        "sim": lambda: SimProgram(candidate_index=candidate_index),
        "subiso": lambda: SubIsoProgram(),
        "cf": lambda: CFProgram(),
    }
    engine = GrapeEngine(num_workers, partition=MetisLikePartition(),
                         incremental=incremental, cost_model=cost_model)
    # Partitioned once for all queries (paper Section 3.1); partitioning
    # happens at load time and is not charged to queries.
    fragmentation = engine.make_fragmentation(graph)
    name = "grape" if incremental else "grape-ni"
    result = BenchResult(name, query_class, num_workers)
    for query in queries:
        program = programs[query_class]()
        run = engine.run(program, query, fragmentation=fragmentation)
        result.add(run.metrics, run.answer)
    return result


def _run_giraph(query_class: str, graph: Graph, queries: Sequence[Any],
                num_workers: int,
                cost_model: Optional[CostModel] = None) -> BenchResult:
    programs = {
        "sssp": SSSPVertexProgram,
        "cc": CCVertexProgram,
        "sim": SimVertexProgram,
        "subiso": SubIsoVertexProgram,
        "cf": CFVertexProgram,
    }
    engine = PregelEngine(num_workers, cost_model=cost_model)
    result = BenchResult("giraph", query_class, num_workers)
    for query in queries:
        run = engine.run(programs[query_class](), graph, query=query)
        result.add(run.metrics, run.answer)
    return result


def _run_graphlab(query_class: str, graph: Graph, queries: Sequence[Any],
                  num_workers: int,
                  cost_model: Optional[CostModel] = None) -> BenchResult:
    programs = {
        "sssp": SSSPGASProgram,
        "cc": CCGASProgram,
        "sim": SimGASProgram,
        "cf": CFGASProgram,
    }
    result = BenchResult("graphlab", query_class, num_workers)
    for query in queries:
        if query_class == "subiso":
            run = run_subiso_on_gas(graph, query, num_workers,
                                    cost_model=cost_model)
        else:
            engine = GASEngine(num_workers, cost_model=cost_model)
            run = engine.run(programs[query_class](), graph, query=query)
        result.add(run.metrics, run.answer)
    return result


def _run_blogel(query_class: str, graph: Graph, queries: Sequence[Any],
                num_workers: int,
                cost_model: Optional[CostModel] = None) -> BenchResult:
    result = BenchResult("blogel", query_class, num_workers)
    if query_class == "sssp":
        engine = BlogelEngine(num_workers, cost_model=cost_model)
        fragmentation = engine.make_fragmentation(graph)
        for query in queries:
            run = engine.run(SSSPBlockProgram(), graph, query=query,
                             fragmentation=fragmentation)
            result.add(run.metrics, run.answer)
    elif query_class == "cc":
        engine = BlogelEngine(num_workers, cost_model=cost_model,
                              precompute_cc=True)
        fragmentation = engine.make_fragmentation(graph)
        for query in queries:
            run = engine.run(CCBlockProgram(), graph, query=query,
                             fragmentation=fragmentation)
            result.add(run.metrics, run.answer)
    else:
        vprograms = {"sim": SimVertexProgram, "subiso": SubIsoVertexProgram,
                     "cf": CFVertexProgram}
        for query in queries:
            run = run_vcompute(vprograms[query_class](), graph, query,
                               num_workers, cost_model=cost_model)
            result.add(run.metrics, run.answer)
    return result


_RUNNERS = {
    "grape": _run_grape,
    "giraph": _run_giraph,
    "graphlab": _run_graphlab,
    "blogel": _run_blogel,
}


def run_queries(system: str, query_class: str, graph: Graph,
                queries: Sequence[Any], num_workers: int,
                cost_model: Optional[CostModel] = None,
                **grape_opts) -> BenchResult:
    """Run a query batch on one system; see :data:`SYSTEMS`.

    ``grape_opts`` (``incremental``, ``candidate_index``) only apply to
    GRAPE runs (the Exp-2 / Exp-3 ablations).
    """
    if query_class not in QUERY_CLASSES:
        raise ValueError(f"unknown query class {query_class!r}")
    if system == "grape":
        return _run_grape(query_class, graph, queries, num_workers,
                          cost_model=cost_model, **grape_opts)
    if grape_opts:
        raise ValueError(f"{sorted(grape_opts)} only apply to grape runs")
    try:
        runner = _RUNNERS[system]
    except KeyError:
        raise ValueError(f"unknown system {system!r}; "
                         f"available: {SYSTEMS}") from None
    return runner(query_class, graph, queries, num_workers,
                  cost_model=cost_model)


def sweep_workers(systems: Sequence[str], query_class: str, graph: Graph,
                  queries: Sequence[Any], worker_counts: Sequence[int],
                  cost_model: Optional[CostModel] = None,
                  ) -> List[BenchResult]:
    """The paper's n-sweep (Figs. 6/8): every system at every n."""
    rows: List[BenchResult] = []
    for n in worker_counts:
        for system in systems:
            rows.append(run_queries(system, query_class, graph, queries, n,
                                    cost_model=cost_model))
    return rows
