"""The PIE programming model: ``PEval``, ``IncEval``, ``Assemble``.

Paper Section 3: to parallelize a query class ``Q`` with GRAPE, a user
provides three *sequential* functions plus a small message preamble.  This
module defines that contract as an abstract base class; the concrete PIE
programs in :mod:`repro.pie_programs` wrap the untouched sequential
algorithms of :mod:`repro.sequential`.

The message machinery mirrors the paper:

* every program declares status variables over a *candidate set* ``C_i``
  of border nodes (``F_i.I`` or ``F_i.O``, optionally ``d``-hop extended);
* after each round the engine reads the variables back
  (:meth:`PIEProgram.read_update_params`), diffs them against the previous
  round, and ships only changed values — "GRAPE minimizes communication
  costs by passing only updated variable values";
* incoming values are resolved by the program's
  :attr:`~PIEProgram.aggregator` and handed to ``IncEval`` as the message
  ``M_i``.

Update-parameter keys are ``(node, name)`` pairs: ``node`` is the border
node the value is attached to (used for routing through ``G_P``), ``name``
distinguishes multiple variables on one node (e.g. Sim's per-query-node
booleans).
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Hashable, Optional, Set, Tuple

from repro.core.aggregators import Aggregator, DefaultExceptionAggregator
from repro.graph.graph import Graph, Node
from repro.partition.base import Fragment, Fragmentation

__all__ = ["PIEProgram", "ParamKey", "ParamUpdates"]

# (border node, variable name) -> value
ParamKey = Tuple[Node, Hashable]
ParamUpdates = Dict[ParamKey, Any]


class PIEProgram(abc.ABC):
    """A PIE program for one query class ``Q``.

    Subclasses implement the three sequential functions and the message
    preamble.  All per-fragment mutable data lives in an opaque *state*
    object created by :meth:`init_state`; the engine never inspects it
    beyond deep-copying for checkpoints and (under the process backend)
    pickling it back for Assemble.

    **Pickle contract.**  Under ``backend="process"`` the program, the
    query and every fragment are shipped to pooled worker processes, and
    states are pulled back once for Assemble.  A program must therefore
    be defined at module level (not nested in a function) and keep its
    configuration and state free of unpicklable members — no locks, open
    handles, generators or lambdas; plain data, dataclasses and numpy
    arrays are all fine.  Every bundled program satisfies this (audited
    by ``tests/differential/test_pickle_contract.py``); an unpicklable
    program fails fast with
    :class:`~repro.runtime.executors.UnpicklableProgramError` when the
    process backend is selected.
    """

    #: human-readable query-class name ("SSSP", "Sim", ...)
    name: str = "abstract"

    #: conflict resolution for update parameters (the message segment's
    #: ``aggregateMsg``); paper default is the exception handler.
    aggregator: Aggregator = DefaultExceptionAggregator()

    #: capability flag: the program can run its sequential functions on a
    #: fragment's CSR snapshot (:mod:`repro.kernels`) when its ``use_csr``
    #: switch is on, with the dict-graph algorithms as fallback.
    supports_csr: bool = False

    # ------------------------------------------------------------------
    # Message preamble
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def init_state(self, query: Any, fragment: Fragment) -> Any:
        """Declare and initialize status variables for a fragment.

        Runs once per fragment before ``PEval`` (the paper's variable
        declaration in the message preamble).
        """

    @abc.abstractmethod
    def read_update_params(self, query: Any, fragment: Fragment,
                           state: Any) -> ParamUpdates:
        """Current values of the update parameters ``C_i.x̄``.

        The engine diffs successive reads to find changed values; only
        those are shipped.
        """

    # ------------------------------------------------------------------
    # The three sequential functions
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def peval(self, query: Any, fragment: Fragment, state: Any) -> None:
        """Partial evaluation: compute ``Q(F_i)`` on the local fragment."""

    @abc.abstractmethod
    def inceval(self, query: Any, fragment: Fragment, state: Any,
                message: ParamUpdates) -> None:
        """Incremental evaluation: compute ``Q(F_i ⊕ M_i)``.

        ``message`` maps update-parameter keys to their aggregated new
        values; the implementation applies them and propagates changes
        (reusing the previous round's partial result in ``state``).
        """

    @abc.abstractmethod
    def assemble(self, query: Any, fragmentation: Fragmentation,
                 states: Dict[int, Any]) -> Any:
        """Combine partial results into ``Q(G)``."""

    def read_changed_params(self, query: Any, fragment: Fragment,
                            state: Any) -> Optional[ParamUpdates]:
        """Update parameters that changed since the previous read.

        The incremental coordinator protocol: a program that tracks its
        own dirty keys (the sequential algorithms usually know exactly
        which status variables they touched) returns just those entries,
        and the engine folds them in directly instead of reading and
        diffing the full parameter dict every superstep.  Each call
        *consumes* the dirty set; the first read after ``init_state``
        must return every live parameter (the engine's ``reported``
        baseline starts empty).

        The returned dict must equal what the engine's own diff of
        successive :meth:`read_update_params` reads would produce, with
        one documented relaxation: keys may never be retired (an entry
        absent from a later full read keeps its last value in the
        coordinator's per-fragment table).  All bundled protocols have
        append/update-only parameters, so this changes nothing.

        Returning ``None`` (the default) selects the engine's full-diff
        path for this round.
        """
        return None

    # ------------------------------------------------------------------
    # Optional hooks
    # ------------------------------------------------------------------
    #: Whether a non-maintainable update batch may be answered by a full
    #: re-evaluation of the standing query inside the same session (the
    #: paper's "incremental when possible, recompute when not" serving
    #: contract).  Programs that opt out (``False``) make
    #: :class:`~repro.core.updates.ContinuousQuerySession` raise a typed
    #: :class:`~repro.core.updates.NonMonotoneUpdateError` instead.
    recompute_fallback: bool = True

    def maintainable(self, delta) -> bool:
        """Can this program fold ``delta`` into live per-fragment state?

        ``delta`` is any object exposing the
        :class:`~repro.graph.delta.FragmentDelta` predicates
        (``monotone``, ``has_deletions``, ``has_weight_increases``).
        When the answer is ``True`` for every touched fragment, the
        continuous-query layer calls :meth:`on_graph_update` per
        fragment and resumes the IncEval fixpoint from converged state;
        otherwise it falls back to re-running the query from reset
        state on the (already mutated) fragmentation.

        The default is conservative and correct for inflationary
        fixpoints: monotone deltas (new edges, weight decreases) only,
        and only for programs that implement ``on_graph_update``.
        Programs whose answers ignore parts of the delta should widen
        this — CC, for example, accepts arbitrary reweights because
        component structure does not depend on weights.
        """
        return delta.monotone and hasattr(self, "on_graph_update")

    # ``on_graph_update(query, fragment, state, delta)`` is the matching
    # optional hook (defined by subclasses, detected via ``hasattr``):
    # fold a maintainable :class:`~repro.graph.delta.FragmentDelta` into
    # the fragment's live state after its local graph was mutated, e.g.
    # relax ``delta.as_insertions`` as shortcut candidates (SSSP) or
    # union the endpoints of ``delta.insertions`` (CC).

    def invalidates(self, delta) -> bool:
        """Does ``delta`` threaten already-converged values?

        Consulted only for batches :meth:`maintainable` accepted.  When
        any touched fragment's delta invalidates, the session routes the
        batch through the bounded non-monotone path (affected-region
        reset + re-convergence) instead of the plain ``on_graph_update``
        fold.  The bounded path requires the three optional hooks below;
        the default is therefore "non-monotone and the program
        implements them".  Programs whose answers ignore parts of a
        delta narrow this — BFS and CC, for example, treat weight
        increases as no-ops and only dispatch on deletions.
        """
        return not delta.monotone and hasattr(self, "apply_nonmonotone")

    # The bounded non-monotone path (delete-aware IncEval) is three more
    # optional hooks, detected via ``hasattr`` and required together:
    #
    # * ``affected_seeds(query, fragment, state, delta) -> Set[Node]`` —
    #   the direct hits: vertices whose converged value was supported by
    #   a deleted or raised edge of this fragment's delta (old weights
    #   ride on ``delta.deletions`` / ``delta.weight_changes``);
    # * ``expand_affected(query, fragment, state, nodes) -> Set[Node]``
    #   — grow the region locally: given vertices invalidated anywhere,
    #   return the locally-known ones plus every vertex whose current
    #   value is supported by one of them (closure over the fragment's
    #   value-dependency chains; over-approximation is safe);
    # * ``apply_nonmonotone(query, fragment, state, delta, affected)`` —
    #   reset the affected vertices to neutral, re-seed them from
    #   unaffected in-neighbors on the mutated graph, fold the monotone
    #   part of ``delta`` (which may be ``None`` for fragments affected
    #   only transitively) and re-converge locally.
    #
    # A fourth, optional on top of those three:
    #
    # * ``report_entries(query, fragment, state, nodes) -> ParamUpdates``
    #   — the per-node restriction of ``read_update_params``: current
    #   report entries for the listed nodes only.  Programs that provide
    #   it — and whose ``apply_nonmonotone`` keeps the dirty tracking
    #   behind ``read_changed_params`` alive — get the session's
    #   *incremental* rebaseline after a bounded reset: the coordinator
    #   re-reads and re-aggregates only the dirty values plus a probe of
    #   the vertices the batch could have touched (affected, retired, or
    #   moved between border sets), instead of full ``O(border)``
    #   reports.

    def apply_message(self, query: Any, fragment: Fragment, state: Any,
                      message: ParamUpdates) -> None:
        """Write message values into the state *without* propagating.

        Used by the non-incremental ablation mode (the paper's GRAPE-NI,
        Exp-2), which applies the message then re-runs ``PEval`` from
        scratch instead of calling ``IncEval``.  Default: delegate to
        ``inceval`` (programs for which re-running PEval makes no sense).
        """
        self.inceval(query, fragment, state, message)

    def preprocess(self, query: Any,
                   fragmentation: Fragmentation) -> Optional[Dict[int, Any]]:
        """Optional data shipping before ``PEval``.

        SubIso uses this to send each fragment the ``d_Q``-neighborhood of
        its in-border nodes (paper Section 5.1).  Returns a per-fragment
        payload dict, or ``None`` when nothing is shipped; payload bytes
        are charged as communication.
        """
        return None

    def apply_preprocess(self, query: Any, fragment: Fragment, state: Any,
                         payload: Any) -> None:
        """Incorporate a :meth:`preprocess` payload into fragment state."""
        raise NotImplementedError(
            f"{type(self).__name__} shipped a preprocess payload but does "
            "not implement apply_preprocess")

    #: How changed update parameters are routed through ``G_P``:
    #: ``"holders"`` sends to every fragment containing the border node
    #: (Sim, CC, CF); ``"owner"`` sends to the owning fragment only (SSSP,
    #: whose ``F_i.O`` copies have no local out-edges).
    route_to: str = "holders"

    def drain_messages(self, query: Any, fragment: Fragment,
                       state: Any) -> Tuple[Dict[int, list], list]:
        """Drain explicitly addressed messages (paper Section 3.5).

        GRAPE supports, besides update parameters, (a) *designated*
        messages from one worker to another and (b) *key-value* pairs
        grouped by key at the coordinator (the MapReduce channel used by
        the Simulation Theorem compilers).

        Returns ``(designated, keyvalue)`` where ``designated`` maps a
        destination fragment id to a list of payloads and ``keyvalue`` is
        a list of ``(key, value)`` pairs.  Default: nothing.
        """
        return {}, []

    def deliver_designated(self, query: Any, fragment: Fragment, state: Any,
                           payloads: list) -> None:
        """Receive designated messages addressed to this worker."""
        raise NotImplementedError(
            f"{type(self).__name__} received designated messages but does "
            "not implement deliver_designated")

    def deliver_keyvalue(self, query: Any, fragment: Fragment, state: Any,
                         groups: Dict[Hashable, list]) -> None:
        """Receive key-value groups assigned to this worker by the
        coordinator's shuffle (keys hashed across workers)."""
        raise NotImplementedError(
            f"{type(self).__name__} received key-value messages but does "
            "not implement deliver_keyvalue")

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
