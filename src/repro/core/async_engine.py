"""Asynchronous GRAPE (the paper's announced future work, Section 8).

The paper closes with "an asynchronous version of GRAPE is also under
development" — this module builds it.  Instead of BSP supersteps with a
global barrier, fragments are activated individually as soon as messages
for them exist (GraphLab-style asynchrony), under the same PIE contract:

* ``PEval`` runs once per fragment, as before;
* thereafter a scheduler pops the fragment with the earliest-ready
  pending message, runs ``IncEval`` on *just that fragment*, folds its
  changed update parameters into the coordinator table, and enqueues the
  destinations — no barrier, no idle waiting for stragglers;
* termination: the queue drains (no pending messages anywhere).

Correctness: for programs satisfying the monotonic condition, the
asynchronous fixpoint equals the synchronous one — update parameters
move along the same partial order whatever the activation order, and the
engine only stops when no parameter can change (the Assurance Theorem's
argument does not use the barrier).  Tests assert async ≡ sync answers
for SSSP, CC and Sim.

Timing uses a discrete-event simulation: every fragment activation is
really executed and measured; it is scheduled on its physical worker at
``max(worker_free, message_ready)``; messages become ready after a
transfer delay from the sender's finish time.  The response time is the
latest finish — so stragglers only delay their own dependents, the
advertised benefit of asynchrony on skewed workloads.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.monotonic import MonotonicityChecker
from repro.core.pie import ParamKey, ParamUpdates, PIEProgram
from repro.graph.graph import Graph
from repro.partition.base import Fragmentation, PartitionStrategy
from repro.partition.strategies import HashPartition
from repro.runtime.metrics import CostModel, RunMetrics, message_bytes

__all__ = ["AsyncGrapeEngine", "AsyncGrapeResult"]


@dataclass
class AsyncGrapeResult:
    """Outcome of one asynchronous GRAPE run."""

    answer: Any
    metrics: RunMetrics
    fragmentation: Fragmentation
    states: Dict[int, Any]
    #: number of individual fragment activations (the async analogue of
    #: supersteps x active fragments)
    activations: int = 0


class AsyncGrapeEngine:
    """Barrier-free evaluation of PIE programs.

    Shares the PIE contract with :class:`~repro.core.engine.GrapeEngine`
    (``peval``/``inceval``/``read_update_params``/``assemble`` and the
    aggregator); explicit designated/key-value channels are not supported
    (they encode BSP synchrony by construction).

    Parameters mirror the synchronous engine where they make sense.
    """

    def __init__(self, num_workers: int, *,
                 num_fragments: Optional[int] = None,
                 partition: Optional[PartitionStrategy] = None,
                 cost_model: Optional[CostModel] = None,
                 check_monotonic: bool = False,
                 max_activations: int = 1_000_000):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        self.num_fragments = num_fragments or num_workers
        if self.num_fragments < self.num_workers:
            raise ValueError("virtual workers m must be >= physical n")
        self.partition = partition or HashPartition()
        self.cost_model = cost_model or CostModel()
        self.check_monotonic = check_monotonic
        self.max_activations = max_activations

    # ------------------------------------------------------------------
    def make_fragmentation(self, graph: Graph) -> Fragmentation:
        return self.partition.partition(graph, self.num_fragments)

    def _worker_of(self, fid: int) -> int:
        return fid % self.num_workers

    # ------------------------------------------------------------------
    def run(self, program: PIEProgram, query: Any,
            graph: Optional[Graph] = None,
            fragmentation: Optional[Fragmentation] = None,
            ) -> AsyncGrapeResult:
        """Compute ``Q(G)`` without barriers."""
        if fragmentation is None:
            if graph is None:
                raise ValueError("pass either graph or fragmentation")
            fragmentation = self.make_fragmentation(graph)

        frags = fragmentation.fragments
        gp = fragmentation.gp
        agg = program.aggregator
        checker = MonotonicityChecker(agg, enabled=self.check_monotonic)
        metrics = RunMetrics()

        states: Dict[int, Any] = {f.fid: program.init_state(query, f)
                                  for f in frags}
        payloads = program.preprocess(query, fragmentation)
        if payloads:
            for fid, payload in payloads.items():
                metrics.comm_bytes += message_bytes(payload)
                metrics.comm_messages += 1
                program.apply_preprocess(query, frags[fid], states[fid],
                                         payload)

        reported: Dict[int, ParamUpdates] = {f.fid: {} for f in frags}
        global_table: Dict[ParamKey, Any] = {}
        pending: Dict[int, ParamUpdates] = {}     # fid -> message content
        ready_at: Dict[int, float] = {}           # fid -> earliest start
        worker_free = [0.0] * self.num_workers
        activations = 0

        def account_dirty(fid: int, finish: float) -> None:
            """Diff fragment fid's parameters, fold into the table, and
            enqueue destination fragments."""
            current = program.read_update_params(query, frags[fid],
                                                 states[fid])
            prev = reported[fid]
            changed = {k: v for k, v in current.items()
                       if k not in prev or prev[k] != v}
            reported[fid] = current
            if not changed:
                return
            metrics.comm_bytes += message_bytes(changed)
            metrics.comm_messages += 1
            dirty: Set[ParamKey] = set()
            for key, value in changed.items():
                if key in global_table:
                    old = global_table[key]
                    merged = agg.combine(old, value)
                    if agg.is_progress(old, merged):
                        checker.observe(key, merged)
                        global_table[key] = merged
                        dirty.add(key)
                else:
                    global_table[key] = value
                    dirty.add(key)
            new_batches: Dict[int, ParamUpdates] = {}
            for key in dirty:
                node, _name = key
                if node not in gp:
                    continue
                if program.route_to == "owner":
                    dests = (gp.owner(node),)
                else:
                    dests = gp.holders(node)
                for dest in dests:
                    if dest == fid:
                        continue
                    if reported[dest].get(key) == global_table[key]:
                        continue
                    new_batches.setdefault(dest, {})[key] = \
                        global_table[key]
            for dest, batch in new_batches.items():
                transfer = (message_bytes(batch)
                            * self.cost_model.seconds_per_byte
                            + self.cost_model.sync_latency_s)
                metrics.comm_bytes += message_bytes(batch)
                metrics.comm_messages += 1
                pending.setdefault(dest, {}).update(batch)
                ready_at[dest] = max(ready_at.get(dest, 0.0),
                                     finish + transfer)

        # ---------------- PEval: every fragment once -------------------
        for frag in frags:
            wid = self._worker_of(frag.fid)
            start_clock = worker_free[wid]
            t0 = time.perf_counter()
            program.peval(query, frag, states[frag.fid])
            elapsed = time.perf_counter() - t0
            metrics.total_compute_s += elapsed
            finish = start_clock + elapsed
            worker_free[wid] = finish
            activations += 1
            account_dirty(frag.fid, finish)

        # ---------------- asynchronous IncEval loop --------------------
        while pending:
            if activations >= self.max_activations:
                raise RuntimeError(
                    f"no fixpoint after {self.max_activations} "
                    "activations; check the monotonic condition")
            # Schedule the fragment that can start earliest.
            def start_time(fid: int) -> float:
                return max(worker_free[self._worker_of(fid)],
                           ready_at.get(fid, 0.0))

            fid = min(pending, key=lambda f: (start_time(f), f))
            message = pending.pop(fid)
            ready_at.pop(fid, None)
            wid = self._worker_of(fid)
            start_clock = start_time(fid)

            t0 = time.perf_counter()
            program.inceval(query, frags[fid], states[fid], message)
            elapsed = time.perf_counter() - t0
            metrics.total_compute_s += elapsed
            finish = start_clock + elapsed
            worker_free[wid] = finish
            activations += 1
            account_dirty(fid, finish)

        # ---------------- Assemble -------------------------------------
        t0 = time.perf_counter()
        answer = program.assemble(query, fragmentation, states)
        assemble_s = time.perf_counter() - t0
        metrics.total_compute_s += assemble_s
        metrics.parallel_time_s = max(worker_free) + assemble_s
        metrics.supersteps = activations  # async analogue

        return AsyncGrapeResult(answer=answer, metrics=metrics,
                                fragmentation=fragmentation,
                                states=states, activations=activations)
