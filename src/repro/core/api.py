"""The GRAPE API library (paper Sections 3.5 and 6).

Developers register PIE programs as stored procedures; end users look them
up by query-class name and "play".  The registry is the in-process
equivalent of the paper's plug/play panels, and the program store behind
:class:`~repro.service.GrapeService`.

Case handling is explicit: lookup is **case-insensitive** (names are
canonicalized to lowercase internally), while the *display* name — what
``names()``, iteration and error messages show — is exactly the string the
program was registered under.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.core.pie import PIEProgram

__all__ = ["PIERegistry", "default_registry"]

ProgramFactory = Callable[..., PIEProgram]


class PIERegistry:
    """Named collection of PIE program factories.

    Factories (rather than instances) are stored so that each lookup gets
    a fresh program — programs may carry per-run configuration such as a
    candidate index or match limit.

    Programs can be registered three ways::

        registry.register("sssp", SSSPProgram)          # explicit
        registry.register("sssp", Better, replace=True)  # override

        @registry.program("triangles")                   # decorator
        class TriangleProgram(PIEProgram):
            ...
    """

    def __init__(self):
        self._factories: Dict[str, ProgramFactory] = {}
        self._display: Dict[str, str] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _canonical(name: str) -> str:
        if not isinstance(name, str) or not name.strip():
            raise TypeError(f"query-class name must be a non-empty string, "
                            f"got {name!r}")
        return name.strip().lower()

    # ------------------------------------------------------------------
    def register(self, name: str, factory: ProgramFactory, *,
                 replace: bool = False) -> None:
        """Register a program factory under a query-class name.

        Names collide case-insensitively; re-registering an existing name
        raises unless ``replace=True`` is passed.
        """
        key = self._canonical(name)
        if key in self._factories and not replace:
            raise ValueError(
                f"query class {self._display[key]!r} already registered "
                f"(names are case-insensitive); pass replace=True to "
                f"override")
        self._factories[key] = factory
        self._display[key] = name.strip()

    def unregister(self, name: str) -> ProgramFactory:
        """Remove a registered program; returns its factory."""
        key = self._canonical(name)
        try:
            factory = self._factories.pop(key)
        except KeyError:
            raise ValueError(
                f"no PIE program registered for {name!r}; "
                f"available: {self.names()}") from None
        del self._display[key]
        return factory

    def program(self, name: Union[str, ProgramFactory, None] = None, *,
                replace: bool = False) -> Callable:
        """Decorator form of :meth:`register`.

        ``@registry.program("name")`` registers the decorated class or
        factory under ``name``; bare ``@registry.program`` derives the name
        from the factory's ``name`` attribute (the PIE convention) or its
        ``__name__``.  The factory is returned unchanged so it can still be
        used directly.
        """
        def decorate(factory: ProgramFactory,
                     explicit: Optional[str] = None) -> ProgramFactory:
            derived = explicit or getattr(factory, "name", None)
            if not isinstance(derived, str) or not derived.strip() \
                    or derived == "abstract":
                derived = getattr(factory, "__name__", None)
            if not derived:
                raise TypeError(
                    "cannot derive a query-class name; use "
                    "@registry.program(\"name\")")
            self.register(derived, factory, replace=replace)
            return factory

        if callable(name):  # bare @registry.program
            return decorate(name)
        return lambda factory: decorate(factory, name)

    # ------------------------------------------------------------------
    def create(self, name: str, **kwargs) -> PIEProgram:
        """Instantiate the program registered for ``name``
        (case-insensitive)."""
        try:
            factory = self._factories[self._canonical(name)]
        except KeyError:
            raise ValueError(
                f"no PIE program registered for {name!r}; "
                f"available: {self.names()}") from None
        return factory(**kwargs)

    def copy(self) -> "PIERegistry":
        """An independent registry with the same registrations.

        :class:`~repro.service.GrapeService` copies the default registry so
        per-service plug-ins never leak into the shared library.
        """
        clone = PIERegistry()
        clone._factories = dict(self._factories)
        clone._display = dict(self._display)
        return clone

    def names(self) -> List[str]:
        """Registered display names, sorted case-insensitively."""
        return sorted(self._display.values(), key=str.lower)

    def __contains__(self, name: str) -> bool:
        return self._canonical(name) in self._factories

    def __len__(self) -> int:
        return len(self._factories)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())


def _build_default_registry() -> PIERegistry:
    # Imported lazily to avoid a circular import at package init.
    from repro.pie_programs.bfs import BFSProgram
    from repro.pie_programs.cc import CCProgram
    from repro.pie_programs.cf import CFProgram
    from repro.pie_programs.pagerank import PageRankProgram
    from repro.pie_programs.sim import SimProgram
    from repro.pie_programs.sssp import SSSPProgram
    from repro.pie_programs.subiso import SubIsoProgram

    registry = PIERegistry()
    registry.register("sssp", SSSPProgram)
    registry.register("sim", SimProgram)
    registry.register("subiso", SubIsoProgram)
    registry.register("cc", CCProgram)
    registry.register("cf", CFProgram)
    registry.register("bfs", BFSProgram)
    registry.register("pagerank", PageRankProgram)
    return registry


_default: PIERegistry | None = None


def default_registry() -> PIERegistry:
    """The library shipped with GRAPE: SSSP, Sim, SubIso, CC and CF."""
    global _default
    if _default is None:
        _default = _build_default_registry()
    return _default
