"""The GRAPE API library (paper Sections 3.5 and 6).

Developers register PIE programs as stored procedures; end users look them
up by query-class name and "play".  The registry is the in-process
equivalent of the paper's plug/play panels.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List

from repro.core.pie import PIEProgram

__all__ = ["PIERegistry", "default_registry"]


class PIERegistry:
    """Named collection of PIE program factories.

    Factories (rather than instances) are stored so that each lookup gets
    a fresh program — programs may carry per-run configuration such as a
    candidate index or match limit.
    """

    def __init__(self):
        self._factories: Dict[str, Callable[..., PIEProgram]] = {}

    def register(self, name: str,
                 factory: Callable[..., PIEProgram]) -> None:
        """Register a program factory under a query-class name."""
        key = name.lower()
        if key in self._factories:
            raise ValueError(f"query class {name!r} already registered")
        self._factories[key] = factory

    def create(self, name: str, **kwargs) -> PIEProgram:
        """Instantiate the program registered for ``name``."""
        try:
            factory = self._factories[name.lower()]
        except KeyError:
            raise ValueError(
                f"no PIE program registered for {name!r}; "
                f"available: {sorted(self._factories)}") from None
        return factory(**kwargs)

    def names(self) -> List[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._factories))


def _build_default_registry() -> PIERegistry:
    # Imported lazily to avoid a circular import at package init.
    from repro.pie_programs.bfs import BFSProgram
    from repro.pie_programs.cc import CCProgram
    from repro.pie_programs.cf import CFProgram
    from repro.pie_programs.pagerank import PageRankProgram
    from repro.pie_programs.sim import SimProgram
    from repro.pie_programs.sssp import SSSPProgram
    from repro.pie_programs.subiso import SubIsoProgram

    registry = PIERegistry()
    registry.register("sssp", SSSPProgram)
    registry.register("sim", SimProgram)
    registry.register("subiso", SubIsoProgram)
    registry.register("cc", CCProgram)
    registry.register("cf", CFProgram)
    registry.register("bfs", BFSProgram)
    registry.register("pagerank", PageRankProgram)
    return registry


_default: PIERegistry | None = None


def default_registry() -> PIERegistry:
    """The library shipped with GRAPE: SSSP, Sim, SubIso, CC and CF."""
    global _default
    if _default is None:
        _default = _build_default_registry()
    return _default
