"""Runtime verification of the monotonic condition (paper Section 4.1).

The Assurance Theorem guarantees termination and correctness when every
update parameter (a) draws values from a finite domain and (b) is only ever
updated along a partial order.  Condition (b) is checkable at runtime: the
engine records every shipped value per parameter and asserts that each
successive value strictly advances the program's aggregator order.

This gives PIE authors the paper's safety net in executable form: a
non-monotonic ``IncEval`` fails fast with a :exc:`MonotonicityViolation`
instead of silently diverging.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.aggregators import Aggregator
from repro.core.pie import ParamKey

__all__ = ["MonotonicityViolation", "MonotonicityChecker"]


class MonotonicityViolation(RuntimeError):
    """An update parameter moved against its declared partial order."""


class MonotonicityChecker:
    """Tracks update-parameter histories and enforces the partial order."""

    def __init__(self, aggregator: Aggregator, enabled: bool = True):
        self._aggregator = aggregator
        self._last: Dict[ParamKey, Any] = {}
        self.enabled = enabled
        self.updates_checked = 0

    def observe(self, key: ParamKey, value: Any) -> None:
        """Record a shipped value; raise if it regresses the order."""
        if not self.enabled:
            return
        self.updates_checked += 1
        prev = self._last.get(key, _ABSENT)
        if prev is not _ABSENT:
            progressed = self._aggregator.is_progress(prev, value)
            unchanged = not progressed and not \
                self._aggregator.is_progress(value, prev) and prev == value
            if not progressed and not unchanged:
                raise MonotonicityViolation(
                    f"parameter {key!r} moved from {prev!r} to {value!r}, "
                    f"which does not advance the aggregator's partial order")
        self._last[key] = value


class _Absent:
    __slots__ = ()

    def __repr__(self) -> str:
        return "<absent>"


_ABSENT = _Absent()
