"""Continuous queries under general graph updates (paper Section 6's
"lightweight transaction controller ... to support not only queries but
also updates").

The paper defines incremental evaluation over update batches
``ΔG = (ΔG⁺, ΔG⁻)`` — insertions *and* deletions.  This module is the
mutation path for partitioned graphs, built around the first-class
:class:`~repro.graph.delta.GraphDelta` value:

* :func:`apply_delta` applies a normalized batch to a fragmentation in
  place — fragments, border sets, outer-copy refcounts and the ``G_P``
  holder index all maintained, mirror nodes retired when their last
  local edge is deleted — and returns per-fragment
  :class:`~repro.graph.delta.FragmentDelta` records (which double as the
  process backend's shippable replay units);
* :class:`ContinuousQuerySession` holds a standing query and keeps its
  answer correct under *any* batch: a delta every touched fragment's
  program declares :meth:`~repro.core.pie.PIEProgram.maintainable` is
  folded into live state — monotone batches through ``on_graph_update``
  with the message fixpoint resuming from the converged state (the
  fast path), and non-monotone batches (deletions, weight increases)
  through the **bounded affected-region path**: the program identifies
  the vertices whose converged value hung off a mutated edge, the
  session closes that region across fragments, resets only those
  vertices to neutral, re-seeds from the surviving boundary and
  re-converges — cost ``O(|AFF|)``, not ``O(|G|)``.  Batches no program
  hook can absorb (e.g. programs without ``on_graph_update``)
  transparently fall back to re-running the query from reset state on
  the same (already mutated) fragmentation, inside the same session.
  This is the paper's "incremental when possible, recompute when not"
  contract, in the spirit of Berkholz, Keppeler & Schweikardt's dynamic
  query answering under updates.

Programs that cannot tolerate a recompute opt out with
``recompute_fallback = False`` and receive a typed
:class:`NonMonotoneUpdateError` instead.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, Optional, Set, Tuple, Union

from repro.core.engine import GrapeEngine
from repro.core.monotonic import MonotonicityChecker
from repro.core.pie import ParamKey, ParamUpdates, PIEProgram
from repro.graph.delta import FragmentDelta, GraphDelta, NormalizedDelta
from repro.graph.graph import Graph, Node
from repro.partition.base import Fragmentation
from repro.runtime.executors import read_report
from repro.runtime.message import stable_hash
from repro.runtime.metrics import CostModel, ParamSizeCache

__all__ = ["ContinuousQuerySession", "NonMonotoneUpdateError",
           "apply_delta", "apply_insertions"]

EdgeInsertion = Tuple[Node, Node, float]

_DEFAULT_COST = CostModel()
_MISSING = object()


class NonMonotoneUpdateError(ValueError):
    """A non-maintainable update hit a program that opted out of the
    recompute fallback (``recompute_fallback = False``)."""


# ---------------------------------------------------------------------------
# Applying deltas to a fragmentation
# ---------------------------------------------------------------------------
def apply_delta(fragmentation: Fragmentation,
                delta: Union[GraphDelta, NormalizedDelta],
                *, wal=None) -> Dict[int, FragmentDelta]:
    """Apply an update batch to an edge-cut fragmentation in place.

    The batch is normalized against the base graph first (dedup,
    no-op elimination, classification), so **an empty or duplicate-only
    batch is a true no-op**: no fragment graph is touched, no CSR epoch
    moves and the fragmentation's cache token stays put.

    For every surviving change the base graph and the owning fragments
    are mutated together:

    * insertions land at the owner of ``u`` (plus the symmetric
      orientation at ``v``'s owner for undirected graphs); new nodes are
      placed by stable hash; mirror copies join ``F_i.O`` / ``F_j.I``
      and the ``G_P`` holder index exactly as at partition time;
    * weight changes rewrite the stored weight wherever the edge lives;
    * deletions remove the stored orientation(s); a mirror copy whose
      last local edge disappears is retired — dropped from the local
      graph, its ``F_i.O`` entry and its ``G_P`` holders — and an owned
      node that no longer has any cross edge leaves ``F_j.I``.

    Returns ``{fid: FragmentDelta}`` for the touched fragments; the same
    records are stamped into the fragmentation's delta log
    (:meth:`~repro.partition.base.Fragmentation.record_delta`) so pooled
    process workers can replay them instead of receiving full fragment
    re-ships.

    ``wal`` is the durability hook: a callable invoked as
    ``wal(normalized, version)`` after the batch was applied and
    sequenced, where ``version`` is the fragmentation version the batch
    produced — exactly what
    :meth:`~repro.store.catalog.GraphStore.append_delta` expects, so a
    store-backed owner logs every applied batch with the same sequence
    number the worker-replay chain uses.  No-op batches never reach the
    hook.
    """
    graph = fragmentation.graph
    norm = delta.normalize(graph) if isinstance(delta, GraphDelta) else delta
    if not norm:
        return {}
    gp = fragmentation.gp
    m = fragmentation.num_fragments
    touched: Dict[int, FragmentDelta] = {}
    mutated_graphs: Set[int] = set()

    def fd(fid: int) -> FragmentDelta:
        return touched.setdefault(fid, FragmentDelta(fid=fid))

    def ensure_node(x: Node) -> int:
        if x in gp:
            return gp.owner(x)
        # stable_hash keeps new-node placement reproducible across runs
        # (builtin hash of strings varies with PYTHONHASHSEED).
        fid = stable_hash(x) % m
        graph.add_node(x)
        frag = fragmentation[fid]
        frag.graph.add_node(x)
        frag.owned.add(x)
        gp._owner[x] = fid
        gp._holders[x] = frozenset((fid,))
        delta_f = fd(fid)
        delta_f.new_nodes.append((x, None))
        delta_f.owned_added.append(x)
        mutated_graphs.add(fid)
        return fid

    def add_holder(x: Node, fid: int) -> None:
        gp._holders[x] = gp.holders(x) | {fid}

    def store_insert(u: Node, v: Node, w: float) -> None:
        """Store edge ``(u, v)`` at ``u``'s owner (local orientation)."""
        fu, fv = gp.owner(u), gp.owner(v)
        frag = fragmentation[fu]
        delta_f = fd(fu)
        if not frag.graph.has_node(v):
            delta_f.new_nodes.append((v, graph.node_label(v)))
        frag.graph.add_node(v, graph.node_label(v))
        frag.graph.add_edge(u, v, weight=w)
        mutated_graphs.add(fu)
        add_holder(v, fu)
        add_holder(u, fu)
        if fu != fv:
            if v not in frag.outer:
                frag.outer.add(v)
                delta_f.outer_added.append(v)
            owner_frag = fragmentation[fv]
            if v not in owner_frag.inner:
                owner_frag.inner.add(v)
                fd(fv).inner_added.append(v)
        delta_f.insertions.append((u, v, w))

    def reweight(u: Node, v: Node, old: float, new: float) -> None:
        fu, fv = gp.owner(u), gp.owner(v)
        frag = fragmentation[fu]
        frag.graph.set_edge_weight(u, v, new)
        fd(fu).weight_changes.append((u, v, old, new))
        mutated_graphs.add(fu)
        if not graph.directed:
            if fu != fv:
                # the symmetric orientation is stored at v's owner
                fragmentation[fv].graph.set_edge_weight(v, u, new)
                mutated_graphs.add(fv)
            # Both orientations are recorded even when fu == fv (the
            # local undirected set_edge_weight already covered both):
            # programs folding a decrease must also try the v -> u
            # relaxation, exactly as store_insert records insertions.
            fd(fv).weight_changes.append((v, u, old, new))

    def maybe_retire(fid: int, x: Node) -> None:
        """Drop the mirror copy of ``x`` at ``fid`` if it lost its last
        local edge (outer-copy refcount reaching zero)."""
        frag = fragmentation[fid]
        if x in frag.owned or not frag.graph.has_node(x):
            return
        if frag.graph.degree(x):
            return
        frag.graph.remove_node(x)
        mutated_graphs.add(fid)
        delta_f = fd(fid)
        delta_f.retired_nodes.append(x)
        if x in frag.outer:
            frag.outer.remove(x)
            delta_f.outer_removed.append(x)
        gp._holders[x] = gp.holders(x) - {fid}

    def delete_orientation(u: Node, v: Node) -> None:
        """Remove stored orientation ``(u, v)`` from ``u``'s owner."""
        fu = gp.owner(u)
        frag = fragmentation[fu]
        if frag.graph.has_edge(u, v):
            # The old weight rides along so programs can test whether a
            # converged value hung off the vanished edge (bounded
            # non-monotone maintenance).
            w_old = frag.graph.edge_weight(u, v)
            frag.graph.remove_edge(u, v)
            mutated_graphs.add(fu)
            fd(fu).deletions.append((u, v, w_old))
        maybe_retire(fu, v)

    def fix_inner(x: Node) -> None:
        """An owned node with no remaining copy elsewhere leaves
        ``F_j.I`` (no cross edge can reach it any more)."""
        fx = gp.owner(x)
        frag = fragmentation[fx]
        if x in frag.inner and len(gp.holders(x)) == 1:
            frag.inner.remove(x)
            fd(fx).inner_removed.append(x)

    # Application order (mirrored verbatim by FragmentDelta.replay):
    # insertions, then reweights, then deletions — so a mirror that both
    # loses and gains edges in one batch is retired only if it truly
    # ends the batch isolated.
    for (u, v), w in norm.insertions.items():
        ensure_node(u)
        ensure_node(v)
        graph.add_edge(u, v, weight=w)
        store_insert(u, v, w)
        if not graph.directed:
            store_insert(v, u, w)

    for (u, v), (old, new) in {**norm.decreases, **norm.increases}.items():
        graph.set_edge_weight(u, v, new)
        reweight(u, v, old, new)

    for (u, v) in norm.deletions:
        graph.remove_edge(u, v)
        delete_orientation(u, v)
        if not graph.directed:
            delete_orientation(v, u)
        fix_inner(u)
        fix_inner(v)

    # Published shared-memory segments absorb the batch before the
    # invalidation pass: weight-only fragment deltas are patched into
    # the mapped arrays in place, and the patched fragments keep their
    # (shared) snapshots — only a structural change drops them.
    patched: Dict[int, Any] = {}
    if touched:
        from repro.runtime import shm
        patched = shm.notify_delta(fragmentation.cache_token[0],
                                   fragmentation.version + 1, touched)
    for fid in mutated_graphs:
        snap = patched.get(fid)
        if snap is not None:
            fragmentation[fid].keep_patched_csr(snap)
        else:
            fragmentation[fid].invalidate_csr()
    if touched:
        # Stamp sequence numbers and invalidate worker-side fragment
        # caches (process backend): the next lease replays these deltas,
        # or re-ships in full if the log no longer covers the gap.
        fragmentation.record_delta(touched)
        if wal is not None:
            wal(norm, fragmentation.version)
    return touched


def apply_insertions(fragmentation: Fragmentation,
                     edges: Iterable[EdgeInsertion],
                     ) -> Dict[int, FragmentDelta]:
    """Apply a batch of edge insertions (thin :func:`apply_delta` sugar).

    Kept as the established name for the insert-only path; re-inserting
    an existing edge with a lower weight is a maintainable decrease, with
    a higher weight a non-monotone increase (handled by the session's
    fallback, no longer an error).
    """
    return apply_delta(fragmentation, GraphDelta.from_insertions(edges))


def _coerce_touched(touched: Dict[int, Any]) -> Dict[int, FragmentDelta]:
    """Accept legacy ``{fid: [(u, v, w), ...]}`` insertion maps."""
    coerced: Dict[int, FragmentDelta] = {}
    for fid, delta in touched.items():
        if isinstance(delta, FragmentDelta):
            coerced[fid] = delta
        else:
            coerced[fid] = FragmentDelta(fid=fid, insertions=list(delta))
    return coerced


# ---------------------------------------------------------------------------
# Standing queries
# ---------------------------------------------------------------------------
class ContinuousQuerySession:
    """A standing query whose answer is maintained under any update.

    Pass either ``graph`` (the session partitions it itself) or a prebuilt
    ``fragmentation`` — the latter lets an owner such as
    :class:`~repro.service.GrapeService` share one fragmentation between
    many sessions and one-shot queries, applying each update batch to
    the shared fragmentation once and fanning the per-fragment deltas
    out to every session via :meth:`apply_update`.

    **Maintenance dispatch.**  For a batch whose every per-fragment
    delta the program declares
    :meth:`~repro.core.pie.PIEProgram.maintainable`, the program folds
    the delta into its live state (``on_graph_update``) and the message
    fixpoint resumes from the converged state — today's monotone fast
    path, now a *special case*.  Any other batch triggers the recompute
    fallback: the query re-runs from reset state on the mutated
    fragmentation through the engine (honoring its execution backend —
    under the process backend the re-run ships compact per-fragment
    deltas to the pooled workers, not whole fragments), and the session
    re-baselines its coordinator tables from the fresh result.  The
    session's :attr:`metrics` accumulate either way, with
    ``incremental_maintained`` / ``fallback_reruns`` recording the
    split.

    The *initial* evaluation honors the engine's execution backend (the
    run's states are pulled back from the backend afterwards); the
    incremental maintenance rounds themselves always execute
    coordinator-side — the point of IncEval under updates is that the
    affected area is small, so shipping it to a worker pool would cost
    more than computing it.
    """

    def __init__(self, engine: GrapeEngine, program: PIEProgram, query: Any,
                 graph: Optional[Graph] = None, *,
                 fragmentation: Optional[Fragmentation] = None):
        if not hasattr(program, "on_graph_update") \
                and not program.recompute_fallback:
            raise TypeError(
                f"{type(program).__name__} neither implements "
                "on_graph_update nor allows the recompute fallback; no "
                "update could ever be applied to this standing query")
        if (graph is None) == (fragmentation is None):
            raise ValueError("pass exactly one of graph or fragmentation")
        self.engine = engine
        self.program = program
        self.query = query
        self.fragmentation = (fragmentation if fragmentation is not None
                              else engine.make_fragmentation(graph))
        result = engine.run(program, query,
                            fragmentation=self.fragmentation)
        self.states = result.states
        self.answer = result.answer
        self.metrics = result.metrics
        # Entry sizes recur across maintenance rounds; memoize for the
        # session's lifetime.
        self._sizer = ParamSizeCache()
        self._reported: Dict[int, ParamUpdates] = {}
        self._table: Dict[ParamKey, Any] = {}
        # Set when an opt-out program rejected a non-maintainable batch
        # *after* the fragmentation was mutated: the converged state no
        # longer matches the graph, and folding later (even monotone)
        # batches into it would be silently wrong.
        self._stale = False
        self._rebaseline()

    def _rebaseline(self) -> None:
        """Rebuild the coordinator tables from the converged states."""
        program, query = self.program, self.query
        self._reported.clear()
        self._table.clear()
        for frag in self.fragmentation:
            params = program.read_update_params(query, frag,
                                                self.states[frag.fid])
            self._reported[frag.fid] = params
            for key, value in params.items():
                if key in self._table:
                    self._table[key] = program.aggregator.combine(
                        self._table[key], value)
                else:
                    self._table[key] = value

    # ------------------------------------------------------------------
    def update(self, delta: GraphDelta) -> Any:
        """Apply an update batch and refresh the answer.

        Returns the updated answer; ``self.metrics`` accumulates the
        maintenance cost (supersteps, bytes) on top of the initial run.

        With a shared (owner-managed) fragmentation, the owner applies
        the batch itself via :func:`apply_delta` and calls
        :meth:`apply_update` on each session instead, so fragments are
        mutated exactly once.
        """
        touched = apply_delta(self.fragmentation, delta)
        return self.apply_update(touched)

    def insert_edges(self, edges: Iterable[EdgeInsertion]) -> Any:
        """Apply an insertion batch (:meth:`update` sugar)."""
        return self.update(GraphDelta.from_insertions(edges))

    def delete_edges(self, pairs: Iterable[Tuple[Node, Node]]) -> Any:
        """Apply a deletion batch (:meth:`update` sugar)."""
        return self.update(GraphDelta.from_deletions(pairs))

    def set_weights(self, triples: Iterable[EdgeInsertion]) -> Any:
        """Apply a reweight batch (:meth:`update` sugar)."""
        return self.update(GraphDelta.from_weight_changes(triples))

    def apply_update(self, touched: Dict[int, Any]) -> Any:
        """Refresh the standing answer after fragments were updated.

        ``touched`` maps fragment id to its
        :class:`~repro.graph.delta.FragmentDelta` (the return value of
        :func:`apply_delta`; legacy insertion lists are accepted).  The
        batch is folded incrementally when every touched fragment's
        delta is maintainable by the program, and answered by the
        recompute fallback otherwise.
        """
        if not touched:
            return self.answer
        if self._stale:
            raise NonMonotoneUpdateError(
                f"standing {type(self.program).__name__} answer is stale:"
                " a previous non-maintainable batch was rejected "
                "(recompute_fallback=False) after the fragmentation had "
                "already been mutated, so this session can never be "
                "refreshed again — cancel it")
        touched = _coerce_touched(touched)
        self.metrics.deltas_applied += 1
        program = self.program
        if all(program.maintainable(d) for d in touched.values()):
            self.metrics.incremental_maintained += 1
            if any(program.invalidates(d) for d in touched.values()):
                return self._maintain_bounded(touched)
            return self._maintain(touched)
        if not program.recompute_fallback:
            self._stale = True
            raise NonMonotoneUpdateError(
                f"update batch is not incrementally maintainable by "
                f"{type(program).__name__} (deletions or weight "
                f"increases), and the program opted out of the "
                f"recompute fallback (recompute_fallback=False)")
        self.metrics.fallback_reruns += 1
        return self._recompute()

    # ------------------------------------------------------------------
    def _maintain(self, touched: Dict[int, FragmentDelta]) -> Any:
        """The monotone fast path: fold deltas into live state and
        resume the message fixpoint from the current converged state."""
        program, query = self.program, self.query
        checker = MonotonicityChecker(program.aggregator,
                                      enabled=self.engine.check_monotonic)

        start = time.perf_counter()
        for fid, delta in touched.items():
            program.on_graph_update(query, self.fragmentation[fid],
                                    self.states[fid], delta)
        local_s = time.perf_counter() - start

        frags = self.fragmentation.fragments
        # Full-diff collect: the batch may have promoted nodes into
        # border sets of fragments that received no edges, which the
        # programs' own dirty tracking cannot see.
        up_bytes, up_msgs, dirty = self.engine._collect_reports(
            program, query, frags, self.states, self._reported,
            self._table, checker, first_round=False, sizer=self._sizer,
            force_full=True)
        messages = self.engine._compose_messages(
            program, self.fragmentation, self._reported, dirty,
            self._table)
        self.metrics.record_superstep([local_s], up_bytes, up_msgs,
                                      self.engine.cost_model
                                      or _DEFAULT_COST)
        self._resume_fixpoint(messages, checker)
        self.answer = program.assemble(query, self.fragmentation,
                                       self.states)
        return self.answer

    def _resume_fixpoint(self, messages, checker) -> None:
        """Run the maintenance message loop to a fixpoint (shared by the
        monotone fast path and the bounded non-monotone path — after a
        region reset every further change is a plain aggregator
        improvement, so the same loop drains both)."""
        program, query = self.program, self.query
        frags = self.fragmentation.fragments
        rounds = 0
        while messages:
            rounds += 1
            if rounds > self.engine.max_supersteps:
                raise RuntimeError("maintenance did not reach a fixpoint")
            down_bytes = sum(self._sizer.updates_bytes(msg)
                             for msg in messages.values())
            times = []
            for fid, msg in messages.items():
                t0 = time.perf_counter()
                program.inceval(query, frags[fid], self.states[fid], msg)
                times.append(time.perf_counter() - t0)
            up_bytes, up_msgs, dirty = self.engine._collect_reports(
                program, query, frags, self.states, self._reported,
                self._table, checker, first_round=False,
                sizer=self._sizer)
            messages = self.engine._compose_messages(
                program, self.fragmentation, self._reported, dirty,
                self._table)
            self.metrics.record_superstep(
                times, down_bytes + up_bytes, len(messages) + up_msgs,
                self.engine.cost_model or _DEFAULT_COST)

    def _maintain_bounded(self, touched: Dict[int, FragmentDelta]) -> Any:
        """Bounded non-monotone maintenance: reset *only* the affected
        region, re-seed from its surviving boundary, re-converge.

        The paper's IncEval contract is that maintenance costs
        ``O(|AFF|)``, not ``O(|G|)`` — also for deletions and weight
        increases (Ramalingam & Reps; Berkholz et al.'s answering under
        updates).  The steps:

        1. every mutated fragment names its *direct hits*: vertices
           whose converged value was supported by a deleted or raised
           edge (``program.affected_seeds``);
        2. the region is closed in two levels.  Condemnation is
           *fragment-local* by default: each fragment grows the region
           along its own still-standing support chains
           (``program.expand_affected``) over values that are only
           local relaxation candidates — with owner-routed aggregation
           a mirror copy keeps whatever its fragment derived locally,
           which may be far above the aggregated winner, so a broken
           local chain usually invalidates nothing but a losing
           candidate.  A locally-condemned vertex is *promoted* to
           global condemnation — reset at every holder — only when the
           condemning fragment's last reported claim for it equals the
           aggregated table value, i.e. the fragment may have supplied
           the globally winning value and the winner itself hangs off
           the broken support.  Cross-fragment influence flows solely
           through those reported border claims, so the promotion test
           traces exactly the true support chains; ties over-promote
           conservatively and the re-convergence self-heals;
        3. each fragment resets its affected vertices to neutral,
           re-seeds them from *unaffected* in-neighbors on the mutated
           graph, folds the batch's monotone part, and re-converges
           locally (``program.apply_nonmonotone``);
        4. the coordinator tables are re-baselined *for the touched
           keys only*: each fragment hands over its dirty values
           (``read_changed_params``) plus a probe of the vertices the
           batch could have touched — affected, retired, or moved
           between border sets (``report_entries``) — and only those
           keys are re-aggregated.  This doubles as the **retraction
           protocol**: a probed vertex whose value went back to neutral
           is missing from the probe read, so the stale entry it
           shipped earlier is dropped from the table (peers are charged
           a tombstone entry for it).  The cost is ``O(|AFF| +
           |batch|)``, not ``O(border)``; programs without the
           ``report_entries`` hook fall back to a full-report diff;
        5. the standard monotone message loop resumes — every change
           after the reset is a plain aggregator improvement.
        """
        program, query = self.program, self.query
        frags = self.fragmentation.fragments
        checker = MonotonicityChecker(program.aggregator,
                                      enabled=self.engine.check_monotonic)
        start = time.perf_counter()

        # Param names for the promotion probe of step 2 (the key layout
        # is ``(node, name)`` and programs declare a fixed handful of
        # names, so this is a tiny set — probing reported claims by
        # constructed key costs O(|grown|), not an O(border) index
        # build per batch).
        param_names = {key[1] for key in self._table}

        # Seeds: per-fragment direct hits, or — when the program offers
        # the driver-side batch hook — direct hits filtered with a view
        # of *all* fragments (maintenance runs on the driver, so a
        # program whose invalidation test is inherently global, like
        # CC's does-this-deletion-split check, may answer it exactly
        # instead of condemning on local evidence).
        work: Dict[int, Set[Node]] = {f.fid: set() for f in frags}
        seeds_global = getattr(program, "affected_seeds_global", None)
        if seeds_global is not None:
            for fid, found in seeds_global(query, frags, self.states,
                                           touched).items():
                work[fid] |= found
        else:
            for fid, delta in touched.items():
                work[fid] |= program.affected_seeds(query, frags[fid],
                                                    self.states[fid], delta)

        local_aff: Dict[int, Set[Node]] = {f.fid: set() for f in frags}
        promoted: Set[Node] = set()
        while any(work.values()):
            round_promotions: Set[Node] = set()
            for frag in frags:
                known = local_aff[frag.fid]
                fresh = work[frag.fid] - known
                work[frag.fid] = set()
                if not fresh:
                    continue
                grown = program.expand_affected(query, frag,
                                                self.states[frag.fid],
                                                fresh)
                grown -= known
                known |= grown
                reported = self._reported.get(frag.fid)
                if not reported:
                    continue
                for node in grown:
                    if node in promoted or node in round_promotions:
                        continue
                    for name in param_names:
                        key = (node, name)
                        value = reported.get(key, _MISSING)
                        if value is not _MISSING and \
                                self._table.get(key, _MISSING) == value:
                            round_promotions.add(node)
                            break
            promoted |= round_promotions
            for frag in frags:
                work[frag.fid] |= round_promotions - local_aff[frag.fid]

        global_aff: Set[Node] = set()
        for aff in local_aff.values():
            global_aff |= aff
        self.metrics.partial_resets += 1
        self.metrics.affected_vertices += len(global_aff)

        for frag in frags:
            aff = local_aff[frag.fid]
            delta = touched.get(frag.fid)
            if aff or delta is not None:
                program.apply_nonmonotone(query, frag,
                                          self.states[frag.fid], delta,
                                          aff)
        local_s = time.perf_counter() - start

        if hasattr(program, "report_entries"):
            up_bytes, up_msgs, dirty = self._rebaseline_region(
                touched, local_aff, global_aff, param_names)
        else:
            up_bytes, up_msgs, dirty = self._rebaseline_bounded_full(
                global_aff)
        messages = self.engine._compose_messages(
            program, self.fragmentation, self._reported, dirty,
            self._table)
        self.metrics.record_superstep([local_s], up_bytes, up_msgs,
                                      self.engine.cost_model
                                      or _DEFAULT_COST)
        self._resume_fixpoint(messages, checker)
        self.answer = program.assemble(query, self.fragmentation,
                                       self.states)
        return self.answer

    def _rebaseline_region(self, touched: Dict[int, FragmentDelta],
                           local_aff: Dict[int, Set[Node]],
                           global_aff: Set[Node],
                           param_names: Set[Any]) -> Tuple[int, int, Set]:
        """Step 4 of :meth:`_maintain_bounded`, incremental flavor.

        Only keys the batch could have touched are re-read and
        re-aggregated: each fragment's own dirty values (tracked by the
        program through ``apply_nonmonotone``) plus a probe of the
        vertices with structural exposure — reset, retired, moved
        between border sets, or endpoints of mutated edges.  A probed
        vertex whose entry is missing from the probe read retracts
        (tombstone); everything else in the coordinator tables is
        untouched.  Returns ``(bytes, messages, dirty keys)`` for the
        resumed fixpoint.
        """
        program, query = self.program, self.query
        frags = self.fragmentation.fragments
        table = self._table
        combine = program.aggregator.combine
        up_bytes = 0
        up_msgs = 0
        recompute: Set = set()
        for frag in frags:
            fid = frag.fid
            state = self.states[fid]
            prev = self._reported.setdefault(fid, {})
            fresh = program.read_changed_params(query, frag, state)
            fresh = dict(fresh) if fresh else {}
            probe = set(local_aff[fid])
            delta = touched.get(fid)
            if delta is not None:
                probe.update(delta.retired_nodes)
                probe.update(delta.inner_added)
                probe.update(delta.inner_removed)
                probe.update(delta.outer_added)
                probe.update(delta.outer_removed)
                for v, _label in delta.new_nodes:
                    probe.add(v)
                for u, v, _w in delta.insertions:
                    probe.add(u)
                    probe.add(v)
                for u, v, _w in delta.deletions:
                    probe.add(u)
                    probe.add(v)
            if probe:
                fresh.update(program.report_entries(query, frag, state,
                                                    probe))
            diff = {}
            for key, value in fresh.items():
                if prev.get(key, _MISSING) != value:
                    diff[key] = value
                    prev[key] = value
                    recompute.add(key)
            # Retractions ship as key-only tombstones.
            gone = {}
            for node in probe:
                for name in param_names:
                    key = (node, name)
                    if key in prev and key not in fresh:
                        gone[key] = None
                        del prev[key]
                        recompute.add(key)
            if diff or gone:
                up_msgs += 1
                up_bytes += self._sizer.updates_bytes(diff)
                if gone:
                    up_bytes += self._sizer.updates_bytes(gone)

        # Dirty keys: aggregated values that moved, plus every key of an
        # affected vertex — a reset owner must be re-offered surviving
        # peer values even when the aggregate itself did not change.
        reported = self._reported
        dirty: Set = set()
        for key in recompute:
            best = _MISSING
            for frag in frags:
                value = reported[frag.fid].get(key, _MISSING)
                if value is not _MISSING:
                    best = value if best is _MISSING \
                        else combine(best, value)
            if best is _MISSING:
                table.pop(key, None)
            elif table.get(key, _MISSING) != best:
                table[key] = best
                dirty.add(key)
        for node in global_aff:
            for name in param_names:
                key = (node, name)
                if key in table:
                    dirty.add(key)
        return up_bytes, up_msgs, dirty

    def _rebaseline_bounded_full(self,
                                 global_aff: Set[Node]) -> Tuple[int, int,
                                                                 Set]:
        """Step 4 of :meth:`_maintain_bounded`, full-report fallback for
        programs without the ``report_entries`` probe hook: re-read every
        fragment's complete parameter dict, diff against the previous
        baseline (absences become tombstones) and rebuild the aggregated
        table — correct for any program, at ``O(border)`` cost."""
        program, query = self.program, self.query
        frags = self.fragmentation.fragments
        old_reported, old_table = self._reported, self._table
        self._reported = {}
        self._table = {}
        up_bytes = 0
        up_msgs = 0
        for frag in frags:
            _kind, params = read_report(program, query, frag,
                                        self.states[frag.fid], True)
            self._reported[frag.fid] = params
            prev = old_reported.get(frag.fid, {})
            diff = {k: v for k, v in params.items()
                    if prev.get(k, _MISSING) != v}
            # Retractions ship as key-only tombstones.
            gone = {k: None for k in prev if k not in params}
            if diff or gone:
                up_msgs += 1
                up_bytes += self._sizer.updates_bytes(diff)
                if gone:
                    up_bytes += self._sizer.updates_bytes(gone)
            for key, value in params.items():
                if key in self._table:
                    self._table[key] = program.aggregator.combine(
                        self._table[key], value)
                else:
                    self._table[key] = value
        dirty = {k for k, v in self._table.items()
                 if old_table.get(k, _MISSING) != v}
        dirty |= {k for k in self._table if k[0] in global_aff}
        return up_bytes, up_msgs, dirty

    def _recompute(self) -> Any:
        """The non-monotone fallback: re-run the query from reset state
        on the mutated fragmentation, inside this session.

        Deletions and weight increases can invalidate converged values
        *anywhere* downstream, and inflationary aggregators (min) cannot
        raise a value once learned — so every fragment's state is reset
        and the full PEval/IncEval fixpoint re-runs.  What is preserved
        is everything else the session owns: the fragmentation (no
        re-partition), the engine's warm backend (process workers keep
        their cached fragments, brought current by delta replay rather
        than full re-ships) and the cumulative metrics.
        """
        result = self.engine.run(self.program, self.query,
                                 fragmentation=self.fragmentation)
        self.states = result.states
        self.answer = result.answer
        # Fold the re-run's cost into the session's cumulative metrics
        # in place (WatchHandle holds a reference to the object).
        self.metrics.absorb(result.metrics)
        self._rebaseline()
        return self.answer
