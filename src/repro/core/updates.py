"""Continuous queries under graph updates (paper Section 6's "lightweight
transaction controller ... to support not only queries but also updates").

GRAPE's incremental machinery is exactly what answer maintenance needs: a
batch of edge insertions is a set of local changes, IncEval propagates
their effects through the affected area, and the usual fixpoint restores
a correct answer — without recomputing from scratch.

:class:`ContinuousQuerySession` holds a standing query against a
partitioned graph.  :meth:`insert_edges` applies an insertion batch to
the fragments (maintaining border sets and ``G_P``), lets the PIE program
fold the new edges into its per-fragment state through the
:meth:`~repro.core.pie.PIEProgram.on_graph_update` hook, and resumes the
message fixpoint from the current state.

Supported for monotonic, insertion-friendly query classes: SSSP (new
edges only shorten paths) and CC (new edges only merge components).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.engine import GrapeEngine
from repro.core.monotonic import MonotonicityChecker
from repro.core.pie import ParamKey, ParamUpdates, PIEProgram
from repro.graph.graph import Graph, Node
from repro.partition.base import Fragmentation
from repro.runtime.message import stable_hash
from repro.runtime.metrics import CostModel, ParamSizeCache, RunMetrics

__all__ = ["ContinuousQuerySession", "apply_insertions", "monotone_insert"]

EdgeInsertion = Tuple[Node, Node, float]

_DEFAULT_COST = CostModel()


def monotone_insert(graph: Graph, u: Node, v: Node, w: float) -> bool:
    """Apply one insertion to a bare graph under the monotonicity rule.

    Only monotone updates are maintainable: a weight decrease is an
    insertion-like improvement; an increase would require non-monotonic
    re-evaluation, so it is rejected.  Returns ``False`` for an
    exact-duplicate no-op, ``True`` when the graph changed.
    """
    if graph.has_edge(u, v):
        current = graph.edge_weight(u, v)
        if w > current:
            raise ValueError(
                f"edge ({u!r}, {v!r}) exists with weight {current}; "
                "weight increases are not insertion-maintainable")
        if w == current:
            return False
    graph.add_edge(u, v, weight=w)
    return True


def apply_insertions(fragmentation: Fragmentation,
                     edges: Iterable[EdgeInsertion],
                     ) -> Dict[int, List[EdgeInsertion]]:
    """Apply edge insertions to a fragmentation in place.

    Each edge ``(u, v, w)`` is stored at the owner of ``u`` (matching the
    edge-cut construction); a copy of ``v`` joins that fragment's outer
    set when owned elsewhere, and border sets plus the ``G_P`` holder
    index are maintained.  New nodes are assigned to a fragment by hash.

    Returns the per-fragment lists of inserted edges (for the program's
    update hook).  Undirected graphs get the symmetric orientation stored
    at ``v``'s owner as well.
    """
    graph = fragmentation.graph
    gp = fragmentation.gp
    m = fragmentation.num_fragments
    touched: Dict[int, List[EdgeInsertion]] = {}
    mutated = False

    def ensure_node(x: Node) -> int:
        nonlocal mutated
        if x in gp:
            return gp.owner(x)
        mutated = True
        # stable_hash keeps new-node placement reproducible across runs
        # (builtin hash of strings varies with PYTHONHASHSEED).
        fid = stable_hash(x) % m
        graph.add_node(x)
        frag = fragmentation[fid]
        frag.graph.add_node(x)
        frag.invalidate_csr()
        frag.owned.add(x)
        gp._owner[x] = fid
        gp._holders[x] = frozenset((fid,))
        return fid

    def add_holder(x: Node, fid: int) -> None:
        gp._holders[x] = gp.holders(x) | {fid}

    def store(u: Node, v: Node, w: float) -> None:
        fu, fv = gp.owner(u), gp.owner(v)
        frag = fragmentation[fu]
        frag.graph.add_node(v, graph.node_label(v))
        frag.graph.add_edge(u, v, weight=w)
        frag.invalidate_csr()
        add_holder(v, fu)
        add_holder(u, fu)
        if fu != fv:
            frag.outer.add(v)
            fragmentation[fv].inner.add(v)
        touched.setdefault(fu, []).append((u, v, w))

    for u, v, w in edges:
        ensure_node(u)
        ensure_node(v)
        if not monotone_insert(graph, u, v, w):
            continue
        store(u, v, w)
        if not graph.directed:
            store(v, u, w)
    if mutated or touched:
        # Invalidate worker-side fragment caches (process backend): the
        # next lease re-ships the mutated fragments.
        fragmentation.bump_version()
    return touched


class ContinuousQuerySession:
    """A standing query whose answer is maintained under insertions.

    Pass either ``graph`` (the session partitions it itself) or a prebuilt
    ``fragmentation`` — the latter lets an owner such as
    :class:`~repro.service.GrapeService` share one fragmentation between
    many sessions and one-shot queries, applying each insertion batch to
    the shared fragmentation once and fanning the per-fragment deltas out
    to every session via :meth:`apply_update`.

    The *initial* evaluation honors the engine's execution backend (the
    run's states are pulled back from the backend afterwards); the
    maintenance rounds themselves always execute coordinator-side — the
    point of IncEval under updates is that the affected area is small,
    so shipping it to a worker pool would cost more than computing it.
    """

    def __init__(self, engine: GrapeEngine, program: PIEProgram, query: Any,
                 graph: Optional[Graph] = None, *,
                 fragmentation: Optional[Fragmentation] = None):
        if not hasattr(program, "on_graph_update"):
            raise TypeError(
                f"{type(program).__name__} does not implement "
                "on_graph_update; continuous queries need it")
        if (graph is None) == (fragmentation is None):
            raise ValueError("pass exactly one of graph or fragmentation")
        self.engine = engine
        self.program = program
        self.query = query
        self.fragmentation = (fragmentation if fragmentation is not None
                              else engine.make_fragmentation(graph))
        result = engine.run(program, query,
                            fragmentation=self.fragmentation)
        self.states = result.states
        self.answer = result.answer
        self.metrics = result.metrics
        # Entry sizes recur across maintenance rounds; memoize for the
        # session's lifetime.
        self._sizer = ParamSizeCache()
        # Baseline the coordinator tables from the converged state.
        self._reported: Dict[int, ParamUpdates] = {}
        self._table: Dict[ParamKey, Any] = {}
        for frag in self.fragmentation:
            params = program.read_update_params(query, frag,
                                                self.states[frag.fid])
            self._reported[frag.fid] = params
            for key, value in params.items():
                if key in self._table:
                    self._table[key] = program.aggregator.combine(
                        self._table[key], value)
                else:
                    self._table[key] = value

    # ------------------------------------------------------------------
    def insert_edges(self, edges: Iterable[EdgeInsertion]) -> Any:
        """Apply an insertion batch and refresh the answer incrementally.

        Returns the updated answer; ``self.metrics`` accumulates the
        maintenance cost (supersteps, bytes) on top of the initial run.

        With a shared (owner-managed) fragmentation, the owner applies the
        batch itself via :func:`apply_insertions` and calls
        :meth:`apply_update` on each session instead, so fragments are
        mutated exactly once.
        """
        touched = apply_insertions(self.fragmentation, edges)
        return self.apply_update(touched)

    def apply_update(self, touched: Dict[int, List[EdgeInsertion]]) -> Any:
        """Refresh the standing answer after fragments were updated.

        ``touched`` maps fragment id to the edges inserted there (the
        return value of :func:`apply_insertions`); the program folds them
        into its per-fragment state and the message fixpoint resumes from
        the current converged state.
        """
        program, query = self.program, self.query
        checker = MonotonicityChecker(program.aggregator,
                                      enabled=self.engine.check_monotonic)

        start = time.perf_counter()
        for fid, inserted in touched.items():
            program.on_graph_update(query, self.fragmentation[fid],
                                    self.states[fid], inserted)
        local_s = time.perf_counter() - start

        frags = self.fragmentation.fragments
        # Full-diff collect: the insertion batch may have promoted nodes
        # into border sets of fragments that received no edges, which the
        # programs' own dirty tracking cannot see.
        up_bytes, up_msgs, dirty = self.engine._collect_reports(
            program, query, frags, self.states, self._reported,
            self._table, checker, first_round=False, sizer=self._sizer,
            force_full=True)
        messages = self.engine._compose_messages(
            program, self.fragmentation, self._reported, dirty,
            self._table)
        self.metrics.record_superstep([local_s], up_bytes, up_msgs,
                                      self.engine.cost_model
                                      or _DEFAULT_COST)

        rounds = 0
        while messages:
            rounds += 1
            if rounds > self.engine.max_supersteps:
                raise RuntimeError("maintenance did not reach a fixpoint")
            down_bytes = sum(self._sizer.updates_bytes(msg)
                             for msg in messages.values())
            times = []
            for fid, msg in messages.items():
                t0 = time.perf_counter()
                program.inceval(query, frags[fid], self.states[fid], msg)
                times.append(time.perf_counter() - t0)
            up_bytes, up_msgs, dirty = self.engine._collect_reports(
                program, query, frags, self.states, self._reported,
                self._table, checker, first_round=False,
                sizer=self._sizer)
            messages = self.engine._compose_messages(
                program, self.fragmentation, self._reported, dirty,
                self._table)
            self.metrics.record_superstep(
                times, down_bytes + up_bytes, len(messages) + up_msgs,
                self.engine.cost_model or _DEFAULT_COST)

        self.answer = program.assemble(query, self.fragmentation,
                                       self.states)
        return self.answer
