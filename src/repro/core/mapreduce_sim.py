"""MapReduce-on-GRAPE compiler (Simulation Theorem 2(2), paper Section 4.2
and Appendix A).

A MapReduce job with ``R`` map-shuffle-reduce rounds runs on GRAPE in
``2R`` supersteps via the key-value message channel:

* round 1's map phase is ``PEval``;
* ``IncEval`` alternates — odd supersteps run the reducer over the shuffled
  key groups, even supersteps run the next round's mapper over the local
  reduce outputs (the coordinator's shuffle already placed each key group
  where the corresponding next-round mapper lives);
* ``Assemble`` takes the union of the final reduce outputs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, \
    Tuple

from repro.core.engine import GrapeEngine, GrapeResult
from repro.core.pie import ParamUpdates, PIEProgram
from repro.graph.graph import Graph
from repro.partition.base import Fragment, Fragmentation, \
    build_edge_cut_fragments
from repro.runtime.metrics import CostModel

__all__ = ["MapReduceJob", "MapReduceOnGrape", "run_mapreduce_on_grape"]

KV = Tuple[Hashable, Any]


class MapReduceJob(abc.ABC):
    """A user MapReduce job: ``map_fn``/``reduce_fn`` plus a round count."""

    #: number of map-shuffle-reduce rounds
    num_rounds: int = 1

    @abc.abstractmethod
    def map_fn(self, round_index: int, key: Hashable,
               value: Any) -> Iterable[KV]:
        """The mapper for ``round_index`` (1-based)."""

    @abc.abstractmethod
    def reduce_fn(self, round_index: int, key: Hashable,
                  values: List[Any]) -> Iterable[KV]:
        """The reducer for ``round_index`` (1-based)."""


@dataclass
class _MRState:
    """Worker-local state.

    Key-value pairs are tagged with their round — ``((round, key), value)``
    — so a reducer always knows which round's reduce function to apply, no
    matter how the shuffle interleaves worker activations.
    """

    round: int = 1
    pending_input: List[KV] = field(default_factory=list)
    delivered: Dict[Hashable, List[Any]] = field(default_factory=dict)
    out_kv: List[KV] = field(default_factory=list)
    wake: Dict[int, list] = field(default_factory=dict)
    final: List[KV] = field(default_factory=list)


class MapReduceOnGrape(PIEProgram):
    """The compiled PIE program wrapping a :class:`MapReduceJob`.

    Query: ``(job, input_slices)`` — one list of ``(key, value)`` records
    per worker, mirroring the job's input distribution over mappers.
    """

    name = "MapReduce-on-GRAPE"

    def init_state(self, query, fragment: Fragment) -> _MRState:
        _job, slices = query
        state = _MRState()
        state.pending_input = list(slices[fragment.fid])
        return state

    def peval(self, query, fragment: Fragment, state: _MRState) -> None:
        job, _slices = query
        self._run_map(job, state)

    def inceval(self, query, fragment: Fragment, state: _MRState,
                message: ParamUpdates) -> None:
        job, _slices = query
        groups, state.delivered = state.delivered, {}
        if groups:
            # Reduce each delivered group with the round recorded in its
            # tag (robust to interleaved worker activations).
            by_round: Dict[int, Dict[Hashable, List[Any]]] = {}
            for (round_index, key), values in groups.items():
                by_round.setdefault(round_index, {})[key] = values
            for round_index in sorted(by_round):
                outputs: List[KV] = []
                round_groups = by_round[round_index]
                for key in sorted(round_groups, key=repr):
                    outputs.extend(job.reduce_fn(round_index, key,
                                                 round_groups[key]))
                if round_index < job.num_rounds:
                    state.round = round_index + 1
                    state.pending_input.extend(outputs)
                    if outputs:
                        # Wake ourselves to run the next round's mapper.
                        state.wake = {fragment.fid: ["map-wake"]}
                else:
                    state.final.extend(outputs)
        elif state.pending_input:
            self._run_map(job, state)

    def _run_map(self, job: MapReduceJob, state: _MRState) -> None:
        emitted: List[KV] = []
        for key, value in state.pending_input:
            emitted.extend(job.map_fn(state.round, key, value))
        state.pending_input = []
        state.out_kv = [((state.round, key), value)
                        for key, value in emitted]

    # -- message plumbing ------------------------------------------------
    def drain_messages(self, query, fragment: Fragment,
                       state: _MRState) -> Tuple[Dict[int, list], list]:
        wake, state.wake = state.wake, {}
        out, state.out_kv = state.out_kv, []
        return wake, out

    def deliver_designated(self, query, fragment: Fragment, state: _MRState,
                           payloads: list) -> None:
        """Only the self-addressed map-phase wake tokens arrive here; the
        pending input they announce is already in local state."""

    def deliver_keyvalue(self, query, fragment: Fragment, state: _MRState,
                         groups: Dict[Hashable, list]) -> None:
        for key, values in groups.items():
            state.delivered.setdefault(key, []).extend(values)

    def read_update_params(self, query, fragment: Fragment,
                           state: _MRState) -> ParamUpdates:
        return {}

    def assemble(self, query, fragmentation: Fragmentation,
                 states: Dict[int, _MRState]) -> List[KV]:
        result: List[KV] = []
        for frag in fragmentation:
            result.extend(states[frag.fid].final)
        return result


def _worker_fragmentation(num_workers: int) -> Fragmentation:
    g = Graph(directed=True)
    for w in range(num_workers):
        g.add_node(w)
    assignment = {w: w for w in range(num_workers)}
    return build_edge_cut_fragments(g, assignment, num_workers,
                                    strategy_name="mr-workers")


def run_mapreduce_on_grape(job: MapReduceJob,
                           input_slices: Sequence[Sequence[KV]], *,
                           cost_model: Optional[CostModel] = None,
                           ) -> GrapeResult:
    """Compile and run a MapReduce job on GRAPE.

    ``input_slices[i]`` holds worker ``i``'s input records.  The result's
    ``answer`` is the union of final reduce outputs; ``metrics.supersteps``
    is at most ``2 * job.num_rounds`` (Theorem 2(2) optimality).
    """
    num_workers = len(input_slices)
    engine = GrapeEngine(num_workers, cost_model=cost_model)
    fragmentation = _worker_fragmentation(num_workers)
    return engine.run(MapReduceOnGrape(), (job, list(input_slices)),
                      fragmentation=fragmentation)
