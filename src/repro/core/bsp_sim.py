"""BSP-on-GRAPE compiler (Simulation Theorem 2(1), paper Section 4.2).

Any BSP algorithm with ``n`` workers and ``t`` supersteps runs on GRAPE
with ``n`` workers in ``t`` supersteps and identical messages: ``PEval``
performs the first BSP superstep, ``IncEval`` the later ones, and message
routing uses GRAPE's designated-message channel with the coordinator as
synchronization router.

Users supply a :class:`BSPProgram`; :func:`run_bsp_on_grape` compiles and
executes it.  A worker is stepped only while messages are in flight —
i.e. workers implicitly vote to halt by sending nothing, and are woken by
incoming messages (Pregel's halting convention).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.engine import GrapeEngine, GrapeResult
from repro.core.pie import ParamUpdates, PIEProgram
from repro.graph.graph import Graph
from repro.partition.base import Fragment, Fragmentation, \
    build_edge_cut_fragments
from repro.runtime.metrics import CostModel

__all__ = ["BSPProgram", "BSPOnGrape", "run_bsp_on_grape"]


class BSPProgram(abc.ABC):
    """A user BSP algorithm: local compute + outgoing messages per step."""

    @abc.abstractmethod
    def init(self, worker_id: int, num_workers: int, data: Any) -> Any:
        """Create the worker-local state from its input slice."""

    @abc.abstractmethod
    def superstep(self, worker_id: int, step: int, state: Any,
                  incoming: List[Any]) -> Dict[int, List[Any]]:
        """One BSP superstep; returns outgoing messages per destination."""

    @abc.abstractmethod
    def output(self, worker_id: int, state: Any) -> Any:
        """The worker's final output."""


@dataclass
class _BSPState:
    user: Any = None
    step: int = 0
    inbox: List[Any] = field(default_factory=list)
    outbox: Dict[int, List[Any]] = field(default_factory=dict)


class BSPOnGrape(PIEProgram):
    """The compiled PIE program wrapping a :class:`BSPProgram`.

    Query: ``(bsp_program, data_slices)`` with one input slice per worker.
    """

    name = "BSP-on-GRAPE"

    def __init__(self, num_workers: int):
        self.num_workers = num_workers

    def init_state(self, query, fragment: Fragment) -> _BSPState:
        bsp, data = query
        state = _BSPState()
        state.user = bsp.init(fragment.fid, self.num_workers,
                              data[fragment.fid])
        return state

    def peval(self, query, fragment: Fragment, state: _BSPState) -> None:
        bsp, _data = query
        state.outbox = bsp.superstep(fragment.fid, 0, state.user, [])
        state.step = 1

    def inceval(self, query, fragment: Fragment, state: _BSPState,
                message: ParamUpdates) -> None:
        bsp, _data = query
        incoming, state.inbox = state.inbox, []
        state.outbox = bsp.superstep(fragment.fid, state.step, state.user,
                                     incoming)
        state.step += 1

    def drain_messages(self, query, fragment: Fragment,
                       state: _BSPState) -> Tuple[Dict[int, list], list]:
        out, state.outbox = state.outbox, {}
        return {dest: msgs for dest, msgs in out.items() if msgs}, []

    def deliver_designated(self, query, fragment: Fragment,
                           state: _BSPState, payloads: list) -> None:
        state.inbox.extend(payloads)

    def read_update_params(self, query, fragment: Fragment,
                           state: _BSPState) -> ParamUpdates:
        return {}

    def assemble(self, query, fragmentation: Fragmentation,
                 states: Dict[int, _BSPState]) -> List[Any]:
        bsp, _data = query
        return [bsp.output(frag.fid, states[frag.fid].user)
                for frag in fragmentation]


def _dummy_fragmentation(num_workers: int) -> Fragmentation:
    """One isolated node per worker — BSP needs no graph structure."""
    g = Graph(directed=True)
    for w in range(num_workers):
        g.add_node(w)
    assignment = {w: w for w in range(num_workers)}
    return build_edge_cut_fragments(g, assignment, num_workers,
                                    strategy_name="bsp-workers")


def run_bsp_on_grape(bsp: BSPProgram, data_slices: Sequence[Any], *,
                     cost_model: Optional[CostModel] = None,
                     max_supersteps: int = 100_000) -> GrapeResult:
    """Compile and run a BSP program on GRAPE.

    ``data_slices[i]`` is worker ``i``'s input.  The result's ``answer`` is
    the list of per-worker outputs; ``metrics.supersteps`` matches the BSP
    superstep count (Theorem 2(1): no extra cost per superstep).
    """
    num_workers = len(data_slices)
    engine = GrapeEngine(num_workers, cost_model=cost_model,
                         max_supersteps=max_supersteps)
    fragmentation = _dummy_fragmentation(num_workers)
    return engine.run(BSPOnGrape(num_workers), (bsp, list(data_slices)),
                      fragmentation=fragmentation)
