"""Conflict resolution for update parameters (``aggregateMsg``).

Paper Section 3.2: when multiple workers assign different values to the
same update parameter, the user-specified ``aggregateMsg`` resolves the
conflict — ``min`` for SSSP and CC, ``min`` over ``false ≺ true`` for Sim,
``max`` on timestamps for CF.  When none is given, GRAPE uses a default
exception handler (here: raise on genuine conflicts).

Aggregators also expose the *partial order* of the monotonic condition
(Section 4.1): :meth:`Aggregator.is_progress` says whether a new value
strictly advances the order, which the engine's monotonicity checker and
termination logic rely on.
"""

from __future__ import annotations

import abc
from typing import Any, Iterable

__all__ = [
    "Aggregator",
    "MinAggregator",
    "MaxAggregator",
    "LatestTimestampAggregator",
    "DefaultExceptionAggregator",
    "ConflictError",
]


class ConflictError(RuntimeError):
    """Raised by the default handler when workers disagree on a value."""


class Aggregator(abc.ABC):
    """Resolves conflicting values and defines the progress order."""

    @abc.abstractmethod
    def combine(self, a: Any, b: Any) -> Any:
        """Resolve two conflicting values into one."""

    @abc.abstractmethod
    def is_progress(self, old: Any, new: Any) -> bool:
        """True when ``new`` strictly advances the partial order from
        ``old`` (i.e. the update is monotonic and non-trivial)."""

    def fold(self, values: Iterable[Any]) -> Any:
        it = iter(values)
        try:
            acc = next(it)
        except StopIteration:
            raise ValueError("fold of no values") from None
        for v in it:
            acc = self.combine(acc, v)
        return acc


class MinAggregator(Aggregator):
    """Keep the smallest value (SSSP distances, CC component ids, and Sim
    status booleans with ``false ≺ true``)."""

    def combine(self, a: Any, b: Any) -> Any:
        return a if a <= b else b

    def is_progress(self, old: Any, new: Any) -> bool:
        return new < old


class MaxAggregator(Aggregator):
    """Keep the largest value."""

    def combine(self, a: Any, b: Any) -> Any:
        return a if a >= b else b

    def is_progress(self, old: Any, new: Any) -> bool:
        return new > old


class LatestTimestampAggregator(Aggregator):
    """Values are ``(timestamp, payload)``; keep the newest (CF factors).

    Ties keep the first operand, matching the paper's "upon receiving
    updated values (v.f', t') with t' > t, change v.f to v.f'".
    """

    def combine(self, a: Any, b: Any) -> Any:
        return b if b[0] > a[0] else a

    def is_progress(self, old: Any, new: Any) -> bool:
        return new[0] > old[0]


class DefaultExceptionAggregator(Aggregator):
    """The paper's default handler: identical values pass, conflicts raise."""

    def combine(self, a: Any, b: Any) -> Any:
        if a != b:
            raise ConflictError(
                f"conflicting values {a!r} and {b!r} with no aggregateMsg")
        return a

    def is_progress(self, old: Any, new: Any) -> bool:
        return new != old
