"""GRAPE core: the PIE model, parallel engine and simulation compilers."""

from repro.core.async_engine import AsyncGrapeEngine, AsyncGrapeResult
from repro.core.aggregators import (Aggregator, ConflictError,
                                    DefaultExceptionAggregator,
                                    LatestTimestampAggregator, MaxAggregator,
                                    MinAggregator)
from repro.core.api import PIERegistry, default_registry
from repro.core.bsp_sim import BSPProgram, run_bsp_on_grape
from repro.core.engine import GrapeEngine, GrapeResult
from repro.core.mapreduce_sim import MapReduceJob, run_mapreduce_on_grape
from repro.core.monotonic import MonotonicityChecker, MonotonicityViolation
from repro.core.pie import ParamKey, ParamUpdates, PIEProgram
from repro.core.pram_sim import CREWViolation, PRAMProgram, run_pram_on_grape
from repro.core.updates import (ContinuousQuerySession,
                                NonMonotoneUpdateError, apply_delta,
                                apply_insertions)

__all__ = [
    "PIEProgram", "ParamKey", "ParamUpdates", "GrapeEngine", "GrapeResult",
    "Aggregator", "MinAggregator", "MaxAggregator",
    "LatestTimestampAggregator", "DefaultExceptionAggregator",
    "ConflictError", "MonotonicityChecker", "MonotonicityViolation",
    "PIERegistry", "default_registry", "BSPProgram", "run_bsp_on_grape",
    "MapReduceJob", "run_mapreduce_on_grape", "PRAMProgram",
    "run_pram_on_grape", "CREWViolation", "AsyncGrapeEngine",
    "AsyncGrapeResult", "ContinuousQuerySession", "NonMonotoneUpdateError",
    "apply_delta", "apply_insertions",
]
