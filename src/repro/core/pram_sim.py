"""CREW PRAM-on-GRAPE simulation (Simulation Theorem 2(3), paper §4.2).

A CREW PRAM runs ``P`` processors against a shared memory; per unit step
each processor reads cells (concurrent reads allowed), computes, and
writes cells (exclusive writes — two writers to one cell in one step raise
:exc:`CREWViolation`).  Following the Karloff–Suri–Vassilvitskii
construction cited by the paper, the shared memory is sharded across GRAPE
workers and every PRAM step costs two supersteps:

* *serve* — memory shards apply the previous step's writes and answer the
  read requests delivered alongside them;
* *compute* — processors receive read replies, run one step of their
  program, and emit the next writes and read requests.

Workers host both a memory shard and a processor group; the incoming
message content (write/read vs. value records) tells each worker which
role to play, so no global phase variable is needed.  A ``t``-step PRAM
program therefore runs in ``O(t)`` GRAPE supersteps with ``O(P)`` total
memory — the theorem's bound.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.engine import GrapeEngine, GrapeResult
from repro.core.pie import ParamUpdates, PIEProgram
from repro.graph.graph import Graph
from repro.partition.base import Fragment, Fragmentation, \
    build_edge_cut_fragments
from repro.runtime.metrics import CostModel

__all__ = ["PRAMProgram", "CREWViolation", "run_pram_on_grape"]


class CREWViolation(RuntimeError):
    """Two processors wrote the same cell in the same step (EW violation)."""


class PRAMProgram(abc.ABC):
    """A CREW PRAM program.

    Per step ``t`` of each live processor ``pid``: the simulator fetches
    the cells named by :meth:`plan_reads`, :meth:`step` computes with the
    fetched values and returns cells to write, and :meth:`done` decides
    halting.  ``local`` is processor-private scratch persisted across
    steps.
    """

    #: number of processors P
    num_processors: int

    #: upper bound on PRAM steps t (processors may halt earlier via done())
    num_steps: int

    @abc.abstractmethod
    def initial_memory(self) -> Dict[int, Any]:
        """Initial contents of the shared memory (address -> value)."""

    @abc.abstractmethod
    def plan_reads(self, pid: int, t: int) -> List[int]:
        """Addresses processor ``pid`` reads at step ``t``."""

    @abc.abstractmethod
    def step(self, pid: int, t: int, values: Dict[int, Any],
             local: dict) -> Dict[int, Any]:
        """Compute with the read ``values``; return address -> value writes."""

    def done(self, pid: int, t: int, local: dict) -> bool:
        """Whether processor ``pid`` has halted before executing step ``t``."""
        return t >= self.num_steps


# Message records: ("write", addr, pid, value), ("read", addr, pid) and
# ("value", addr, pid, value).  A step with no reads issues a dummy read of
# address None so every processor keeps the same two-superstep cadence.


@dataclass
class _PRAMState:
    memory: Dict[int, Any] = field(default_factory=dict)
    locals: Dict[int, dict] = field(default_factory=dict)   # pid -> scratch
    t: Dict[int, int] = field(default_factory=dict)         # pid -> step
    pending: List[tuple] = field(default_factory=list)
    outbox: Dict[int, list] = field(default_factory=dict)


class _PRAMOnGrape(PIEProgram):
    """Internal PIE program: each worker hosts a memory shard and the
    processors assigned to it."""

    name = "PRAM-on-GRAPE"

    def __init__(self, num_workers: int):
        self.num_workers = num_workers

    # -- sharding -------------------------------------------------------
    def _mem_owner(self, addr: int) -> int:
        return addr % self.num_workers

    def _proc_owner(self, pid: int) -> int:
        return pid % self.num_workers

    def _local_pids(self, fid: int, program: PRAMProgram) -> List[int]:
        return [pid for pid in range(program.num_processors)
                if self._proc_owner(pid) == fid]

    def _send(self, state: _PRAMState, dest: int, record: tuple) -> None:
        state.outbox.setdefault(dest, []).append(record)

    def _issue_reads(self, query: PRAMProgram, fid: int,
                     state: _PRAMState, pid: int, t: int) -> None:
        reads = query.plan_reads(pid, t)
        if not reads:
            # Dummy read: keeps the processor on the common cadence.
            reads = [None]
        for addr in reads:
            owner = self._mem_owner(addr) if addr is not None else fid
            self._send(state, owner, ("read", addr, pid))

    # -- PIE hooks --------------------------------------------------------
    def init_state(self, query: PRAMProgram,
                   fragment: Fragment) -> _PRAMState:
        state = _PRAMState()
        for addr, value in query.initial_memory().items():
            if self._mem_owner(addr) == fragment.fid:
                state.memory[addr] = value
        for pid in self._local_pids(fragment.fid, query):
            state.locals[pid] = {}
            state.t[pid] = 0
        return state

    def peval(self, query: PRAMProgram, fragment: Fragment,
              state: _PRAMState) -> None:
        for pid in self._local_pids(fragment.fid, query):
            if not query.done(pid, 0, state.locals[pid]):
                self._issue_reads(query, fragment.fid, state, pid, 0)

    def inceval(self, query: PRAMProgram, fragment: Fragment,
                state: _PRAMState, message: ParamUpdates) -> None:
        pending, state.pending = state.pending, []
        writes = [r for r in pending if r[0] == "write"]
        reads = [r for r in pending if r[0] == "read"]
        values = [r for r in pending if r[0] == "value"]
        if writes or reads:
            self._serve_memory(state, writes, reads)
        if values:
            self._run_processors(query, fragment, state, values)

    def _serve_memory(self, state: _PRAMState, writes: List[tuple],
                      reads: List[tuple]) -> None:
        """Writes of step t land before the reads of step t+1 are served."""
        writers: Dict[int, int] = {}
        for _kind, addr, pid, value in writes:
            if addr in writers and writers[addr] != pid:
                raise CREWViolation(
                    f"processors {writers[addr]} and {pid} both wrote "
                    f"cell {addr} in one step")
            writers[addr] = pid
            state.memory[addr] = value
        for _kind, addr, pid in reads:
            value = state.memory.get(addr) if addr is not None else None
            self._send(state, self._proc_owner(pid),
                       ("value", addr, pid, value))

    def _run_processors(self, query: PRAMProgram, fragment: Fragment,
                        state: _PRAMState, values: List[tuple]) -> None:
        by_pid: Dict[int, Dict[int, Any]] = {}
        woken: set = set()
        for _kind, addr, pid, value in values:
            woken.add(pid)
            if addr is not None:
                by_pid.setdefault(pid, {})[addr] = value
        for pid in sorted(woken):
            t = state.t[pid]
            if query.done(pid, t, state.locals[pid]):
                continue
            writes = query.step(pid, t, by_pid.get(pid, {}),
                                state.locals[pid])
            state.t[pid] = t + 1
            for addr, value in writes.items():
                self._send(state, self._mem_owner(addr),
                           ("write", addr, pid, value))
            if not query.done(pid, t + 1, state.locals[pid]):
                self._issue_reads(query, fragment.fid, state, pid, t + 1)

    # -- message plumbing -------------------------------------------------
    def drain_messages(self, query, fragment: Fragment,
                       state: _PRAMState) -> Tuple[Dict[int, list], list]:
        out, state.outbox = state.outbox, {}
        return out, []

    def deliver_designated(self, query, fragment: Fragment,
                           state: _PRAMState, payloads: list) -> None:
        state.pending.extend(payloads)

    def read_update_params(self, query, fragment: Fragment,
                           state: _PRAMState) -> ParamUpdates:
        return {}

    def assemble(self, query: PRAMProgram, fragmentation: Fragmentation,
                 states: Dict[int, _PRAMState]) -> Dict[int, Any]:
        """The final shared-memory contents."""
        memory: Dict[int, Any] = {}
        for frag in fragmentation:
            memory.update(states[frag.fid].memory)
        return memory


def run_pram_on_grape(program: PRAMProgram, num_workers: int, *,
                      cost_model: Optional[CostModel] = None,
                      ) -> GrapeResult:
    """Simulate a CREW PRAM program on GRAPE.

    Returns the final shared memory as the answer; superstep count is
    ``O(program.num_steps)`` per Theorem 2(3).
    """
    if num_workers < 1:
        raise ValueError("need at least one worker")
    g = Graph(directed=True)
    for w in range(num_workers):
        g.add_node(w)
    fragmentation = build_edge_cut_fragments(
        g, {w: w for w in range(num_workers)}, num_workers,
        strategy_name="pram-workers")
    engine = GrapeEngine(num_workers, cost_model=cost_model)
    return engine.run(_PRAMOnGrape(num_workers), program,
                      fragmentation=fragmentation)
