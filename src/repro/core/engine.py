"""The GRAPE parallel engine (paper Sections 3.1 and 6).

Given a PIE program, a query and a partitioned graph, the engine runs the
paper's three phases as a simultaneous fixpoint over fragments:

1. **PEval** — superstep 1: every worker evaluates the batch sequential
   algorithm on its fragment and reports its update parameters
   ``C_i.x̄`` to the coordinator;
2. **IncEval** — iterated supersteps: the coordinator folds reports into a
   per-parameter global table using the program's ``aggregateMsg``
   aggregator, composes a message ``M_j`` for every fragment holding a
   changed border node (destinations deduced from the fragmentation graph
   ``G_P``), and each worker with a non-empty message incrementally
   computes ``Q(F_i ⊕ M_i)``;
3. **Assemble** — when no update parameter changed and no explicit
   messages are pending, the coordinator pulls partial results and
   combines them.

Besides update parameters, the engine carries the paper's two explicit
message channels (Section 3.5): *designated* worker-to-worker messages and
*key-value* pairs shuffled by key at the coordinator — these power the
Simulation Theorem compilers (:mod:`repro.core.bsp_sim`,
:mod:`repro.core.mapreduce_sim`, :mod:`repro.core.pram_sim`).

Communication is accounted both ways (changed-parameter reports up to the
coordinator, composed messages down), in serialized bytes.  Supersteps,
per-superstep max-worker compute time and traffic are folded into
:class:`~repro.runtime.metrics.RunMetrics` by the simulated cluster.

The engine also implements:

* the paper's **GRAPE-NI** ablation (Exp-2): ``incremental=False`` applies
  messages and re-runs ``PEval`` instead of ``IncEval``;
* **monotonicity checking** (Assurance Theorem instrumentation);
* **fault tolerance** (Section 6): per-superstep checkpoints through an
  :class:`~repro.runtime.fault.Arbitrator`; injected worker failures roll
  the failed superstep back and replay it.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from typing import Union

from repro.core.monotonic import MonotonicityChecker
from repro.core.pie import ParamKey, ParamUpdates, PIEProgram
from repro.obs import events as _events
from repro.obs.trace import Span
from repro.graph.graph import Graph
from repro.partition.base import Fragmentation, PartitionStrategy
from repro.partition.strategies import HashPartition
from repro.resilience import faults as fault_plane_mod
from repro.resilience.errors import DeadlineExceeded, QueryCancelled
from repro.resilience.faults import FaultPlane
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.executors import (PHASE_IDLE, PHASE_INC, PHASE_NI,
                                     PHASE_PEVAL,
                                     ExecutorBackend, StepCommand,
                                     WorkerHung, WorkerProcessDied,
                                     read_report, resolve_backend)
from repro.runtime.fault import Arbitrator, FailureInjector, WorkerFailure
from repro.runtime.message import stable_hash
from repro.runtime.metrics import (CostModel, ParamSizeCache, RunMetrics,
                                   message_bytes)

__all__ = ["EngineConfig", "GrapeEngine", "GrapeResult"]


@dataclass(frozen=True)
class EngineConfig:
    """A reusable engine specification.

    One config can build any number of engines — the serving layer
    (:mod:`repro.service`) stores a config instead of an engine so each
    query runs on a fresh engine while sharing one declared setup, and so
    the fragmentation cache can be keyed on the partition spec.

    Fields mirror :class:`GrapeEngine`'s constructor parameters.
    """

    num_workers: int = 4
    num_fragments: Optional[int] = None
    partition: Optional[PartitionStrategy] = None
    cost_model: Optional[CostModel] = None
    executor: str = "serial"
    #: execution backend: ``"serial"``, ``"thread"``, ``"process"`` or an
    #: :class:`~repro.runtime.executors.ExecutorBackend` instance.
    #: ``None`` defers to ``executor`` (back-compat) and then to the
    #: ``REPRO_BACKEND`` environment variable.
    backend: Union[str, ExecutorBackend, None] = None
    incremental: bool = True
    check_monotonic: bool = False
    max_supersteps: int = 100_000
    failure_injector: Optional["FailureInjector"] = None
    #: directory for per-superstep disk checkpoints (fault tolerance
    #: without an injector; typically
    #: :meth:`repro.store.GraphStore.checkpoint_dir`).  Enables recovery
    #: from *real* worker deaths under the process backend.
    checkpoint_dir: Optional[str] = None
    #: per-query time budget in seconds; past it the run raises
    #: :exc:`~repro.resilience.errors.DeadlineExceeded`.  Enforced at
    #: every superstep boundary on all backends and *inside* worker
    #: pipe waits on the process backend (an inline superstep already in
    #: compute finishes first — boundary granularity).
    deadline_s: Optional[float] = None
    #: seconds without a worker heartbeat before the process backend
    #: declares the worker hung, kills it and (checkpoint permitting)
    #: replaces it.  ``None`` disables detection (seed behavior:
    #: pipe recvs block indefinitely).
    heartbeat_timeout_s: Optional[float] = None
    #: deterministic fault schedule for this run's ``exec.step`` site
    #: (see :class:`~repro.resilience.faults.FaultPlane`); ``None``
    #: falls back to the process-globally installed plane, if any.
    fault_plane: Optional[FaultPlane] = None

    @property
    def effective_fragments(self) -> int:
        """The virtual-worker count ``m`` an engine built from this
        config will use."""
        return self.num_fragments or self.num_workers

    def replace(self, **changes) -> "EngineConfig":
        """A copy of this config with the given fields overridden."""
        return dataclasses.replace(self, **changes)

    def build(self) -> "GrapeEngine":
        """Instantiate a fresh engine from this spec."""
        return GrapeEngine.from_config(self)


@dataclass
class GrapeResult:
    """Outcome of one GRAPE run."""

    answer: Any
    metrics: RunMetrics
    fragmentation: Fragmentation
    states: Dict[int, Any]
    recoveries: int = 0
    #: the span subtree covering this run, when it executed under
    #: tracing (``GrapeEngine.run(trace=...)`` /
    #: ``GrapeService(tracing=True)``); ``None`` otherwise
    trace: Optional[Span] = None

    @property
    def supersteps(self) -> int:
        return self.metrics.supersteps


class GrapeEngine:
    """Parallel evaluation of PIE programs on the simulated cluster.

    Parameters
    ----------
    num_workers:
        Physical workers ``n``.
    num_fragments:
        Virtual workers ``m`` (defaults to ``num_workers``); when larger,
        several fragments share a physical worker (paper Section 3.1).
    partition:
        Partition strategy ``P``; defaults to hash edge-cut.  Ignored when
        a prebuilt fragmentation is passed to :meth:`run`.
    incremental:
        ``False`` selects the GRAPE-NI ablation mode.
    check_monotonic:
        Verify the monotonic condition at runtime (small overhead).
    max_supersteps:
        Safety bound on supersteps.
    failure_injector:
        Optional fault-injection plan; failures trigger checkpoint
        recovery instead of aborting.
    """

    def __init__(self, num_workers: int, *,
                 num_fragments: Optional[int] = None,
                 partition: Optional[PartitionStrategy] = None,
                 cost_model: Optional[CostModel] = None,
                 executor: str = "serial",
                 backend: Union[str, ExecutorBackend, None] = None,
                 incremental: bool = True,
                 check_monotonic: bool = False,
                 max_supersteps: int = 100_000,
                 failure_injector: Optional[FailureInjector] = None,
                 checkpoint_dir: Optional[str] = None,
                 deadline_s: Optional[float] = None,
                 heartbeat_timeout_s: Optional[float] = None,
                 fault_plane: Optional[FaultPlane] = None):
        self.num_workers = num_workers
        self.num_fragments = num_fragments or num_workers
        if self.num_fragments < self.num_workers:
            raise ValueError("virtual workers m must be >= physical n")
        self.partition = partition or HashPartition()
        self.cost_model = cost_model
        self.executor = executor
        self.backend = backend
        self.incremental = incremental
        self.check_monotonic = check_monotonic
        self.max_supersteps = max_supersteps
        self.failure_injector = failure_injector
        self.checkpoint_dir = checkpoint_dir
        self.deadline_s = deadline_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.fault_plane = fault_plane

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: EngineConfig) -> "GrapeEngine":
        """Build an engine from a reusable :class:`EngineConfig`."""
        return cls(config.num_workers,
                   num_fragments=config.num_fragments,
                   partition=config.partition,
                   cost_model=config.cost_model,
                   executor=config.executor,
                   backend=config.backend,
                   incremental=config.incremental,
                   check_monotonic=config.check_monotonic,
                   max_supersteps=config.max_supersteps,
                   failure_injector=config.failure_injector,
                   checkpoint_dir=config.checkpoint_dir,
                   deadline_s=config.deadline_s,
                   heartbeat_timeout_s=config.heartbeat_timeout_s,
                   fault_plane=config.fault_plane)

    @property
    def config(self) -> EngineConfig:
        """This engine's parameters as a reusable spec."""
        return EngineConfig(num_workers=self.num_workers,
                            num_fragments=self.num_fragments,
                            partition=self.partition,
                            cost_model=self.cost_model,
                            executor=self.executor,
                            backend=self.backend,
                            incremental=self.incremental,
                            check_monotonic=self.check_monotonic,
                            max_supersteps=self.max_supersteps,
                            failure_injector=self.failure_injector,
                            checkpoint_dir=self.checkpoint_dir,
                            deadline_s=self.deadline_s,
                            heartbeat_timeout_s=self.heartbeat_timeout_s,
                            fault_plane=self.fault_plane)

    # ------------------------------------------------------------------
    def _resolve_backend(self) -> ExecutorBackend:
        """Pick the execution backend for a run.

        Precedence: explicit ``backend`` > ``executor="threads"``
        back-compat > the ``REPRO_BACKEND`` environment variable >
        serial.  Fault injection needs coordinator-side states for
        checkpoint recovery, so it forces an inline backend: an explicit
        non-inline choice raises, an environment-sourced one quietly
        falls back to serial.
        """
        spec = self.backend
        explicit = spec is not None
        if spec is None and self.executor == "threads":
            spec, explicit = "thread", True
        backend = resolve_backend(spec)
        if self.failure_injector is not None and not backend.inline:
            if explicit:
                raise ValueError(
                    "fault injection requires an inline backend "
                    "(backend='serial' or 'thread'); the process "
                    "backend's worker-resident states cannot be "
                    "checkpoint-restored by the coordinator")
            backend = resolve_backend("serial")
        return backend

    # ------------------------------------------------------------------
    def make_fragmentation(self, graph: Graph) -> Fragmentation:
        """Partition ``graph`` once, reusable across queries (paper:
        "G is partitioned once for all queries Q posed on G")."""
        return self.partition.partition(graph, self.num_fragments)

    # ------------------------------------------------------------------
    def run(self, program: PIEProgram, query: Any,
            graph: Optional[Graph] = None,
            fragmentation: Optional[Fragmentation] = None, *,
            cancel: Optional[threading.Event] = None,
            trace: Optional[Span] = None) -> GrapeResult:
        """Compute ``Q(G)`` with the given PIE program.

        Execution is delegated to the configured backend through the PIE
        session protocol: each superstep is described as one
        :class:`~repro.runtime.executors.StepCommand` per fragment and
        executed wherever the fragment lives (in-process for the serial
        and thread backends, in a pooled worker process for the process
        backend).  All coordinator logic — report folding, aggregation,
        message composition, byte accounting — runs here regardless of
        backend, so answers, superstep counts and communication volumes
        are backend-invariant.

        ``cancel`` is a cooperative abort flag (set by
        :meth:`~repro.service.tickets.QueryTicket.cancel`): the run
        checks it at every superstep boundary — and inside process-
        backend pipe waits — and raises
        :exc:`~repro.resilience.errors.QueryCancelled`.  With
        ``deadline_s`` set, a budget overrun raises
        :exc:`~repro.resilience.errors.DeadlineExceeded` at the same
        points; with ``heartbeat_timeout_s`` set, a process worker that
        stops heart-beating is killed and — when checkpoints are
        enabled — replaced, the run continuing with identical answers.

        ``trace`` hangs the run's span tree off the given parent span:
        session open (with worker-side shm-attach / delta-replay /
        fragment-load children on the process backend), one
        ``superstep`` span per round with per-worker children carrying
        worker-side compute/report timings, and assemble.  ``None``
        (the default) traces nothing and adds no measurable work.
        """
        if fragmentation is None:
            if graph is None:
                raise ValueError("pass either graph or fragmentation")
            fragmentation = self.make_fragmentation(graph)

        backend = self._resolve_backend()
        wall_start = time.perf_counter()
        plane = self.fault_plane or fault_plane_mod.active()
        deadline = (time.monotonic() + self.deadline_s
                    if self.deadline_s is not None else None)
        # Checkpoint fault tolerance turns on whenever something can
        # fail mid-run *and* recovery is possible: an injector, a disk
        # checkpoint dir, or a fault plane with pending executor faults
        # (in-memory checkpoints suffice for inline backends; the
        # process backend additionally needs a checkpoint_dir only for
        # real cross-process restores — in-memory copies restore
        # through replace_states just as well).
        ft_enabled = (self.failure_injector is not None
                      or self.checkpoint_dir is not None
                      or (plane is not None and plane.may_fire("exec.")))
        cluster = SimulatedCluster(self.num_workers,
                                   cost_model=self.cost_model,
                                   backend=backend)
        arbitrator = Arbitrator(checkpoint_dir=self.checkpoint_dir)
        checker = MonotonicityChecker(program.aggregator,
                                      enabled=self.check_monotonic)

        frags = fragmentation.fragments
        # The live session sits in a one-slot box: recovery from a real
        # worker death (process backend) swaps in a fresh session on
        # surviving/new pool workers, and every later use must see it.
        open_span = (trace.child("session.open", backend=backend.name)
                     if trace is not None else None)
        session_box = [backend.open(program, query, fragmentation,
                                    num_workers=self.num_workers,
                                    failure_injector=self.failure_injector,
                                    trace=open_span)]
        if open_span is not None:
            open_span.finish()
        session_box[0].hang_timeout = self.heartbeat_timeout_s

        def reopen():
            try:
                session_box[0].close()
            except Exception:
                pass
            # Retried: another pool worker may die while the replacement
            # session is being opened (each attempt culls the handles it
            # found dead, so progress is guaranteed).
            for attempt in range(5):
                try:
                    session_box[0] = backend.open(
                        program, query, fragmentation,
                        num_workers=self.num_workers,
                        failure_injector=self.failure_injector)
                    session_box[0].hang_timeout = self.heartbeat_timeout_s
                    return
                except WorkerProcessDied:
                    if attempt == 4:
                        raise

        try:
            if trace is not None:
                with trace.child("init_states"):
                    session_box[0].init_states()
            else:
                session_box[0].init_states()

            # Optional pre-PEval data shipping (SubIso neighborhoods).
            pre_bytes = 0
            payloads = program.preprocess(query, fragmentation)
            if payloads:
                pre_bytes = sum(message_bytes(p)
                                for p in payloads.values())
                if trace is not None:
                    with trace.child("preprocess"):
                        session_box[0].apply_preprocess(payloads)
                else:
                    session_box[0].apply_preprocess(payloads)

            # Coordinator bookkeeping: last values each fragment
            # reported, the per-parameter global table.
            reported: Dict[int, ParamUpdates] = {f.fid: {} for f in frags}
            global_table: Dict[ParamKey, Any] = {}
            # Memoized byte accounting: identical parameter entries recur
            # across rounds and destinations; pickle each once per run.
            sizer = ParamSizeCache()

            def snapshot_state():
                return {"states": session_box[0].collect_states(),
                        "reported": reported, "table": global_table}

            def restore(snap):
                session_box[0].replace_states(snap["states"])
                reported.clear()
                reported.update(snap["reported"])
                global_table.clear()
                global_table.update(snap["table"])

            step_seq = [0]

            def traced_step(commands, **kw):
                """One superstep through ``_step_with_recovery``, under a
                ``superstep`` span when tracing: the span id rides every
                command across the pipe, and worker-side measurements
                come back re-attached as per-worker child spans."""
                if trace is None:
                    return self._step_with_recovery(
                        cluster, session_box, arbitrator, commands, **kw)
                index = step_seq[0]
                step_seq[0] += 1
                phase = next((c.phase for c in commands.values()
                              if c.phase != PHASE_IDLE), PHASE_IDLE)
                span = trace.child("superstep", index=index, phase=phase)
                for command in commands.values():
                    command.span_id = span.span_id
                try:
                    outcomes = self._step_with_recovery(
                        cluster, session_box, arbitrator, commands, **kw)
                finally:
                    span.finish()
                for fid in sorted(outcomes):
                    outcome = outcomes[fid]
                    worker_span = span.record("worker", outcome.elapsed,
                                              fid=fid)
                    for name, duration_s, tags in outcome.spans:
                        worker_span.record(name, duration_s, **tags)
                return outcomes

            # ------------- superstep 1: PEval --------------------------
            if ft_enabled:
                arbitrator.checkpoint(snapshot_state())

            outcomes = traced_step(
                {f.fid: StepCommand(phase=PHASE_PEVAL) for f in frags},
                bytes_in=pre_bytes, msgs_in=1 if payloads else 0,
                restore=restore, reopen=reopen, plane=plane,
                deadline=deadline, budget_s=self.deadline_s,
                cancel=cancel)

            up_bytes, up_msgs, dirty = self._fold_outcomes(
                program, frags, outcomes, reported, global_table,
                checker, first_round=True, sizer=sizer)
            messages = self._compose_messages(program, fragmentation,
                                              reported, dirty, global_table)
            designated, keyvalue, ch_bytes, ch_msgs = \
                self._route_channels(frags, outcomes)
            up_bytes += ch_bytes
            up_msgs += ch_msgs
            if ft_enabled:
                arbitrator.checkpoint(snapshot_state())

            # ------------- IncEval supersteps --------------------------
            rounds = 1
            while (messages or designated or keyvalue) \
                    and rounds < self.max_supersteps:
                rounds += 1
                down_bytes = sum(sizer.updates_bytes(msg)
                                 for msg in messages.values())
                down_bytes += sum(message_bytes(p)
                                  for p in designated.values())
                down_bytes += sum(message_bytes(g)
                                  for g in keyvalue.values())
                down_msgs = len(messages) + len(designated) + len(keyvalue)

                active = set(messages) | set(designated) | set(keyvalue)
                # GRAPE-NI ablation: apply the message and redo PEval
                # from scratch instead of IncEval.
                phase = PHASE_INC if self.incremental else PHASE_NI
                commands = {
                    f.fid: (StepCommand(phase=phase,
                                        message=messages.get(f.fid, {}),
                                        designated=designated.get(f.fid),
                                        keyvalue=keyvalue.get(f.fid))
                            if f.fid in active else StepCommand())
                    for f in frags}

                outcomes = traced_step(
                    commands,
                    bytes_in=up_bytes + down_bytes,
                    msgs_in=up_msgs + down_msgs,
                    restore=restore, reopen=reopen, plane=plane,
                    deadline=deadline, budget_s=self.deadline_s,
                    cancel=cancel)

                up_bytes, up_msgs, dirty = self._fold_outcomes(
                    program, frags, outcomes, reported, global_table,
                    checker, first_round=False, sizer=sizer)
                messages = self._compose_messages(program, fragmentation,
                                                  reported, dirty,
                                                  global_table)
                designated, keyvalue, ch_bytes, ch_msgs = \
                    self._route_channels(frags, outcomes)
                up_bytes += ch_bytes
                up_msgs += ch_msgs
                if ft_enabled:
                    arbitrator.checkpoint(snapshot_state())

            if messages or designated or keyvalue:
                raise RuntimeError(
                    f"no fixpoint after {self.max_supersteps} supersteps; "
                    "check the monotonic condition of the PIE program")

            # ------------- Assemble ------------------------------------
            states = session_box[0].collect_states()
            start = time.perf_counter()
            answer = program.assemble(query, fragmentation, states)
            assemble_s = time.perf_counter() - start
            if trace is not None:
                trace.record("assemble", assemble_s)
            cluster.metrics.parallel_time_s += assemble_s
            cluster.metrics.total_compute_s += assemble_s
            # Trailing reports of the final round are communication too.
            cluster.metrics.comm_bytes += up_bytes
            cluster.metrics.comm_messages += up_msgs
            # Physical-execution figures come from the live session — a
            # recovery mid-run re-opened it, so they describe the session
            # that finished the run.
            session = session_box[0]
            cluster.metrics.pipe_bytes = session.pipe_bytes
            cluster.metrics.delta_bytes_shipped = session.delta_bytes_shipped
            cluster.metrics.fragments_shipped = session.fragments_shipped
            cluster.metrics.fragments_delta_shipped = \
                session.fragments_delta_shipped
            cluster.metrics.fragment_bytes_shipped = \
                session.fragment_bytes_shipped
            cluster.metrics.shm_fallbacks = session.shm_fallbacks
            shm_stats = getattr(backend, "shm_stats", None)
            if shm_stats is not None:
                segs, mapped = shm_stats()
                cluster.metrics.shm_segments_active = segs
                cluster.metrics.shm_bytes_mapped = mapped
            cluster.metrics.wall_clock_s = time.perf_counter() - wall_start
            cluster.metrics.recoveries = arbitrator.recoveries

            return GrapeResult(answer=answer, metrics=cluster.metrics,
                               fragmentation=fragmentation, states=states,
                               recoveries=arbitrator.recoveries,
                               trace=trace)
        finally:
            session_box[0].close()
            arbitrator.discard()

    # ------------------------------------------------------------------
    @staticmethod
    def _step_with_recovery(cluster, session_box, arbitrator, commands,
                            bytes_in, msgs_in, restore, reopen=None, *,
                            plane=None, deadline=None, budget_s=None,
                            cancel=None):
        """Run one superstep; recover failures and replay (the
        arbitrator's task-transfer protocol).

        Two failure shapes are handled:

        * an **injected** :exc:`WorkerFailure` (inline backends) surfaces
          in the outcomes — the failed attempt is recorded (its compute
          happened), the checkpoint is restored and the step replays;
        * a **real worker death**
          (:exc:`~repro.runtime.executors.WorkerProcessDied`, process
          backend — including :exc:`~repro.runtime.executors.WorkerHung`,
          a worker killed for missing heartbeats) aborts the exchange
          mid-flight — with a checkpoint available the session is
          re-opened on fresh pool workers, the checkpoint restored into
          them and the step replayed.  Nothing is recorded for the
          aborted attempt (no complete outcome set exists), so a
          recovered run's logical metrics — supersteps, traffic — equal
          an uninterrupted run's.  A death during the recovery itself
          (the replacement worker dies while states are being restored)
          retries the whole sequence.  Known limitation: a death landing
          inside the *checkpoint* exchange (``collect_states``) rather
          than the step fails the run loudly with
          :exc:`WorkerProcessDied` — the next consistent resume point
          would predate work the coordinator has already folded; callers
          treat it as a failed (safely re-runnable) query.

        The fault plane's ``exec.step`` site is consulted here, exactly
        once per fragment per *logical* superstep; a fired action rides
        the :class:`StepCommand` to wherever the fragment executes.
        Every replay strips the embedded faults first — matching the
        injector's "each failure fires exactly once" semantics, so
        recovery always converges.  ``deadline`` (absolute monotonic)
        and ``cancel`` are checked before every attempt; an
        unrecoverable hang is reported as
        :exc:`~repro.resilience.errors.DeadlineExceeded` when the query
        had a time budget (the caller asked for bounded latency, and
        that is the bound that broke).
        """
        if plane is not None:
            for fid in sorted(commands):
                action = plane.check("exec.step", key=fid)
                if action is not None:
                    commands[fid].fault = action

        def strip_faults():
            for command in commands.values():
                command.fault = None

        attempts = 0
        while True:
            attempts += 1
            if cancel is not None and cancel.is_set():
                raise QueryCancelled(
                    "query cancelled at a superstep boundary")
            if deadline is not None and time.monotonic() > deadline:
                raise DeadlineExceeded(
                    f"query exceeded its {budget_s}s budget at a "
                    "superstep boundary", budget_s=budget_s)
            try:
                outcomes = session_box[0].step(commands, deadline=deadline,
                                               cancel=cancel)
            except DeadlineExceeded as exc:
                # Raised inside a pipe wait, where only the absolute
                # deadline is known — stamp the budget on the way out.
                strip_faults()
                if exc.budget_s is None:
                    exc.budget_s = budget_s
                raise
            except WorkerProcessDied as exc:
                strip_faults()
                if (attempts > 25 or reopen is None
                        or not arbitrator.has_checkpoint):
                    if isinstance(exc, WorkerHung) and deadline is not None:
                        raise DeadlineExceeded(
                            f"worker hung and could not be replaced "
                            f"within the {budget_s}s budget: {exc}",
                            budget_s=budget_s) from exc
                    raise
                while True:
                    try:
                        reopen()
                        restore(arbitrator.restore())
                        break
                    except WorkerProcessDied:
                        attempts += 1
                        if attempts > 25:
                            raise
                _events.emit("worker.recovered",
                             error=type(exc).__name__, attempts=attempts)
                continue
            times = [outcomes[fid].elapsed for fid in sorted(outcomes)]
            cluster.record_superstep(times, bytes_shipped=bytes_in,
                                     num_messages=msgs_in)
            failure = next((o.failed for o in outcomes.values()
                            if o.failed is not None), None)
            if failure is None:
                return outcomes
            strip_faults()
            if attempts > 25:
                raise failure
            if arbitrator.has_checkpoint:
                restore(arbitrator.restore())
            # else: replay from the current (pre-PEval) state.

    # ------------------------------------------------------------------
    def _collect_reports(self, program, query, frags, states, reported,
                         global_table, checker, *, first_round: bool,
                         sizer: Optional[ParamSizeCache] = None,
                         force_full: bool = False):
        """Read every fragment's report in-process and fold it.

        The coordinator-side entry point for callers holding states
        directly (:class:`~repro.core.updates.ContinuousQuerySession`);
        engine runs fold the reports their backend session returned
        through :meth:`_fold_outcomes` instead.  ``force_full`` reads and
        diffs the full parameter dict even for programs implementing the
        incremental dirty-set protocol — required right after a graph
        mutation, when candidate sets may have gained nodes the
        program's dirty tracking never saw (e.g. a node newly becoming a
        border node at a fragment that received no inserted edges).
        """
        reports = {frag.fid: read_report(program, query, frag,
                                         states[frag.fid], force_full)
                   for frag in frags}
        return self._fold_reports(program, [f.fid for f in frags], reports,
                                  reported, global_table, checker,
                                  first_round=first_round, sizer=sizer)

    def _fold_outcomes(self, program, frags, outcomes, reported,
                       global_table, checker, *, first_round: bool,
                       sizer: Optional[ParamSizeCache] = None):
        """Fold the reports a backend session's superstep produced."""
        reports = {fid: outcome.report for fid, outcome in outcomes.items()}
        return self._fold_reports(program, [f.fid for f in frags], reports,
                                  reported, global_table, checker,
                                  first_round=first_round, sizer=sizer)

    def _fold_reports(self, program, fid_order, reports, reported,
                      global_table, checker, *, first_round: bool,
                      sizer: Optional[ParamSizeCache] = None):
        """Fold per-fragment parameter reports into the global table,
        return (bytes, msgs, dirty).

        A ``("changed", params)`` report (the incremental protocol of
        :meth:`~repro.core.pie.PIEProgram.read_changed_params`) is folded
        directly; a ``("full", params)`` report is diffed against the
        fragment's last report first.  Report bytes are charged through
        ``sizer`` when given (memoized per entry) and by monolithic
        pickling otherwise.
        """
        agg = program.aggregator
        dirty: Set[ParamKey] = set()
        up_bytes = 0
        up_msgs = 0
        for fid in fid_order:
            kind, params = reports[fid]
            if kind == "full":
                prev = reported[fid]
                changed = {k: v for k, v in params.items()
                           if k not in prev or prev[k] != v}
                reported[fid] = params
            else:
                changed = params
                if changed:
                    reported[fid].update(changed)
            if not changed:
                continue
            up_bytes += (sizer.updates_bytes(changed) if sizer is not None
                         else message_bytes(changed))
            up_msgs += 1
            for key, value in changed.items():
                if key in global_table:
                    old = global_table[key]
                    merged = agg.combine(old, value)
                    if agg.is_progress(old, merged) or (
                            first_round and merged != old):
                        checker.observe(key, merged)
                        global_table[key] = merged
                        dirty.add(key)
                else:
                    global_table[key] = value
                    dirty.add(key)
        return up_bytes, up_msgs, dirty

    @staticmethod
    def _compose_messages(program, fragmentation, reported, dirty,
                          global_table):
        """Group changed parameters into one message per destination
        fragment, deducing destinations from ``G_P`` (paper 3.2(3))."""
        gp = fragmentation.gp
        messages: Dict[int, ParamUpdates] = {}
        for key in dirty:
            node, _name = key
            value = global_table[key]
            if node not in gp:
                continue
            if program.route_to == "owner":
                dests = (gp.owner(node),)
            else:
                dests = gp.holders(node)
            for dest in dests:
                # Skip fragments already holding this exact value.
                if reported[dest].get(key) == value:
                    continue
                messages.setdefault(dest, {})[key] = value
        return messages

    def _route_channels(self, frags, outcomes):
        """Route the designated and key-value messages the workers
        drained this superstep.

        Key-value pairs are grouped by key and assigned to workers by key
        hash — the coordinator's MapReduce-style shuffle (Section 3.5).
        Returns ``(designated, keyvalue, bytes, message_count)`` where both
        channel dicts map destination fid to deliverable content.
        """
        m = len(frags)
        designated: Dict[int, List[Any]] = {}
        grouped: Dict[Hashable, List[Any]] = {}
        ch_bytes = 0
        ch_msgs = 0
        for frag in frags:
            outcome = outcomes[frag.fid]
            des, kvs = outcome.designated, outcome.keyvalue
            for dest, items in des.items():
                if not 0 <= dest < m:
                    raise ValueError(f"designated dest {dest} out of range")
                if items:
                    designated.setdefault(dest, []).extend(items)
                    ch_bytes += message_bytes(items)
                    ch_msgs += 1
            for key, value in kvs:
                grouped.setdefault(key, []).append(value)
                ch_msgs += 1
            if kvs:
                ch_bytes += message_bytes(kvs)
        keyvalue: Dict[int, Dict[Hashable, List[Any]]] = {}
        for key, values in grouped.items():
            # stable_hash, not builtin hash: string keys must route to the
            # same worker in every process regardless of PYTHONHASHSEED.
            dest = stable_hash(key) % m
            keyvalue.setdefault(dest, {})[key] = values
        return designated, keyvalue, ch_bytes, ch_msgs
