"""The GRAPE parallel engine (paper Sections 3.1 and 6).

Given a PIE program, a query and a partitioned graph, the engine runs the
paper's three phases as a simultaneous fixpoint over fragments:

1. **PEval** — superstep 1: every worker evaluates the batch sequential
   algorithm on its fragment and reports its update parameters
   ``C_i.x̄`` to the coordinator;
2. **IncEval** — iterated supersteps: the coordinator folds reports into a
   per-parameter global table using the program's ``aggregateMsg``
   aggregator, composes a message ``M_j`` for every fragment holding a
   changed border node (destinations deduced from the fragmentation graph
   ``G_P``), and each worker with a non-empty message incrementally
   computes ``Q(F_i ⊕ M_i)``;
3. **Assemble** — when no update parameter changed and no explicit
   messages are pending, the coordinator pulls partial results and
   combines them.

Besides update parameters, the engine carries the paper's two explicit
message channels (Section 3.5): *designated* worker-to-worker messages and
*key-value* pairs shuffled by key at the coordinator — these power the
Simulation Theorem compilers (:mod:`repro.core.bsp_sim`,
:mod:`repro.core.mapreduce_sim`, :mod:`repro.core.pram_sim`).

Communication is accounted both ways (changed-parameter reports up to the
coordinator, composed messages down), in serialized bytes.  Supersteps,
per-superstep max-worker compute time and traffic are folded into
:class:`~repro.runtime.metrics.RunMetrics` by the simulated cluster.

The engine also implements:

* the paper's **GRAPE-NI** ablation (Exp-2): ``incremental=False`` applies
  messages and re-runs ``PEval`` instead of ``IncEval``;
* **monotonicity checking** (Assurance Theorem instrumentation);
* **fault tolerance** (Section 6): per-superstep checkpoints through an
  :class:`~repro.runtime.fault.Arbitrator`; injected worker failures roll
  the failed superstep back and replay it.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from repro.core.monotonic import MonotonicityChecker
from repro.core.pie import ParamKey, ParamUpdates, PIEProgram
from repro.graph.graph import Graph
from repro.partition.base import Fragmentation, PartitionStrategy
from repro.partition.strategies import HashPartition
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.fault import Arbitrator, FailureInjector, WorkerFailure
from repro.runtime.message import stable_hash
from repro.runtime.metrics import (CostModel, ParamSizeCache, RunMetrics,
                                   message_bytes)

__all__ = ["EngineConfig", "GrapeEngine", "GrapeResult"]


@dataclass(frozen=True)
class EngineConfig:
    """A reusable engine specification.

    One config can build any number of engines — the serving layer
    (:mod:`repro.service`) stores a config instead of an engine so each
    query runs on a fresh engine while sharing one declared setup, and so
    the fragmentation cache can be keyed on the partition spec.

    Fields mirror :class:`GrapeEngine`'s constructor parameters.
    """

    num_workers: int = 4
    num_fragments: Optional[int] = None
    partition: Optional[PartitionStrategy] = None
    cost_model: Optional[CostModel] = None
    executor: str = "serial"
    incremental: bool = True
    check_monotonic: bool = False
    max_supersteps: int = 100_000
    failure_injector: Optional["FailureInjector"] = None

    @property
    def effective_fragments(self) -> int:
        """The virtual-worker count ``m`` an engine built from this
        config will use."""
        return self.num_fragments or self.num_workers

    def replace(self, **changes) -> "EngineConfig":
        """A copy of this config with the given fields overridden."""
        return dataclasses.replace(self, **changes)

    def build(self) -> "GrapeEngine":
        """Instantiate a fresh engine from this spec."""
        return GrapeEngine.from_config(self)


@dataclass
class GrapeResult:
    """Outcome of one GRAPE run."""

    answer: Any
    metrics: RunMetrics
    fragmentation: Fragmentation
    states: Dict[int, Any]
    recoveries: int = 0

    @property
    def supersteps(self) -> int:
        return self.metrics.supersteps


class GrapeEngine:
    """Parallel evaluation of PIE programs on the simulated cluster.

    Parameters
    ----------
    num_workers:
        Physical workers ``n``.
    num_fragments:
        Virtual workers ``m`` (defaults to ``num_workers``); when larger,
        several fragments share a physical worker (paper Section 3.1).
    partition:
        Partition strategy ``P``; defaults to hash edge-cut.  Ignored when
        a prebuilt fragmentation is passed to :meth:`run`.
    incremental:
        ``False`` selects the GRAPE-NI ablation mode.
    check_monotonic:
        Verify the monotonic condition at runtime (small overhead).
    max_supersteps:
        Safety bound on supersteps.
    failure_injector:
        Optional fault-injection plan; failures trigger checkpoint
        recovery instead of aborting.
    """

    def __init__(self, num_workers: int, *,
                 num_fragments: Optional[int] = None,
                 partition: Optional[PartitionStrategy] = None,
                 cost_model: Optional[CostModel] = None,
                 executor: str = "serial",
                 incremental: bool = True,
                 check_monotonic: bool = False,
                 max_supersteps: int = 100_000,
                 failure_injector: Optional[FailureInjector] = None):
        self.num_workers = num_workers
        self.num_fragments = num_fragments or num_workers
        if self.num_fragments < self.num_workers:
            raise ValueError("virtual workers m must be >= physical n")
        self.partition = partition or HashPartition()
        self.cost_model = cost_model
        self.executor = executor
        self.incremental = incremental
        self.check_monotonic = check_monotonic
        self.max_supersteps = max_supersteps
        self.failure_injector = failure_injector

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: EngineConfig) -> "GrapeEngine":
        """Build an engine from a reusable :class:`EngineConfig`."""
        return cls(config.num_workers,
                   num_fragments=config.num_fragments,
                   partition=config.partition,
                   cost_model=config.cost_model,
                   executor=config.executor,
                   incremental=config.incremental,
                   check_monotonic=config.check_monotonic,
                   max_supersteps=config.max_supersteps,
                   failure_injector=config.failure_injector)

    @property
    def config(self) -> EngineConfig:
        """This engine's parameters as a reusable spec."""
        return EngineConfig(num_workers=self.num_workers,
                            num_fragments=self.num_fragments,
                            partition=self.partition,
                            cost_model=self.cost_model,
                            executor=self.executor,
                            incremental=self.incremental,
                            check_monotonic=self.check_monotonic,
                            max_supersteps=self.max_supersteps,
                            failure_injector=self.failure_injector)

    # ------------------------------------------------------------------
    def make_fragmentation(self, graph: Graph) -> Fragmentation:
        """Partition ``graph`` once, reusable across queries (paper:
        "G is partitioned once for all queries Q posed on G")."""
        return self.partition.partition(graph, self.num_fragments)

    # ------------------------------------------------------------------
    def run(self, program: PIEProgram, query: Any,
            graph: Optional[Graph] = None,
            fragmentation: Optional[Fragmentation] = None) -> GrapeResult:
        """Compute ``Q(G)`` with the given PIE program."""
        if fragmentation is None:
            if graph is None:
                raise ValueError("pass either graph or fragmentation")
            fragmentation = self.make_fragmentation(graph)

        ft_enabled = self.failure_injector is not None
        cluster = SimulatedCluster(self.num_workers,
                                   cost_model=self.cost_model,
                                   executor=self.executor,
                                   failure_injector=self.failure_injector)
        arbitrator = Arbitrator()
        checker = MonotonicityChecker(program.aggregator,
                                      enabled=self.check_monotonic)

        frags = fragmentation.fragments
        m = len(frags)
        states: Dict[int, Any] = {f.fid: program.init_state(query, f)
                                  for f in frags}

        # Optional pre-PEval data shipping (e.g. SubIso d_Q-neighborhoods).
        pre_bytes = 0
        payloads = program.preprocess(query, fragmentation)
        if payloads:
            for fid, payload in payloads.items():
                pre_bytes += message_bytes(payload)
                program.apply_preprocess(query, frags[fid], states[fid],
                                         payload)

        # Coordinator bookkeeping: last values each fragment reported, the
        # per-parameter global table, pending explicit-channel messages.
        reported: Dict[int, ParamUpdates] = {f.fid: {} for f in frags}
        global_table: Dict[ParamKey, Any] = {}
        # Memoized byte accounting: identical parameter entries recur
        # across rounds and destinations; pickle each once per run.
        sizer = ParamSizeCache()

        def snapshot_state():
            return {"states": states, "reported": reported,
                    "table": global_table}

        def restore(snap):
            states.clear()
            states.update(snap["states"])
            reported.clear()
            reported.update(snap["reported"])
            global_table.clear()
            global_table.update(snap["table"])

        # ---------------- superstep 1: PEval ---------------------------
        if ft_enabled:
            arbitrator.checkpoint(snapshot_state())

        def make_peval_task(fid: int):
            return lambda: program.peval(query, frags[fid], states[fid])

        self._run_step_with_recovery(
            cluster, arbitrator,
            tasks=[make_peval_task(f.fid) for f in frags],
            bytes_in=pre_bytes, msgs_in=1 if payloads else 0,
            restore=restore)

        up_bytes, up_msgs, dirty = self._collect_reports(
            program, query, frags, states, reported, global_table,
            checker, first_round=True, sizer=sizer)
        messages = self._compose_messages(program, fragmentation, reported,
                                          dirty, global_table)
        designated, keyvalue, ch_bytes, ch_msgs = self._drain_channels(
            program, query, frags, states)
        up_bytes += ch_bytes
        up_msgs += ch_msgs
        if ft_enabled:
            arbitrator.checkpoint(snapshot_state())

        # ---------------- IncEval supersteps ---------------------------
        rounds = 1
        while (messages or designated or keyvalue) \
                and rounds < self.max_supersteps:
            rounds += 1
            down_bytes = sum(sizer.updates_bytes(msg)
                             for msg in messages.values())
            down_bytes += sum(message_bytes(p) for p in designated.values())
            down_bytes += sum(message_bytes(g) for g in keyvalue.values())
            down_msgs = len(messages) + len(designated) + len(keyvalue)

            active = set(messages) | set(designated) | set(keyvalue)

            def make_inc_task(fid: int):
                if fid not in active:
                    return lambda: None  # inactive worker this superstep
                msg = messages.get(fid, {})
                des = designated.get(fid)
                kvs = keyvalue.get(fid)

                def work():
                    if des:
                        program.deliver_designated(query, frags[fid],
                                                   states[fid], des)
                    if kvs:
                        program.deliver_keyvalue(query, frags[fid],
                                                 states[fid], kvs)
                    if self.incremental:
                        program.inceval(query, frags[fid], states[fid], msg)
                    else:
                        # GRAPE-NI: apply message, redo PEval from scratch.
                        program.apply_message(query, frags[fid], states[fid],
                                              msg)
                        program.peval(query, frags[fid], states[fid])
                return work

            self._run_step_with_recovery(
                cluster, arbitrator,
                tasks=[make_inc_task(f.fid) for f in frags],
                bytes_in=up_bytes + down_bytes,
                msgs_in=up_msgs + down_msgs,
                restore=restore)

            up_bytes, up_msgs, dirty = self._collect_reports(
                program, query, frags, states, reported, global_table,
                checker, first_round=False, sizer=sizer)
            messages = self._compose_messages(program, fragmentation,
                                              reported, dirty, global_table)
            designated, keyvalue, ch_bytes, ch_msgs = self._drain_channels(
                program, query, frags, states)
            up_bytes += ch_bytes
            up_msgs += ch_msgs
            if ft_enabled:
                arbitrator.checkpoint(snapshot_state())

        if messages or designated or keyvalue:
            raise RuntimeError(
                f"no fixpoint after {self.max_supersteps} supersteps; "
                "check the monotonic condition of the PIE program")

        # ---------------- Assemble -------------------------------------
        start = time.perf_counter()
        answer = program.assemble(query, fragmentation, states)
        assemble_s = time.perf_counter() - start
        cluster.metrics.parallel_time_s += assemble_s
        cluster.metrics.total_compute_s += assemble_s
        # Trailing reports of the final round are part of communication.
        cluster.metrics.comm_bytes += up_bytes
        cluster.metrics.comm_messages += up_msgs

        return GrapeResult(answer=answer, metrics=cluster.metrics,
                           fragmentation=fragmentation, states=states,
                           recoveries=arbitrator.recoveries)

    # ------------------------------------------------------------------
    @staticmethod
    def _run_step_with_recovery(cluster, arbitrator, tasks, bytes_in,
                                msgs_in, restore):
        """Run one superstep; on injected failure, restore the checkpoint
        and replay (the arbitrator's task-transfer protocol)."""
        attempts = 0
        while True:
            attempts += 1
            try:
                cluster.run_superstep(tasks, bytes_shipped=bytes_in,
                                      num_messages=msgs_in)
                return
            except WorkerFailure:
                if attempts > 25:
                    raise
                if arbitrator.has_checkpoint:
                    restore(arbitrator.restore())
                # else: replay from the current (pre-PEval) state.

    # ------------------------------------------------------------------
    def _collect_reports(self, program, query, frags, states, reported,
                         global_table, checker, *, first_round: bool,
                         sizer: Optional[ParamSizeCache] = None,
                         force_full: bool = False):
        """Fold each fragment's changed update parameters into the global
        table, return (bytes, msgs, dirty).

        Programs implementing the incremental protocol
        (:meth:`~repro.core.pie.PIEProgram.read_changed_params`) hand the
        changed entries over directly; otherwise the full parameter dict
        is read and diffed against the fragment's last report.
        ``force_full`` reads and diffs the full dict even for protocol
        programs — required right after a graph mutation, when candidate
        sets may have gained nodes the program's dirty tracking never saw
        (e.g. a node newly becoming a border node at a fragment that
        received no inserted edges).  Report bytes are charged through
        ``sizer`` when given (memoized per entry) and by monolithic
        pickling otherwise.
        """
        agg = program.aggregator
        dirty: Set[ParamKey] = set()
        up_bytes = 0
        up_msgs = 0
        for frag in frags:
            changed = program.read_changed_params(query, frag,
                                                  states[frag.fid])
            if force_full and changed is not None:
                # The dirty state is consumed above (so it cannot be
                # re-reported next round); the full diff below subsumes
                # it and additionally catches new candidate-set entries.
                changed = None
            if changed is None:
                current = program.read_update_params(query, frag,
                                                     states[frag.fid])
                prev = reported[frag.fid]
                changed = {k: v for k, v in current.items()
                           if k not in prev or prev[k] != v}
                reported[frag.fid] = current
            elif changed:
                reported[frag.fid].update(changed)
            if not changed:
                continue
            up_bytes += (sizer.updates_bytes(changed) if sizer is not None
                         else message_bytes(changed))
            up_msgs += 1
            for key, value in changed.items():
                if key in global_table:
                    old = global_table[key]
                    merged = agg.combine(old, value)
                    if agg.is_progress(old, merged) or (
                            first_round and merged != old):
                        checker.observe(key, merged)
                        global_table[key] = merged
                        dirty.add(key)
                else:
                    global_table[key] = value
                    dirty.add(key)
        return up_bytes, up_msgs, dirty

    @staticmethod
    def _compose_messages(program, fragmentation, reported, dirty,
                          global_table):
        """Group changed parameters into one message per destination
        fragment, deducing destinations from ``G_P`` (paper 3.2(3))."""
        gp = fragmentation.gp
        messages: Dict[int, ParamUpdates] = {}
        for key in dirty:
            node, _name = key
            value = global_table[key]
            if node not in gp:
                continue
            if program.route_to == "owner":
                dests = (gp.owner(node),)
            else:
                dests = gp.holders(node)
            for dest in dests:
                # Skip fragments already holding this exact value.
                if reported[dest].get(key) == value:
                    continue
                messages.setdefault(dest, {})[key] = value
        return messages

    def _drain_channels(self, program, query, frags, states):
        """Collect designated and key-value messages from every worker.

        Key-value pairs are grouped by key and assigned to workers by key
        hash — the coordinator's MapReduce-style shuffle (Section 3.5).
        Returns ``(designated, keyvalue, bytes, message_count)`` where both
        channel dicts map destination fid to deliverable content.
        """
        m = len(frags)
        designated: Dict[int, List[Any]] = {}
        grouped: Dict[Hashable, List[Any]] = {}
        ch_bytes = 0
        ch_msgs = 0
        for frag in frags:
            des, kvs = program.drain_messages(query, frag, states[frag.fid])
            for dest, items in des.items():
                if not 0 <= dest < m:
                    raise ValueError(f"designated dest {dest} out of range")
                if items:
                    designated.setdefault(dest, []).extend(items)
                    ch_bytes += message_bytes(items)
                    ch_msgs += 1
            for key, value in kvs:
                grouped.setdefault(key, []).append(value)
                ch_msgs += 1
            if kvs:
                ch_bytes += message_bytes(kvs)
        keyvalue: Dict[int, Dict[Hashable, List[Any]]] = {}
        for key, values in grouped.items():
            # stable_hash, not builtin hash: string keys must route to the
            # same worker in every process regardless of PYTHONHASHSEED.
            dest = stable_hash(key) % m
            keyvalue.setdefault(dest, {})[key] = values
        return designated, keyvalue, ch_bytes, ch_msgs
