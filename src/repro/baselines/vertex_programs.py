"""Vertex programs for the five query classes (the "recast" algorithms).

These are the Giraph-style rewrites the paper contrasts with PIE programs
(Fig. 10 shows the SSSP one).  Note how every algorithm's logic had to be
broken apart into per-vertex message handlers — the ease-of-programming
point of Exp-6.
"""

from __future__ import annotations

from math import inf
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.baselines.vertex_centric import VertexContext, VertexProgram
from repro.graph.graph import Graph, Node
from repro.sequential.subiso import _match_order, canonical_match

__all__ = [
    "SSSPVertexProgram",
    "CCVertexProgram",
    "SimVertexProgram",
    "SubIsoVertexProgram",
    "CFVertexProgram",
]


class SSSPVertexProgram(VertexProgram):
    """Paper Fig. 10: min over incoming distances, relax out-edges.

    Query: the source node.  Uses a min combiner, as a tuned Giraph job
    would.
    """

    def init_value(self, graph: Graph, vertex: Node, query: Node) -> float:
        return inf

    def compute(self, ctx: VertexContext, graph: Graph, vertex: Node,
                value: float, messages: List[float], query: Node) -> float:
        mindist = 0.0 if vertex == query and ctx.superstep == 0 else inf
        for m in messages:
            mindist = min(mindist, m)
        if mindist < value:
            value = mindist
            for nbr, w in graph.successors_with_weights(vertex):
                ctx.send(nbr, mindist + w)
        ctx.vote_to_halt()
        return value

    def combine(self, messages: List[float]) -> List[float]:
        return [min(messages)] if messages else messages

    def finalize(self, graph: Graph, values: Dict[Node, float],
                 query: Node) -> Dict[Node, float]:
        return values


class CCVertexProgram(VertexProgram):
    """Classic min-label propagation for connected components."""

    def init_value(self, graph: Graph, vertex: Node, query: Any) -> Node:
        return vertex

    def compute(self, ctx: VertexContext, graph: Graph, vertex: Node,
                value: Node, messages: List[Node], query: Any) -> Node:
        candidate = min(messages) if messages else value
        if ctx.superstep == 0 or candidate < value:
            value = min(value, candidate)
            ctx.send_to_all(graph.neighbors(vertex), value)
        ctx.vote_to_halt()
        return value

    def combine(self, messages: List[Node]) -> List[Node]:
        return [min(messages)] if messages else messages

    def finalize(self, graph: Graph, values: Dict[Node, Node],
                 query: Any) -> Dict[Node, Set[Node]]:
        buckets: Dict[Node, Set[Node]] = {}
        for v, cid in values.items():
            buckets.setdefault(cid, set()).add(v)
        return buckets


class SimVertexProgram(VertexProgram):
    """Vertex-centric graph simulation.

    Each data vertex keeps (a) the set of query nodes it may still match
    and (b) a cache of its successors' match sets.  When a vertex's match
    set shrinks it notifies its *predecessors*, which re-evaluate — the
    per-edge chatter GRAPE avoids by running HHK whole-fragment.

    Vertex value: ``(matches, successor_cache)``.
    """

    def init_value(self, graph: Graph, vertex: Node,
                   query: Graph) -> Tuple[Set[Node], Dict[Node, frozenset]]:
        label = graph.node_label(vertex)
        matches = {u for u in query.nodes() if query.node_label(u) == label}
        return matches, {}

    def _reevaluate(self, graph: Graph, vertex: Node, matches: Set[Node],
                    cache: Dict[Node, frozenset], query: Graph) -> Set[Node]:
        kept = set()
        for u in matches:
            ok = True
            for u2 in query.successors(u):
                found = any(u2 in cache.get(w, frozenset())
                            for w in graph.successors(vertex))
                if not found:
                    ok = False
                    break
            if ok:
                kept.add(u)
        return kept

    def compute(self, ctx: VertexContext, graph: Graph, vertex: Node,
                value: Tuple[Set[Node], Dict[Node, frozenset]],
                messages: List[Tuple[Node, frozenset]],
                query: Graph) -> Tuple[Set[Node], Dict[Node, frozenset]]:
        matches, cache = value
        if ctx.superstep == 0:
            # Broadcast the initial match set to all predecessors and
            # optimistically assume successors match everything they could.
            for w in graph.successors(vertex):
                w_label = graph.node_label(w)
                cache[w] = frozenset(
                    u for u in query.nodes()
                    if query.node_label(u) == w_label)
            new_matches = self._reevaluate(graph, vertex, matches, cache,
                                           query)
            if new_matches != matches:
                # Predecessors assumed the optimistic label-based set;
                # only refinements carry information.
                for p in graph.predecessors(vertex):
                    ctx.send(p, (vertex, frozenset(new_matches)))
            ctx.vote_to_halt()
            return new_matches, cache

        for w, match_set in messages:
            cache[w] = match_set
        new_matches = self._reevaluate(graph, vertex, matches, cache, query)
        if new_matches != matches:
            for p in graph.predecessors(vertex):
                ctx.send(p, (vertex, frozenset(new_matches)))
        ctx.vote_to_halt()
        return new_matches, cache

    def finalize(self, graph: Graph, values: Dict[Node, Any],
                 query: Graph) -> Dict[Node, Set[Node]]:
        sim: Dict[Node, Set[Node]] = {u: set() for u in query.nodes()}
        for v, (matches, _cache) in values.items():
            for u in matches:
                sim[u].add(v)
        if any(not vs for vs in sim.values()):
            return {u: set() for u in query.nodes()}
        return sim


class SubIsoVertexProgram(VertexProgram):
    """Vertex-centric subgraph isomorphism by partial-match expansion.

    Superstep ``k`` extends partial matches by the ``k``-th pattern node of
    a connectivity-first order: the vertex holding the anchor forwards the
    partial match along its adjacency, and receivers verify labels and the
    pattern edges incident to themselves.  Complete matches accumulate in
    the final vertex's value — and every partial match is a message, which
    is why SubIso floods vertex-centric systems with traffic.
    """

    def init_value(self, graph: Graph, vertex: Node,
                   query: Graph) -> List[Dict[Node, Node]]:
        return []

    def _order(self, query: Graph) -> List[Node]:
        return _match_order(query)

    def _feasible(self, graph: Graph, query: Graph, u: Node, v: Node,
                  partial: Dict[Node, Node]) -> bool:
        if graph.node_label(v) != query.node_label(u):
            return False
        if v in partial.values():
            return False
        for u2 in query.successors(u):
            if u2 in partial and not graph.has_edge(v, partial[u2]):
                return False
        for u2 in query.predecessors(u):
            if u2 in partial and not graph.has_edge(partial[u2], v):
                return False
        return True

    def _forward(self, ctx: VertexContext, graph: Graph, query: Graph,
                 order: List[Node], partial: Dict[Node, Node],
                 value: List[Dict[Node, Node]], vertex: Node) -> None:
        """Extend ``partial`` by the next pattern node: record it when
        complete, fan out when this vertex is the anchor, else route the
        partial to the anchor vertex (tagged "fanout")."""
        depth = len(partial)
        if depth == len(order):
            value.append(dict(partial))
            return
        u_next = order[depth]
        pos = {u: i for i, u in enumerate(order)}
        anchors_out = [w for w in query.successors(u_next)
                       if pos.get(w, 1 << 30) < depth]
        anchors_in = [w for w in query.predecessors(u_next)
                      if pos.get(w, 1 << 30) < depth]
        if anchors_out:
            # pattern edge u_next -> anchor: candidates are the anchor
            # vertex's predecessors, which only the anchor knows.
            anchor_v = partial[anchors_out[0]]
            if anchor_v == vertex:
                for cand in graph.predecessors(anchor_v):
                    ctx.send(cand, ("extend", dict(partial)))
            else:
                ctx.send(anchor_v, ("fanout", dict(partial)))
        elif anchors_in:
            anchor_v = partial[anchors_in[0]]
            if anchor_v == vertex:
                for cand in graph.successors(anchor_v):
                    ctx.send(cand, ("extend", dict(partial)))
            else:
                ctx.send(anchor_v, ("fanout", dict(partial)))
        else:
            raise ValueError("pattern must be connected for vertex-centric "
                             "SubIso")

    def compute(self, ctx: VertexContext, graph: Graph, vertex: Node,
                value: List[Dict[Node, Node]],
                messages: List[Tuple[str, Dict[Node, Node]]],
                query: Graph) -> List[Dict[Node, Node]]:
        order = self._order(query)
        if ctx.superstep == 0:
            root = order[0]
            if self._feasible(graph, query, root, vertex, {}):
                self._forward(ctx, graph, query, order, {root: vertex},
                              value, vertex)
            ctx.vote_to_halt()
            return value

        for kind, partial in messages:
            if kind == "fanout":
                self._forward(ctx, graph, query, order, partial, value,
                              vertex)
                continue
            depth = len(partial)
            if depth >= len(order):
                continue
            u_next = order[depth]
            if self._feasible(graph, query, u_next, vertex, partial):
                extended = dict(partial)
                extended[u_next] = vertex
                self._forward(ctx, graph, query, order, extended, value,
                              vertex)
        ctx.vote_to_halt()
        return value

    def finalize(self, graph: Graph, values: Dict[Node, Any],
                 query: Graph) -> List[Dict[Node, Node]]:
        seen = set()
        out: List[Dict[Node, Node]] = []
        for v, matches in values.items():
            for match in matches:
                key = canonical_match(match)
                if key not in seen:
                    seen.add(key)
                    out.append(match)
        return out


class CFVertexProgram(VertexProgram):
    """Vertex-centric SGD collaborative filtering (the Giraph built-in the
    paper compares against).

    Even supersteps: users push ``(factor, rating)`` along rating edges;
    odd supersteps: items fold all incoming pairs into an SGD update and
    push their factor back.  Runs ``2 * max_epochs`` supersteps.

    Query: a :class:`repro.pie_programs.cf.CFQuery`.
    Vertex value: the factor vector as a tuple.
    """

    def init_value(self, graph: Graph, vertex: Node, query) -> tuple:
        import random
        rng = random.Random((query.seed, vertex).__hash__())
        return tuple(rng.gauss(0.0, 0.1) for _ in range(query.num_factors))

    @staticmethod
    def _axpy(f: tuple, g: tuple, lr: float) -> tuple:
        return tuple(a + lr * b for a, b in zip(f, g))

    def _sgd_fold(self, value: tuple, incoming, lr: float,
                  reg: float) -> tuple:
        for other_f, rating in incoming:
            pred = sum(a * b for a, b in zip(value, other_f))
            err = rating - pred
            grad = tuple(err * o - reg * s for o, s in zip(other_f, value))
            value = self._axpy(value, grad, lr)
        return value

    def compute(self, ctx: VertexContext, graph: Graph, vertex: Node,
                value: tuple, messages: List[Tuple[tuple, float]],
                query) -> tuple:
        epoch = ctx.superstep // 2
        if epoch >= query.max_epochs:
            ctx.vote_to_halt()
            return value
        is_user = graph.out_degree(vertex) > 0
        if ctx.superstep % 2 == 0:
            if messages:  # item replies from the previous epoch
                value = self._sgd_fold(value, messages,
                                       query.learning_rate,
                                       query.regularization)
            if is_user:
                for item, rating in graph.successors_with_weights(vertex):
                    ctx.send(item, (value, rating))
            ctx.vote_to_halt()
        else:
            if messages:
                value = self._sgd_fold(value, messages,
                                       query.learning_rate,
                                       query.regularization)
                for user, rating in graph.predecessors_with_weights(vertex):
                    ctx.send(user, (value, rating))
            ctx.vote_to_halt()
        return value

    def finalize(self, graph: Graph, values: Dict[Node, tuple], query):
        import numpy as np
        return {v: np.asarray(f) for v, f in values.items()}
